//! Quickstart: calibrate a link, then detect a person stepping into the
//! monitored area.
//!
//! Run with `cargo run --release --example quickstart`.

use multipath_hd::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's §III setup: a 6 m × 8 m classroom with a 4 m TX–RX link.
    let room = Environment::empty_room(Rect::new(Vec2::ZERO, Vec2::new(8.0, 6.0)));
    let link = ChannelModel::new(room, Vec2::new(2.0, 3.0), Vec2::new(6.0, 3.0))?;
    let mut receiver = CsiReceiver::new(link, 7)?;

    // Calibration: several sessions of packets with nobody around —
    // the environment drifts between sessions, and the threshold must
    // absorb that (the paper's captures span day/night and two weeks).
    println!("calibrating on an empty room...");
    let calibration = receiver.capture_sessions(None, 50, 12)?;
    let config = DetectorConfig::default();
    let detector = Detector::calibrate(&calibration, SubcarrierAndPathWeighting, config, 0.05)?;
    println!(
        "calibrated: threshold {:.4} at 5% target false-positive rate",
        detector.threshold()
    );

    // Monitoring: empty room first, then a person at three spots.
    // Each window is a fresh "session" (clutter has drifted since
    // calibration).
    receiver.resample_drift();
    let empty = receiver.capture_static(None, 25)?;
    let d = detector.decide(&empty)?;
    println!(
        "empty room       → score {:.4}  detected: {}",
        d.score, d.detected
    );

    for (label, pos) in [
        ("blocking the LOS", Vec2::new(4.0, 3.0)),
        ("1 m beside it   ", Vec2::new(4.0, 4.0)),
        ("near the corner ", Vec2::new(6.2, 4.6)),
    ] {
        let person = HumanBody::new(pos);
        receiver.resample_drift();
        let window = receiver.capture_static(Some(&person), 25)?;
        let d = detector.decide(&window)?;
        println!(
            "person {label} → score {:.4}  detected: {}",
            d.score, d.detected
        );
    }
    Ok(())
}
