//! Deployment assessment: sweep human positions over a grid and print a
//! detection heat map per scheme — the "guidelines for infrastructure
//! assessment and deployment" use case from the paper's contributions.
//!
//! Run with `cargo run --release --example coverage_map`.

use mpdf_eval::scenario::{classroom, classroom_room};
use multipath_hd::prelude::*;

const COLS: usize = 24;
const ROWS: usize = 16;

fn glyph(score: f64, threshold: f64) -> char {
    let r = score / threshold;
    match r {
        r if r >= 2.0 => '#',
        r if r >= 1.0 => '+',
        r if r >= 0.5 => '.',
        _ => ' ',
    }
}

fn run_scheme<S: DetectionScheme + Copy>(
    scheme: S,
    name: &str,
) -> Result<(), Box<dyn std::error::Error>> {
    // The evaluation classroom: an 8×6 m room inside a concrete building
    // shell, which supplies the long-delay multipath of a real building.
    let room_rect = classroom_room();
    let room = classroom();
    let tx = Vec2::new(2.0, 3.0);
    let rx = Vec2::new(6.0, 3.0);
    let link = ChannelModel::new(room, tx, rx)?;
    let mut receiver = CsiReceiver::new(link, 99)?;

    let calibration = receiver.capture_sessions(None, 30, 20)?;
    // Decisions below use 10-packet windows (0.2 s), so calibrate the
    // threshold on the same window length.
    let config = DetectorConfig {
        window: 10,
        ..DetectorConfig::default()
    };
    let detector = Detector::calibrate(&calibration, scheme, config, 0.1)?;

    println!("\n=== {name} — detection coverage (#: strong, +: detected, .: weak, ' ': none)");
    let mut detected = 0usize;
    let mut total = 0usize;
    for row in 0..ROWS {
        let mut line = String::with_capacity(COLS);
        for col in 0..COLS {
            let inner = room_rect.shrunk(0.4);
            let x = inner.min().x + inner.width() * col as f64 / (COLS - 1) as f64;
            let y = inner.max().y - inner.height() * row as f64 / (ROWS - 1) as f64;
            let pos = Vec2::new(x, y);
            // Mark the radios themselves.
            if pos.distance(tx) < 0.25 {
                line.push('T');
                continue;
            }
            if pos.distance(rx) < 0.25 {
                line.push('R');
                continue;
            }
            let person = HumanBody::new(pos);
            receiver.resample_drift();
            let window = receiver.capture_static(Some(&person), 10)?;
            let d = detector.decide(&window)?;
            line.push(glyph(d.score, d.threshold));
            total += 1;
            if d.detected {
                detected += 1;
            }
        }
        println!("  |{line}|");
    }
    println!(
        "  coverage: {}/{} grid cells detected ({:.0}%)",
        detected,
        total,
        100.0 * detected as f64 / total as f64
    );
    // The other half of the story: how often does the scheme cry wolf on
    // an *empty* room as the environment drifts between sessions?
    let mut false_alarms = 0usize;
    let empties = 40usize;
    for _ in 0..empties {
        receiver.resample_drift();
        let window = receiver.capture_static(None, 10)?;
        if detector.decide(&window)?.detected {
            false_alarms += 1;
        }
    }
    println!(
        "  false alarms on empty room: {}/{} windows ({:.0}%)",
        false_alarms,
        empties,
        100.0 * false_alarms as f64 / empties as f64
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("coverage maps of a 4 m link in an 8 m x 6 m room (T=transmitter, R=receiver)");
    run_scheme(Baseline, "baseline (CSI amplitude distance)")?;
    run_scheme(SubcarrierWeighting, "subcarrier weighting")?;
    run_scheme(SubcarrierAndPathWeighting, "subcarrier + path weighting")?;
    println!("\nRead coverage *and* false alarms together: raw amplitude distances");
    println!("(baseline) light up everything, drift included; the weighted schemes");
    println!("concentrate on human-shaped change. Campaign-level numbers (fig7/fig9)");
    println!("average this over five links, where the paper's ordering emerges.");
    Ok(())
}
