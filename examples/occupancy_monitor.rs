//! Occupancy monitoring: a day-in-the-life simulation of a meeting room.
//!
//! People enter, linger and leave over a two-minute compressed "day";
//! the detector produces a per-interval occupancy log like a smart-
//! building sensor would. Exercises multi-actor scenes (several people
//! present at once) — the regime beyond the paper's single-subject
//! evaluation.
//!
//! Run with `cargo run --release --example occupancy_monitor`.

use mpdf_propagation::trajectory::{StaticSway, Trajectory, WaypointWalk};
use multipath_hd::prelude::*;

/// A person's schedule: enter, sit somewhere, leave.
struct Visit {
    enter_s: f64,
    leave_s: f64,
    seat: Vec2,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let room = Environment::empty_room(Rect::new(Vec2::ZERO, Vec2::new(8.0, 6.0)));
    let link = ChannelModel::new(room, Vec2::new(2.0, 3.0), Vec2::new(6.0, 3.0))?;
    let mut receiver = CsiReceiver::new(link, 314)?;

    println!("calibrating the empty meeting room...");
    let calibration = receiver.capture_sessions(None, 50, 12)?;
    let detector = Detector::calibrate(
        &calibration,
        SubcarrierAndPathWeighting,
        DetectorConfig::default(),
        0.1,
    )?;

    // The compressed day: 120 s at 50 pkt/s = 6000 packets.
    let day_s = 120.0;
    let visits = [
        Visit {
            enter_s: 10.0,
            leave_s: 50.0,
            seat: Vec2::new(3.0, 4.5),
        },
        Visit {
            enter_s: 25.0,
            leave_s: 80.0,
            seat: Vec2::new(5.0, 1.8),
        },
        Visit {
            enter_s: 60.0,
            leave_s: 100.0,
            seat: Vec2::new(4.2, 4.0),
        },
    ];
    let door = Vec2::new(7.6, 5.6);

    // Build each visitor's trajectory: door → seat (2 s walk) → sway at
    // the seat → seat → door (2 s walk). Times are absolute.
    let walks: Vec<WaypointWalk> = visits
        .iter()
        .map(|v| {
            WaypointWalk::new(vec![
                (0.0, door),
                (v.enter_s, door),
                (v.enter_s + 2.0, v.seat),
                (v.leave_s - 2.0, v.seat),
                (v.leave_s, door),
                (day_s, door),
            ])
        })
        .collect();
    // Capture the day in 0.5 s windows, assembling the actor set per
    // window from who is inside (people "outside" are removed entirely —
    // the door is a proxy for leaving the monitored area).
    let window = detector.config().window;
    let windows = (day_s * 50.0) as usize / window;
    receiver.resample_drift();
    println!("t[s]   truth  detected  score");
    let mut correct = 0usize;
    for w in 0..windows {
        let t = w as f64 * window as f64 / 50.0;
        let inside: Vec<usize> = visits
            .iter()
            .enumerate()
            .filter(|(_, v)| t >= v.enter_s && t <= v.leave_s)
            .map(|(i, _)| i)
            .collect();
        // Anchor a sway at each visitor's *current* position for this
        // window (walking visitors are mid-stride; seated ones are at
        // their seat — the walk trajectory gives both).
        let window_sways: Vec<StaticSway> = inside
            .iter()
            .map(|&i| StaticSway::new(walks[i].position(t), 0.03))
            .collect();
        let actors: Vec<Actor<'_>> = window_sways
            .iter()
            .map(|sway| Actor {
                body: HumanBody::new(sway.anchor),
                trajectory: sway,
            })
            .collect();
        let packets = receiver.capture_actors(&actors, window)?;
        let d = detector.decide(&packets)?;
        let truth = !inside.is_empty();
        if truth == d.detected {
            correct += 1;
        }
        if w % 10 == 0 {
            println!(
                "{t:5.1}  {:5}  {:8}  {:.3}",
                inside.len(),
                d.detected,
                d.score
            );
        }
    }
    println!(
        "\nwindow-level occupancy accuracy: {}/{} ({:.0}%)",
        correct,
        windows,
        100.0 * correct as f64 / windows as f64
    );
    println!("(occupied spans: 10–50 s, 25–80 s, 60–100 s; up to 3 people at once)");
    Ok(())
}
