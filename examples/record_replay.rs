//! Record a measurement campaign to a binary capture file, then replay it
//! through a detector offline — the workflow the paper's MATLAB
//! post-processing pipeline follows (capture once, analyze many times).
//!
//! Run with `cargo run --release --example record_replay [capture.mpdf]`.

use mpdf_wifi::trace::{read_capture, write_capture};
use multipath_hd::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let path = std::env::args().nth(1).unwrap_or_else(|| {
        std::env::temp_dir()
            .join("campaign.mpdf")
            .display()
            .to_string()
    });

    // --- Record: a calibration session plus labelled monitoring windows.
    let room = Environment::empty_room(Rect::new(Vec2::ZERO, Vec2::new(8.0, 6.0)));
    let link = ChannelModel::new(room, Vec2::new(2.0, 3.0), Vec2::new(6.0, 3.0))?;
    let mut receiver = CsiReceiver::new(link, 77)?;

    let mut stream = receiver.capture_sessions(None, 50, 10)?; // calibration: 500 pkts
    receiver.resample_drift();
    stream.extend(receiver.capture_static(None, 50)?); // 2 empty windows
    let person = HumanBody::new(Vec2::new(4.2, 3.8));
    receiver.resample_drift();
    stream.extend(receiver.capture_static(Some(&person), 50)?); // 2 busy windows

    let file = std::fs::File::create(&path)?;
    write_capture(std::io::BufWriter::new(file), &stream)?;
    let size = std::fs::metadata(&path)?.len();
    println!(
        "recorded {} packets ({} antennas × {} subcarriers) → {path} ({size} bytes)",
        stream.len(),
        stream[0].antennas(),
        stream[0].subcarriers(),
    );

    // --- Replay: a fresh process would start here.
    let packets = read_capture(std::fs::File::open(&path)?)?;
    assert_eq!(packets, stream, "capture must round-trip exactly");
    let (calibration, monitoring) = packets.split_at(500);
    let detector = Detector::calibrate(
        calibration,
        SubcarrierAndPathWeighting,
        DetectorConfig::default(),
        0.1,
    )?;
    println!("replaying {} monitoring packets:", monitoring.len());
    for (i, d) in detector.decide_stream(monitoring)?.iter().enumerate() {
        let truth = if i < 2 { "empty" } else { "person" };
        println!(
            "  window {i} ({truth:6}) → score {:8.4}  detected: {}",
            d.score, d.detected
        );
    }
    std::fs::remove_file(&path).ok();
    Ok(())
}
