//! Streaming security monitor: watch a room over time; a person walks
//! through mid-capture. Combines the presence detector with the
//! moving-target variance feature (§III's stationary/mobile split).
//!
//! Run with `cargo run --release --example intrusion_timeline`.

use mpdf_core::variance::motion_score;
use mpdf_propagation::trajectory::LinearWalk;
use multipath_hd::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let room = Environment::empty_room(Rect::new(Vec2::ZERO, Vec2::new(8.0, 6.0)));
    let link = ChannelModel::new(room, Vec2::new(2.0, 3.0), Vec2::new(6.0, 3.0))?;
    // A quieter RF environment than the evaluation default — this demo is
    // about the timeline, not interference robustness.
    let mut config = ReceiverConfig::default();
    config.impairments.interference_prob = 0.05;
    let mut receiver = CsiReceiver::with_config(link, config, 2024)?;

    println!("calibrating...");
    let calibration = receiver.capture_sessions(None, 50, 12)?;
    let detector = Detector::calibrate(
        &calibration,
        SubcarrierAndPathWeighting,
        DetectorConfig::default(),
        0.05,
    )?;

    // 12-second timeline at 50 pkt/s: 4 s empty, 4 s walk-through, 4 s empty.
    receiver.resample_drift();
    let mut stream = Vec::new();
    stream.extend(receiver.capture_static(None, 200)?);
    let walk = LinearWalk::new(Vec2::new(1.0, 5.2), Vec2::new(7.0, 1.2), 4.0);
    let intruder = HumanBody::new(walk.start);
    stream.extend(receiver.capture_moving(&intruder, &walk, 200)?);
    stream.extend(receiver.capture_static(None, 200)?);

    println!("t[s]   presence-score  motion[dB^2]  verdict");
    let window = detector.config().window;
    let mut intrusion_windows = 0;
    for (i, chunk) in stream.chunks_exact(window).enumerate() {
        let t = i as f64 * window as f64 / 50.0;
        let d = detector.decide(chunk)?;
        let motion = motion_score(chunk);
        let verdict = match (d.detected, motion > 0.5) {
            (true, true) => "INTRUDER (moving)",
            (true, false) => "INTRUDER (still)",
            (false, true) => "motion only",
            (false, false) => "clear",
        };
        if d.detected {
            intrusion_windows += 1;
        }
        println!("{t:5.1}  {:14.4}  {:12.3}  {verdict}", d.score, motion);
    }
    println!(
        "\n{intrusion_windows} windows flagged; the walk spans t=4.0..8.0 s — decisions land within one window (0.5 s), the paper's sub-second response claim"
    );
    Ok(())
}
