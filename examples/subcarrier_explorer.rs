//! Subcarrier explorer: inspect the multipath factor, the Eq. 15 weights
//! and per-subcarrier RSS changes for a scene — the paper's §III/IV
//! analysis, interactive-style.
//!
//! Run with `cargo run --release --example subcarrier_explorer`.

use mpdf_core::multipath_factor::multipath_factors;
use mpdf_core::subcarrier_weight::SubcarrierWeights;
use mpdf_wifi::csi::CsiPacket;
use mpdf_wifi::sanitize::sanitize_packet;
use multipath_hd::prelude::*;

fn bar(x: f64, scale: f64) -> String {
    let n = ((x * scale).round().max(0.0) as usize).min(40);
    "█".repeat(n)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let room = Environment::empty_room(Rect::new(Vec2::ZERO, Vec2::new(8.0, 6.0)));
    let link = ChannelModel::new(room, Vec2::new(2.0, 3.0), Vec2::new(6.0, 3.0))?;
    let mut receiver = CsiReceiver::new(link, 5)?;
    let config = DetectorConfig::default();
    let freqs = config.band.frequencies();
    let indices = config.band.indices().to_vec();

    // Static profile.
    let calibration = receiver.capture_sessions(None, 50, 4)?;
    let sanitized: Vec<CsiPacket> = calibration
        .iter()
        .map(|p| {
            let mut q = p.clone();
            sanitize_packet(&mut q, &indices);
            q
        })
        .collect();
    let static_power = CsiPacket::median_power_profile(&sanitized);

    // A person well off the link — the regime where weighting matters.
    let person = HumanBody::new(Vec2::new(6.4, 4.8));
    receiver.resample_drift();
    let window = receiver.capture_static(Some(&person), 25)?;
    let sanitized_win: Vec<CsiPacket> = window
        .iter()
        .map(|p| {
            let mut q = p.clone();
            sanitize_packet(&mut q, &indices);
            q
        })
        .collect();
    let monitored = CsiPacket::median_power_profile(&sanitized_win);
    let mus = multipath_factors(&sanitized_win[0], &freqs);
    let weights = SubcarrierWeights::from_packets(&sanitized_win, &freqs);

    println!("slot  idx   μ (1 pkt)  μ̄·r weight  Δs [dB]   |Δs| bar");
    for k in 0..freqs.len() {
        let ds = 10.0 * (monitored[k] / static_power[k]).log10();
        println!(
            "{k:>4}  {idx:>4}  {mu:>8.3}  {w:>10.5}  {ds:>7.2}   {bar}",
            idx = indices[k],
            mu = mus[k],
            w = weights.weights[k],
            ds = ds,
            bar = bar(ds.abs(), 8.0),
        );
    }

    // Correlation the weighting scheme relies on: sensitive subcarriers
    // (large weight) should show large |Δs|.
    let abs_ds: Vec<f64> = monitored
        .iter()
        .zip(&static_power)
        .map(|(m, s)| (10.0 * (m / s).log10()).abs())
        .collect();
    let corr = mpdf_rfmath::fit::pearson(&abs_ds, &weights.weights);
    println!("\ncorrelation(|Δs|, weight) = {corr:.3}");
    println!("subcarrier weighting concentrates the detector on the subcarriers the");
    println!("person actually perturbs — the paper's frequency-diversity insight.");
    Ok(())
}
