//! Property tests for the checkpoint codec: clean round-trips are exact
//! (restored detectors score to 0 ULP of the original), and any
//! single-byte corruption anywhere in the file is caught by the trailing
//! checksum as a typed error.

use proptest::prelude::*;

use mpdf_core::profile::DetectorConfig;
use mpdf_core::scheme::SubcarrierWeighting;
use mpdf_geom::shapes::Rect;
use mpdf_geom::vec2::Vec2;
use mpdf_propagation::channel::ChannelModel;
use mpdf_propagation::environment::Environment;
use mpdf_session::checkpoint::{decode_snapshot, encode_snapshot, CheckpointError};
use mpdf_session::runtime::{RecalPolicy, SessionConfig, SessionRuntime};
use mpdf_wifi::receiver::CsiReceiver;

fn session_cfg() -> SessionConfig {
    SessionConfig {
        recalibration: RecalPolicy {
            enabled: true,
            shadow_windows: 4,
            ..RecalPolicy::default()
        },
        reservoir_windows: 4,
        ..SessionConfig::default()
    }
}

/// A runtime with `steps` windows of live state (posterior, sentinel
/// EWMA, reservoir contents all non-trivial).
fn runtime(seed: u64, steps: u64) -> (SessionRuntime<SubcarrierWeighting>, CsiReceiver) {
    let env = Environment::empty_room(Rect::new(Vec2::ZERO, Vec2::new(8.0, 6.0)));
    let link = ChannelModel::new(env, Vec2::new(2.0, 3.0), Vec2::new(6.0, 3.0)).unwrap();
    let mut rx = CsiReceiver::new(link, seed).unwrap();
    let calibration = rx.capture_static(None, 150).unwrap();
    let mut rt = SessionRuntime::calibrate(
        &calibration,
        SubcarrierWeighting,
        DetectorConfig::default(),
        session_cfg(),
    )
    .unwrap();
    for _ in 0..steps {
        let win = rx.capture_static(None, 25).unwrap();
        rt.step(&win).unwrap();
    }
    (rt, rx)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn clean_roundtrip_restores_to_zero_ulp(seed in 0u64..1_000, steps in 0u64..4) {
        let (rt, mut rx) = runtime(seed, steps);
        let snap = rt.snapshot();
        let bytes = encode_snapshot(&snap).unwrap();
        let config = DetectorConfig::default();
        let decoded = decode_snapshot(&bytes, &config).unwrap();
        prop_assert_eq!(&decoded, &snap);
        let restored = SessionRuntime::from_snapshot(
            decoded,
            SubcarrierWeighting,
            config,
            session_cfg(),
        )
        .unwrap();
        // The restored detector scores fresh windows bit-identically.
        for _ in 0..2 {
            let probe = rx.capture_static(None, 25).unwrap();
            let a = rt.detector().decide(&probe).unwrap();
            let b = restored.detector().decide(&probe).unwrap();
            prop_assert_eq!(a.score.to_bits(), b.score.to_bits());
            prop_assert_eq!(a.detected, b.detected);
        }
        prop_assert_eq!(restored.posterior().to_bits(), rt.posterior().to_bits());
        prop_assert_eq!(restored.threshold().to_bits(), rt.threshold().to_bits());
    }

    #[test]
    fn single_byte_corruption_is_always_a_checksum_error(
        seed in 0u64..1_000,
        pos in 0usize..1_000_000,
        xor in 1u8..=255,
    ) {
        let (rt, _rx) = runtime(seed, 1);
        let mut bytes = encode_snapshot(&rt.snapshot()).unwrap().to_vec();
        let idx = pos % bytes.len();
        bytes[idx] ^= xor;
        let err = decode_snapshot(&bytes, &DetectorConfig::default()).unwrap_err();
        prop_assert!(
            matches!(err, CheckpointError::ChecksumMismatch { .. }),
            "byte {} xor {:#04x}: expected checksum mismatch, got {}",
            idx,
            xor,
            err
        );
    }
}
