//! Recovery edge cases for the session checkpoint store: truncating the
//! primary at *any* byte offset falls back to the `.bak` rotation, and
//! degenerate files (empty, header-only) are typed errors — never a
//! panic, never a silently half-restored snapshot.

use std::path::PathBuf;

use proptest::prelude::*;

use mpdf_core::profile::DetectorConfig;
use mpdf_core::scheme::SubcarrierWeighting;
use mpdf_geom::shapes::Rect;
use mpdf_geom::vec2::Vec2;
use mpdf_propagation::channel::ChannelModel;
use mpdf_propagation::environment::Environment;
use mpdf_session::checkpoint::CheckpointStore;
use mpdf_session::runtime::{SessionConfig, SessionRuntime};
use mpdf_session::CheckpointError;
use mpdf_wifi::receiver::CsiReceiver;

fn runtime(seed: u64) -> (SessionRuntime<SubcarrierWeighting>, CsiReceiver) {
    let env = Environment::empty_room(Rect::new(Vec2::ZERO, Vec2::new(8.0, 6.0)));
    let link = ChannelModel::new(env, Vec2::new(2.0, 3.0), Vec2::new(6.0, 3.0)).unwrap();
    let mut rx = CsiReceiver::new(link, seed).unwrap();
    let calibration = rx.capture_static(None, 150).unwrap();
    let rt = SessionRuntime::calibrate(
        &calibration,
        SubcarrierWeighting,
        DetectorConfig::default(),
        SessionConfig::default(),
    )
    .unwrap();
    (rt, rx)
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mpdf_ckpt_rec_{}_{tag}.mpsc", std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Two saves leave a good `.bak`; truncating the primary anywhere
    /// (including to zero bytes) restores the first snapshot from it.
    #[test]
    fn truncated_primary_at_any_offset_restores_the_bak(frac in 0.0f64..1.0) {
        let (mut rt, mut rx) = runtime(7);
        let path = temp_path("trunc");
        let bak = {
            let mut p = path.clone().into_os_string();
            p.push(".bak");
            PathBuf::from(p)
        };
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&bak).ok();
        let store = CheckpointStore::new(&path);

        store.save(&rt.snapshot()).unwrap();
        let first = rt.snapshot();
        let win = rx.capture_static(None, 25).unwrap();
        rt.step(&win).unwrap();
        store.save(&rt.snapshot()).unwrap();

        // Truncate the primary at a proportional offset, zero included.
        let bytes = std::fs::read(&path).unwrap();
        let cut = ((bytes.len() as f64) * frac) as usize;
        // A full-length "truncation" would be the intact file; drop at
        // least one byte.
        let cut = cut.min(bytes.len() - 1);
        std::fs::write(&path, &bytes[..cut]).unwrap();

        let restored = store.load(&DetectorConfig::default()).unwrap();
        prop_assert_eq!(restored, first, "fallback must restore the previous good snapshot");

        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&bak).ok();
    }
}

#[test]
fn empty_and_garbage_checkpoints_are_typed_errors() {
    let path = temp_path("typed");
    let store = CheckpointStore::new(&path);
    for contents in [&[][..], &b"MPSC"[..], &b"definitely not a checkpoint"[..]] {
        std::fs::write(&path, contents).unwrap();
        let err = store.load(&DetectorConfig::default()).unwrap_err();
        assert!(
            !matches!(err, CheckpointError::Io(_)),
            "degenerate contents must be a decode error, got {err}"
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn missing_checkpoint_is_an_io_error_not_a_panic() {
    let path = temp_path("missing");
    std::fs::remove_file(&path).ok();
    let store = CheckpointStore::new(&path);
    assert!(!store.exists());
    let err = store.load(&DetectorConfig::default()).unwrap_err();
    assert!(matches!(err, CheckpointError::Io(_)), "got {err}");
}
