//! Session lifecycle layer for long-running device-free detection.
//!
//! The paper's pipeline ends at calibration time: a profile and a
//! threshold are frozen, then monitoring runs forever against them. Real
//! deployments span days — doors move, equipment is re-racked, AGC
//! references wander — and the simulator already models exactly that
//! (session clutter/gain drift in `mpdf-wifi`). This crate supplies the
//! adaptation layer the paper's title promises:
//!
//! - [`sentinel`] — EWMA drift sentinels over vacancy-gated window
//!   statistics, classifying the link as `Stable / Drifting / Broken`
//!   with hysteresis;
//! - [`runtime`] — a supervised long-running loop ([`runtime::SessionRuntime`])
//!   wrapping the calibrated `Detector` with staged automatic
//!   recalibration (shadow buffer → candidate profile → rollback guard →
//!   atomic swap), window-counted exponential backoff and graceful
//!   degradation to frozen-profile mode;
//! - [`checkpoint`] — versioned, checksummed serialization of the full
//!   session state with atomic write-rename and previous-good fallback,
//!   so a killed session restores bit-identically.
//!
//! Everything is deterministic and clock-free: retry budgets, backoff and
//! watchdog deadlines are counted in *windows*, never wall time, so a
//! session replayed from a checkpoint emits byte-identical decisions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod runtime;
pub mod sentinel;

pub use checkpoint::{CheckpointError, CheckpointStore};
pub use runtime::{
    RecalOutcome, RecalPolicy, SessionConfig, SessionDecision, SessionMode, SessionRuntime,
};
pub use sentinel::{DriftSentinel, DriftState, SentinelConfig};
