//! Versioned, checksummed checkpoint files for session state.
//!
//! A checkpoint captures the complete dynamic state of a
//! [`SessionRuntime`](crate::runtime::SessionRuntime) — profile,
//! threshold, HMM state, drift-sentinel state, supervision counters, the
//! null reservoir and shadow buffer, and the seq cursor — so a killed
//! session restores and continues **bit-identically**.
//!
//! Layout (all little-endian):
//!
//! ```text
//! magic    b"MPSC"                             4 bytes
//! version  u16                                 2
//! paylen   u64  (payload byte count)           8
//! payload  [paylen bytes]
//! checksum u64  FNV-1a(64) over magic..payload 8
//! ```
//!
//! The payload packs, in order: cursor, threshold, the calibration
//! profile (shape, amplitudes, powers, per-subcarrier covariances,
//! static spectrum — path weights are *re-derived* at restore, which is
//! bit-identical arithmetic), the HMM parameters and carried posterior,
//! the sentinel snapshot, supervision state (mode, retries, backoff,
//! watchdog strikes), and the reservoir + shadow packet windows in the
//! `mpdf_wifi::trace` per-packet encoding.
//!
//! [`CheckpointStore`] adds crash-safe file handling: atomic
//! write-rename through a `.tmp` sibling, the previous good checkpoint
//! retained as `.bak`, and corrupt/truncated-file detection on load
//! falling back to the previous good file.

use std::error::Error;
use std::fmt;
use std::path::{Path, PathBuf};

use bytes::{Buf, BufMut, Bytes, BytesMut};

use mpdf_core::error::DetectError;
use mpdf_core::hmm::{Gaussian, HmmSmoother};
use mpdf_core::profile::{CalibrationProfile, DetectorConfig};
use mpdf_music::music::Pseudospectrum;
use mpdf_rfmath::complex::Complex64;
use mpdf_rfmath::matrix::CMatrix;
use mpdf_wifi::csi::CsiPacket;

use crate::runtime::{SessionMode, SessionSnapshot};
use crate::sentinel::{DriftState, SentinelSnapshot};

/// Checkpoint file magic.
pub const MAGIC: &[u8; 4] = b"MPSC";
/// Current checkpoint format version.
pub const VERSION: u16 = 1;

/// Errors produced when loading a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// The file does not start with the `MPSC` magic.
    BadMagic,
    /// The version field is unsupported.
    UnsupportedVersion(u16),
    /// The file ends before its declared payload/trailer.
    Truncated,
    /// The trailing checksum does not match the file contents.
    ChecksumMismatch {
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum computed over the file contents.
        computed: u64,
    },
    /// The payload decodes but is internally inconsistent.
    Corrupt(String),
    /// The decoded state fails semantic validation (profile shapes, HMM
    /// parameters).
    Invalid(DetectError),
    /// Encode-side: a collection exceeds its length field's range, so it
    /// cannot be checkpointed without silent truncation.
    TooLarge {
        /// Which collection overflowed.
        what: &'static str,
        /// Actual length.
        len: usize,
        /// Largest length the field can represent.
        max: u64,
    },
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not an MPSC checkpoint (bad magic)"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version {v}")
            }
            CheckpointError::Truncated => write!(f, "checkpoint ends before declared length"),
            CheckpointError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checkpoint checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            CheckpointError::Corrupt(what) => write!(f, "checkpoint is corrupt: {what}"),
            CheckpointError::Invalid(e) => write!(f, "checkpoint state is invalid: {e}"),
            CheckpointError::TooLarge { what, len, max } => write!(
                f,
                "cannot checkpoint {what}: {len} entries exceed the format's limit of {max}"
            ),
            CheckpointError::Io(e) => write!(f, "i/o error on checkpoint: {e}"),
        }
    }
}

impl Error for CheckpointError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            CheckpointError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<DetectError> for CheckpointError {
    fn from(e: DetectError) -> Self {
        CheckpointError::Invalid(e)
    }
}

/// Transient-IO retry budget for checkpoint writes: total attempts per
/// operation before the error is surfaced to the session.
const IO_ATTEMPTS: u32 = 4;

/// True for error kinds that a bounded retry is allowed to absorb:
/// signal interruptions and spurious would-block reports. Everything
/// else (permissions, disk full, bad paths) fails immediately.
fn transient(kind: std::io::ErrorKind) -> bool {
    matches!(
        kind,
        std::io::ErrorKind::Interrupted | std::io::ErrorKind::WouldBlock
    )
}

/// Runs an IO operation with a bounded deterministic retry on transient
/// errors. Backoff is attempt-scaled scheduler yields, not wall-clock
/// sleeps: no clock is read, so retries can never make control flow
/// time-dependent. Each retry is counted on
/// `session.checkpoint_io_retries_total`.
fn retry_io<T, F: FnMut() -> std::io::Result<T>>(mut op: F) -> std::io::Result<T> {
    let mut attempt = 1;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if transient(e.kind()) && attempt < IO_ATTEMPTS => {
                mpdf_obs::counter!("session.checkpoint_io_retries_total").inc();
                for _ in 0..attempt {
                    std::thread::yield_now();
                }
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// Fsyncs the directory containing `path`, making a just-completed
/// rename of `path` itself durable (renames are directory mutations; the
/// file's own `sync_all` does not cover them).
fn sync_parent_dir(path: &Path) -> std::io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    retry_io(|| std::fs::File::open(parent)?.sync_all())
}

/// FNV-1a 64-bit checksum.
fn fnv1a(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Checked conversion of a collection length into a `u32` length field;
/// overflow is a typed error, never a silent truncation.
fn len_u32(what: &'static str, len: usize) -> Result<u32, CheckpointError> {
    u32::try_from(len).map_err(|_| CheckpointError::TooLarge {
        what,
        len,
        max: u64::from(u32::MAX),
    })
}

/// Checked conversion into a `u16` length field.
fn len_u16(what: &'static str, len: usize) -> Result<u16, CheckpointError> {
    u16::try_from(len).map_err(|_| CheckpointError::TooLarge {
        what,
        len,
        max: u64::from(u16::MAX),
    })
}

fn put_packets(
    buf: &mut BytesMut,
    windows: &[Vec<CsiPacket>],
    antennas: usize,
    subcarriers: usize,
) -> Result<(), CheckpointError> {
    buf.put_u32_le(len_u32("packet windows", windows.len())?);
    for w in windows {
        buf.put_u32_le(len_u32("packets in a window", w.len())?);
        for p in w {
            debug_assert!(
                p.antennas() == antennas && p.subcarriers() == subcarriers,
                "checkpointed packet shape diverges from profile"
            );
            buf.put_u64_le(p.seq);
            buf.put_f64_le(p.timestamp);
            for a in 0..antennas {
                for k in 0..subcarriers {
                    let z = p.get(a, k);
                    buf.put_f64_le(z.re);
                    buf.put_f64_le(z.im);
                }
            }
        }
    }
    Ok(())
}

/// Serializes a session snapshot into a checkpoint byte image.
///
/// All packet windows in the snapshot must share the profile's
/// `(antennas, subcarriers)` shape — the runtime guarantees this (every
/// window passed shape validation before being retained).
///
/// # Errors
/// [`CheckpointError::TooLarge`] when a collection exceeds its length
/// field's range (the format caps shapes at `u16` and window/packet
/// counts at `u32`).
pub fn encode_snapshot(snapshot: &SessionSnapshot) -> Result<Bytes, CheckpointError> {
    let antennas = snapshot.profile.antennas();
    let subcarriers = snapshot.profile.subcarriers();
    let mut payload = BytesMut::with_capacity(4096);
    payload.put_u64_le(snapshot.cursor);
    payload.put_f64_le(snapshot.threshold);

    // Profile.
    payload.put_u16_le(len_u16("profile antennas", antennas)?);
    payload.put_u16_le(len_u16("profile subcarriers", subcarriers)?);
    for row in snapshot.profile.static_amplitude() {
        for &v in row {
            payload.put_f64_le(v);
        }
    }
    for &v in snapshot.profile.static_power() {
        payload.put_f64_le(v);
    }
    for r in snapshot.profile.static_covariances() {
        for z in r.as_slice() {
            payload.put_f64_le(z.re);
            payload.put_f64_le(z.im);
        }
    }
    let spectrum = snapshot.profile.static_spectrum();
    payload.put_u32_le(len_u32("spectrum angle grid", spectrum.angles_deg().len())?);
    for &a in spectrum.angles_deg() {
        payload.put_f64_le(a);
    }
    for &v in spectrum.values() {
        payload.put_f64_le(v);
    }

    // HMM + carried posterior.
    for v in [
        snapshot.hmm.absent.mean,
        snapshot.hmm.absent.std,
        snapshot.hmm.present.mean,
        snapshot.hmm.present.std,
        snapshot.hmm.stay_absent,
        snapshot.hmm.stay_present,
        snapshot.hmm.prior_present,
        snapshot.hmm.llr_cap,
        snapshot.posterior,
    ] {
        payload.put_f64_le(v);
    }

    // Sentinel.
    payload.put_f64_le(snapshot.sentinel.baseline_mean);
    payload.put_f64_le(snapshot.sentinel.baseline_std);
    payload.put_f64_le(snapshot.sentinel.ewma);
    payload.put_u8(snapshot.sentinel.state.as_u8());
    payload.put_u32_le(snapshot.sentinel.above_enter);
    payload.put_u32_le(snapshot.sentinel.below_exit);

    // Supervision.
    payload.put_u8(snapshot.mode.as_u8());
    payload.put_u32_le(snapshot.retries);
    payload.put_u64_le(snapshot.backoff_remaining);
    payload.put_u32_le(snapshot.watchdog_strikes);

    // Packet windows.
    put_packets(&mut payload, &snapshot.reservoir, antennas, subcarriers)?;
    put_packets(&mut payload, &snapshot.shadow, antennas, subcarriers)?;

    let mut buf = BytesMut::with_capacity(22 + payload.len());
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u64_le(payload.len() as u64);
    buf.put_slice(&payload);
    let checksum = fnv1a(&buf);
    buf.put_u64_le(checksum);
    Ok(buf.freeze())
}

/// Bounds-checked little-endian reader over the payload.
struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn need(&self, n: usize) -> Result<(), CheckpointError> {
        if self.buf.remaining() < n {
            return Err(CheckpointError::Truncated);
        }
        Ok(())
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        self.need(1)?;
        Ok(self.buf.get_u8())
    }

    fn u16(&mut self) -> Result<u16, CheckpointError> {
        self.need(2)?;
        Ok(self.buf.get_u16_le())
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        self.need(4)?;
        Ok(self.buf.get_u32_le())
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        self.need(8)?;
        Ok(self.buf.get_u64_le())
    }

    fn f64(&mut self) -> Result<f64, CheckpointError> {
        self.need(8)?;
        Ok(self.buf.get_f64_le())
    }
}

fn read_windows(
    r: &mut Reader<'_>,
    antennas: usize,
    subcarriers: usize,
) -> Result<Vec<Vec<CsiPacket>>, CheckpointError> {
    let count = r.u32()? as usize;
    // Each window needs at least one length field; a count larger than
    // the remaining bytes is corruption, not an allocation request.
    if count > r.buf.remaining() {
        return Err(CheckpointError::Truncated);
    }
    let mut windows = Vec::with_capacity(count);
    for _ in 0..count {
        let n = r.u32()? as usize;
        let per_packet = 16 + antennas * subcarriers * 16;
        if n.saturating_mul(per_packet) > r.buf.remaining() {
            return Err(CheckpointError::Truncated);
        }
        let mut w = Vec::with_capacity(n);
        for _ in 0..n {
            let seq = r.u64()?;
            let timestamp = r.f64()?;
            let mut data = Vec::with_capacity(antennas * subcarriers);
            for _ in 0..antennas * subcarriers {
                let re = r.f64()?;
                let im = r.f64()?;
                data.push(Complex64::new(re, im));
            }
            w.push(CsiPacket::new(antennas, subcarriers, data, seq, timestamp));
        }
        windows.push(w);
    }
    Ok(windows)
}

/// Deserializes a checkpoint byte image.
///
/// `config` supplies the deployment constants (angular gate) needed to
/// re-derive the profile's path weights — restore must use the same
/// [`DetectorConfig`] the session was calibrated with.
///
/// # Errors
/// See [`CheckpointError`]; any single corrupted byte is caught by the
/// trailing checksum.
pub fn decode_snapshot(
    data: &[u8],
    config: &DetectorConfig,
) -> Result<SessionSnapshot, CheckpointError> {
    if data.len() < 22 {
        return Err(CheckpointError::Truncated);
    }
    let (body, trailer) = data.split_at(data.len() - 8);
    let stored = (&mut { trailer }).get_u64_le();
    let computed = fnv1a(body);
    if stored != computed {
        return Err(CheckpointError::ChecksumMismatch { stored, computed });
    }
    let mut r = Reader { buf: body };
    let mut magic = [0u8; 4];
    r.need(4)?;
    r.buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(CheckpointError::UnsupportedVersion(version));
    }
    let paylen = r.u64()? as usize;
    if paylen != r.buf.remaining() {
        return Err(CheckpointError::Truncated);
    }

    let cursor = r.u64()?;
    let threshold = r.f64()?;

    let antennas = r.u16()? as usize;
    let subcarriers = r.u16()? as usize;
    if antennas == 0 || subcarriers == 0 {
        return Err(CheckpointError::Corrupt(
            "profile declares an empty shape".to_string(),
        ));
    }
    let mut static_amplitude = Vec::with_capacity(antennas);
    for _ in 0..antennas {
        let mut row = Vec::with_capacity(subcarriers);
        for _ in 0..subcarriers {
            row.push(r.f64()?);
        }
        static_amplitude.push(row);
    }
    let mut static_power = Vec::with_capacity(subcarriers);
    for _ in 0..subcarriers {
        static_power.push(r.f64()?);
    }
    let mut static_covariances = Vec::with_capacity(subcarriers);
    for _ in 0..subcarriers {
        let mut entries = Vec::with_capacity(antennas * antennas);
        for _ in 0..antennas * antennas {
            let re = r.f64()?;
            let im = r.f64()?;
            entries.push(Complex64::new(re, im));
        }
        static_covariances.push(CMatrix::from_rows(antennas, antennas, &entries));
    }
    let grid_len = r.u32()? as usize;
    if grid_len == 0 || grid_len.saturating_mul(16) > r.buf.remaining() {
        return Err(CheckpointError::Truncated);
    }
    let mut angles = Vec::with_capacity(grid_len);
    for _ in 0..grid_len {
        angles.push(r.f64()?);
    }
    let mut values = Vec::with_capacity(grid_len);
    for _ in 0..grid_len {
        values.push(r.f64()?);
    }
    let static_spectrum = Pseudospectrum::new(angles, values);
    let profile = CalibrationProfile::from_parts(
        antennas,
        subcarriers,
        static_amplitude,
        static_power,
        static_covariances,
        static_spectrum,
        config,
    )?;

    let absent_mean = r.f64()?;
    let absent_std = r.f64()?;
    let present_mean = r.f64()?;
    let present_std = r.f64()?;
    let stay_absent = r.f64()?;
    let stay_present = r.f64()?;
    let prior_present = r.f64()?;
    let llr_cap = r.f64()?;
    if absent_std <= 0.0 || present_std <= 0.0 || absent_std.is_nan() || present_std.is_nan() {
        return Err(CheckpointError::Corrupt(
            "HMM emission std is not positive".to_string(),
        ));
    }
    let hmm = HmmSmoother {
        absent: Gaussian {
            mean: absent_mean,
            std: absent_std,
        },
        present: Gaussian {
            mean: present_mean,
            std: present_std,
        },
        stay_absent,
        stay_present,
        prior_present,
        llr_cap,
    };
    let posterior = r.f64()?;

    let baseline_mean = r.f64()?;
    let baseline_std = r.f64()?;
    let ewma = r.f64()?;
    let state_tag = r.u8()?;
    let state = DriftState::from_u8(state_tag)
        .ok_or_else(|| CheckpointError::Corrupt(format!("unknown drift state tag {state_tag}")))?;
    let above_enter = r.u32()?;
    let below_exit = r.u32()?;
    let sentinel = SentinelSnapshot {
        baseline_mean,
        baseline_std,
        ewma,
        state,
        above_enter,
        below_exit,
    };

    let mode_tag = r.u8()?;
    let mode = SessionMode::from_u8(mode_tag)
        .ok_or_else(|| CheckpointError::Corrupt(format!("unknown session mode tag {mode_tag}")))?;
    let retries = r.u32()?;
    let backoff_remaining = r.u64()?;
    let watchdog_strikes = r.u32()?;

    let reservoir = read_windows(&mut r, antennas, subcarriers)?;
    let shadow = read_windows(&mut r, antennas, subcarriers)?;
    if r.buf.remaining() != 0 {
        return Err(CheckpointError::Corrupt(format!(
            "{} trailing bytes after payload",
            r.buf.remaining()
        )));
    }

    Ok(SessionSnapshot {
        cursor,
        threshold,
        profile,
        hmm,
        posterior,
        sentinel,
        mode,
        retries,
        backoff_remaining,
        watchdog_strikes,
        reservoir,
        shadow,
    })
}

/// Crash-safe checkpoint file handling: atomic write-rename plus a
/// retained previous-good file for corruption fallback.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    path: PathBuf,
}

impl CheckpointStore {
    /// Binds a store to a checkpoint path. `<path>.tmp` and `<path>.bak`
    /// siblings are used for staging and the previous good checkpoint.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        CheckpointStore { path: path.into() }
    }

    /// The main checkpoint path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn sibling(&self, suffix: &str) -> PathBuf {
        let mut name = self.path.as_os_str().to_os_string();
        name.push(suffix);
        PathBuf::from(name)
    }

    /// Whether a checkpoint (main or previous-good) exists on disk.
    pub fn exists(&self) -> bool {
        self.path.exists() || self.sibling(".bak").exists()
    }

    /// Atomically saves a snapshot: the image is written to `<path>.tmp`
    /// and fsynced, the current checkpoint (if any) is retained as
    /// `<path>.bak`, the temp file is renamed into place, and the parent
    /// directory is fsynced so the renames themselves are durable. A
    /// crash (or power cut) at any point leaves either the old or the
    /// new checkpoint loadable — the rename can never publish a file
    /// whose data blocks were still in the page cache.
    ///
    /// Transient IO errors (`Interrupted`, `WouldBlock`) are absorbed by
    /// a bounded deterministic retry instead of failing the session on
    /// the first occurrence.
    ///
    /// # Errors
    /// Propagates non-transient (or retry-exhausted) I/O failures.
    pub fn save(&self, snapshot: &SessionSnapshot) -> Result<(), CheckpointError> {
        let _stage = mpdf_obs::stage!("session.checkpoint");
        let bytes = encode_snapshot(snapshot)?;
        let tmp = self.sibling(".tmp");
        retry_io(|| {
            let mut f = std::fs::File::create(&tmp)?;
            std::io::Write::write_all(&mut f, &bytes)?;
            f.sync_all()
        })?;
        if self.path.exists() {
            retry_io(|| std::fs::rename(&self.path, self.sibling(".bak")))?;
        }
        retry_io(|| std::fs::rename(&tmp, &self.path))?;
        sync_parent_dir(&self.path)?;
        mpdf_obs::counter!("session.checkpoint_writes_total").inc();
        Ok(())
    }

    /// Loads the most recent good checkpoint: the main file first, and on
    /// corruption/truncation (or a missing main file) the previous good
    /// `.bak`. Returns the *primary* error when both fail to decode.
    ///
    /// # Errors
    /// See [`CheckpointError`]. A missing store (neither file exists)
    /// surfaces as [`CheckpointError::Io`] with `NotFound`.
    pub fn load(&self, config: &DetectorConfig) -> Result<SessionSnapshot, CheckpointError> {
        let primary = match std::fs::read(&self.path) {
            Ok(data) => match decode_snapshot(&data, config) {
                Ok(snap) => {
                    mpdf_obs::counter!("session.checkpoint_restores_total").inc();
                    return Ok(snap);
                }
                Err(e) => e,
            },
            Err(e) => CheckpointError::Io(e),
        };
        match std::fs::read(self.sibling(".bak")) {
            Ok(data) => match decode_snapshot(&data, config) {
                Ok(snap) => {
                    mpdf_obs::counter!("session.checkpoint_fallbacks_total").inc();
                    mpdf_obs::counter!("session.checkpoint_restores_total").inc();
                    Ok(snap)
                }
                Err(_) => Err(primary),
            },
            Err(_) => Err(primary),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{RecalPolicy, SessionConfig, SessionRuntime};
    use mpdf_core::scheme::SubcarrierWeighting;
    use mpdf_geom::shapes::Rect;
    use mpdf_geom::vec2::Vec2;
    use mpdf_propagation::channel::ChannelModel;
    use mpdf_propagation::environment::Environment;
    use mpdf_wifi::receiver::CsiReceiver;

    fn runtime() -> SessionRuntime<SubcarrierWeighting> {
        let env = Environment::empty_room(Rect::new(Vec2::ZERO, Vec2::new(8.0, 6.0)));
        let link = ChannelModel::new(env, Vec2::new(2.0, 3.0), Vec2::new(6.0, 3.0)).unwrap();
        let mut rx = CsiReceiver::new(link, 31).unwrap();
        let calibration = rx.capture_static(None, 200).unwrap();
        let session = SessionConfig {
            recalibration: RecalPolicy {
                enabled: true,
                ..RecalPolicy::default()
            },
            ..SessionConfig::default()
        };
        SessionRuntime::calibrate(
            &calibration,
            SubcarrierWeighting,
            DetectorConfig::default(),
            session,
        )
        .unwrap()
    }

    fn snapshot() -> SessionSnapshot {
        runtime().snapshot()
    }

    #[test]
    fn oversized_collections_are_a_typed_error_not_a_truncation() {
        // The length fields are u16 (shape) and u32 (window/packet
        // counts); lengths past them must fail loudly — the old `as`
        // casts would silently wrap and write a decodable-but-wrong
        // checkpoint.
        assert_eq!(len_u16("profile antennas", 65_535).unwrap(), u16::MAX);
        let err = len_u16("profile antennas", 65_536).unwrap_err();
        assert!(matches!(
            err,
            CheckpointError::TooLarge {
                what: "profile antennas",
                len: 65_536,
                max: 65_535,
            }
        ));
        assert!(err.to_string().contains("profile antennas"));
        assert_eq!(len_u32("packet windows", 7).unwrap(), 7);
        assert!(matches!(
            len_u32("packet windows", u32::MAX as usize + 1),
            Err(CheckpointError::TooLarge { max, .. }) if max == u64::from(u32::MAX)
        ));
    }

    #[test]
    fn transient_io_errors_are_retried_with_a_bounded_budget() {
        use std::io::{Error, ErrorKind};
        // Two interruptions, then success: absorbed.
        let mut calls = 0;
        let v = retry_io(|| {
            calls += 1;
            if calls < 3 {
                Err(Error::new(ErrorKind::Interrupted, "signal"))
            } else {
                Ok(42)
            }
        })
        .unwrap();
        assert_eq!((v, calls), (42, 3));

        // A persistent transient error exhausts the budget and surfaces.
        let mut calls = 0;
        let err = retry_io::<(), _>(|| {
            calls += 1;
            Err(Error::new(ErrorKind::WouldBlock, "busy"))
        })
        .unwrap_err();
        assert_eq!(err.kind(), ErrorKind::WouldBlock);
        assert_eq!(calls, IO_ATTEMPTS);

        // Non-transient errors fail on the first call.
        let mut calls = 0;
        let err = retry_io::<(), _>(|| {
            calls += 1;
            Err(Error::new(ErrorKind::PermissionDenied, "no"))
        })
        .unwrap_err();
        assert_eq!(err.kind(), ErrorKind::PermissionDenied);
        assert_eq!(calls, 1);
    }

    #[test]
    fn encode_decode_roundtrip_is_exact() {
        let snap = snapshot();
        let bytes = encode_snapshot(&snap).unwrap();
        let decoded = decode_snapshot(&bytes, &DetectorConfig::default()).unwrap();
        assert_eq!(decoded, snap);
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        let snap = snapshot();
        let mut bytes = encode_snapshot(&snap).unwrap().to_vec();
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        // Checksum catches the flip first (it covers the magic); fixing
        // the checksum reveals the magic check.
        let body_len = wrong_magic.len() - 8;
        let fixed = fnv1a(&wrong_magic[..body_len]).to_le_bytes();
        wrong_magic[body_len..].copy_from_slice(&fixed);
        assert!(matches!(
            decode_snapshot(&wrong_magic, &DetectorConfig::default()),
            Err(CheckpointError::BadMagic)
        ));
        bytes[4] = 9;
        let body_len = bytes.len() - 8;
        let fixed = fnv1a(&bytes[..body_len]).to_le_bytes();
        bytes[body_len..].copy_from_slice(&fixed);
        assert!(matches!(
            decode_snapshot(&bytes, &DetectorConfig::default()),
            Err(CheckpointError::UnsupportedVersion(9))
        ));
    }

    #[test]
    fn any_single_byte_corruption_is_a_checksum_mismatch() {
        let snap = snapshot();
        let bytes = encode_snapshot(&snap).unwrap().to_vec();
        // Probe a spread of positions including the trailer.
        let step = (bytes.len() / 37).max(1);
        for i in (0..bytes.len()).step_by(step) {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x5a;
            assert!(
                matches!(
                    decode_snapshot(&corrupt, &DetectorConfig::default()),
                    Err(CheckpointError::ChecksumMismatch { .. })
                ),
                "byte {i} corruption not caught"
            );
        }
    }

    #[test]
    fn truncation_is_detected() {
        let snap = snapshot();
        let bytes = encode_snapshot(&snap).unwrap();
        for cut in [0usize, 10, 21, bytes.len() / 2, bytes.len() - 1] {
            let err = decode_snapshot(&bytes[..cut], &DetectorConfig::default()).unwrap_err();
            assert!(
                matches!(
                    err,
                    CheckpointError::Truncated | CheckpointError::ChecksumMismatch { .. }
                ),
                "cut {cut}: {err}"
            );
        }
    }

    #[test]
    fn store_saves_atomically_and_falls_back_to_previous_good() {
        let dir =
            std::env::temp_dir().join(format!("mpdf_ckpt_test_{}_{}", std::process::id(), line!()));
        std::fs::create_dir_all(&dir).unwrap();
        let store = CheckpointStore::new(dir.join("session.ckpt"));
        let cfg = DetectorConfig::default();

        assert!(!store.exists());
        assert!(matches!(
            store.load(&cfg),
            Err(CheckpointError::Io(ref e)) if e.kind() == std::io::ErrorKind::NotFound
        ));

        let mut rt = runtime();
        let first = rt.snapshot();
        store.save(&first).unwrap();
        assert!(store.exists());
        assert_eq!(store.load(&cfg).unwrap(), first);

        // Second save retains the first as previous-good.
        rt.step(&[]).unwrap_or_else(|_| unreachable!());
        let second = rt.snapshot();
        store.save(&second).unwrap();
        assert_eq!(store.load(&cfg).unwrap(), second);

        // Corrupt the main file: load falls back to the previous good.
        let mut data = std::fs::read(store.path()).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0xff;
        std::fs::write(store.path(), &data).unwrap();
        assert_eq!(store.load(&cfg).unwrap(), first);

        // Corrupt the backup too: the primary (typed) error surfaces.
        let bak = store.sibling(".bak");
        std::fs::write(&bak, b"garbage").unwrap();
        assert!(matches!(
            store.load(&cfg),
            Err(CheckpointError::ChecksumMismatch { .. })
        ));

        std::fs::remove_dir_all(&dir).ok();
    }
}
