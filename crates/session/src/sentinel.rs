//! Drift sentinels: EWMA trackers over vacancy-gated window statistics.
//!
//! The sentinel watches the anomaly scores of windows the HMM posterior
//! declares *vacant* (occupied windows never feed it — a person standing
//! in the Fresnel zone is presence, not drift). Scores are tracked in the
//! same floored `log10` domain the HMM emissions use; an exponentially
//! weighted moving average of the gated log-scores is compared against
//! the calibration-time null statistics, and the link is classified with
//! hysteresis:
//!
//! - **Stable** — the EWMA sits within `drift_exit_sigmas` of the
//!   calibration mean;
//! - **Drifting** — the EWMA stayed beyond `drift_enter_sigmas` for
//!   `enter_windows` consecutive gated windows (the trigger for staged
//!   recalibration);
//! - **Broken** — the EWMA jumped beyond `broken_enter_sigmas`
//!   (antenna fell over, furniture rearranged): recalibration is the only
//!   way back.
//!
//! Between the exit and enter bands the current class is *held* — that
//! hysteresis gap is what keeps the classifier from chattering when the
//! drift magnitude hovers at the boundary.
//!
//! The enter band must sit *below* the HMM's absent/present emission
//! crossover (≈1.4 σ with the default 3 σ shift): beyond the crossover a
//! persistent shift reads as presence, the vacancy gate closes, and the
//! sentinel is starved. The default `drift_enter_sigmas = 1.0` catches
//! drift while it is still unambiguously drift; larger step changes are
//! indistinguishable from occupancy without out-of-band vacancy
//! knowledge (see DESIGN.md §11).

use serde::{Deserialize, Serialize};

use mpdf_core::error::DetectError;
use mpdf_rfmath::stats::{mean, std_dev};

/// Link-drift classification emitted by the sentinel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DriftState {
    /// Null statistics match the calibration baseline.
    Stable,
    /// Sustained departure from the baseline: recalibration advised.
    Drifting,
    /// Departure so large the baseline is meaningless.
    Broken,
}

impl DriftState {
    /// Stable on-disk / metrics encoding of the state.
    pub fn as_u8(self) -> u8 {
        match self {
            DriftState::Stable => 0,
            DriftState::Drifting => 1,
            DriftState::Broken => 2,
        }
    }

    /// Inverse of [`DriftState::as_u8`].
    pub fn from_u8(tag: u8) -> Option<DriftState> {
        match tag {
            0 => Some(DriftState::Stable),
            1 => Some(DriftState::Drifting),
            2 => Some(DriftState::Broken),
            _ => None,
        }
    }
}

/// Sentinel tuning knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SentinelConfig {
    /// EWMA weight of each new gated window (`0 < alpha <= 1`).
    pub alpha: f64,
    /// Deviation (in calibration σ of the log-score) that arms the
    /// Drifting classification.
    pub drift_enter_sigmas: f64,
    /// Deviation below which the sentinel relaxes back to Stable. Must be
    /// below `drift_enter_sigmas`; the gap is the hysteresis band.
    pub drift_exit_sigmas: f64,
    /// Deviation that immediately classifies the link as Broken.
    pub broken_enter_sigmas: f64,
    /// Consecutive gated windows beyond the enter band required before
    /// Stable escalates to Drifting.
    pub enter_windows: u32,
    /// Consecutive gated windows inside the exit band required before a
    /// drifting/broken link relaxes to Stable.
    pub exit_windows: u32,
}

impl Default for SentinelConfig {
    fn default() -> Self {
        SentinelConfig {
            alpha: 0.2,
            drift_enter_sigmas: 1.0,
            drift_exit_sigmas: 0.5,
            broken_enter_sigmas: 4.0,
            enter_windows: 4,
            exit_windows: 8,
        }
    }
}

impl SentinelConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    /// [`DetectError::InvalidConfig`] on out-of-domain parameters.
    pub fn validate(&self) -> Result<(), DetectError> {
        if self.alpha <= 0.0 || self.alpha > 1.0 || self.alpha.is_nan() {
            return Err(DetectError::InvalidConfig {
                what: format!("sentinel alpha must be in (0, 1], got {}", self.alpha),
            });
        }
        let ordered = self.drift_exit_sigmas > 0.0
            && self.drift_exit_sigmas < self.drift_enter_sigmas
            && self.drift_enter_sigmas < self.broken_enter_sigmas;
        if !ordered {
            return Err(DetectError::InvalidConfig {
                what: format!(
                    "sentinel bands must satisfy 0 < exit ({}) < enter ({}) < broken ({})",
                    self.drift_exit_sigmas, self.drift_enter_sigmas, self.broken_enter_sigmas
                ),
            });
        }
        if self.enter_windows == 0 || self.exit_windows == 0 {
            return Err(DetectError::InvalidConfig {
                what: "sentinel enter/exit window counts must be at least 1".to_string(),
            });
        }
        Ok(())
    }
}

/// Complete dynamic state of a sentinel, as stored in checkpoints.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SentinelSnapshot {
    /// Calibration-time mean of the null log-scores.
    pub baseline_mean: f64,
    /// Calibration-time std of the null log-scores (floored at 0.05).
    pub baseline_std: f64,
    /// Current EWMA of the gated log-scores.
    pub ewma: f64,
    /// Current classification.
    pub state: DriftState,
    /// Consecutive gated windows beyond the enter band.
    pub above_enter: u32,
    /// Consecutive gated windows inside the exit band.
    pub below_exit: u32,
}

/// EWMA drift sentinel over vacancy-gated window scores.
#[derive(Debug, Clone)]
pub struct DriftSentinel {
    config: SentinelConfig,
    baseline_mean: f64,
    baseline_std: f64,
    ewma: f64,
    state: DriftState,
    above_enter: u32,
    below_exit: u32,
}

/// Same floored log domain as the HMM emissions (`mpdf_core::hmm`).
fn log_score(s: f64) -> f64 {
    s.max(1e-12).log10()
}

impl DriftSentinel {
    /// Fits the baseline to calibration null scores.
    ///
    /// # Errors
    /// [`DetectError::InvalidConfig`] on a bad config or fewer than two
    /// null scores.
    pub fn from_null_scores(
        null_scores: &[f64],
        config: SentinelConfig,
    ) -> Result<Self, DetectError> {
        config.validate()?;
        let (m, s) = baseline_of(null_scores)?;
        Ok(DriftSentinel {
            config,
            baseline_mean: m,
            baseline_std: s,
            ewma: m,
            state: DriftState::Stable,
            above_enter: 0,
            below_exit: 0,
        })
    }

    /// Feeds one vacancy-gated window score and returns the (possibly
    /// updated) classification.
    pub fn observe(&mut self, score: f64) -> DriftState {
        let x = log_score(score);
        self.ewma = (1.0 - self.config.alpha) * self.ewma + self.config.alpha * x;
        let z = self.zscore();
        if z >= self.config.broken_enter_sigmas {
            // No hysteresis on the way *up* to Broken: a jump this large
            // means the baseline is already useless.
            self.state = DriftState::Broken;
            self.above_enter = 0;
            self.below_exit = 0;
            return self.state;
        }
        if z >= self.config.drift_enter_sigmas {
            self.above_enter += 1;
            self.below_exit = 0;
            if self.state == DriftState::Stable && self.above_enter >= self.config.enter_windows {
                self.state = DriftState::Drifting;
            }
        } else if z <= self.config.drift_exit_sigmas {
            self.below_exit += 1;
            self.above_enter = 0;
            if self.state != DriftState::Stable && self.below_exit >= self.config.exit_windows {
                self.state = DriftState::Stable;
                self.below_exit = 0;
            }
        } else {
            // Hysteresis band: hold the current class.
            self.above_enter = 0;
            self.below_exit = 0;
        }
        self.state
    }

    /// Re-fits the baseline after an accepted recalibration and resets
    /// the sentinel to Stable.
    ///
    /// # Errors
    /// [`DetectError::InvalidConfig`] on fewer than two null scores.
    pub fn rebase(&mut self, null_scores: &[f64]) -> Result<(), DetectError> {
        let (m, s) = baseline_of(null_scores)?;
        self.baseline_mean = m;
        self.baseline_std = s;
        self.ewma = m;
        self.state = DriftState::Stable;
        self.above_enter = 0;
        self.below_exit = 0;
        Ok(())
    }

    /// Current classification.
    pub fn state(&self) -> DriftState {
        self.state
    }

    /// Current |EWMA − baseline mean| in baseline standard deviations.
    pub fn zscore(&self) -> f64 {
        (self.ewma - self.baseline_mean).abs() / self.baseline_std
    }

    /// The dynamic state, for checkpointing.
    pub fn snapshot(&self) -> SentinelSnapshot {
        SentinelSnapshot {
            baseline_mean: self.baseline_mean,
            baseline_std: self.baseline_std,
            ewma: self.ewma,
            state: self.state,
            above_enter: self.above_enter,
            below_exit: self.below_exit,
        }
    }

    /// Reconstructs a sentinel from a checkpointed snapshot.
    ///
    /// # Errors
    /// [`DetectError::InvalidConfig`] on a bad config or a non-positive
    /// snapshot baseline std.
    pub fn from_snapshot(
        snapshot: SentinelSnapshot,
        config: SentinelConfig,
    ) -> Result<Self, DetectError> {
        config.validate()?;
        if snapshot.baseline_std <= 0.0
            || snapshot.baseline_std.is_nan()
            || !snapshot.baseline_mean.is_finite()
        {
            return Err(DetectError::InvalidConfig {
                what: format!(
                    "sentinel snapshot baseline ({}, {}) is not usable",
                    snapshot.baseline_mean, snapshot.baseline_std
                ),
            });
        }
        Ok(DriftSentinel {
            config,
            baseline_mean: snapshot.baseline_mean,
            baseline_std: snapshot.baseline_std,
            ewma: snapshot.ewma,
            state: snapshot.state,
            above_enter: snapshot.above_enter,
            below_exit: snapshot.below_exit,
        })
    }
}

/// Mean/std of the floored log-scores, std floored at 0.05 decades like
/// the HMM emission fit.
fn baseline_of(null_scores: &[f64]) -> Result<(f64, f64), DetectError> {
    if null_scores.len() < 2 {
        return Err(DetectError::InvalidConfig {
            what: format!(
                "sentinel baseline needs at least two null scores, got {}",
                null_scores.len()
            ),
        });
    }
    let logs: Vec<f64> = null_scores.iter().map(|&s| log_score(s)).collect();
    Ok((mean(&logs), std_dev(&logs).max(0.05)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sentinel() -> DriftSentinel {
        // Nulls around 1.0 → baseline mean ≈ 0, std floored to 0.05.
        DriftSentinel::from_null_scores(&[1.0; 20], SentinelConfig::default()).unwrap()
    }

    #[test]
    fn stable_under_null_scores() {
        let mut s = sentinel();
        for _ in 0..100 {
            assert_eq!(s.observe(1.0), DriftState::Stable);
        }
        assert!(s.zscore() < 0.5);
    }

    #[test]
    fn sustained_shift_escalates_to_drifting_with_hysteresis() {
        let mut s = sentinel();
        // Shift scores up by ~2 decades-σ: log10(2) / 0.05 ≈ 6 σ once the
        // EWMA converges, which takes a few windows — no instant flip.
        let mut first_drifting = None;
        for i in 0..40 {
            if s.observe(2.0) == DriftState::Drifting {
                first_drifting = Some(i);
                break;
            }
        }
        let when = first_drifting.expect("sustained shift must escalate");
        assert!(
            when >= SentinelConfig::default().enter_windows as usize - 1,
            "escalated after {when} windows, before the hysteresis count"
        );
        // Recovery also needs sustained evidence.
        let mut back = None;
        for i in 0..100 {
            if s.observe(1.0) == DriftState::Stable {
                back = Some(i);
                break;
            }
        }
        let back = back.expect("return to null must relax to Stable");
        assert!(
            back >= SentinelConfig::default().exit_windows as usize - 1,
            "relaxed after {back} windows"
        );
    }

    #[test]
    fn huge_jump_is_broken_immediately_once_ewma_crosses() {
        let mut s = sentinel();
        let mut state = DriftState::Stable;
        for _ in 0..30 {
            state = s.observe(1e6);
            if state == DriftState::Broken {
                break;
            }
        }
        assert_eq!(state, DriftState::Broken);
    }

    #[test]
    fn rebase_resets_to_stable_on_new_baseline() {
        let mut s = sentinel();
        for _ in 0..30 {
            s.observe(3.0);
        }
        assert_ne!(s.state(), DriftState::Stable);
        s.rebase(&[3.0; 20]).unwrap();
        assert_eq!(s.state(), DriftState::Stable);
        for _ in 0..20 {
            assert_eq!(s.observe(3.0), DriftState::Stable);
        }
    }

    #[test]
    fn snapshot_roundtrip_is_lossless() {
        let mut s = sentinel();
        for i in 0..13 {
            s.observe(1.0 + 0.2 * i as f64);
        }
        let snap = s.snapshot();
        let restored = DriftSentinel::from_snapshot(snap, SentinelConfig::default()).unwrap();
        // Continue both and require bit-identical trajectories.
        let mut a = s;
        let mut b = restored;
        for i in 0..50 {
            let x = 1.0 + 0.31 * i as f64;
            assert_eq!(a.observe(x), b.observe(x), "window {i}");
            assert_eq!(a.zscore().to_bits(), b.zscore().to_bits(), "window {i}");
        }
    }

    #[test]
    fn bad_configs_are_rejected() {
        let nulls = [1.0, 1.1];
        for cfg in [
            SentinelConfig {
                alpha: 0.0,
                ..SentinelConfig::default()
            },
            SentinelConfig {
                alpha: 1.5,
                ..SentinelConfig::default()
            },
            SentinelConfig {
                drift_exit_sigmas: 4.0,
                ..SentinelConfig::default()
            },
            SentinelConfig {
                broken_enter_sigmas: 0.8,
                ..SentinelConfig::default()
            },
            SentinelConfig {
                enter_windows: 0,
                ..SentinelConfig::default()
            },
        ] {
            let err = DriftSentinel::from_null_scores(&nulls, cfg).unwrap_err();
            assert!(matches!(err, DetectError::InvalidConfig { .. }), "{err}");
        }
        let err = DriftSentinel::from_null_scores(&[1.0], SentinelConfig::default()).unwrap_err();
        assert!(matches!(err, DetectError::InvalidConfig { .. }), "{err}");
    }

    #[test]
    fn state_tags_roundtrip() {
        for s in [DriftState::Stable, DriftState::Drifting, DriftState::Broken] {
            assert_eq!(DriftState::from_u8(s.as_u8()), Some(s));
        }
        assert_eq!(DriftState::from_u8(3), None);
    }
}
