//! The supervised long-running detection loop.
//!
//! [`SessionRuntime`] wraps a calibrated [`Detector`] and runs it window
//! by window for days, adding the lifecycle machinery a deployment needs:
//!
//! 1. every window is scored through the PR-4 quarantine/degradation
//!    stack; windows aborted by the gap budget become *abstentions*, and
//!    a run of consecutive abstentions beyond the watchdog budget
//!    freezes adaptation (the link is too sick to learn from);
//! 2. an HMM forward posterior is carried across windows and gates the
//!    statistics feed: only windows with `P(present) < vacancy_eps` (and
//!    a clean, non-degraded score) reach the drift sentinel, the null
//!    reservoir and the shadow calibration buffer — an occupied room
//!    must never become the new baseline;
//! 3. on sustained [`DriftState::Drifting`] (or `Broken`) the runtime
//!    accumulates vacancy-gated windows into a shadow buffer and stages
//!    a recalibration: rebuild the profile, re-derive the threshold at
//!    the pinned false-positive target, then run the **rollback guard**
//!    — the candidate must keep the retained null-window reservoir's
//!    false-positive rate within tolerance, else the swap is refused
//!    with [`DetectError::RecalibrationRejected`] and retried under
//!    window-counted exponential backoff;
//! 4. after `max_retries` consecutive rejections the session degrades to
//!    frozen-profile mode: it keeps detecting with the last good
//!    profile, it just stops adapting.
//!
//! Everything is deterministic and clock-free, so a session restored
//! from a [`crate::checkpoint`] continues bit-identically.

use serde::{Deserialize, Serialize};

use mpdf_core::detector::{Decision, Detector};
use mpdf_core::error::DetectError;
use mpdf_core::hmm::HmmSmoother;
use mpdf_core::profile::{CalibrationProfile, DetectorConfig};
use mpdf_core::scheme::DetectionScheme;
use mpdf_core::threshold::{static_score_distribution, threshold_for_fp};
use mpdf_wifi::csi::CsiPacket;

use crate::sentinel::{DriftSentinel, DriftState, SentinelConfig, SentinelSnapshot};

/// Staged-recalibration policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecalPolicy {
    /// Master switch. Off by default: adaptation is opt-in, and a runtime
    /// with recalibration disabled is arithmetically identical to a bare
    /// frozen-profile `Detector` loop.
    pub enabled: bool,
    /// Vacancy-gated windows accumulated into the shadow buffer before a
    /// recalibration is staged (split half/half into profile-build and
    /// threshold-holdout packets, like initial calibration). At least 2.
    pub shadow_windows: usize,
    /// Rollback guard: maximum false-positive rate the candidate profile
    /// may realize on the retained null-window reservoir.
    pub guard_fp_tolerance: f64,
    /// Consecutive guard rejections tolerated before the session degrades
    /// to frozen-profile mode.
    pub max_retries: u32,
    /// Backoff after the first rejection, counted in windows.
    pub backoff_base_windows: u64,
    /// Backoff ceiling (the exponential doubling saturates here).
    pub backoff_cap_windows: u64,
}

impl Default for RecalPolicy {
    fn default() -> Self {
        RecalPolicy {
            enabled: false,
            shadow_windows: 12,
            guard_fp_tolerance: 0.35,
            max_retries: 3,
            backoff_base_windows: 8,
            backoff_cap_windows: 64,
        }
    }
}

/// Session-level configuration wrapped around a detector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionConfig {
    /// Pinned false-positive target; both the initial threshold and every
    /// recalibrated threshold are derived at this operating point.
    pub target_fp: f64,
    /// Vacancy gate: a window feeds the baseline statistics only when the
    /// HMM posterior `P(present)` is strictly below this value.
    pub vacancy_eps: f64,
    /// Drift-sentinel tuning.
    pub sentinel: SentinelConfig,
    /// Staged-recalibration policy.
    pub recalibration: RecalPolicy,
    /// Watchdog: consecutive abstained (unscorable) windows tolerated
    /// before adaptation freezes. Deadlines are counted in windows, not
    /// wall time, to keep the runtime deterministic.
    pub watchdog_budget: u32,
    /// Null-window reservoir size retained for the rollback guard.
    pub reservoir_windows: usize,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            target_fp: 0.1,
            vacancy_eps: 0.2,
            sentinel: SentinelConfig::default(),
            recalibration: RecalPolicy::default(),
            watchdog_budget: 8,
            reservoir_windows: 16,
        }
    }
}

impl SessionConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    /// [`DetectError::InvalidConfig`] on out-of-domain parameters.
    pub fn validate(&self) -> Result<(), DetectError> {
        if self.target_fp <= 0.0 || self.target_fp >= 1.0 || self.target_fp.is_nan() {
            return Err(DetectError::InvalidConfig {
                what: format!("target_fp must be in (0, 1), got {}", self.target_fp),
            });
        }
        if self.vacancy_eps <= 0.0 || self.vacancy_eps > 1.0 || self.vacancy_eps.is_nan() {
            return Err(DetectError::InvalidConfig {
                what: format!("vacancy_eps must be in (0, 1], got {}", self.vacancy_eps),
            });
        }
        self.sentinel.validate()?;
        if self.recalibration.shadow_windows < 2 {
            return Err(DetectError::InvalidConfig {
                what: format!(
                    "shadow_windows must be at least 2, got {}",
                    self.recalibration.shadow_windows
                ),
            });
        }
        let tol = self.recalibration.guard_fp_tolerance;
        if !(0.0..1.0).contains(&tol) || tol.is_nan() {
            return Err(DetectError::InvalidConfig {
                what: format!("guard_fp_tolerance must be in [0, 1), got {tol}"),
            });
        }
        if self.recalibration.backoff_base_windows == 0 {
            return Err(DetectError::InvalidConfig {
                what: "backoff_base_windows must be at least 1".to_string(),
            });
        }
        if self.watchdog_budget == 0 {
            return Err(DetectError::InvalidConfig {
                what: "watchdog_budget must be at least 1".to_string(),
            });
        }
        if self.reservoir_windows == 0 {
            return Err(DetectError::InvalidConfig {
                what: "reservoir_windows must be at least 1".to_string(),
            });
        }
        Ok(())
    }
}

/// Supervision mode of the session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SessionMode {
    /// Adapting normally.
    Normal,
    /// Adaptation disabled (watchdog trip or exhausted recalibration
    /// retries); detection continues on the last good profile.
    Frozen,
}

impl SessionMode {
    /// Stable on-disk encoding.
    pub fn as_u8(self) -> u8 {
        match self {
            SessionMode::Normal => 0,
            SessionMode::Frozen => 1,
        }
    }

    /// Inverse of [`SessionMode::as_u8`].
    pub fn from_u8(tag: u8) -> Option<SessionMode> {
        match tag {
            0 => Some(SessionMode::Normal),
            1 => Some(SessionMode::Frozen),
            _ => None,
        }
    }
}

/// What the recalibration state machine did in a window, if anything.
#[derive(Debug, Clone, PartialEq)]
pub enum RecalOutcome {
    /// A staged recalibration passed the rollback guard and was swapped
    /// in atomically.
    Accepted {
        /// The re-derived threshold at the pinned FP target.
        new_threshold: f64,
    },
    /// The rollback guard refused the candidate profile; the previous
    /// profile stays in effect.
    Rejected {
        /// The typed rejection (or pipeline error) raised.
        error: DetectError,
        /// Windows to wait before the next attempt.
        backoff_windows: u64,
    },
    /// Supervision degraded the session to frozen-profile mode.
    Frozen,
}

/// One supervised session step.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionDecision {
    /// Zero-based window index within the session (the seq cursor).
    pub window: u64,
    /// The detector's decision, or `None` when the window was abstained
    /// (degraded beyond the gap budget or fully lost).
    pub decision: Option<Decision>,
    /// HMM posterior `P(present)` after this window.
    pub posterior: f64,
    /// Whether the vacancy gate admitted this window to the baseline
    /// statistics feed.
    pub vacant: bool,
    /// Drift-sentinel classification after this window.
    pub drift: DriftState,
    /// Supervision mode after this window.
    pub mode: SessionMode,
    /// Recalibration activity in this window, if any.
    pub recal: Option<RecalOutcome>,
}

/// Complete dynamic state of a session, as stored in checkpoints.
///
/// The detection scheme and the static [`DetectorConfig`] /
/// [`SessionConfig`] are *not* part of the snapshot — a restore must
/// supply the same ones it was calibrated with (they are compile-time /
/// deployment constants, not runtime state).
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSnapshot {
    /// Next window index (seq cursor).
    pub cursor: u64,
    /// Decision threshold in effect.
    pub threshold: f64,
    /// Calibration profile in effect.
    pub profile: CalibrationProfile,
    /// HMM smoother in effect (refit on accepted recalibration).
    pub hmm: HmmSmoother,
    /// Carried HMM posterior.
    pub posterior: f64,
    /// Drift-sentinel state.
    pub sentinel: SentinelSnapshot,
    /// Supervision mode.
    pub mode: SessionMode,
    /// Consecutive rollback-guard rejections.
    pub retries: u32,
    /// Windows remaining in the current backoff.
    pub backoff_remaining: u64,
    /// Consecutive abstained windows.
    pub watchdog_strikes: u32,
    /// Retained null-window reservoir (rollback guard input).
    pub reservoir: Vec<Vec<CsiPacket>>,
    /// Shadow calibration buffer accumulated so far.
    pub shadow: Vec<Vec<CsiPacket>>,
}

/// A supervised, drift-aware, checkpointable detection session.
#[derive(Debug, Clone)]
pub struct SessionRuntime<S> {
    detector: Detector<S>,
    scheme: S,
    session: SessionConfig,
    hmm: HmmSmoother,
    posterior: f64,
    sentinel: DriftSentinel,
    mode: SessionMode,
    retries: u32,
    backoff_remaining: u64,
    watchdog_strikes: u32,
    cursor: u64,
    reservoir: Vec<Vec<CsiPacket>>,
    shadow: Vec<Vec<CsiPacket>>,
}

impl<S: DetectionScheme + Clone> SessionRuntime<S> {
    /// Calibrates a session from no-human packets, mirroring
    /// [`Detector::calibrate`] (first half builds the profile, second
    /// half is the threshold holdout) and additionally fitting the HMM
    /// and drift sentinel to the holdout null scores and seeding the
    /// rollback-guard reservoir with the holdout windows.
    ///
    /// # Errors
    /// [`DetectError::InvalidConfig`] on a bad session config,
    /// [`DetectError::InsufficientCalibration`] when the holdout is
    /// shorter than one window, plus profile/scheme errors.
    pub fn calibrate(
        calibration_packets: &[CsiPacket],
        scheme: S,
        config: DetectorConfig,
        session: SessionConfig,
    ) -> Result<Self, DetectError> {
        session.validate()?;
        let half = calibration_packets.len() / 2;
        if half == 0 || calibration_packets.len() - half < config.window {
            return Err(DetectError::InsufficientCalibration {
                got: calibration_packets.len(),
                need: 2 * config.window,
            });
        }
        let (train, holdout) = calibration_packets.split_at(half);
        let profile = CalibrationProfile::build(train, &config)?;
        let null_scores = static_score_distribution(&profile, holdout, &scheme, &config)?;
        if null_scores.is_empty() {
            return Err(DetectError::InsufficientCalibration {
                got: holdout.len(),
                need: config.window,
            });
        }
        let threshold = threshold_for_fp(&null_scores, session.target_fp);
        let hmm = HmmSmoother::with_defaults(&null_scores)?;
        let sentinel = DriftSentinel::from_null_scores(&null_scores, session.sentinel.clone())?;
        // Seed the rollback-guard reservoir with the newest holdout
        // windows — the best null examples we have on day one.
        let mut reservoir: Vec<Vec<CsiPacket>> = holdout
            .chunks_exact(config.window)
            .map(<[CsiPacket]>::to_vec)
            .collect();
        if reservoir.len() > session.reservoir_windows {
            reservoir.drain(..reservoir.len() - session.reservoir_windows);
        }
        let posterior = hmm.prior_present;
        let detector = Detector::from_parts(profile, scheme.clone(), config, threshold);
        Ok(SessionRuntime {
            detector,
            scheme,
            session,
            hmm,
            posterior,
            sentinel,
            mode: SessionMode::Normal,
            retries: 0,
            backoff_remaining: 0,
            watchdog_strikes: 0,
            cursor: 0,
            reservoir,
            shadow: Vec::new(),
        })
    }

    /// The wrapped detector.
    pub fn detector(&self) -> &Detector<S> {
        &self.detector
    }

    /// Current decision threshold.
    pub fn threshold(&self) -> f64 {
        self.detector.threshold()
    }

    /// Current supervision mode.
    pub fn mode(&self) -> SessionMode {
        self.mode
    }

    /// Current drift classification.
    pub fn drift_state(&self) -> DriftState {
        self.sentinel.state()
    }

    /// Carried HMM posterior `P(present)`.
    pub fn posterior(&self) -> f64 {
        self.posterior
    }

    /// Next window index.
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// Session configuration.
    pub fn session_config(&self) -> &SessionConfig {
        &self.session
    }

    /// The detection scheme the session was calibrated with. Fleet-level
    /// supervisors clone this (together with [`Self::detector`]'s config
    /// and [`Self::session_config`]) into their per-link constants
    /// registry so a link can be rebuilt from a bare snapshot.
    pub fn scheme(&self) -> &S {
        &self.scheme
    }

    /// Processes one monitoring window through the supervised loop.
    ///
    /// Recalibration rejections are *handled* (reported in
    /// [`SessionDecision::recal`], counted, backed off), not propagated.
    ///
    /// # Errors
    /// Unexpected pipeline errors only (shape mismatches, angle
    /// estimation failures). Gap-budget aborts and fully-lost windows
    /// abstain instead of erroring.
    pub fn step(&mut self, window: &[CsiPacket]) -> Result<SessionDecision, DetectError> {
        let _stage = mpdf_obs::stage!("session.step");
        mpdf_obs::trajectory::tick();
        mpdf_obs::counter!("session.windows_total").inc();
        let widx = self.cursor;
        self.cursor += 1;
        let mut recal_outcome = None;

        let decision = match self.detector.decide(window) {
            Ok(d) => {
                self.watchdog_strikes = 0;
                Some(d)
            }
            Err(DetectError::DegradedBeyondBudget { .. } | DetectError::EmptyWindow) => {
                self.watchdog_strikes += 1;
                mpdf_obs::counter!("session.abstained_total").inc();
                if self.watchdog_strikes >= self.session.watchdog_budget
                    && self.mode == SessionMode::Normal
                {
                    // Watchdog deadline (in windows): the receiver has
                    // been unscorable for a whole budget — freeze
                    // adaptation, keep detecting.
                    self.mode = SessionMode::Frozen;
                    mpdf_obs::counter!("session.watchdog_trips_total").inc();
                    mpdf_obs::counter!("session.frozen_total").inc();
                    recal_outcome = Some(RecalOutcome::Frozen);
                }
                None
            }
            Err(e) => return Err(e),
        };

        let mut vacant = false;
        if let Some(d) = decision {
            let prev = self.posterior;
            self.posterior = self.hmm.step(prev, d.score);
            // The sentinel is gated *causally* (on the pre-window
            // posterior): a catastrophic step change must be seen by the
            // EWMA in its last window before the gate slams shut, or
            // `Broken` would be unreachable. The baseline buffers are
            // gated on both sides — an entry window (vacant before,
            // occupied after) must never become a null example.
            let gate_open = prev < self.session.vacancy_eps;
            vacant = gate_open && self.posterior < self.session.vacancy_eps;
            if gate_open && !d.degraded {
                self.sentinel.observe(d.score);
            }
            // Only clean (non-degraded) strictly-vacant windows feed the
            // baseline: a window that lost packets or antennas is not a
            // trustworthy null example, and an occupied one never is.
            if vacant && !d.degraded {
                mpdf_obs::counter!("session.vacant_windows_total").inc();
                if self.reservoir.len() >= self.session.reservoir_windows {
                    self.reservoir.remove(0);
                }
                self.reservoir.push(window.to_vec());
            }
        }

        if self.session.recalibration.enabled && self.mode == SessionMode::Normal {
            if self.backoff_remaining > 0 {
                self.backoff_remaining -= 1;
            } else if self.sentinel.state() != DriftState::Stable {
                if vacant && decision.map(|d| !d.degraded).unwrap_or(false) {
                    self.shadow.push(window.to_vec());
                    mpdf_obs::counter!("session.shadow_windows_total").inc();
                }
                if self.shadow.len() >= self.session.recalibration.shadow_windows {
                    recal_outcome = Some(self.attempt_recalibration()?);
                }
            } else if !self.shadow.is_empty() {
                // Drift subsided on its own; the half-filled shadow
                // buffer describes an environment that no longer exists.
                self.shadow.clear();
            }
        }

        mpdf_obs::gauge!("session.drift_state").set(i64::from(self.sentinel.state().as_u8()));
        mpdf_obs::gauge!("session.backoff_remaining").set(self.backoff_remaining as i64);
        Ok(SessionDecision {
            window: widx,
            decision,
            posterior: self.posterior,
            vacant,
            drift: self.sentinel.state(),
            mode: self.mode,
            recal: recal_outcome,
        })
    }

    /// Stages a recalibration from the accumulated shadow buffer and
    /// applies the rollback guard. Consumes the shadow buffer either way.
    ///
    /// # Errors
    /// Unexpected pipeline errors only — guard rejections are returned as
    /// [`RecalOutcome::Rejected`]/[`RecalOutcome::Frozen`].
    fn attempt_recalibration(&mut self) -> Result<RecalOutcome, DetectError> {
        let _stage = mpdf_obs::stage!("session.recalibrate");
        mpdf_obs::counter!("session.recal_attempts_total").inc();
        let shadow_windows = std::mem::take(&mut self.shadow);
        let shadow: Vec<CsiPacket> = shadow_windows.into_iter().flatten().collect();
        match self.stage_candidate(&shadow) {
            Ok((profile, threshold, null_scores)) => {
                // Atomic swap: build the replacement detector fully, then
                // move it into place; no observable intermediate state.
                mpdf_obs::counter!("session.recal_accepted_total").inc();
                self.hmm = HmmSmoother::with_defaults(&null_scores)?;
                self.sentinel.rebase(&null_scores)?;
                self.detector = Detector::from_parts(
                    profile,
                    self.scheme.clone(),
                    self.detector.config().clone(),
                    threshold,
                );
                self.retries = 0;
                self.backoff_remaining = 0;
                Ok(RecalOutcome::Accepted {
                    new_threshold: threshold,
                })
            }
            Err(
                err @ (DetectError::RecalibrationRejected { .. }
                | DetectError::InsufficientCalibration { .. }
                | DetectError::EmptyWindow
                | DetectError::DegradedBeyondBudget { .. }),
            ) => {
                // Bounded retry with window-counted exponential backoff.
                mpdf_obs::counter!("session.recal_rejected_total").inc();
                self.retries += 1;
                if self.retries > self.session.recalibration.max_retries {
                    self.mode = SessionMode::Frozen;
                    mpdf_obs::counter!("session.frozen_total").inc();
                    return Ok(RecalOutcome::Frozen);
                }
                let base = self.session.recalibration.backoff_base_windows;
                let cap = self.session.recalibration.backoff_cap_windows;
                let backoff = base
                    .checked_shl(self.retries - 1)
                    .unwrap_or(u64::MAX)
                    .min(cap.max(base));
                self.backoff_remaining = backoff;
                Ok(RecalOutcome::Rejected {
                    error: err,
                    backoff_windows: backoff,
                })
            }
            Err(e) => Err(e),
        }
    }

    /// Builds a candidate (profile, threshold, null scores) from shadow
    /// packets and scores it against the reservoir.
    ///
    /// # Errors
    /// [`DetectError::RecalibrationRejected`] when the candidate fails
    /// the rollback guard, plus pipeline errors.
    fn stage_candidate(
        &self,
        shadow: &[CsiPacket],
    ) -> Result<(CalibrationProfile, f64, Vec<f64>), DetectError> {
        let config = self.detector.config();
        let half = shadow.len() / 2;
        if half == 0 || shadow.len() - half < config.window {
            return Err(DetectError::InsufficientCalibration {
                got: shadow.len(),
                need: 2 * config.window,
            });
        }
        let (train, holdout) = shadow.split_at(half);
        let profile = CalibrationProfile::build(train, config)?;
        let null_scores = static_score_distribution(&profile, holdout, &self.scheme, config)?;
        if null_scores.is_empty() {
            return Err(DetectError::InsufficientCalibration {
                got: holdout.len(),
                need: config.window,
            });
        }
        let threshold = threshold_for_fp(&null_scores, self.session.target_fp);
        // Rollback guard: the candidate operating point must keep the
        // retained null reservoir quiet.
        let mut fired = 0usize;
        let mut scored = 0usize;
        for w in &self.reservoir {
            match self.scheme.score(&profile, w, config) {
                Ok(s) => {
                    scored += 1;
                    if s > threshold {
                        fired += 1;
                    }
                }
                Err(DetectError::DegradedBeyondBudget { .. } | DetectError::EmptyWindow) => {}
                Err(e) => return Err(e),
            }
        }
        let realized_fp = if scored == 0 {
            0.0
        } else {
            fired as f64 / scored as f64
        };
        if realized_fp > self.session.recalibration.guard_fp_tolerance {
            return Err(DetectError::RecalibrationRejected {
                realized_fp,
                tolerance: self.session.recalibration.guard_fp_tolerance,
            });
        }
        Ok((profile, threshold, null_scores))
    }

    /// Captures the complete dynamic state for checkpointing.
    pub fn snapshot(&self) -> SessionSnapshot {
        SessionSnapshot {
            cursor: self.cursor,
            threshold: self.detector.threshold(),
            profile: self.detector.profile().clone(),
            hmm: self.hmm,
            posterior: self.posterior,
            sentinel: self.sentinel.snapshot(),
            mode: self.mode,
            retries: self.retries,
            backoff_remaining: self.backoff_remaining,
            watchdog_strikes: self.watchdog_strikes,
            reservoir: self.reservoir.clone(),
            shadow: self.shadow.clone(),
        }
    }

    /// Reconstructs a session from a snapshot plus the deployment
    /// constants (scheme, detector config, session config) it was
    /// originally calibrated with. The restored session continues
    /// bit-identically to the one that was snapshotted.
    ///
    /// # Errors
    /// [`DetectError::InvalidConfig`] on a bad config or an internally
    /// inconsistent snapshot.
    pub fn from_snapshot(
        snapshot: SessionSnapshot,
        scheme: S,
        config: DetectorConfig,
        session: SessionConfig,
    ) -> Result<Self, DetectError> {
        session.validate()?;
        if snapshot.posterior.is_nan() || !(0.0..=1.0).contains(&snapshot.posterior) {
            return Err(DetectError::InvalidConfig {
                what: format!(
                    "snapshot posterior {} is not a probability",
                    snapshot.posterior
                ),
            });
        }
        let sentinel = DriftSentinel::from_snapshot(snapshot.sentinel, session.sentinel.clone())?;
        let detector =
            Detector::from_parts(snapshot.profile, scheme.clone(), config, snapshot.threshold);
        Ok(SessionRuntime {
            detector,
            scheme,
            session,
            hmm: snapshot.hmm,
            posterior: snapshot.posterior,
            sentinel,
            mode: snapshot.mode,
            retries: snapshot.retries,
            backoff_remaining: snapshot.backoff_remaining,
            watchdog_strikes: snapshot.watchdog_strikes,
            cursor: snapshot.cursor,
            reservoir: snapshot.reservoir,
            shadow: snapshot.shadow,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdf_core::scheme::SubcarrierWeighting;
    use mpdf_geom::shapes::Rect;
    use mpdf_geom::vec2::Vec2;
    use mpdf_propagation::channel::ChannelModel;
    use mpdf_propagation::environment::Environment;
    use mpdf_propagation::human::HumanBody;
    use mpdf_wifi::receiver::{CsiReceiver, ReceiverConfig};

    fn receiver(seed: u64) -> CsiReceiver {
        let env = Environment::empty_room(Rect::new(Vec2::ZERO, Vec2::new(8.0, 6.0)));
        let link = ChannelModel::new(env, Vec2::new(2.0, 3.0), Vec2::new(6.0, 3.0)).unwrap();
        CsiReceiver::with_config(link, ReceiverConfig::default(), seed).unwrap()
    }

    fn session_cfg(enabled: bool) -> SessionConfig {
        SessionConfig {
            recalibration: RecalPolicy {
                enabled,
                shadow_windows: 4,
                ..RecalPolicy::default()
            },
            reservoir_windows: 6,
            ..SessionConfig::default()
        }
    }

    fn runtime(enabled: bool) -> SessionRuntime<SubcarrierWeighting> {
        let mut rx = receiver(11);
        let calibration = rx.capture_static(None, 200).unwrap();
        SessionRuntime::calibrate(
            &calibration,
            SubcarrierWeighting,
            DetectorConfig::default(),
            session_cfg(enabled),
        )
        .unwrap()
    }

    #[test]
    fn quiet_session_stays_stable() {
        let mut rt = runtime(true);
        let rx = receiver(11);
        for w in 0..10u64 {
            let win = rx.fork(1000 + w).capture_static(None, 25).unwrap();
            let d = rt.step(&win).unwrap();
            assert_eq!(d.window, w);
            assert!(d.decision.is_some());
            assert_eq!(d.mode, SessionMode::Normal);
        }
        assert_eq!(rt.drift_state(), DriftState::Stable);
        assert_eq!(rt.cursor(), 10);
    }

    #[test]
    fn occupied_windows_raise_posterior_and_skip_gate() {
        let mut rt = runtime(true);
        let rx = receiver(11);
        let body = HumanBody::new(Vec2::new(4.0, 3.2));
        let mut saw_occupied = false;
        for w in 0..12u64 {
            let win = rx.fork(2000 + w).capture_static(Some(&body), 25).unwrap();
            let d = rt.step(&win).unwrap();
            if d.posterior > 0.5 {
                saw_occupied = true;
                assert!(!d.vacant, "occupied window admitted to baseline feed");
            }
        }
        assert!(saw_occupied, "posterior never rose on occupied stream");
        assert_eq!(
            rt.drift_state(),
            DriftState::Stable,
            "occupied windows must not read as drift"
        );
    }

    /// Steps the receiver's session drift up by one increment every
    /// `per_block` windows, captured as one *continuous* vacant stream.
    /// (Per-window re-forking is useless here: across-fork score spread
    /// is ~0.7 in log10 — far beyond the HMM's ~1.4 sigma vacancy
    /// crossover — so the posterior saturates on fork noise alone. A
    /// drifting deployment is one radio on one continuous timeline.)
    fn step_drift(rx: &mut CsiReceiver, w: u64, per_block: u64, rel_step: f64, db_step: f64) {
        if w.is_multiple_of(per_block) {
            let block = w / per_block;
            rx.set_drift_magnitude(rel_step * block as f64, db_step * block as f64);
            rx.resample_drift();
        }
    }

    #[test]
    fn gradual_drift_triggers_accepted_recalibration() {
        let mut rx = receiver(11);
        let calibration = rx.capture_static(None, 200).unwrap();
        let mut rt = SessionRuntime::calibrate(
            &calibration,
            SubcarrierWeighting,
            DetectorConfig::default(),
            session_cfg(true),
        )
        .unwrap();
        let before = rt.threshold();
        let mut accepted = false;
        for w in 0..160u64 {
            step_drift(&mut rx, w, 10, 0.004, 0.04);
            let win = rx.capture_static(None, 25).unwrap();
            let d = rt.step(&win).unwrap();
            if let Some(RecalOutcome::Accepted { new_threshold }) = d.recal {
                accepted = true;
                assert_eq!(rt.threshold(), new_threshold);
                assert_ne!(new_threshold, before);
                assert_eq!(rt.drift_state(), DriftState::Stable, "sentinel rebased");
                break;
            }
        }
        assert!(accepted, "gradual drift must drive an accepted recal");
    }

    #[test]
    fn zero_tolerance_guard_rejects_and_backs_off_then_freezes() {
        let mut cfg = session_cfg(true);
        cfg.recalibration.guard_fp_tolerance = 0.0;
        cfg.recalibration.max_retries = 1;
        cfg.recalibration.backoff_base_windows = 2;
        // A reservoir big enough to never evict: candidates must keep
        // *every* drift level since calibration quiet, which a zero
        // tolerance eventually makes impossible.
        cfg.reservoir_windows = 64;
        let mut rx = receiver(11);
        let calibration = rx.capture_static(None, 200).unwrap();
        let mut rt = SessionRuntime::calibrate(
            &calibration,
            SubcarrierWeighting,
            DetectorConfig::default(),
            cfg,
        )
        .unwrap();
        let mut rejected = false;
        let mut frozen = false;
        for w in 0..160u64 {
            step_drift(&mut rx, w, 10, 0.004, 0.04);
            let win = rx.capture_static(None, 25).unwrap();
            let d = rt.step(&win).unwrap();
            match d.recal {
                Some(RecalOutcome::Rejected {
                    ref error,
                    backoff_windows,
                }) => {
                    rejected = true;
                    assert!(
                        matches!(error, DetectError::RecalibrationRejected { .. }),
                        "{error}"
                    );
                    assert!(backoff_windows >= 2);
                }
                Some(RecalOutcome::Frozen) => {
                    frozen = true;
                    break;
                }
                _ => {}
            }
        }
        assert!(rejected, "zero-tolerance guard never rejected");
        assert!(frozen, "exhausted retries must freeze the session");
        assert_eq!(rt.mode(), SessionMode::Frozen);
        // Frozen mode still detects.
        let body = HumanBody::new(Vec2::new(4.0, 3.2));
        let win = rx.capture_static(Some(&body), 25).unwrap();
        assert!(rt.step(&win).unwrap().decision.is_some());
    }

    #[test]
    fn watchdog_freezes_after_budget_of_empty_windows() {
        let mut cfg = session_cfg(true);
        cfg.watchdog_budget = 3;
        let mut rx = receiver(11);
        let calibration = rx.capture_static(None, 200).unwrap();
        let mut rt = SessionRuntime::calibrate(
            &calibration,
            SubcarrierWeighting,
            DetectorConfig::default(),
            cfg,
        )
        .unwrap();
        for i in 0..3 {
            let d = rt.step(&[]).unwrap();
            assert!(d.decision.is_none(), "window {i}");
        }
        assert_eq!(rt.mode(), SessionMode::Frozen);
    }

    #[test]
    fn disabled_recalibration_matches_bare_detector() {
        let mut rt = runtime(false);
        let mut rx = receiver(11);
        rx.set_drift_magnitude(0.6, 2.5);
        rx.resample_drift();
        let bare = rt.detector().clone();
        for w in 0..30u64 {
            let win = rx
                .fork_with_drift(5000 + w)
                .capture_static(None, 25)
                .unwrap();
            let session_d = rt.step(&win).unwrap().decision.unwrap();
            let bare_d = bare.decide(&win).unwrap();
            assert_eq!(session_d.score.to_bits(), bare_d.score.to_bits());
            assert_eq!(session_d.detected, bare_d.detected);
        }
        assert_eq!(rt.threshold(), bare.threshold(), "no adaptation when off");
    }

    #[test]
    fn snapshot_restore_continues_bit_identically() {
        let make_stream = |w: u64| {
            let mut rx = receiver(11);
            rx.set_drift_magnitude(0.3, 1.0);
            rx.resample_drift();
            rx.fork_with_drift(6000 + w)
                .capture_static(None, 25)
                .unwrap()
        };
        let mut a = runtime(true);
        // Run A uninterrupted for 40 windows, recording the tail.
        let mut a_tail = Vec::new();
        for w in 0..40u64 {
            let d = a.step(&make_stream(w)).unwrap();
            if w >= 20 {
                a_tail.push(d);
            }
        }
        // Run B: same start, snapshot at 20, restore, continue.
        let mut b = runtime(true);
        for w in 0..20u64 {
            b.step(&make_stream(w)).unwrap();
        }
        let snap = b.snapshot();
        let mut b2 = SessionRuntime::from_snapshot(
            snap,
            SubcarrierWeighting,
            DetectorConfig::default(),
            session_cfg(true),
        )
        .unwrap();
        for (i, w) in (20u64..40).enumerate() {
            let d = b2.step(&make_stream(w)).unwrap();
            let ad = &a_tail[i];
            assert_eq!(d.window, ad.window);
            assert_eq!(
                d.decision.map(|x| (x.score.to_bits(), x.detected)),
                ad.decision.map(|x| (x.score.to_bits(), x.detected)),
                "window {w}"
            );
            assert_eq!(d.posterior.to_bits(), ad.posterior.to_bits(), "window {w}");
            assert_eq!(d.drift, ad.drift, "window {w}");
        }
    }

    #[test]
    fn invalid_session_configs_are_rejected() {
        for cfg in [
            SessionConfig {
                target_fp: 0.0,
                ..SessionConfig::default()
            },
            SessionConfig {
                vacancy_eps: 0.0,
                ..SessionConfig::default()
            },
            SessionConfig {
                watchdog_budget: 0,
                ..SessionConfig::default()
            },
            SessionConfig {
                reservoir_windows: 0,
                ..SessionConfig::default()
            },
            SessionConfig {
                recalibration: RecalPolicy {
                    shadow_windows: 1,
                    ..RecalPolicy::default()
                },
                ..SessionConfig::default()
            },
            SessionConfig {
                recalibration: RecalPolicy {
                    guard_fp_tolerance: 1.0,
                    ..RecalPolicy::default()
                },
                ..SessionConfig::default()
            },
        ] {
            assert!(
                matches!(cfg.validate(), Err(DetectError::InvalidConfig { .. })),
                "{cfg:?}"
            );
        }
    }
}
