//! Property-based tests for the AoA estimation substrate.

use mpdf_music::covariance::{forward_backward, sample_covariance, spatially_smoothed_covariance};
use mpdf_music::music::{bartlett_spectrum, pseudospectrum, AngleGrid, UlaSteering};
use mpdf_rfmath::complex::Complex64;
use proptest::prelude::*;

fn snapshots_strategy() -> impl Strategy<Value = Vec<Vec<Complex64>>> {
    proptest::collection::vec(
        proptest::collection::vec((-2.0f64..2.0, -2.0f64..2.0), 3).prop_map(|v| {
            v.into_iter()
                .map(|(re, im)| Complex64::new(re, im))
                .collect()
        }),
        4..32,
    )
}

/// Plane-wave snapshots at a given angle with per-snapshot symbols.
fn plane_wave(theta: f64, n: usize, noise: f64) -> Vec<Vec<Complex64>> {
    let steering = UlaSteering::three_half_wavelength();
    (0..n)
        .map(|i| {
            let sym = Complex64::cis(1.1 * i as f64);
            steering
                .vector(theta)
                .into_iter()
                .enumerate()
                .map(|(m, a)| sym * a + Complex64::cis((i * 13 + m * 7) as f64) * noise)
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn covariance_is_hermitian_psd(snaps in snapshots_strategy()) {
        let r = sample_covariance(&snaps).unwrap();
        prop_assert!(r.is_hermitian(1e-9));
        // PSD: quadratic form non-negative on a few probe vectors.
        for probe in 0..3 {
            let v: Vec<Complex64> = (0..3)
                .map(|i| Complex64::cis((probe * 3 + i) as f64 * 0.7))
                .collect();
            prop_assert!(r.quadratic_form(&v).re >= -1e-9);
        }
        // Diagonal equals mean power per element.
        for i in 0..3 {
            let mean_p: f64 = snaps.iter().map(|s| s[i].norm_sqr()).sum::<f64>() / snaps.len() as f64;
            prop_assert!((r[(i, i)].re - mean_p).abs() < 1e-9 * mean_p.max(1.0));
        }
    }

    #[test]
    fn forward_backward_keeps_trace_and_hermitian(snaps in snapshots_strategy()) {
        let r = sample_covariance(&snaps).unwrap();
        let fb = forward_backward(&r);
        prop_assert!(fb.is_hermitian(1e-9));
        prop_assert!((fb.trace().re - r.trace().re).abs() < 1e-9 * r.trace().re.abs().max(1.0));
    }

    #[test]
    fn smoothing_output_is_valid_covariance(snaps in snapshots_strategy()) {
        let s = spatially_smoothed_covariance(&snaps, 2).unwrap();
        prop_assert_eq!(s.rows(), 2);
        prop_assert!(s.is_hermitian(1e-9));
        prop_assert!(s[(0, 0)].re >= -1e-12);
    }

    #[test]
    fn music_peak_tracks_planted_angle(deg in -65.0f64..65.0) {
        let snaps = plane_wave(deg.to_radians(), 48, 1e-3);
        let r = sample_covariance(&snaps).unwrap();
        let spec = pseudospectrum(
            &r,
            &UlaSteering::three_half_wavelength(),
            1,
            &AngleGrid::full_front(0.5),
        )
        .unwrap();
        let peaks = spec.peaks(1, 0.0);
        prop_assert!(!peaks.is_empty());
        prop_assert!(
            (peaks[0].0 - deg).abs() < 3.0,
            "planted {deg}, found {}",
            peaks[0].0
        );
    }

    #[test]
    fn bartlett_total_matches_signal_power(deg in -60.0f64..60.0) {
        let snaps = plane_wave(deg.to_radians(), 32, 0.0);
        let r = sample_covariance(&snaps).unwrap();
        let steering = UlaSteering::three_half_wavelength();
        let spec = bartlett_spectrum(&r, &steering, &AngleGrid::full_front(1.0)).unwrap();
        // The Bartlett value at the true angle equals (array gain)² ×
        // per-element power = 9 for unit symbols on 3 elements.
        let at_truth = spec.value_at(deg);
        prop_assert!((at_truth - 9.0).abs() < 0.5, "B(truth) = {at_truth}");
        // Values are non-negative everywhere.
        prop_assert!(spec.values().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn pseudospectrum_is_scale_invariant(deg in -60.0f64..60.0, scale in 0.1f64..100.0) {
        let snaps = plane_wave(deg.to_radians(), 24, 1e-3);
        let scaled: Vec<Vec<Complex64>> = snaps
            .iter()
            .map(|s| s.iter().map(|&z| z * scale).collect())
            .collect();
        let steering = UlaSteering::three_half_wavelength();
        let grid = AngleGrid::full_front(2.0);
        let r1 = sample_covariance(&snaps).unwrap();
        let r2 = sample_covariance(&scaled).unwrap();
        let s1 = pseudospectrum(&r1, &steering, 1, &grid).unwrap().normalized();
        let s2 = pseudospectrum(&r2, &steering, 1, &grid).unwrap().normalized();
        for (a, b) in s1.values().iter().zip(s2.values()) {
            prop_assert!((a - b).abs() < 1e-6 * a.max(1e-9));
        }
    }
}
