//! Sample covariance estimation.
//!
//! MUSIC operates on the spatial covariance `R = E[x xᴴ]` of array
//! snapshots. On WiFi, snapshots are per-subcarrier CSI columns — 30 per
//! packet on the Intel 5300 — so even one packet yields a usable estimate.
//! Forward–backward averaging improves conditioning for the coherent
//! (fully correlated) signals multipath produces.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

use mpdf_rfmath::complex::Complex64;
use mpdf_rfmath::contract;
use mpdf_rfmath::matrix::CMatrix;

/// Error returned by covariance estimation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CovarianceError {
    /// No snapshots were provided.
    NoSnapshots,
    /// Snapshots have inconsistent lengths.
    RaggedSnapshots,
    /// A subarray length was invalid for smoothing.
    BadSubarrayLength,
}

impl fmt::Display for CovarianceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CovarianceError::NoSnapshots => write!(f, "no snapshots provided"),
            CovarianceError::RaggedSnapshots => write!(f, "snapshots have differing lengths"),
            CovarianceError::BadSubarrayLength => {
                write!(f, "subarray length must be in 2..=elements")
            }
        }
    }
}

impl Error for CovarianceError {}

/// Sample covariance `R = (1/N) Σ x_n x_nᴴ` of equal-length snapshots.
///
/// # Errors
/// [`CovarianceError::NoSnapshots`] / [`CovarianceError::RaggedSnapshots`].
pub fn sample_covariance(snapshots: &[Vec<Complex64>]) -> Result<CMatrix, CovarianceError> {
    let _stage = mpdf_obs::stage!("music.covariance");
    let first = snapshots.first().ok_or(CovarianceError::NoSnapshots)?;
    let m = first.len();
    if m == 0 || snapshots.iter().any(|s| s.len() != m) {
        return Err(CovarianceError::RaggedSnapshots);
    }
    let mut r = CMatrix::zeros(m, m);
    for x in snapshots {
        // In-place rank-1 accumulation: no temporary matrix per snapshot.
        r.axpy_outer(x, x);
    }
    r.scale_in_place(1.0 / snapshots.len() as f64);
    contract::assert_hermitian("sample covariance", &r, 1e-9 * (1.0 + r.trace().norm()));
    Ok(r)
}

/// Incremental sample covariance over a sliding snapshot window.
///
/// Consecutive overlapping monitoring windows share almost all of their
/// snapshots, so recomputing `R = (1/N) Σ x xᴴ` from scratch wastes the
/// previous window's work. This accumulator maintains the *unnormalized*
/// sum with one rank-1 update per arriving snapshot
/// ([`CMatrix::axpy_outer`]) and one rank-1 downdate per retiring one
/// ([`CMatrix::axpy_outer_sub`]) — `O(M²)` per slide instead of
/// `O(N·M²)` per window.
///
/// Floating-point cancellation from downdates drifts the accumulator
/// away from the batch result; every [`SlidingCovariance::rebuild_every`]
/// downdates the sum is rebuilt from the retained window, which bounds
/// the drift and restores bitwise agreement with
/// [`sample_covariance`]. Until the first downdate (or right after a
/// rebuild) the update sequence is identical to the batch loop, so the
/// results agree bitwise; in between they agree to a few ULPs (the
/// equivalence proptests below pin both regimes).
///
/// Forward–backward averaging and spatial smoothing compose on top: see
/// [`SlidingCovariance::covariance_fb`] and
/// [`SlidingCovariance::smoothed_covariance`].
#[derive(Debug, Clone)]
pub struct SlidingCovariance {
    dim: usize,
    capacity: usize,
    rebuild_every: usize,
    window: VecDeque<Vec<Complex64>>,
    /// Retired snapshot buffers recycled by later pushes.
    spare: Vec<Vec<Complex64>>,
    /// Unnormalized `Σ x xᴴ` over the current window.
    acc: CMatrix,
    downdates_since_rebuild: usize,
    /// Rank-1 updates not yet flushed to the metrics counter (batched so
    /// the hot loop pays one atomic add per materialization, not one per
    /// snapshot).
    pending_updates: u64,
}

impl SlidingCovariance {
    /// Default downdate budget between full rebuilds. 64 downdates of
    /// unit-scale snapshots keep the accumulated drift far below the
    /// Hermitian-contract tolerance while amortizing the rebuild to
    /// noise.
    pub const DEFAULT_REBUILD_EVERY: usize = 64;

    /// Creates an accumulator for `dim`-element snapshots keeping the
    /// trailing `capacity` of them, with the default rebuild cadence.
    ///
    /// # Panics
    /// Panics if `dim` or `capacity` is zero.
    pub fn new(dim: usize, capacity: usize) -> Self {
        SlidingCovariance::with_rebuild_every(dim, capacity, Self::DEFAULT_REBUILD_EVERY)
    }

    /// Creates an accumulator with an explicit rebuild cadence (a full
    /// rebuild after every `rebuild_every` downdates).
    ///
    /// # Panics
    /// Panics if `dim`, `capacity` or `rebuild_every` is zero.
    pub fn with_rebuild_every(dim: usize, capacity: usize, rebuild_every: usize) -> Self {
        assert!(dim > 0, "snapshot dimension must be non-zero");
        assert!(capacity > 0, "window capacity must be non-zero");
        assert!(rebuild_every > 0, "rebuild cadence must be non-zero");
        SlidingCovariance {
            dim,
            capacity,
            rebuild_every,
            window: VecDeque::with_capacity(capacity),
            spare: Vec::new(),
            acc: CMatrix::zeros(dim, dim),
            downdates_since_rebuild: 0,
            pending_updates: 0,
        }
    }

    /// Snapshot dimension `M`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Maximum retained window length.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Downdates between full rebuilds.
    pub fn rebuild_every(&self) -> usize {
        self.rebuild_every
    }

    /// Snapshots currently in the window.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// True when no snapshots have been pushed since creation/reset.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// Pushes one snapshot; once the window is full, each push also
    /// retires the oldest snapshot with a rank-1 downdate.
    ///
    /// # Panics
    /// Panics if `x.len()` differs from the accumulator dimension.
    pub fn push(&mut self, x: &[Complex64]) {
        assert_eq!(
            x.len(),
            self.dim,
            "snapshot length must match accumulator dimension"
        );
        self.pending_updates += 1;
        if self.window.len() == self.capacity {
            if let Some(mut old) = self.window.pop_front() {
                self.acc.axpy_outer_sub(&old, &old);
                old.clear();
                old.extend_from_slice(x);
                self.acc.axpy_outer(&old, &old);
                self.window.push_back(old);
            }
            self.downdates_since_rebuild += 1;
            if self.downdates_since_rebuild >= self.rebuild_every {
                self.rebuild();
            }
        } else {
            self.acc.axpy_outer(x, x);
            let mut storage = self.spare.pop().unwrap_or_default();
            storage.clear();
            storage.extend_from_slice(x);
            self.window.push_back(storage);
        }
    }

    /// Rebuilds the unnormalized sum from the retained window in arrival
    /// order — the identical accumulation [`sample_covariance`] runs, so
    /// the next [`SlidingCovariance::covariance`] is bitwise batch.
    fn rebuild(&mut self) {
        mpdf_obs::counter!("music.cov_full_rebuilds").inc();
        self.acc.set_zero();
        for x in &self.window {
            self.acc.axpy_outer(x, x);
        }
        self.downdates_since_rebuild = 0;
    }

    /// Empties the window and zeroes the accumulator, keeping every
    /// allocation (window buffers are recycled by later pushes) — lets
    /// per-subcarrier loops reuse one accumulator across subcarriers.
    pub fn reset(&mut self) {
        self.flush_updates();
        self.spare.extend(self.window.drain(..));
        self.acc.set_zero();
        self.downdates_since_rebuild = 0;
    }

    fn flush_updates(&mut self) {
        if self.pending_updates > 0 {
            mpdf_obs::counter!("music.cov_incremental_updates").add(self.pending_updates);
            self.pending_updates = 0;
        }
    }

    /// Materializes the sample covariance `R = (1/N) Σ x xᴴ` of the
    /// current window (takes `&mut self` to flush batched metrics).
    ///
    /// # Errors
    /// [`CovarianceError::NoSnapshots`] when the window is empty.
    pub fn covariance(&mut self) -> Result<CMatrix, CovarianceError> {
        let _stage = mpdf_obs::stage!("music.covariance");
        self.flush_updates();
        if self.window.is_empty() {
            return Err(CovarianceError::NoSnapshots);
        }
        let mut r = self.acc.clone();
        r.scale_in_place(1.0 / self.window.len() as f64);
        contract::assert_hermitian("sample covariance", &r, 1e-9 * (1.0 + r.trace().norm()));
        Ok(r)
    }

    /// Forward–backward averaged covariance of the current window —
    /// [`forward_backward`] composed on the incremental estimate.
    ///
    /// # Errors
    /// [`CovarianceError::NoSnapshots`] when the window is empty.
    pub fn covariance_fb(&mut self) -> Result<CMatrix, CovarianceError> {
        Ok(forward_backward(&self.covariance()?))
    }

    /// Spatially smoothed covariance of the retained window —
    /// [`spatially_smoothed_covariance`] composed on the snapshots the
    /// accumulator keeps for downdating (smoothing needs per-subarray
    /// sums, so it recomputes from the window rather than the sum).
    ///
    /// # Errors
    /// Same conditions as [`spatially_smoothed_covariance`].
    pub fn smoothed_covariance(&mut self, subarray_len: usize) -> Result<CMatrix, CovarianceError> {
        self.flush_updates();
        spatially_smoothed_covariance(self.window.make_contiguous(), subarray_len)
    }
}

/// Forward–backward averaging: `R_fb = (R + J·R*·J)/2` with `J` the
/// exchange matrix. Decorrelates coherent sources on symmetric arrays.
///
/// # Panics
/// Panics if `r` is not square.
pub fn forward_backward(r: &CMatrix) -> CMatrix {
    assert!(r.is_square(), "covariance must be square");
    let m = r.rows();
    // Fused element-wise form of `(R + J·conj(R)·J)/2`: one allocation
    // instead of three, each entry the identical `(a + b)·0.5` the
    // flip-add-scale formulation produced.
    let fb = CMatrix::from_fn(m, m, |i, j| {
        (r[(i, j)] + r[(m - 1 - i, m - 1 - j)].conj()).scale(0.5)
    });
    contract::assert_hermitian(
        "forward–backward covariance",
        &fb,
        1e-9 * (1.0 + fb.trace().norm()),
    );
    fb
}

/// Spatially smoothed covariance: averages the covariances of all
/// contiguous subarrays of length `subarray_len`. The paper (§IV-B1)
/// notes this "relegates three antennas to only two" — the output order
/// is `subarray_len`, trading aperture for coherence handling.
///
/// # Errors
/// [`CovarianceError::BadSubarrayLength`] unless
/// `2 ≤ subarray_len ≤ element count`, plus the [`sample_covariance`]
/// conditions.
pub fn spatially_smoothed_covariance(
    snapshots: &[Vec<Complex64>],
    subarray_len: usize,
) -> Result<CMatrix, CovarianceError> {
    let first = snapshots.first().ok_or(CovarianceError::NoSnapshots)?;
    let m = first.len();
    if subarray_len < 2 || subarray_len > m {
        return Err(CovarianceError::BadSubarrayLength);
    }
    let num_sub = m - subarray_len + 1;
    let mut acc = CMatrix::zeros(subarray_len, subarray_len);
    for start in 0..num_sub {
        let sub: Vec<Vec<Complex64>> = snapshots
            .iter()
            .map(|s| {
                if s.len() != m {
                    Vec::new()
                } else {
                    s[start..start + subarray_len].to_vec()
                }
            })
            .collect();
        if sub.iter().any(|s| s.len() != subarray_len) {
            return Err(CovarianceError::RaggedSnapshots);
        }
        let r = sample_covariance(&sub)?;
        acc = &acc + &r;
    }
    Ok(acc.scale(1.0 / num_sub as f64))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> Complex64 {
        Complex64::new(re, im)
    }

    #[test]
    fn covariance_of_single_snapshot_is_outer_product() {
        let x = vec![c(1.0, 0.0), c(0.0, 1.0)];
        let r = sample_covariance(std::slice::from_ref(&x)).unwrap();
        assert_eq!(r[(0, 0)], c(1.0, 0.0));
        assert_eq!(r[(0, 1)], c(0.0, -1.0));
        assert_eq!(r[(1, 0)], c(0.0, 1.0));
        assert_eq!(r[(1, 1)], c(1.0, 0.0));
    }

    #[test]
    fn covariance_is_hermitian_psd() {
        let snaps: Vec<Vec<Complex64>> = (0..20)
            .map(|i| {
                let t = i as f64 * 0.37;
                vec![
                    Complex64::cis(t),
                    Complex64::cis(1.7 * t) * 0.5,
                    c(t.sin(), t.cos()),
                ]
            })
            .collect();
        let r = sample_covariance(&snaps).unwrap();
        assert!(r.is_hermitian(1e-12));
        // Diagonal is real non-negative.
        for i in 0..3 {
            assert!(r[(i, i)].re >= 0.0);
            assert!(r[(i, i)].im.abs() < 1e-12);
        }
        // Quadratic form non-negative for arbitrary vector.
        let v = [c(0.3, -0.2), c(1.0, 0.1), c(-0.4, 0.8)];
        assert!(r.quadratic_form(&v).re >= -1e-12);
    }

    #[test]
    fn errors_on_bad_input() {
        assert_eq!(sample_covariance(&[]), Err(CovarianceError::NoSnapshots));
        let ragged = vec![vec![c(1.0, 0.0)], vec![c(1.0, 0.0), c(0.0, 1.0)]];
        assert_eq!(
            sample_covariance(&ragged),
            Err(CovarianceError::RaggedSnapshots)
        );
    }

    #[test]
    fn forward_backward_preserves_hermitian_and_trace() {
        let snaps: Vec<Vec<Complex64>> = (0..10)
            .map(|i| {
                vec![
                    Complex64::cis(i as f64),
                    Complex64::cis(2.0 * i as f64),
                    c(1.0, 0.0),
                ]
            })
            .collect();
        let r = sample_covariance(&snaps).unwrap();
        let fb = forward_backward(&r);
        assert!(fb.is_hermitian(1e-12));
        assert!((fb.trace().re - r.trace().re).abs() < 1e-9);
    }

    #[test]
    fn smoothing_reduces_order() {
        let snaps: Vec<Vec<Complex64>> = (0..16)
            .map(|i| {
                let t = i as f64;
                vec![
                    Complex64::cis(t),
                    Complex64::cis(t + 1.0),
                    Complex64::cis(t + 2.0),
                ]
            })
            .collect();
        let r = spatially_smoothed_covariance(&snaps, 2).unwrap();
        assert_eq!(r.rows(), 2);
        assert!(r.is_hermitian(1e-12));
    }

    #[test]
    fn smoothing_rejects_bad_lengths() {
        let snaps = vec![vec![c(1.0, 0.0); 3]];
        assert_eq!(
            spatially_smoothed_covariance(&snaps, 1),
            Err(CovarianceError::BadSubarrayLength)
        );
        assert_eq!(
            spatially_smoothed_covariance(&snaps, 4),
            Err(CovarianceError::BadSubarrayLength)
        );
    }

    /// Deterministic snapshot stream used by the sliding-window tests.
    fn stream(n: usize) -> Vec<Vec<Complex64>> {
        (0..n)
            .map(|i| {
                let t = i as f64 * 0.61;
                vec![
                    Complex64::cis(t),
                    Complex64::cis(1.9 * t) * 0.7,
                    c(t.sin() * 0.4, t.cos()),
                ]
            })
            .collect()
    }

    fn assert_bitwise_eq(a: &CMatrix, b: &CMatrix, what: &str) {
        for r in 0..a.rows() {
            for col in 0..a.cols() {
                assert_eq!(
                    a[(r, col)].re.to_bits(),
                    b[(r, col)].re.to_bits(),
                    "{what}: re mismatch at ({r},{col})"
                );
                assert_eq!(
                    a[(r, col)].im.to_bits(),
                    b[(r, col)].im.to_bits(),
                    "{what}: im mismatch at ({r},{col})"
                );
            }
        }
    }

    #[test]
    fn sliding_is_bitwise_batch_before_first_downdate() {
        // Filling a fresh (or reset) accumulator runs the identical
        // zeros → axpy_outer → scale sequence as the batch estimator.
        let snaps = stream(25);
        let mut sliding = SlidingCovariance::new(3, 25);
        for x in &snaps {
            sliding.push(x);
        }
        let incr = sliding.covariance().unwrap();
        let batch = sample_covariance(&snaps).unwrap();
        assert_bitwise_eq(&incr, &batch, "pre-downdate sliding vs batch");

        // reset() restores the bitwise-batch regime.
        sliding.reset();
        for x in &snaps[5..20] {
            sliding.push(x);
        }
        let incr = sliding.covariance().unwrap();
        let batch = sample_covariance(&snaps[5..20]).unwrap();
        assert_bitwise_eq(&incr, &batch, "post-reset sliding vs batch");
    }

    #[test]
    fn sliding_tracks_trailing_window_through_downdates() {
        let snaps = stream(80);
        let cap = 12;
        let mut sliding = SlidingCovariance::new(3, cap);
        for (i, x) in snaps.iter().enumerate() {
            sliding.push(x);
            let start = (i + 1).saturating_sub(cap);
            let batch = sample_covariance(&snaps[start..=i]).unwrap();
            let incr = sliding.covariance().unwrap();
            let err = (&incr - &batch).frobenius_norm();
            let tol = 1e-12 * (1.0 + batch.frobenius_norm());
            assert!(err <= tol, "after push {i}: drift {err} > {tol}");
        }
        assert_eq!(sliding.len(), cap);
    }

    #[test]
    fn forced_rebuild_restores_bitwise_batch_at_the_boundary() {
        let snaps = stream(40);
        let cap = 8;
        let every = 5;
        let mut sliding = SlidingCovariance::with_rebuild_every(3, cap, every);
        for (i, x) in snaps.iter().enumerate() {
            sliding.push(x);
            let downdates = (i + 1).saturating_sub(cap);
            if downdates > 0 && downdates % every == 0 {
                // A rebuild just ran: the accumulator re-summed the
                // retained window in arrival order, exactly the batch
                // loop, so agreement is bitwise — not merely close.
                let batch = sample_covariance(&snaps[i + 1 - cap..=i]).unwrap();
                let incr = sliding.covariance().unwrap();
                assert_bitwise_eq(&incr, &batch, "post-rebuild sliding vs batch");
            }
        }
    }

    #[test]
    fn downdates_remove_retired_snapshots_entirely() {
        // Push a burst of large "stale" snapshots, then slide fully past
        // them: the result must match a batch estimate that never saw
        // the burst (to rebuild-bounded precision).
        let mut stale = stream(10);
        for x in &mut stale {
            for z in x.iter_mut() {
                *z *= 50.0;
            }
        }
        let fresh = stream(6);
        let mut sliding = SlidingCovariance::new(3, 6);
        for x in stale.iter().chain(&fresh) {
            sliding.push(x);
        }
        let incr = sliding.covariance().unwrap();
        let batch = sample_covariance(&fresh).unwrap();
        let err = (&incr - &batch).frobenius_norm();
        // The downdated burst was 50× the surviving snapshots, so the
        // tolerance scales with the cancelled magnitude (2500× power),
        // still far below anything detection-relevant.
        let tol = 1e-10 * (1.0 + batch.frobenius_norm());
        assert!(err <= tol, "stale burst left drift {err} > {tol}");
    }

    #[test]
    fn sliding_fb_and_smoothing_compose_on_the_window() {
        let snaps = stream(30);
        let cap = 16;
        let mut sliding = SlidingCovariance::new(3, cap);
        for x in &snaps {
            sliding.push(x);
        }
        let trailing = &snaps[snaps.len() - cap..];
        let fb_incr = sliding.covariance_fb().unwrap();
        let fb_batch = forward_backward(&sample_covariance(trailing).unwrap());
        assert!(
            (&fb_incr - &fb_batch).frobenius_norm() <= 1e-12 * (1.0 + fb_batch.frobenius_norm())
        );

        let sm_incr = sliding.smoothed_covariance(2).unwrap();
        let sm_batch = spatially_smoothed_covariance(trailing, 2).unwrap();
        // Smoothing recomputes from the retained window: bitwise.
        assert_bitwise_eq(&sm_incr, &sm_batch, "sliding smoothing vs batch");
    }

    #[test]
    fn sliding_empty_window_errors_and_counters_move() {
        let mut sliding = SlidingCovariance::new(2, 4);
        assert!(sliding.is_empty());
        assert_eq!(sliding.covariance(), Err(CovarianceError::NoSnapshots));

        let updates = mpdf_obs::metrics::counter("music.cov_incremental_updates");
        let rebuilds = mpdf_obs::metrics::counter("music.cov_full_rebuilds");
        let (u0, r0) = (updates.get(), rebuilds.get());
        let mut forced = SlidingCovariance::with_rebuild_every(2, 2, 1);
        let snaps = [
            vec![c(1.0, 0.0), c(0.0, 1.0)],
            vec![c(0.5, 0.5), c(1.0, 0.0)],
            vec![c(0.0, -1.0), c(0.25, 0.0)],
        ];
        for x in &snaps {
            forced.push(x);
        }
        let _ = forced.covariance().unwrap();
        // Other tests share the process-global counters, so assert
        // monotone floors rather than exact deltas.
        assert!(updates.get() - u0 >= 3, "one update per push");
        assert!(rebuilds.get() - r0 >= 1, "third push downdates → rebuild");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// The in-place `axpy_outer` accumulator must reproduce the
            /// naive outer-product-and-add formulation it replaced.
            #[test]
            fn accumulator_matches_outer_product_formulation(
                parts in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 24),
            ) {
                let snaps: Vec<Vec<Complex64>> = parts
                    .chunks(3)
                    .map(|chunk| {
                        chunk
                            .iter()
                            .map(|&(re, im)| Complex64::new(re, im))
                            .collect()
                    })
                    .collect();
                let fast = sample_covariance(&snaps).unwrap();
                // The pre-optimization formulation, verbatim.
                let mut slow = CMatrix::zeros(3, 3);
                for x in &snaps {
                    let outer = CMatrix::outer(x, x);
                    slow = &slow + &outer;
                }
                let slow = slow.scale(1.0 / snaps.len() as f64);
                prop_assert!(
                    (&fast - &slow).frobenius_norm() <= 1e-12,
                    "accumulator drifted from outer-product formulation by {}",
                    (&fast - &slow).frobenius_norm()
                );
            }

            /// The Hermitian contracts wired into the estimators hold
            /// for arbitrary bounded snapshot sets.
            #[test]
            fn random_snapshot_covariances_are_hermitian(
                parts in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 12),
            ) {
                let snaps: Vec<Vec<Complex64>> = parts
                    .chunks(3)
                    .map(|chunk| {
                        chunk
                            .iter()
                            .map(|&(re, im)| Complex64::new(re, im))
                            .collect()
                    })
                    .collect();
                let r = sample_covariance(&snaps).unwrap();
                prop_assert!(r.is_hermitian(1e-9));
                let fb = forward_backward(&r);
                prop_assert!(fb.is_hermitian(1e-9));
                // Diagonal powers stay real and non-negative.
                for i in 0..3 {
                    prop_assert!(r[(i, i)].re >= 0.0);
                    prop_assert!(r[(i, i)].im.abs() < 1e-12);
                }
            }

            /// ULP-pinned equivalence of the sliding accumulator against
            /// batch [`sample_covariance`] of the trailing window, at
            /// every stream position: before the window fills, across
            /// downdates of arbitrary retired snapshots, and through
            /// forced-rebuild boundaries.
            #[test]
            fn sliding_matches_batch_at_every_position(
                parts in proptest::collection::vec((-2.0f64..2.0, -2.0f64..2.0), 30..=90),
                cap in 2usize..8,
                every in 1usize..6,
            ) {
                let snaps: Vec<Vec<Complex64>> = parts
                    .chunks_exact(3)
                    .map(|chunk| {
                        chunk
                            .iter()
                            .map(|&(re, im)| Complex64::new(re, im))
                            .collect()
                    })
                    .collect();
                let mut sliding = SlidingCovariance::with_rebuild_every(3, cap, every);
                for (i, x) in snaps.iter().enumerate() {
                    sliding.push(x);
                    let start = (i + 1).saturating_sub(cap);
                    let batch = sample_covariance(&snaps[start..=i]).unwrap();
                    let incr = sliding.covariance().unwrap();
                    let err = (&incr - &batch).frobenius_norm();
                    let tol = 1e-12 * (1.0 + batch.frobenius_norm());
                    prop_assert!(
                        err <= tol,
                        "push {i} (cap {cap}, rebuild_every {every}): drift {err} > {tol}"
                    );
                    let downdates = (i + 1).saturating_sub(cap);
                    if downdates == 0 || (downdates % every == 0) {
                        // Bitwise regimes: before any downdate, and
                        // immediately after a forced rebuild.
                        for r in 0..3 {
                            for c in 0..3 {
                                prop_assert_eq!(
                                    incr[(r, c)].re.to_bits(),
                                    batch[(r, c)].re.to_bits()
                                );
                                prop_assert_eq!(
                                    incr[(r, c)].im.to_bits(),
                                    batch[(r, c)].im.to_bits()
                                );
                            }
                        }
                    }
                }
            }

            /// Downdating fully past the window erases retired snapshots:
            /// a stream prefix the window has slid past cannot influence
            /// the estimate beyond rebuild-bounded drift.
            #[test]
            fn downdate_past_window_forgets_the_prefix(
                prefix in proptest::collection::vec((-5.0f64..5.0, -5.0f64..5.0), 6..=24),
                suffix in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 9..=15),
            ) {
                let to_snaps = |parts: &[(f64, f64)]| -> Vec<Vec<Complex64>> {
                    parts
                        .chunks_exact(3)
                        .map(|chunk| {
                            chunk
                                .iter()
                                .map(|&(re, im)| Complex64::new(re, im))
                                .collect()
                        })
                        .collect()
                };
                let prefix = to_snaps(&prefix);
                let suffix = to_snaps(&suffix);
                let cap = suffix.len();
                let mut sliding = SlidingCovariance::new(3, cap);
                for x in prefix.iter().chain(&suffix) {
                    sliding.push(x);
                }
                let incr = sliding.covariance().unwrap();
                let batch = sample_covariance(&suffix).unwrap();
                let err = (&incr - &batch).frobenius_norm();
                // Tolerance scales with the magnitude of what was
                // cancelled (prefix power ≤ 50 per snapshot entry pair).
                let tol = 1e-11 * (1.0 + batch.frobenius_norm());
                prop_assert!(err <= tol, "prefix leaked: drift {err} > {tol}");
            }
        }
    }

    #[test]
    fn smoothing_decorrelates_coherent_sources() {
        // Two fully coherent plane waves on a 3-element λ/2 ULA: the plain
        // covariance is rank-1; smoothing restores rank 2.
        let theta1: f64 = 0.2;
        let theta2: f64 = -0.7;
        let steer =
            |theta: f64, m: usize| Complex64::cis(-std::f64::consts::PI * m as f64 * theta.sin());
        let snaps: Vec<Vec<Complex64>> = (0..32)
            .map(|i| {
                let s = Complex64::cis(i as f64 * 0.9); // same symbol on both paths (coherent)
                (0..3)
                    .map(|m| s * steer(theta1, m) + s * steer(theta2, m) * 0.8)
                    .collect()
            })
            .collect();
        let plain = sample_covariance(&snaps).unwrap();
        let eig_plain = mpdf_rfmath::eig::hermitian_eig(&plain, 1e-12).unwrap();
        // Coherent: second eigenvalue collapses.
        assert!(eig_plain.values[1] < 1e-6 * eig_plain.values[0]);
        let smooth = spatially_smoothed_covariance(&snaps, 2).unwrap();
        let eig_smooth = mpdf_rfmath::eig::hermitian_eig(&smooth, 1e-12).unwrap();
        assert!(
            eig_smooth.values[1] > 1e-3 * eig_smooth.values[0],
            "smoothing must restore rank: {:?}",
            eig_smooth.values
        );
    }
}
