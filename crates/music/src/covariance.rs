//! Sample covariance estimation.
//!
//! MUSIC operates on the spatial covariance `R = E[x xᴴ]` of array
//! snapshots. On WiFi, snapshots are per-subcarrier CSI columns — 30 per
//! packet on the Intel 5300 — so even one packet yields a usable estimate.
//! Forward–backward averaging improves conditioning for the coherent
//! (fully correlated) signals multipath produces.

use std::error::Error;
use std::fmt;

use mpdf_rfmath::complex::Complex64;
use mpdf_rfmath::contract;
use mpdf_rfmath::matrix::CMatrix;

/// Error returned by covariance estimation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CovarianceError {
    /// No snapshots were provided.
    NoSnapshots,
    /// Snapshots have inconsistent lengths.
    RaggedSnapshots,
    /// A subarray length was invalid for smoothing.
    BadSubarrayLength,
}

impl fmt::Display for CovarianceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CovarianceError::NoSnapshots => write!(f, "no snapshots provided"),
            CovarianceError::RaggedSnapshots => write!(f, "snapshots have differing lengths"),
            CovarianceError::BadSubarrayLength => {
                write!(f, "subarray length must be in 2..=elements")
            }
        }
    }
}

impl Error for CovarianceError {}

/// Sample covariance `R = (1/N) Σ x_n x_nᴴ` of equal-length snapshots.
///
/// # Errors
/// [`CovarianceError::NoSnapshots`] / [`CovarianceError::RaggedSnapshots`].
pub fn sample_covariance(snapshots: &[Vec<Complex64>]) -> Result<CMatrix, CovarianceError> {
    let _stage = mpdf_obs::stage!("music.covariance");
    let first = snapshots.first().ok_or(CovarianceError::NoSnapshots)?;
    let m = first.len();
    if m == 0 || snapshots.iter().any(|s| s.len() != m) {
        return Err(CovarianceError::RaggedSnapshots);
    }
    let mut r = CMatrix::zeros(m, m);
    for x in snapshots {
        // In-place rank-1 accumulation: no temporary matrix per snapshot.
        r.axpy_outer(x, x);
    }
    r.scale_in_place(1.0 / snapshots.len() as f64);
    contract::assert_hermitian("sample covariance", &r, 1e-9 * (1.0 + r.trace().norm()));
    Ok(r)
}

/// Forward–backward averaging: `R_fb = (R + J·R*·J)/2` with `J` the
/// exchange matrix. Decorrelates coherent sources on symmetric arrays.
///
/// # Panics
/// Panics if `r` is not square.
pub fn forward_backward(r: &CMatrix) -> CMatrix {
    assert!(r.is_square(), "covariance must be square");
    let m = r.rows();
    let flipped = CMatrix::from_fn(m, m, |i, j| r[(m - 1 - i, m - 1 - j)].conj());
    let fb = (r + &flipped).scale(0.5);
    contract::assert_hermitian(
        "forward–backward covariance",
        &fb,
        1e-9 * (1.0 + fb.trace().norm()),
    );
    fb
}

/// Spatially smoothed covariance: averages the covariances of all
/// contiguous subarrays of length `subarray_len`. The paper (§IV-B1)
/// notes this "relegates three antennas to only two" — the output order
/// is `subarray_len`, trading aperture for coherence handling.
///
/// # Errors
/// [`CovarianceError::BadSubarrayLength`] unless
/// `2 ≤ subarray_len ≤ element count`, plus the [`sample_covariance`]
/// conditions.
pub fn spatially_smoothed_covariance(
    snapshots: &[Vec<Complex64>],
    subarray_len: usize,
) -> Result<CMatrix, CovarianceError> {
    let first = snapshots.first().ok_or(CovarianceError::NoSnapshots)?;
    let m = first.len();
    if subarray_len < 2 || subarray_len > m {
        return Err(CovarianceError::BadSubarrayLength);
    }
    let num_sub = m - subarray_len + 1;
    let mut acc = CMatrix::zeros(subarray_len, subarray_len);
    for start in 0..num_sub {
        let sub: Vec<Vec<Complex64>> = snapshots
            .iter()
            .map(|s| {
                if s.len() != m {
                    Vec::new()
                } else {
                    s[start..start + subarray_len].to_vec()
                }
            })
            .collect();
        if sub.iter().any(|s| s.len() != subarray_len) {
            return Err(CovarianceError::RaggedSnapshots);
        }
        let r = sample_covariance(&sub)?;
        acc = &acc + &r;
    }
    Ok(acc.scale(1.0 / num_sub as f64))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> Complex64 {
        Complex64::new(re, im)
    }

    #[test]
    fn covariance_of_single_snapshot_is_outer_product() {
        let x = vec![c(1.0, 0.0), c(0.0, 1.0)];
        let r = sample_covariance(std::slice::from_ref(&x)).unwrap();
        assert_eq!(r[(0, 0)], c(1.0, 0.0));
        assert_eq!(r[(0, 1)], c(0.0, -1.0));
        assert_eq!(r[(1, 0)], c(0.0, 1.0));
        assert_eq!(r[(1, 1)], c(1.0, 0.0));
    }

    #[test]
    fn covariance_is_hermitian_psd() {
        let snaps: Vec<Vec<Complex64>> = (0..20)
            .map(|i| {
                let t = i as f64 * 0.37;
                vec![
                    Complex64::cis(t),
                    Complex64::cis(1.7 * t) * 0.5,
                    c(t.sin(), t.cos()),
                ]
            })
            .collect();
        let r = sample_covariance(&snaps).unwrap();
        assert!(r.is_hermitian(1e-12));
        // Diagonal is real non-negative.
        for i in 0..3 {
            assert!(r[(i, i)].re >= 0.0);
            assert!(r[(i, i)].im.abs() < 1e-12);
        }
        // Quadratic form non-negative for arbitrary vector.
        let v = [c(0.3, -0.2), c(1.0, 0.1), c(-0.4, 0.8)];
        assert!(r.quadratic_form(&v).re >= -1e-12);
    }

    #[test]
    fn errors_on_bad_input() {
        assert_eq!(sample_covariance(&[]), Err(CovarianceError::NoSnapshots));
        let ragged = vec![vec![c(1.0, 0.0)], vec![c(1.0, 0.0), c(0.0, 1.0)]];
        assert_eq!(
            sample_covariance(&ragged),
            Err(CovarianceError::RaggedSnapshots)
        );
    }

    #[test]
    fn forward_backward_preserves_hermitian_and_trace() {
        let snaps: Vec<Vec<Complex64>> = (0..10)
            .map(|i| {
                vec![
                    Complex64::cis(i as f64),
                    Complex64::cis(2.0 * i as f64),
                    c(1.0, 0.0),
                ]
            })
            .collect();
        let r = sample_covariance(&snaps).unwrap();
        let fb = forward_backward(&r);
        assert!(fb.is_hermitian(1e-12));
        assert!((fb.trace().re - r.trace().re).abs() < 1e-9);
    }

    #[test]
    fn smoothing_reduces_order() {
        let snaps: Vec<Vec<Complex64>> = (0..16)
            .map(|i| {
                let t = i as f64;
                vec![
                    Complex64::cis(t),
                    Complex64::cis(t + 1.0),
                    Complex64::cis(t + 2.0),
                ]
            })
            .collect();
        let r = spatially_smoothed_covariance(&snaps, 2).unwrap();
        assert_eq!(r.rows(), 2);
        assert!(r.is_hermitian(1e-12));
    }

    #[test]
    fn smoothing_rejects_bad_lengths() {
        let snaps = vec![vec![c(1.0, 0.0); 3]];
        assert_eq!(
            spatially_smoothed_covariance(&snaps, 1),
            Err(CovarianceError::BadSubarrayLength)
        );
        assert_eq!(
            spatially_smoothed_covariance(&snaps, 4),
            Err(CovarianceError::BadSubarrayLength)
        );
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// The in-place `axpy_outer` accumulator must reproduce the
            /// naive outer-product-and-add formulation it replaced.
            #[test]
            fn accumulator_matches_outer_product_formulation(
                parts in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 24),
            ) {
                let snaps: Vec<Vec<Complex64>> = parts
                    .chunks(3)
                    .map(|chunk| {
                        chunk
                            .iter()
                            .map(|&(re, im)| Complex64::new(re, im))
                            .collect()
                    })
                    .collect();
                let fast = sample_covariance(&snaps).unwrap();
                // The pre-optimization formulation, verbatim.
                let mut slow = CMatrix::zeros(3, 3);
                for x in &snaps {
                    let outer = CMatrix::outer(x, x);
                    slow = &slow + &outer;
                }
                let slow = slow.scale(1.0 / snaps.len() as f64);
                prop_assert!(
                    (&fast - &slow).frobenius_norm() <= 1e-12,
                    "accumulator drifted from outer-product formulation by {}",
                    (&fast - &slow).frobenius_norm()
                );
            }

            /// The Hermitian contracts wired into the estimators hold
            /// for arbitrary bounded snapshot sets.
            #[test]
            fn random_snapshot_covariances_are_hermitian(
                parts in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 12),
            ) {
                let snaps: Vec<Vec<Complex64>> = parts
                    .chunks(3)
                    .map(|chunk| {
                        chunk
                            .iter()
                            .map(|&(re, im)| Complex64::new(re, im))
                            .collect()
                    })
                    .collect();
                let r = sample_covariance(&snaps).unwrap();
                prop_assert!(r.is_hermitian(1e-9));
                let fb = forward_backward(&r);
                prop_assert!(fb.is_hermitian(1e-9));
                // Diagonal powers stay real and non-negative.
                for i in 0..3 {
                    prop_assert!(r[(i, i)].re >= 0.0);
                    prop_assert!(r[(i, i)].im.abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn smoothing_decorrelates_coherent_sources() {
        // Two fully coherent plane waves on a 3-element λ/2 ULA: the plain
        // covariance is rank-1; smoothing restores rank 2.
        let theta1: f64 = 0.2;
        let theta2: f64 = -0.7;
        let steer =
            |theta: f64, m: usize| Complex64::cis(-std::f64::consts::PI * m as f64 * theta.sin());
        let snaps: Vec<Vec<Complex64>> = (0..32)
            .map(|i| {
                let s = Complex64::cis(i as f64 * 0.9); // same symbol on both paths (coherent)
                (0..3)
                    .map(|m| s * steer(theta1, m) + s * steer(theta2, m) * 0.8)
                    .collect()
            })
            .collect();
        let plain = sample_covariance(&snaps).unwrap();
        let eig_plain = mpdf_rfmath::eig::hermitian_eig(&plain, 1e-12).unwrap();
        // Coherent: second eigenvalue collapses.
        assert!(eig_plain.values[1] < 1e-6 * eig_plain.values[0]);
        let smooth = spatially_smoothed_covariance(&snaps, 2).unwrap();
        let eig_smooth = mpdf_rfmath::eig::hermitian_eig(&smooth, 1e-12).unwrap();
        assert!(
            eig_smooth.values[1] > 1e-3 * eig_smooth.values[0],
            "smoothing must restore rank: {:?}",
            eig_smooth.values
        );
    }
}
