//! The MUSIC angle-of-arrival estimator (Schmidt \[23\]; paper §IV-B1).
//!
//! Given the array covariance, MUSIC splits eigenvectors into signal and
//! noise subspaces and scans a steering-vector grid:
//!
//! `P(θ) = 1 / (a(θ)ᴴ E_N E_Nᴴ a(θ))`
//!
//! Peaks of the pseudospectrum mark arrival angles. With three antennas
//! the paper can resolve at most two paths — enough to separate the LOS
//! from the dominant wall reflection (Fig. 5b).

use std::error::Error;
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

use serde::{Deserialize, Serialize};

use mpdf_rfmath::complex::Complex64;
use mpdf_rfmath::contract;
use mpdf_rfmath::eig::{hermitian_eig, EigError};
use mpdf_rfmath::matrix::CMatrix;

use crate::covariance::CovarianceError;

/// Error returned by the MUSIC estimator.
#[derive(Debug, Clone, PartialEq)]
pub enum MusicError {
    /// The requested signal dimension leaves no noise subspace.
    SignalDimTooLarge {
        /// Requested number of sources.
        sources: usize,
        /// Array order.
        elements: usize,
    },
    /// Eigendecomposition failed.
    Eig(EigError),
    /// Covariance estimation failed.
    Covariance(CovarianceError),
}

impl fmt::Display for MusicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MusicError::SignalDimTooLarge { sources, elements } => write!(
                f,
                "cannot estimate {sources} sources with {elements} antennas"
            ),
            MusicError::Eig(e) => write!(f, "eigendecomposition failed: {e}"),
            MusicError::Covariance(e) => write!(f, "covariance failed: {e}"),
        }
    }
}

impl Error for MusicError {}

impl From<EigError> for MusicError {
    fn from(e: EigError) -> Self {
        MusicError::Eig(e)
    }
}

impl From<CovarianceError> for MusicError {
    fn from(e: CovarianceError) -> Self {
        MusicError::Covariance(e)
    }
}

/// Steering model of a uniform linear array, parameterized by spacing in
/// wavelengths (0.5 for the paper's λ/2 array).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UlaSteering {
    elements: usize,
    spacing_wavelengths: f64,
}

impl UlaSteering {
    /// Creates a steering model.
    ///
    /// # Panics
    /// Panics if `elements < 2` or spacing is non-positive.
    pub fn new(elements: usize, spacing_wavelengths: f64) -> Self {
        assert!(elements >= 2, "need at least two elements");
        assert!(spacing_wavelengths > 0.0, "spacing must be positive");
        UlaSteering {
            elements,
            spacing_wavelengths,
        }
    }

    /// The paper's array: 3 elements at λ/2.
    pub fn three_half_wavelength() -> Self {
        UlaSteering::new(3, 0.5)
    }

    /// Number of elements.
    pub fn elements(&self) -> usize {
        self.elements
    }

    /// Element spacing in wavelengths.
    pub fn spacing_wavelengths(&self) -> f64 {
        self.spacing_wavelengths
    }

    /// Steering model of the sub-array keeping the elements in `idx`
    /// (ascending physical indices). Only an equispaced subset of a ULA is
    /// itself a ULA — the survivors of a single antenna-chain dropout on
    /// the 3-element array always are.
    ///
    /// # Panics
    /// Panics if `idx` has fewer than two elements, is not strictly
    /// ascending and equispaced, or indexes past the array.
    pub fn subset(&self, idx: &[usize]) -> UlaSteering {
        assert!(idx.len() >= 2, "need at least two elements");
        assert!(
            idx[idx.len() - 1] < self.elements,
            "subset index out of range"
        );
        assert!(idx[1] > idx[0], "indices must be strictly ascending");
        let gap = idx[1] - idx[0];
        for w in idx.windows(2) {
            assert_eq!(w[1] - w[0], gap, "subset must remain equispaced");
        }
        UlaSteering::new(idx.len(), self.spacing_wavelengths * gap as f64)
    }

    /// Steering vector at incidence angle `theta` radians (from broadside),
    /// centred like the physical array in `mpdf-wifi`.
    pub fn vector(&self, theta: f64) -> Vec<Complex64> {
        let mid = (self.elements as f64 - 1.0) / 2.0;
        (0..self.elements)
            .map(|m| {
                let phase = -std::f64::consts::TAU
                    * self.spacing_wavelengths
                    * (m as f64 - mid)
                    * theta.sin();
                Complex64::cis(phase)
            })
            .collect()
    }
}

/// An angular scan grid in degrees.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AngleGrid {
    /// First angle (degrees).
    pub start_deg: f64,
    /// Last angle (degrees), inclusive.
    pub end_deg: f64,
    /// Step (degrees).
    pub step_deg: f64,
}

impl AngleGrid {
    /// The paper's scan: −90° to 90°.
    pub fn full_front(step_deg: f64) -> Self {
        AngleGrid {
            start_deg: -90.0,
            end_deg: 90.0,
            step_deg,
        }
    }

    /// All angles on the grid.
    ///
    /// # Panics
    /// Panics if the step is non-positive or the range is inverted.
    pub fn angles_deg(&self) -> Vec<f64> {
        assert!(self.step_deg > 0.0, "grid step must be positive");
        assert!(self.end_deg >= self.start_deg, "grid range inverted");
        // lint: allow(lossy-cast) — span/step is non-negative and small (asserted above)
        let n = ((self.end_deg - self.start_deg) / self.step_deg).round() as usize + 1;
        (0..n)
            .map(|i| self.start_deg + i as f64 * self.step_deg)
            .collect()
    }
}

impl Default for AngleGrid {
    fn default() -> Self {
        AngleGrid::full_front(1.0)
    }
}

/// Precomputed steering vectors for one `(UlaSteering, AngleGrid)` pair.
///
/// Every angle scan — MUSIC pseudospectrum or Bartlett spectrum — walks
/// the same grid with the same array model, evaluating `elements` complex
/// exponentials per grid point. This table hoists those `cis` calls out
/// of the per-decision hot path: build (or fetch from the process-wide
/// cache) once, then each scan is a pure quadratic form per angle with
/// zero allocation and zero trig.
#[derive(Debug, Clone, PartialEq)]
pub struct SteeringTable {
    steering: UlaSteering,
    grid: AngleGrid,
    angles_deg: Vec<f64>,
    /// Flattened row-major `angles × elements` steering vectors.
    vectors: Vec<Complex64>,
}

/// Process-wide steering-table cache. Campaigns use a handful of
/// `(steering, grid)` pairs, so a bounded linear-scan vector suffices;
/// both key types are small `Copy` values compared by exact equality.
static STEERING_CACHE: OnceLock<Mutex<Vec<Arc<SteeringTable>>>> = OnceLock::new();

/// Cap on distinct cached tables; beyond this the oldest entry is
/// evicted (protects long sweeps over many ad-hoc grids from unbounded
/// growth).
const STEERING_CACHE_CAP: usize = 16;

impl SteeringTable {
    /// Builds the table for a steering model over a grid.
    ///
    /// # Panics
    /// Propagates [`AngleGrid::angles_deg`]'s panics on degenerate grids.
    pub fn new(steering: &UlaSteering, grid: &AngleGrid) -> Self {
        let angles_deg = grid.angles_deg();
        let m = steering.elements();
        let mut vectors = Vec::with_capacity(angles_deg.len() * m);
        for &deg in &angles_deg {
            vectors.extend_from_slice(&steering.vector(deg.to_radians()));
        }
        SteeringTable {
            steering: *steering,
            grid: *grid,
            angles_deg,
            vectors,
        }
    }

    /// Fetches the shared table for `(steering, grid)`, building and
    /// caching it on first use. Keys are compared by exact equality, so
    /// a cached table is always bit-identical to a freshly built one.
    ///
    /// # Panics
    /// Propagates [`SteeringTable::new`]'s panics on degenerate grids.
    pub fn cached(steering: &UlaSteering, grid: &AngleGrid) -> Arc<SteeringTable> {
        let cache = STEERING_CACHE.get_or_init(|| Mutex::new(Vec::new()));
        // Cached tables are immutable once inserted, so a poisoned lock
        // cannot hold corrupt data — recover instead of panicking.
        let mut tables = cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(t) = tables
            .iter()
            .find(|t| t.steering == *steering && t.grid == *grid)
        {
            return Arc::clone(t);
        }
        let t = Arc::new(SteeringTable::new(steering, grid));
        if tables.len() >= STEERING_CACHE_CAP {
            tables.remove(0);
        }
        tables.push(Arc::clone(&t));
        t
    }

    /// The steering model the table was built from.
    pub fn steering(&self) -> &UlaSteering {
        &self.steering
    }

    /// The angle grid the table was built on.
    pub fn grid(&self) -> &AngleGrid {
        &self.grid
    }

    /// Scan angles in degrees.
    pub fn angles_deg(&self) -> &[f64] {
        &self.angles_deg
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.angles_deg.len()
    }

    /// True when the grid has no points (unreachable for grids built by
    /// [`AngleGrid::angles_deg`], which always yields ≥ 1 point).
    pub fn is_empty(&self) -> bool {
        self.angles_deg.is_empty()
    }

    /// Steering vector at grid index `idx`.
    ///
    /// # Panics
    /// Panics if `idx` is out of bounds.
    pub fn vector(&self, idx: usize) -> &[Complex64] {
        let m = self.steering.elements();
        &self.vectors[idx * m..(idx + 1) * m]
    }
}

/// A MUSIC pseudospectrum: paired angles (degrees) and values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pseudospectrum {
    angles_deg: Vec<f64>,
    values: Vec<f64>,
}

impl Pseudospectrum {
    /// Creates a pseudospectrum from parallel vectors.
    ///
    /// # Panics
    /// Panics on length mismatch or empty input.
    pub fn new(angles_deg: Vec<f64>, values: Vec<f64>) -> Self {
        assert_eq!(angles_deg.len(), values.len(), "length mismatch");
        assert!(!angles_deg.is_empty(), "empty pseudospectrum");
        Pseudospectrum { angles_deg, values }
    }

    /// Scan angles in degrees.
    pub fn angles_deg(&self) -> &[f64] {
        &self.angles_deg
    }

    /// Pseudospectrum values (linear).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Value at the grid point closest to `angle_deg`.
    ///
    /// Scan grids are uniform ([`AngleGrid::angles_deg`] constructs them
    /// with a fixed step), so the nearest index is O(1) arithmetic —
    /// not an O(N) distance scan. Out-of-range angles clamp to the grid
    /// ends, matching the nearest-point semantics of the scan it
    /// replaced.
    pub fn value_at(&self, angle_deg: f64) -> f64 {
        let n = self.angles_deg.len();
        // The constructor rejects empty input, so n >= 1.
        if n == 1 {
            return self.values[0];
        }
        let start = self.angles_deg[0];
        let step = (self.angles_deg[n - 1] - start) / (n - 1) as f64;
        if !(step.is_finite() && step > 0.0 && angle_deg.is_finite()) {
            // Degenerate (all-equal or non-monotone) grid, or NaN query:
            // the first point is the only defensible answer.
            return self.values[0];
        }
        let idx = ((angle_deg - start) / step)
            .round()
            .clamp(0.0, (n - 1) as f64);
        // lint: allow(lossy-cast) — clamped to [0, n-1] on the line above
        self.values[idx as usize]
    }

    /// Normalizes the peak value to 1 (for plotting/weighting).
    pub fn normalized(&self) -> Pseudospectrum {
        let peak = self
            .values
            .iter()
            .cloned()
            .fold(f64::MIN_POSITIVE, f64::max);
        Pseudospectrum {
            angles_deg: self.angles_deg.clone(),
            values: self.values.iter().map(|v| v / peak).collect(),
        }
    }

    /// Local maxima sorted by descending value, up to `max_peaks`, keeping
    /// only peaks at least `min_rel` of the global maximum.
    pub fn peaks(&self, max_peaks: usize, min_rel: f64) -> Vec<(f64, f64)> {
        let n = self.values.len();
        if n == 0 || max_peaks == 0 {
            return Vec::new();
        }
        let global = self.values.iter().cloned().fold(f64::MIN, f64::max);
        let mut found: Vec<(f64, f64)> = Vec::new();
        for i in 0..n {
            let left = if i == 0 { f64::MIN } else { self.values[i - 1] };
            let right = if i == n - 1 {
                f64::MIN
            } else {
                self.values[i + 1]
            };
            let v = self.values[i];
            if v >= left && v > right && v >= min_rel * global {
                found.push((self.angles_deg[i], v));
            }
        }
        found.sort_by(|a, b| b.1.total_cmp(&a.1));
        found.truncate(max_peaks);
        found
    }
}

/// Computes the MUSIC pseudospectrum from a covariance matrix.
///
/// `num_sources` is the assumed signal-subspace dimension (paths to
/// resolve); it must be smaller than the array order.
///
/// # Errors
/// [`MusicError::SignalDimTooLarge`] or an eigendecomposition failure.
pub fn pseudospectrum(
    covariance: &CMatrix,
    steering: &UlaSteering,
    num_sources: usize,
    grid: &AngleGrid,
) -> Result<Pseudospectrum, MusicError> {
    let m = covariance.rows();
    if num_sources >= m {
        return Err(MusicError::SignalDimTooLarge {
            sources: num_sources,
            elements: m,
        });
    }
    contract::assert_hermitian(
        "MUSIC covariance",
        covariance,
        1e-9 * (1.0 + covariance.trace().norm()),
    );
    let eig = {
        let _stage = mpdf_obs::stage!("music.eig");
        hermitian_eig(covariance, 1e-10)
    }?;
    let en = eig.noise_subspace(num_sources);
    // Noise projector `E_N E_Nᴴ`, computed once per call: every grid
    // point then costs one allocation-free quadratic form against the
    // cached steering table.
    let projector = &en * &en.hermitian();
    let table = SteeringTable::cached(steering, grid);
    let values: Vec<f64> = {
        let _stage = mpdf_obs::stage!("music.scan");
        (0..table.len())
            .map(|i| {
                let denom = projector.quadratic_form(table.vector(i)).re.max(1e-12);
                1.0 / denom
            })
            .collect()
    };
    // The denominator is clamped away from zero, so the pseudospectrum
    // must come out strictly positive and finite.
    contract::assert_positive("MUSIC pseudospectrum", &values);
    Ok(Pseudospectrum::new(table.angles_deg().to_vec(), values))
}

/// The Bartlett (conventional beamformer) angular power spectrum:
/// `B(θ) = a(θ)ᴴ R a(θ)`.
///
/// Unlike the MUSIC pseudospectrum — which is scale-free and exists only
/// to locate angles — the Bartlett spectrum carries received *power* per
/// direction, so amplitude changes (e.g. a person shadowing the LOS)
/// remain visible. The detection pipeline compares Bartlett profiles;
/// MUSIC supplies the angles and the path weights.
///
/// # Errors
/// Returns [`MusicError::SignalDimTooLarge`] never; present for parity —
/// the only failure is a non-square covariance, reported via
/// [`MusicError::Covariance`].
pub fn bartlett_spectrum(
    covariance: &CMatrix,
    steering: &UlaSteering,
    grid: &AngleGrid,
) -> Result<Pseudospectrum, MusicError> {
    if !covariance.is_square() || covariance.rows() != steering.elements() {
        return Err(MusicError::Covariance(CovarianceError::RaggedSnapshots));
    }
    let table = SteeringTable::cached(steering, grid);
    let values: Vec<f64> = {
        // Same stage as the MUSIC scan: both walk the steering table, and
        // monitoring windows only take this Bartlett path.
        let _stage = mpdf_obs::stage!("music.scan");
        (0..table.len())
            .map(|i| covariance.quadratic_form(table.vector(i)).re.max(0.0))
            .collect()
    };
    contract::assert_non_negative("Bartlett spectrum", &values);
    Ok(Pseudospectrum::new(table.angles_deg().to_vec(), values))
}

/// One-call AoA estimation: covariance (with forward–backward averaging)
/// → pseudospectrum → peak angles in degrees, strongest first.
///
/// # Errors
/// Propagates covariance and MUSIC errors.
pub fn estimate_aoa(
    snapshots: &[Vec<Complex64>],
    steering: &UlaSteering,
    num_sources: usize,
    grid: &AngleGrid,
) -> Result<Vec<f64>, MusicError> {
    let r = crate::covariance::sample_covariance(snapshots)?;
    let r = crate::covariance::forward_backward(&r);
    let spec = pseudospectrum(&r, steering, num_sources, grid)?;
    Ok(spec
        .peaks(num_sources, 0.01)
        .into_iter()
        .map(|(a, _)| a)
        .collect())
}

#[cfg(test)]
mod tests {
    #[test]
    fn ula_subset_keeps_relative_phases() {
        let full = UlaSteering::three_half_wavelength();
        let sub = full.subset(&[0, 2]);
        assert_eq!(sub.elements(), 2);
        assert!((sub.spacing_wavelengths() - 1.0).abs() < 1e-15);
        // Relative phase between the surviving elements must match the
        // physical array at every angle (Bartlett is phase-offset free).
        for deg in [-60.0f64, -17.0, 0.0, 33.0, 80.0] {
            let theta = deg.to_radians();
            let v3 = full.vector(theta);
            let v2 = sub.vector(theta);
            let physical = v3[2] * v3[0].conj();
            let reduced = v2[1] * v2[0].conj();
            assert!((physical - reduced).norm() < 1e-12, "at {deg} deg");
        }
    }

    #[test]
    #[should_panic(expected = "equispaced")]
    fn ula_subset_rejects_non_equispaced() {
        UlaSteering::new(4, 0.5).subset(&[0, 1, 3]);
    }

    use super::*;

    /// Builds snapshots of plane waves at the given angles (radians),
    /// amplitudes, with small deterministic noise.
    fn plane_wave_snapshots(
        steering: &UlaSteering,
        sources: &[(f64, f64)],
        n: usize,
    ) -> Vec<Vec<Complex64>> {
        (0..n)
            .map(|i| {
                let mut x = vec![Complex64::ZERO; steering.elements()];
                for (s_idx, &(theta, amp)) in sources.iter().enumerate() {
                    // Distinct pseudo-random symbols per source.
                    let sym = Complex64::cis(1.7 * i as f64 + 2.9 * s_idx as f64) * amp;
                    for (m, a) in steering.vector(theta).into_iter().enumerate() {
                        x[m] += sym * a;
                    }
                }
                // Tiny noise floor keeps the covariance full rank.
                for (m, z) in x.iter_mut().enumerate() {
                    *z += Complex64::cis(0.13 * (i * 7 + m) as f64) * 1e-3;
                }
                x
            })
            .collect()
    }

    #[test]
    fn grid_generation() {
        let grid = AngleGrid::full_front(1.0);
        let angles = grid.angles_deg();
        assert_eq!(angles.len(), 181);
        assert_eq!(angles[0], -90.0);
        assert_eq!(angles[180], 90.0);
    }

    #[test]
    fn single_source_is_located() {
        let steering = UlaSteering::three_half_wavelength();
        let truth = 25.0f64;
        let snaps = plane_wave_snapshots(&steering, &[(truth.to_radians(), 1.0)], 64);
        let angles = estimate_aoa(&snaps, &steering, 1, &AngleGrid::full_front(0.5)).unwrap();
        assert!(!angles.is_empty());
        assert!(
            (angles[0] - truth).abs() < 2.0,
            "estimated {} vs truth {truth}",
            angles[0]
        );
    }

    #[test]
    fn two_incoherent_sources_resolved() {
        let steering = UlaSteering::three_half_wavelength();
        let snaps =
            plane_wave_snapshots(&steering, &[(0.0f64, 1.0), (50f64.to_radians(), 0.8)], 128);
        let angles = estimate_aoa(&snaps, &steering, 2, &AngleGrid::full_front(0.5)).unwrap();
        assert_eq!(angles.len(), 2);
        let mut sorted = angles.clone();
        sorted.sort_by(f64::total_cmp);
        assert!((sorted[0] - 0.0).abs() < 4.0, "{sorted:?}");
        assert!((sorted[1] - 50.0).abs() < 4.0, "{sorted:?}");
    }

    #[test]
    fn pseudospectrum_peaks_at_source() {
        let steering = UlaSteering::three_half_wavelength();
        let truth = -40.0f64;
        let snaps = plane_wave_snapshots(&steering, &[(truth.to_radians(), 1.0)], 64);
        let r = crate::covariance::sample_covariance(&snaps).unwrap();
        let spec = pseudospectrum(&r, &steering, 1, &AngleGrid::full_front(1.0)).unwrap();
        let at_truth = spec.value_at(truth);
        let far = spec.value_at(truth + 60.0);
        assert!(at_truth > 10.0 * far, "peak {at_truth} vs off-peak {far}");
        // Normalization maps the max to 1.
        let norm = spec.normalized();
        let max = norm.values().iter().cloned().fold(f64::MIN, f64::max);
        assert!((max - 1.0).abs() < 1e-12);
    }

    #[test]
    fn signal_dim_validation() {
        let r = CMatrix::identity(3);
        let steering = UlaSteering::three_half_wavelength();
        let err = pseudospectrum(&r, &steering, 3, &AngleGrid::default());
        assert!(matches!(err, Err(MusicError::SignalDimTooLarge { .. })));
    }

    #[test]
    fn white_noise_has_flat_spectrum() {
        // Identity covariance: no directionality — peak/median ratio small.
        let r = CMatrix::identity(3);
        let steering = UlaSteering::three_half_wavelength();
        let spec = pseudospectrum(&r, &steering, 1, &AngleGrid::full_front(1.0)).unwrap();
        let vals = spec.values();
        let max = vals.iter().cloned().fold(f64::MIN, f64::max);
        let min = vals.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min < 10.0, "white noise should not form sharp peaks");
    }

    #[test]
    fn peaks_respect_relative_threshold() {
        let spec = Pseudospectrum::new(
            vec![-10.0, 0.0, 10.0, 20.0, 30.0],
            vec![0.1, 5.0, 0.1, 0.2, 0.1],
        );
        let peaks = spec.peaks(5, 0.5);
        assert_eq!(peaks.len(), 1);
        assert_eq!(peaks[0].0, 0.0);
        let all = spec.peaks(5, 0.0);
        assert_eq!(all.len(), 2); // 0.0 and 20.0
    }

    #[test]
    fn value_at_is_nearest_grid_point() {
        let spec = Pseudospectrum::new(
            vec![-90.0, -45.0, 0.0, 45.0, 90.0],
            vec![1.0, 2.0, 3.0, 4.0, 5.0],
        );
        // Exact hits.
        assert_eq!(spec.value_at(-90.0), 1.0);
        assert_eq!(spec.value_at(45.0), 4.0);
        // Nearest rounding.
        assert_eq!(spec.value_at(-10.0), 3.0);
        assert_eq!(spec.value_at(30.0), 4.0);
        // Out-of-range queries clamp to the grid ends.
        assert_eq!(spec.value_at(-500.0), 1.0);
        assert_eq!(spec.value_at(500.0), 5.0);
        // Non-finite queries fall back to the first point, not a panic.
        assert_eq!(spec.value_at(f64::NAN), 1.0);
        // Single-point and degenerate grids.
        let single = Pseudospectrum::new(vec![10.0], vec![7.0]);
        assert_eq!(single.value_at(-3.0), 7.0);
        let flat = Pseudospectrum::new(vec![5.0, 5.0], vec![1.0, 2.0]);
        assert_eq!(flat.value_at(5.0), 1.0);
    }

    #[test]
    fn steering_table_matches_direct_vectors() {
        let steering = UlaSteering::three_half_wavelength();
        let grid = AngleGrid::full_front(2.5);
        let table = SteeringTable::new(&steering, &grid);
        assert_eq!(table.len(), grid.angles_deg().len());
        assert!(!table.is_empty());
        for (i, &deg) in table.angles_deg().iter().enumerate() {
            assert_eq!(table.vector(i), steering.vector(deg.to_radians()));
        }
    }

    #[test]
    fn steering_cache_returns_identical_tables() {
        let steering = UlaSteering::three_half_wavelength();
        let grid = AngleGrid::full_front(0.25);
        let a = SteeringTable::cached(&steering, &grid);
        let b = SteeringTable::cached(&steering, &grid);
        assert!(std::sync::Arc::ptr_eq(&a, &b), "second lookup must hit");
        assert_eq!(*a, SteeringTable::new(&steering, &grid));
        // A different key gets a different table.
        let other = SteeringTable::cached(&UlaSteering::new(4, 0.5), &grid);
        assert_eq!(other.vector(0).len(), 4);
    }

    #[test]
    fn error_display() {
        let e = MusicError::SignalDimTooLarge {
            sources: 3,
            elements: 3,
        };
        assert!(e.to_string().contains("3 sources"));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            /// The strict-positivity contract wired into
            /// `pseudospectrum` holds for covariances of arbitrary
            /// bounded snapshot sets (4 snapshots × 3 elements).
            #[test]
            fn pseudospectrum_is_positive_on_random_covariances(
                parts in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 12),
            ) {
                let snaps: Vec<Vec<Complex64>> = parts
                    .chunks(3)
                    .map(|chunk| {
                        chunk
                            .iter()
                            .map(|&(re, im)| Complex64::new(re, im))
                            .collect()
                    })
                    .collect();
                let r = crate::covariance::sample_covariance(&snaps).unwrap();
                let steering = UlaSteering::three_half_wavelength();
                let spec =
                    pseudospectrum(&r, &steering, 1, &AngleGrid::full_front(5.0)).unwrap();
                prop_assert!(spec.values().iter().all(|v| v.is_finite() && *v > 0.0));
                let bart = bartlett_spectrum(&r, &steering, &AngleGrid::full_front(5.0)).unwrap();
                prop_assert!(bart.values().iter().all(|v| v.is_finite() && *v >= 0.0));
            }
        }
    }
}
