//! The MUSIC angle-of-arrival estimator (Schmidt \[23\]; paper §IV-B1).
//!
//! Given the array covariance, MUSIC splits eigenvectors into signal and
//! noise subspaces and scans a steering-vector grid:
//!
//! `P(θ) = 1 / (a(θ)ᴴ E_N E_Nᴴ a(θ))`
//!
//! Peaks of the pseudospectrum mark arrival angles. With three antennas
//! the paper can resolve at most two paths — enough to separate the LOS
//! from the dominant wall reflection (Fig. 5b).

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

use mpdf_rfmath::complex::Complex64;
use mpdf_rfmath::contract;
use mpdf_rfmath::eig::{hermitian_eig, EigError};
use mpdf_rfmath::matrix::CMatrix;

use crate::covariance::CovarianceError;

/// Error returned by the MUSIC estimator.
#[derive(Debug, Clone, PartialEq)]
pub enum MusicError {
    /// The requested signal dimension leaves no noise subspace.
    SignalDimTooLarge {
        /// Requested number of sources.
        sources: usize,
        /// Array order.
        elements: usize,
    },
    /// Eigendecomposition failed.
    Eig(EigError),
    /// Covariance estimation failed.
    Covariance(CovarianceError),
}

impl fmt::Display for MusicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MusicError::SignalDimTooLarge { sources, elements } => write!(
                f,
                "cannot estimate {sources} sources with {elements} antennas"
            ),
            MusicError::Eig(e) => write!(f, "eigendecomposition failed: {e}"),
            MusicError::Covariance(e) => write!(f, "covariance failed: {e}"),
        }
    }
}

impl Error for MusicError {}

impl From<EigError> for MusicError {
    fn from(e: EigError) -> Self {
        MusicError::Eig(e)
    }
}

impl From<CovarianceError> for MusicError {
    fn from(e: CovarianceError) -> Self {
        MusicError::Covariance(e)
    }
}

/// Steering model of a uniform linear array, parameterized by spacing in
/// wavelengths (0.5 for the paper's λ/2 array).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UlaSteering {
    elements: usize,
    spacing_wavelengths: f64,
}

impl UlaSteering {
    /// Creates a steering model.
    ///
    /// # Panics
    /// Panics if `elements < 2` or spacing is non-positive.
    pub fn new(elements: usize, spacing_wavelengths: f64) -> Self {
        assert!(elements >= 2, "need at least two elements");
        assert!(spacing_wavelengths > 0.0, "spacing must be positive");
        UlaSteering {
            elements,
            spacing_wavelengths,
        }
    }

    /// The paper's array: 3 elements at λ/2.
    pub fn three_half_wavelength() -> Self {
        UlaSteering::new(3, 0.5)
    }

    /// Number of elements.
    pub fn elements(&self) -> usize {
        self.elements
    }

    /// Steering vector at incidence angle `theta` radians (from broadside),
    /// centred like the physical array in `mpdf-wifi`.
    pub fn vector(&self, theta: f64) -> Vec<Complex64> {
        let mid = (self.elements as f64 - 1.0) / 2.0;
        (0..self.elements)
            .map(|m| {
                let phase = -std::f64::consts::TAU
                    * self.spacing_wavelengths
                    * (m as f64 - mid)
                    * theta.sin();
                Complex64::cis(phase)
            })
            .collect()
    }
}

/// An angular scan grid in degrees.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AngleGrid {
    /// First angle (degrees).
    pub start_deg: f64,
    /// Last angle (degrees), inclusive.
    pub end_deg: f64,
    /// Step (degrees).
    pub step_deg: f64,
}

impl AngleGrid {
    /// The paper's scan: −90° to 90°.
    pub fn full_front(step_deg: f64) -> Self {
        AngleGrid {
            start_deg: -90.0,
            end_deg: 90.0,
            step_deg,
        }
    }

    /// All angles on the grid.
    ///
    /// # Panics
    /// Panics if the step is non-positive or the range is inverted.
    pub fn angles_deg(&self) -> Vec<f64> {
        assert!(self.step_deg > 0.0, "grid step must be positive");
        assert!(self.end_deg >= self.start_deg, "grid range inverted");
        // lint: allow(lossy-cast) — span/step is non-negative and small (asserted above)
        let n = ((self.end_deg - self.start_deg) / self.step_deg).round() as usize + 1;
        (0..n)
            .map(|i| self.start_deg + i as f64 * self.step_deg)
            .collect()
    }
}

impl Default for AngleGrid {
    fn default() -> Self {
        AngleGrid::full_front(1.0)
    }
}

/// A MUSIC pseudospectrum: paired angles (degrees) and values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pseudospectrum {
    angles_deg: Vec<f64>,
    values: Vec<f64>,
}

impl Pseudospectrum {
    /// Creates a pseudospectrum from parallel vectors.
    ///
    /// # Panics
    /// Panics on length mismatch or empty input.
    pub fn new(angles_deg: Vec<f64>, values: Vec<f64>) -> Self {
        assert_eq!(angles_deg.len(), values.len(), "length mismatch");
        assert!(!angles_deg.is_empty(), "empty pseudospectrum");
        Pseudospectrum { angles_deg, values }
    }

    /// Scan angles in degrees.
    pub fn angles_deg(&self) -> &[f64] {
        &self.angles_deg
    }

    /// Pseudospectrum values (linear).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Value at the grid point closest to `angle_deg`.
    pub fn value_at(&self, angle_deg: f64) -> f64 {
        let idx = self
            .angles_deg
            .iter()
            .enumerate()
            .min_by(|a, b| (a.1 - angle_deg).abs().total_cmp(&(b.1 - angle_deg).abs()))
            .map(|(i, _)| i)
            .unwrap_or(0);
        self.values[idx]
    }

    /// Normalizes the peak value to 1 (for plotting/weighting).
    pub fn normalized(&self) -> Pseudospectrum {
        let peak = self
            .values
            .iter()
            .cloned()
            .fold(f64::MIN_POSITIVE, f64::max);
        Pseudospectrum {
            angles_deg: self.angles_deg.clone(),
            values: self.values.iter().map(|v| v / peak).collect(),
        }
    }

    /// Local maxima sorted by descending value, up to `max_peaks`, keeping
    /// only peaks at least `min_rel` of the global maximum.
    pub fn peaks(&self, max_peaks: usize, min_rel: f64) -> Vec<(f64, f64)> {
        let n = self.values.len();
        if n == 0 || max_peaks == 0 {
            return Vec::new();
        }
        let global = self.values.iter().cloned().fold(f64::MIN, f64::max);
        let mut found: Vec<(f64, f64)> = Vec::new();
        for i in 0..n {
            let left = if i == 0 { f64::MIN } else { self.values[i - 1] };
            let right = if i == n - 1 {
                f64::MIN
            } else {
                self.values[i + 1]
            };
            let v = self.values[i];
            if v >= left && v > right && v >= min_rel * global {
                found.push((self.angles_deg[i], v));
            }
        }
        found.sort_by(|a, b| b.1.total_cmp(&a.1));
        found.truncate(max_peaks);
        found
    }
}

/// Computes the MUSIC pseudospectrum from a covariance matrix.
///
/// `num_sources` is the assumed signal-subspace dimension (paths to
/// resolve); it must be smaller than the array order.
///
/// # Errors
/// [`MusicError::SignalDimTooLarge`] or an eigendecomposition failure.
pub fn pseudospectrum(
    covariance: &CMatrix,
    steering: &UlaSteering,
    num_sources: usize,
    grid: &AngleGrid,
) -> Result<Pseudospectrum, MusicError> {
    let m = covariance.rows();
    if num_sources >= m {
        return Err(MusicError::SignalDimTooLarge {
            sources: num_sources,
            elements: m,
        });
    }
    contract::assert_hermitian(
        "MUSIC covariance",
        covariance,
        1e-9 * (1.0 + covariance.trace().norm()),
    );
    let eig = hermitian_eig(covariance, 1e-10)?;
    let en = eig.noise_subspace(num_sources);
    // Projector onto the noise subspace: E_N E_Nᴴ.
    let projector = &en * &en.hermitian();
    let angles = grid.angles_deg();
    let values: Vec<f64> = angles
        .iter()
        .map(|&deg| {
            let a = steering.vector(deg.to_radians());
            let denom = projector.quadratic_form(&a).re.max(1e-12);
            1.0 / denom
        })
        .collect();
    // The denominator is clamped away from zero, so the pseudospectrum
    // must come out strictly positive and finite.
    contract::assert_positive("MUSIC pseudospectrum", &values);
    Ok(Pseudospectrum::new(angles, values))
}

/// The Bartlett (conventional beamformer) angular power spectrum:
/// `B(θ) = a(θ)ᴴ R a(θ)`.
///
/// Unlike the MUSIC pseudospectrum — which is scale-free and exists only
/// to locate angles — the Bartlett spectrum carries received *power* per
/// direction, so amplitude changes (e.g. a person shadowing the LOS)
/// remain visible. The detection pipeline compares Bartlett profiles;
/// MUSIC supplies the angles and the path weights.
///
/// # Errors
/// Returns [`MusicError::SignalDimTooLarge`] never; present for parity —
/// the only failure is a non-square covariance, reported via
/// [`MusicError::Covariance`].
pub fn bartlett_spectrum(
    covariance: &CMatrix,
    steering: &UlaSteering,
    grid: &AngleGrid,
) -> Result<Pseudospectrum, MusicError> {
    if !covariance.is_square() || covariance.rows() != steering.elements() {
        return Err(MusicError::Covariance(CovarianceError::RaggedSnapshots));
    }
    let angles = grid.angles_deg();
    let values: Vec<f64> = angles
        .iter()
        .map(|&deg| {
            let a = steering.vector(deg.to_radians());
            covariance.quadratic_form(&a).re.max(0.0)
        })
        .collect();
    contract::assert_non_negative("Bartlett spectrum", &values);
    Ok(Pseudospectrum::new(angles, values))
}

/// One-call AoA estimation: covariance (with forward–backward averaging)
/// → pseudospectrum → peak angles in degrees, strongest first.
///
/// # Errors
/// Propagates covariance and MUSIC errors.
pub fn estimate_aoa(
    snapshots: &[Vec<Complex64>],
    steering: &UlaSteering,
    num_sources: usize,
    grid: &AngleGrid,
) -> Result<Vec<f64>, MusicError> {
    let r = crate::covariance::sample_covariance(snapshots)?;
    let r = crate::covariance::forward_backward(&r);
    let spec = pseudospectrum(&r, steering, num_sources, grid)?;
    Ok(spec
        .peaks(num_sources, 0.01)
        .into_iter()
        .map(|(a, _)| a)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds snapshots of plane waves at the given angles (radians),
    /// amplitudes, with small deterministic noise.
    fn plane_wave_snapshots(
        steering: &UlaSteering,
        sources: &[(f64, f64)],
        n: usize,
    ) -> Vec<Vec<Complex64>> {
        (0..n)
            .map(|i| {
                let mut x = vec![Complex64::ZERO; steering.elements()];
                for (s_idx, &(theta, amp)) in sources.iter().enumerate() {
                    // Distinct pseudo-random symbols per source.
                    let sym = Complex64::cis(1.7 * i as f64 + 2.9 * s_idx as f64) * amp;
                    for (m, a) in steering.vector(theta).into_iter().enumerate() {
                        x[m] += sym * a;
                    }
                }
                // Tiny noise floor keeps the covariance full rank.
                for (m, z) in x.iter_mut().enumerate() {
                    *z += Complex64::cis(0.13 * (i * 7 + m) as f64) * 1e-3;
                }
                x
            })
            .collect()
    }

    #[test]
    fn grid_generation() {
        let grid = AngleGrid::full_front(1.0);
        let angles = grid.angles_deg();
        assert_eq!(angles.len(), 181);
        assert_eq!(angles[0], -90.0);
        assert_eq!(angles[180], 90.0);
    }

    #[test]
    fn single_source_is_located() {
        let steering = UlaSteering::three_half_wavelength();
        let truth = 25.0f64;
        let snaps = plane_wave_snapshots(&steering, &[(truth.to_radians(), 1.0)], 64);
        let angles = estimate_aoa(&snaps, &steering, 1, &AngleGrid::full_front(0.5)).unwrap();
        assert!(!angles.is_empty());
        assert!(
            (angles[0] - truth).abs() < 2.0,
            "estimated {} vs truth {truth}",
            angles[0]
        );
    }

    #[test]
    fn two_incoherent_sources_resolved() {
        let steering = UlaSteering::three_half_wavelength();
        let snaps =
            plane_wave_snapshots(&steering, &[(0.0f64, 1.0), (50f64.to_radians(), 0.8)], 128);
        let angles = estimate_aoa(&snaps, &steering, 2, &AngleGrid::full_front(0.5)).unwrap();
        assert_eq!(angles.len(), 2);
        let mut sorted = angles.clone();
        sorted.sort_by(f64::total_cmp);
        assert!((sorted[0] - 0.0).abs() < 4.0, "{sorted:?}");
        assert!((sorted[1] - 50.0).abs() < 4.0, "{sorted:?}");
    }

    #[test]
    fn pseudospectrum_peaks_at_source() {
        let steering = UlaSteering::three_half_wavelength();
        let truth = -40.0f64;
        let snaps = plane_wave_snapshots(&steering, &[(truth.to_radians(), 1.0)], 64);
        let r = crate::covariance::sample_covariance(&snaps).unwrap();
        let spec = pseudospectrum(&r, &steering, 1, &AngleGrid::full_front(1.0)).unwrap();
        let at_truth = spec.value_at(truth);
        let far = spec.value_at(truth + 60.0);
        assert!(at_truth > 10.0 * far, "peak {at_truth} vs off-peak {far}");
        // Normalization maps the max to 1.
        let norm = spec.normalized();
        let max = norm.values().iter().cloned().fold(f64::MIN, f64::max);
        assert!((max - 1.0).abs() < 1e-12);
    }

    #[test]
    fn signal_dim_validation() {
        let r = CMatrix::identity(3);
        let steering = UlaSteering::three_half_wavelength();
        let err = pseudospectrum(&r, &steering, 3, &AngleGrid::default());
        assert!(matches!(err, Err(MusicError::SignalDimTooLarge { .. })));
    }

    #[test]
    fn white_noise_has_flat_spectrum() {
        // Identity covariance: no directionality — peak/median ratio small.
        let r = CMatrix::identity(3);
        let steering = UlaSteering::three_half_wavelength();
        let spec = pseudospectrum(&r, &steering, 1, &AngleGrid::full_front(1.0)).unwrap();
        let vals = spec.values();
        let max = vals.iter().cloned().fold(f64::MIN, f64::max);
        let min = vals.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min < 10.0, "white noise should not form sharp peaks");
    }

    #[test]
    fn peaks_respect_relative_threshold() {
        let spec = Pseudospectrum::new(
            vec![-10.0, 0.0, 10.0, 20.0, 30.0],
            vec![0.1, 5.0, 0.1, 0.2, 0.1],
        );
        let peaks = spec.peaks(5, 0.5);
        assert_eq!(peaks.len(), 1);
        assert_eq!(peaks[0].0, 0.0);
        let all = spec.peaks(5, 0.0);
        assert_eq!(all.len(), 2); // 0.0 and 20.0
    }

    #[test]
    fn error_display() {
        let e = MusicError::SignalDimTooLarge {
            sources: 3,
            elements: 3,
        };
        assert!(e.to_string().contains("3 sources"));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            /// The strict-positivity contract wired into
            /// `pseudospectrum` holds for covariances of arbitrary
            /// bounded snapshot sets (4 snapshots × 3 elements).
            #[test]
            fn pseudospectrum_is_positive_on_random_covariances(
                parts in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 12),
            ) {
                let snaps: Vec<Vec<Complex64>> = parts
                    .chunks(3)
                    .map(|chunk| {
                        chunk
                            .iter()
                            .map(|&(re, im)| Complex64::new(re, im))
                            .collect()
                    })
                    .collect();
                let r = crate::covariance::sample_covariance(&snaps).unwrap();
                let steering = UlaSteering::three_half_wavelength();
                let spec =
                    pseudospectrum(&r, &steering, 1, &AngleGrid::full_front(5.0)).unwrap();
                prop_assert!(spec.values().iter().all(|v| v.is_finite() && *v > 0.0));
                let bart = bartlett_spectrum(&r, &steering, &AngleGrid::full_front(5.0)).unwrap();
                prop_assert!(bart.values().iter().all(|v| v.is_finite() && *v >= 0.0));
            }
        }
    }
}
