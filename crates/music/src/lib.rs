//! # mpdf-music — angle-of-arrival estimation
//!
//! The spatial-diversity substrate of the paper (§IV-B): sample covariance
//! estimation with forward–backward averaging and spatial smoothing
//! ([`covariance`]), and the MUSIC pseudospectrum with peak extraction
//! ([`music`]).
//!
//! ```
//! use mpdf_music::music::{estimate_aoa, AngleGrid, UlaSteering};
//! use mpdf_rfmath::complex::Complex64;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let steering = UlaSteering::three_half_wavelength();
//! // Plane wave from 30°, 64 snapshots with varying symbols.
//! let theta = 30f64.to_radians();
//! let snaps: Vec<Vec<Complex64>> = (0..64)
//!     .map(|i| {
//!         let sym = Complex64::cis(1.3 * i as f64);
//!         steering
//!             .vector(theta)
//!             .into_iter()
//!             .enumerate()
//!             .map(|(m, a)| sym * a + Complex64::cis((i * 5 + m) as f64) * 1e-3)
//!             .collect()
//!     })
//!     .collect();
//! let angles = estimate_aoa(&snaps, &steering, 1, &AngleGrid::full_front(0.5))?;
//! assert!((angles[0] - 30.0).abs() < 2.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod covariance;
pub mod music;

pub use covariance::{forward_backward, sample_covariance, spatially_smoothed_covariance};
pub use music::{
    estimate_aoa, pseudospectrum, AngleGrid, MusicError, Pseudospectrum, SteeringTable, UlaSteering,
};
