//! Plain-text report formatting for experiment outputs.

use std::fmt::Write as _;

/// Renders a table with a header row and aligned columns.
///
/// # Panics
/// Panics if any row's length differs from the header's.
pub fn table(header: &[&str], rows: &[Vec<String>]) -> String {
    for r in rows {
        assert_eq!(r.len(), header.len(), "ragged table row");
    }
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let mut line = String::new();
    for (h, w) in header.iter().zip(&widths) {
        let _ = write!(line, "| {h:<w$} ");
    }
    line.push('|');
    let sep: String = line
        .chars()
        .map(|c| if c == '|' { '+' } else { '-' })
        .collect();
    out.push_str(&sep);
    out.push('\n');
    out.push_str(&line);
    out.push('\n');
    out.push_str(&sep);
    out.push('\n');
    for row in rows {
        let mut line = String::new();
        for (cell, w) in row.iter().zip(&widths) {
            let _ = write!(line, "| {cell:<w$} ");
        }
        line.push('|');
        out.push_str(&line);
        out.push('\n');
    }
    out.push_str(&sep);
    out.push('\n');
    out
}

/// Renders an `(x, y)` series as two aligned columns.
pub fn series(x_label: &str, y_label: &str, points: &[(f64, f64)]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|(x, y)| vec![format!("{x:.3}"), format!("{y:.4}")])
        .collect();
    table(&[x_label, y_label], &rows)
}

/// Formats a ratio as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Renders rows as RFC-4180-style CSV (quotes fields containing commas,
/// quotes or newlines). The first row should be the header.
pub fn csv(rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    for row in rows {
        let mut first = true;
        for cell in row {
            if !first {
                out.push(',');
            }
            first = false;
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                out.push('"');
                out.push_str(&cell.replace('"', "\"\""));
                out.push('"');
            } else {
                out.push_str(cell);
            }
        }
        out.push('\n');
    }
    out
}

/// CSV for an `(x, y)` series.
pub fn csv_series(x_label: &str, y_label: &str, points: &[(f64, f64)]) -> String {
    let mut rows = vec![vec![x_label.to_string(), y_label.to_string()]];
    rows.extend(
        points
            .iter()
            .map(|(x, y)| vec![format!("{x}"), format!("{y}")]),
    );
    csv(&rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = table(
            &["scheme", "tp"],
            &[
                vec!["baseline".into(), "0.70".into()],
                vec!["sub".into(), "0.882".into()],
            ],
        );
        assert!(t.contains("| baseline | 0.70  |"));
        assert!(t.contains("| sub      | 0.882 |"));
        let lines: Vec<&str> = t.lines().collect();
        // border, header, border, 2 rows, border
        assert_eq!(lines.len(), 6);
        assert!(lines[0].starts_with('+'));
    }

    #[test]
    fn series_formats_points() {
        let s = series("fp", "tp", &[(0.0, 0.5), (1.0, 1.0)]);
        assert!(s.contains("0.000"));
        assert!(s.contains("1.0000"));
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.920), "92.0%");
        assert_eq!(pct(0.045), "4.5%");
    }

    #[test]
    fn csv_escapes_special_cells() {
        let rows = vec![
            vec!["a".to_string(), "b,c".to_string()],
            vec!["quote\"d".to_string(), "plain".to_string()],
        ];
        let out = csv(&rows);
        assert_eq!(out, "a,\"b,c\"\n\"quote\"\"d\",plain\n");
    }

    #[test]
    fn csv_series_has_header_and_rows() {
        let out = csv_series("x", "y", &[(1.0, 2.0), (3.0, 4.5)]);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "x,y");
        assert_eq!(lines[1], "1,2");
        assert_eq!(lines[2], "3,4.5");
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_row_panics() {
        let _ = table(&["a", "b"], &[vec!["x".into()]]);
    }
}
