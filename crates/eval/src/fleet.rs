//! Deterministic fleet demo behind `repro fleet`.
//!
//! Runs many calibrated links under the [`mpdf_fleet`] supervisor:
//! links are sharded, stepped in parallel, shed under a per-shard
//! ingest budget, and poisoned with seeded mis-shaped windows that the
//! per-link fault machine must contain. With `--chaos`, shard logs are
//! wrapped in a fault-injecting IO shim (seeded torn appends and
//! transient errors) and shards are additionally killed and recovered
//! at seeded ticks; the driver replays the deliveries its event ledger
//! holds past each recovered link's durable event count and asserts the
//! chaos'd fleet's per-tick records and fused room verdicts are
//! **bit-identical** to an uninterrupted in-memory reference run — at
//! any thread count.
//!
//! Every window, occupancy flip, fault point and kill point is a pure
//! function of `(campaign seed, link, tick)`, so the transcript on
//! stdout is byte-deterministic.

use std::collections::BTreeMap;
use std::io::Write;
use std::path::PathBuf;

use mpdf_core::scheme::SubcarrierWeighting;
use mpdf_fleet::chaos::{ChaosPlan, FaultIo, FaultPlan};
use mpdf_fleet::{
    Fleet, FleetPolicy, LinkOutcome, LinkRecord, LinkWindow, ShardLog, StdIo, TickReport,
};
use mpdf_geom::vec2::Vec2;
use mpdf_propagation::human::HumanBody;
use mpdf_rfmath::complex::Complex64;
use mpdf_session::runtime::{SessionConfig, SessionRuntime};
use mpdf_wifi::csi::CsiPacket;
use mpdf_wifi::receiver::CsiReceiver;

use crate::scenario::{five_cases, LinkCase};
use crate::workload::{case_receiver, CampaignConfig};

/// Options for the fleet demo.
#[derive(Debug, Clone)]
pub struct FleetDemoOptions {
    /// Links in the fleet.
    pub links: usize,
    /// Shards the links are partitioned across.
    pub shards: usize,
    /// Ticks to run.
    pub ticks: u64,
    /// Enable the chaos harness: shard logs behind a fault-injecting IO
    /// shim, plus seeded shard kills, with recovery equivalence asserted
    /// against an uninterrupted reference run.
    pub chaos: bool,
    /// Directory for the shard logs (chaos mode). `None` uses a
    /// process-scoped temp directory, removed afterwards.
    pub dir: Option<PathBuf>,
}

impl Default for FleetDemoOptions {
    fn default() -> Self {
        FleetDemoOptions {
            links: 24,
            shards: 4,
            ticks: 12,
            chaos: false,
            dir: None,
        }
    }
}

/// SplitMix64-style mixer, the demo's only randomness.
fn mix(seed: u64, a: u64, b: u64) -> u64 {
    let mut z = seed
        .wrapping_add(a.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(b.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn demo_policy(opts: &FleetDemoOptions) -> FleetPolicy {
    // Budget one below the per-shard link count: a full tick sheds the
    // most-vacant window on every saturated shard, exercising the
    // vacancy bias without starving the fleet.
    let per_shard = opts.links.div_ceil(opts.shards.max(1));
    FleetPolicy {
        max_windows_per_tick: per_shard.saturating_sub(1).max(1),
        max_strikes: 3,
        quarantine_base: 1,
        quarantine_cap: 4,
        watchdog_ticks: 6,
    }
}

struct DemoLinks {
    templates: Vec<(LinkCase, CsiReceiver)>,
    runtimes: Vec<SessionRuntime<SubcarrierWeighting>>,
}

fn calibrate_links(cfg: &CampaignConfig) -> Result<DemoLinks, String> {
    let mut templates = Vec::new();
    let mut runtimes = Vec::new();
    for case in five_cases() {
        let template = case_receiver(&case, cfg, cfg.seed ^ (0xF1EE_7000 + case.id as u64))
            .map_err(|e| format!("fleet case {} geometry: {e}", case.id))?;
        let mut calib_rx = template.fork(cfg.seed ^ (0xCA11_B000 + case.id as u64));
        let calibration = calib_rx
            .capture_static(None, 12 * cfg.detector.window)
            .map_err(|e| format!("fleet case {} calibration: {e}", case.id))?;
        let rt = SessionRuntime::calibrate(
            &calibration,
            SubcarrierWeighting,
            cfg.detector.clone(),
            SessionConfig::default(),
        )
        .map_err(|e| format!("fleet case {} calibration: {e}", case.id))?;
        templates.push((case, template));
        runtimes.push(rt);
    }
    Ok(DemoLinks {
        templates,
        runtimes,
    })
}

/// The window link `link` receives at `tick` — a pure function of the
/// campaign seed. Roughly one in 29 windows is poisoned with a
/// mis-shaped packet (a receiver glitch the fleet must contain as a
/// typed `Shape` fault without stepping the runtime).
fn window_for(
    links: &DemoLinks,
    cfg: &CampaignConfig,
    link: u64,
    tick: u64,
) -> Result<Vec<CsiPacket>, String> {
    let case_idx = (link as usize) % links.templates.len();
    let (case, template) = &links.templates[case_idx];
    if mix(cfg.seed, link, tick.wrapping_mul(13) ^ 0xFA).is_multiple_of(29) {
        let want_sc = cfg.detector.band.num_subcarriers();
        let data = vec![Complex64::new(1.0, 0.0); 2 * want_sc];
        return Ok(vec![CsiPacket::new(2, want_sc, data, 0, 0.0)]);
    }
    // Occupancy is shared per room: every link of a room sees the same
    // body (or none), so room fusion has something real to fuse.
    let occupied = mix(cfg.seed, case.id as u64, tick ^ 0x0CC).is_multiple_of(3);
    let body = HumanBody::new(case.midpoint() + Vec2::new(0.0, 0.6));
    let mut rx = template.fork_with_drift(mix(cfg.seed, link ^ 0x417, tick));
    rx.capture_static(occupied.then_some(&body), cfg.detector.window)
        .map_err(|e| format!("fleet window link={link} tick={tick}: {e}"))
}

fn emit(out: &mut dyn Write, line: &str) -> Result<(), String> {
    writeln!(out, "{line}").map_err(|e| format!("write fleet output: {e}"))
}

fn hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn fault_count(report: &TickReport) -> usize {
    report
        .records
        .iter()
        .filter(|r| matches!(r.outcome, LinkOutcome::Fault { .. }))
        .count()
}

fn render_tick(report: &TickReport) -> String {
    let mut line = format!(
        "tick={} delivered={} shed={} faults={}",
        report.tick,
        report.delivered,
        report.shed,
        fault_count(report)
    );
    for room in &report.rooms {
        let score = room.mean_score.map_or("-".to_string(), hex);
        line.push_str(&format!(
            " | room={} present={} votes={}/{} score={score}",
            room.room,
            u8::from(room.present),
            room.votes,
            room.scored
        ));
    }
    line
}

/// A delivery ledger: for every link, the `(tick, record)` of each
/// delivered window, in delivery order. Entry `i` is the link's
/// `(i+1)`-th event, so after a recovery restores a link at `events=e`,
/// entries `e..` are exactly the lost deliveries to replay.
type Ledger = BTreeMap<u64, Vec<(u64, LinkRecord)>>;

fn ledger_push(ledger: &mut Ledger, report: &TickReport) {
    for rec in &report.records {
        if matches!(
            rec.outcome,
            LinkOutcome::Decision { .. } | LinkOutcome::Fault { .. }
        ) {
            ledger
                .entry(rec.link)
                .or_default()
                .push((report.tick, rec.clone()));
        }
    }
}

/// Recovers `shard` and replays its links' lost deliveries from the
/// ledger, asserting each replay reproduces the original record bit for
/// bit. Returns the number of replayed deliveries.
fn recover_and_replay<IO: mpdf_fleet::LogIo>(
    fleet: &mut Fleet<SubcarrierWeighting, IO>,
    links: &DemoLinks,
    cfg: &CampaignConfig,
    ledger: &Ledger,
    shard: u32,
    out: &mut dyn Write,
) -> Result<usize, String> {
    let report = fleet
        .recover_shard(shard)
        .map_err(|e| format!("recover shard {shard}: {e}"))?;
    let mut replayed = 0usize;
    for (&link, &restored) in &report.events {
        let empty = Vec::new();
        let entries = ledger.get(&link).unwrap_or(&empty);
        if (entries.len() as u64) < restored {
            return Err(format!(
                "recovered link {link} claims {restored} events but the ledger only holds {}",
                entries.len()
            ));
        }
        for (tick, original) in &entries[restored as usize..] {
            let window = window_for(links, cfg, link, *tick)?;
            let record = fleet
                .replay(link, *tick, &window)
                .map_err(|e| format!("replay link {link} tick {tick}: {e}"))?;
            if &record != original {
                return Err(format!(
                    "replay divergence: link {link} tick {tick} reproduced {record:?}, \
                     originally {original:?}"
                ));
            }
            replayed += 1;
        }
    }
    emit(
        out,
        &format!(
            "recovered shard={shard} links={} records={} torn_bytes={} bak={} replayed={replayed}",
            report.links,
            report.records,
            report.torn_bytes,
            u8::from(report.used_bak)
        ),
    )?;
    Ok(replayed)
}

/// How many times a crashed shard is recovered-and-replayed before the
/// demo gives up (replays append to the faulty log too, so a recovery
/// can itself crash again under an aggressive fault plan).
const MAX_RECOVERY_ROUNDS: usize = 16;

struct RunSummary {
    reports: Vec<TickReport>,
    delivered: u64,
    shed: u64,
    faults: u64,
    recoveries: u64,
    replays: u64,
}

fn drive<IO: mpdf_fleet::LogIo + Send>(
    fleet: &mut Fleet<SubcarrierWeighting, IO>,
    links: &DemoLinks,
    cfg: &CampaignConfig,
    opts: &FleetDemoOptions,
    plan: Option<&ChaosPlan>,
    out: &mut dyn Write,
    quiet: bool,
) -> Result<RunSummary, String> {
    let mut ledger: Ledger = BTreeMap::new();
    let mut summary = RunSummary {
        reports: Vec::new(),
        delivered: 0,
        shed: 0,
        faults: 0,
        recoveries: 0,
        replays: 0,
    };
    let mut sink = Vec::new();
    for tick in 0..opts.ticks {
        // Seeded kills land at the start of their tick: the shard's
        // in-memory state is discarded and rebuilt from its log, then
        // lost deliveries are replayed from the ledger.
        if let Some(plan) = plan {
            for shard in plan.kills_at(tick) {
                let dst: &mut dyn Write = if quiet { &mut sink } else { out };
                emit(dst, &format!("killed shard={shard} tick={tick}"))?;
                summary.replays +=
                    recover_and_replay(fleet, links, cfg, &ledger, shard, dst)? as u64;
                summary.recoveries += 1;
            }
        }
        let mut windows = Vec::with_capacity(opts.links);
        for link in 0..opts.links as u64 {
            windows.push(LinkWindow {
                link,
                packets: window_for(links, cfg, link, tick)?,
            });
        }
        let report = fleet
            .step_tick(&windows)
            .map_err(|e| format!("fleet tick {tick}: {e}"))?;
        ledger_push(&mut ledger, &report);
        summary.delivered += u64::from(report.delivered);
        summary.shed += u64::from(report.shed);
        summary.faults += fault_count(&report) as u64;
        if !quiet {
            emit(out, &render_tick(&report))?;
        }
        // Shards whose log failed mid-tick are recovered before the next
        // tick; replaying the log's gap converges them back onto the
        // uninterrupted trajectory.
        let mut crashed = report.crashed_shards.clone();
        let mut rounds = 0usize;
        while !crashed.is_empty() {
            rounds += 1;
            if rounds > MAX_RECOVERY_ROUNDS {
                return Err(format!(
                    "shards {crashed:?} still crashing after {MAX_RECOVERY_ROUNDS} recovery rounds"
                ));
            }
            for shard in std::mem::take(&mut crashed) {
                let dst: &mut dyn Write = if quiet { &mut sink } else { out };
                summary.replays +=
                    recover_and_replay(fleet, links, cfg, &ledger, shard, dst)? as u64;
                summary.recoveries += 1;
                if fleet.shard_crashed(shard) {
                    crashed.push(shard);
                }
            }
        }
        summary.reports.push(report);
    }
    Ok(summary)
}

/// Strips the fields recovery legitimately perturbs (crash markers) and
/// compares everything the fleet *observes*: records, room verdicts,
/// delivery and shed counts.
fn equivalent(a: &TickReport, b: &TickReport) -> bool {
    a.tick == b.tick
        && a.records == b.records
        && a.rooms == b.rooms
        && a.delivered == b.delivered
        && a.shed == b.shed
}

/// Runs the fleet demo, writing one line per tick (plus kill/recovery
/// events) to `out`.
///
/// In chaos mode the faulted-and-killed fleet is compared tick by tick
/// against an uninterrupted in-memory reference; any divergence is an
/// error, and the final line is `equivalence=ok`.
///
/// # Errors
/// Returns a rendered error string on pipeline, log or equivalence
/// failures.
pub fn run_fleet_demo(
    cfg: &CampaignConfig,
    opts: &FleetDemoOptions,
    out: &mut dyn Write,
) -> Result<(), String> {
    let _stage = mpdf_obs::stage!("eval.fleet_demo");
    if opts.links == 0 || opts.shards == 0 || opts.ticks == 0 {
        return Err("fleet demo needs at least one link, shard and tick".to_string());
    }
    let links = calibrate_links(cfg)?;
    let policy = demo_policy(opts);
    emit(
        out,
        &format!(
            "fleet links={} shards={} ticks={} budget={} chaos={}",
            opts.links,
            opts.shards,
            opts.ticks,
            policy.max_windows_per_tick,
            u8::from(opts.chaos)
        ),
    )?;

    if !opts.chaos {
        let mut fleet = Fleet::in_memory(opts.shards, policy, cfg.threads)
            .map_err(|e| format!("build fleet: {e}"))?;
        register_all(&mut fleet, &links, opts)?;
        let s = drive(&mut fleet, &links, cfg, opts, None, out, false)?;
        emit(
            out,
            &format!(
                "fleet complete ticks={} delivered={} shed={} faults={}",
                opts.ticks, s.delivered, s.shed, s.faults
            ),
        )?;
        return Ok(());
    }

    // Chaos mode: reference run first (quiet), then the faulted run.
    let mut reference = Fleet::in_memory(opts.shards, policy.clone(), cfg.threads)
        .map_err(|e| format!("build reference fleet: {e}"))?;
    register_all(&mut reference, &links, opts)?;
    let mut sink = Vec::new();
    let ref_summary = drive(&mut reference, &links, cfg, opts, None, &mut sink, true)?;

    let dir = match &opts.dir {
        Some(dir) => dir.clone(),
        None => std::env::temp_dir().join(format!("mpdf_fleet_demo_{}", std::process::id())),
    };
    std::fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let cleanup = opts.dir.is_none();

    let result = (|| {
        let mut shards = Vec::with_capacity(opts.shards);
        for i in 0..opts.shards as u32 {
            let io = FaultIo::new(
                StdIo,
                FaultPlan {
                    seed: cfg.seed ^ (0xFA_0170 + u64::from(i)),
                    transient_period: 5,
                    torn_period: 17,
                    // Registration's birth records land before the chaos
                    // starts.
                    grace_appends: opts.links.div_ceil(opts.shards) as u64,
                },
            );
            let (log, _) = ShardLog::open(io, dir.join(format!("shard{i}.mpsl")), i, 64)
                .map_err(|e| format!("open shard {i} log: {e}"))?;
            shards.push(mpdf_fleet::Shard::new(i, Some(log)));
        }
        let mut fleet = Fleet::new(shards, policy, cfg.threads)
            .map_err(|e| format!("build chaos fleet: {e}"))?;
        register_all(&mut fleet, &links, opts)?;
        let plan = ChaosPlan::seeded(cfg.seed ^ 0xC405, opts.shards as u32, opts.ticks, 3);
        let chaos_summary = drive(&mut fleet, &links, cfg, opts, Some(&plan), out, false)?;

        for (a, b) in ref_summary.reports.iter().zip(&chaos_summary.reports) {
            if !equivalent(a, b) {
                return Err(format!(
                    "tick {} diverged between the chaos run and the reference run",
                    a.tick
                ));
            }
        }
        emit(
            out,
            &format!(
                "fleet complete ticks={} delivered={} shed={} faults={} kills={} \
                 recoveries={} replays={}",
                opts.ticks,
                chaos_summary.delivered,
                chaos_summary.shed,
                chaos_summary.faults,
                plan.kills.len(),
                chaos_summary.recoveries,
                chaos_summary.replays
            ),
        )?;
        emit(out, "equivalence=ok")?;
        Ok(())
    })();
    if cleanup {
        std::fs::remove_dir_all(&dir).ok();
    }
    result
}

fn register_all<IO: mpdf_fleet::LogIo>(
    fleet: &mut Fleet<SubcarrierWeighting, IO>,
    links: &DemoLinks,
    opts: &FleetDemoOptions,
) -> Result<(), String> {
    for link in 0..opts.links as u64 {
        let case_idx = (link as usize) % links.runtimes.len();
        let room = links.templates[case_idx].0.id as u32;
        fleet
            .register(link, room, links.runtimes[case_idx].clone())
            .map_err(|e| format!("register link {link}: {e}"))?;
    }
    Ok(())
}
