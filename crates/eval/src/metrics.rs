//! Detection metrics: ROC curves, AUC and operating points (§V-A).

use serde::{Deserialize, Serialize};

/// One scored monitoring window with its ground-truth label.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LabeledScore {
    /// Scheme score for the window.
    pub score: f64,
    /// True when a human was present in the monitored area.
    pub positive: bool,
}

/// One point of a ROC curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RocPoint {
    /// Decision threshold producing this point.
    pub threshold: f64,
    /// False-positive rate in `[0, 1]`.
    pub fp: f64,
    /// True-positive (detection) rate in `[0, 1]`.
    pub tp: f64,
}

/// A ROC curve swept over every distinct score threshold.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RocCurve {
    points: Vec<RocPoint>,
}

impl RocCurve {
    /// Builds the curve from labeled scores.
    ///
    /// # Panics
    /// Panics unless both classes are represented.
    pub fn from_scores(scores: &[LabeledScore]) -> Self {
        let positives = scores.iter().filter(|s| s.positive).count();
        let negatives = scores.len() - positives;
        assert!(
            positives > 0 && negatives > 0,
            "ROC needs both positive and negative samples"
        );
        let mut sorted: Vec<LabeledScore> = scores.to_vec();
        // Descending by score: walking down the list lowers the threshold.
        sorted.sort_by(|a, b| b.score.total_cmp(&a.score));
        let mut points = vec![RocPoint {
            threshold: f64::INFINITY,
            fp: 0.0,
            tp: 0.0,
        }];
        let mut tp = 0usize;
        let mut fp = 0usize;
        let mut i = 0;
        while i < sorted.len() {
            let threshold = sorted[i].score;
            // Consume ties together so the curve is well-defined.
            while i < sorted.len() && sorted[i].score == threshold {
                if sorted[i].positive {
                    tp += 1;
                } else {
                    fp += 1;
                }
                i += 1;
            }
            points.push(RocPoint {
                threshold,
                fp: fp as f64 / negatives as f64,
                tp: tp as f64 / positives as f64,
            });
        }
        RocCurve { points }
    }

    /// The swept points, from `(0,0)` to `(1,1)`.
    pub fn points(&self) -> &[RocPoint] {
        &self.points
    }

    /// Area under the curve by trapezoidal integration.
    pub fn auc(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| (w[1].fp - w[0].fp) * (w[1].tp + w[0].tp) / 2.0)
            .sum()
    }

    /// The operating point maximizing balanced accuracy `(tp + (1−fp))/2`
    /// — the "balanced detection accuracy" the paper reports from Fig. 7.
    pub fn balanced_operating_point(&self) -> RocPoint {
        *self
            .points
            .iter()
            .max_by(|a, b| {
                let ba = a.tp + 1.0 - a.fp;
                let bb = b.tp + 1.0 - b.fp;
                ba.total_cmp(&bb)
            })
            // An empty sweep degrades to the "never detect" origin point.
            .unwrap_or(&RocPoint {
                threshold: 0.0,
                fp: 0.0,
                tp: 0.0,
            })
    }

    /// Largest detection rate achievable at a false-positive rate not
    /// exceeding `max_fp`.
    pub fn tp_at_fp(&self, max_fp: f64) -> f64 {
        self.points
            .iter()
            .filter(|p| p.fp <= max_fp)
            .map(|p| p.tp)
            .fold(0.0, f64::max)
    }

    /// Samples the curve at evenly spaced FP values (for plotting).
    pub fn sampled(&self, n: usize) -> Vec<(f64, f64)> {
        (0..n)
            .map(|i| {
                let fp = i as f64 / (n - 1).max(1) as f64;
                (fp, self.tp_at_fp(fp))
            })
            .collect()
    }
}

/// Detection rate of positive scores at a fixed threshold.
pub fn detection_rate(scores: &[f64], threshold: f64) -> f64 {
    if scores.is_empty() {
        return 0.0;
    }
    scores.iter().filter(|&&s| s > threshold).count() as f64 / scores.len() as f64
}

/// Summary statistics for one scheme's campaign, reported like the
/// paper's headline numbers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchemeSummary {
    /// Balanced-accuracy operating point.
    pub operating: RocPoint,
    /// Area under the ROC curve.
    pub auc: f64,
}

impl SchemeSummary {
    /// Builds the summary from labeled scores.
    ///
    /// # Panics
    /// Same conditions as [`RocCurve::from_scores`].
    pub fn from_scores(scores: &[LabeledScore]) -> Self {
        let roc = RocCurve::from_scores(scores);
        SchemeSummary {
            operating: roc.balanced_operating_point(),
            auc: roc.auc(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labeled(pos: &[f64], neg: &[f64]) -> Vec<LabeledScore> {
        pos.iter()
            .map(|&s| LabeledScore {
                score: s,
                positive: true,
            })
            .chain(neg.iter().map(|&s| LabeledScore {
                score: s,
                positive: false,
            }))
            .collect()
    }

    #[test]
    fn perfect_separation_gives_auc_one() {
        let scores = labeled(&[2.0, 3.0, 4.0], &[0.1, 0.2, 0.3]);
        let roc = RocCurve::from_scores(&scores);
        assert!((roc.auc() - 1.0).abs() < 1e-12);
        let op = roc.balanced_operating_point();
        assert_eq!(op.tp, 1.0);
        assert_eq!(op.fp, 0.0);
        assert_eq!(roc.tp_at_fp(0.0), 1.0);
    }

    #[test]
    fn random_scores_give_auc_half() {
        // Interleaved identical distributions.
        let scores = labeled(&[1.0, 2.0, 3.0, 4.0], &[1.0, 2.0, 3.0, 4.0]);
        let roc = RocCurve::from_scores(&scores);
        assert!((roc.auc() - 0.5).abs() < 1e-9, "auc {}", roc.auc());
    }

    #[test]
    fn inverted_scores_give_auc_zero() {
        let scores = labeled(&[0.1, 0.2], &[1.0, 2.0]);
        let roc = RocCurve::from_scores(&scores);
        assert!(roc.auc() < 0.01);
    }

    #[test]
    fn curve_is_monotone() {
        let scores = labeled(&[0.5, 1.5, 2.5, 3.0, 0.2], &[0.1, 0.6, 1.4, 2.0]);
        let roc = RocCurve::from_scores(&scores);
        for w in roc.points().windows(2) {
            assert!(w[1].fp >= w[0].fp);
            assert!(w[1].tp >= w[0].tp);
        }
        let last = roc.points().last().unwrap();
        assert_eq!((last.fp, last.tp), (1.0, 1.0));
    }

    #[test]
    fn ties_are_consumed_together() {
        let scores = labeled(&[1.0, 1.0], &[1.0]);
        let roc = RocCurve::from_scores(&scores);
        // Only (0,0) and (1,1): the tie moves both rates at once.
        assert_eq!(roc.points().len(), 2);
    }

    #[test]
    fn tp_at_fp_budget() {
        let scores = labeled(&[3.0, 2.0, 1.0, 0.5], &[2.5, 0.4, 0.3, 0.2]);
        let roc = RocCurve::from_scores(&scores);
        // At fp=0: only scores >2.5 count ⇒ tp=0.25.
        assert!((roc.tp_at_fp(0.0) - 0.25).abs() < 1e-12);
        assert!(roc.tp_at_fp(0.5) >= 0.75);
    }

    #[test]
    fn sampled_curve_has_requested_length() {
        let scores = labeled(&[1.0, 2.0], &[0.5, 0.6]);
        let roc = RocCurve::from_scores(&scores);
        let s = roc.sampled(11);
        assert_eq!(s.len(), 11);
        assert_eq!(s[0].0, 0.0);
        assert_eq!(s[10].0, 1.0);
    }

    #[test]
    fn detection_rate_thresholding() {
        let scores = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(detection_rate(&scores, 2.5), 0.5);
        assert_eq!(detection_rate(&scores, 0.0), 1.0);
        assert_eq!(detection_rate(&scores, 10.0), 0.0);
        assert_eq!(detection_rate(&[], 1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "both positive and negative")]
    fn single_class_panics() {
        let scores = labeled(&[1.0], &[]);
        let _ = RocCurve::from_scores(&scores);
    }

    #[test]
    fn summary_smoke() {
        let scores = labeled(&[2.0, 3.0, 2.5], &[0.5, 1.0, 0.7]);
        let s = SchemeSummary::from_scores(&scores);
        assert!(s.auc > 0.9);
        assert!(s.operating.tp >= 0.9);
    }
}
