//! # mpdf-eval — evaluation harness
//!
//! Scenarios, workloads, metrics and experiment runners reproducing every
//! data figure of the paper's evaluation (§V). The `repro` binary runs
//! any experiment by id.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod fleet;
pub mod metrics;
pub mod report;
pub mod scenario;
pub mod session;
pub mod stream;
pub mod workload;
