//! Streaming CSI ingestion: the socket-shaped path from wire bytes to
//! decisions.
//!
//! The paper's monitoring loop is inherently streaming — the Intel 5300
//! CSI tool emits a continuous record stream the detector must consume
//! at line rate. This module replays a *recorded* campaign through that
//! shape: each case's captured windows are encoded with the
//! [`mpdf_wifi::wire`] codec into one contiguous byte stream, pumped
//! through a bounded ingest queue in MTU-sized chunks, reassembled and
//! split back into frames by the zero-copy decoder, batched into
//! `detector.window`-packet epochs, and scored by a pool of workers.
//!
//! The pipeline is back-pressured end to end: the chunk producer blocks
//! when the ingest queue is full and the framer blocks when the epoch
//! queue is full, so a slow scorer throttles ingest instead of letting
//! buffers grow without bound ([`mpdf_par::queue::Bounded`] semantics).
//! Scores land in *epoch-indexed* slots, so the output order is a pure
//! function of the byte stream no matter how many workers race — the
//! contract, pinned by a tier-1 test, is that stream-path scores are
//! **bit-identical** to the offline [`score_campaign`] pass over the
//! same recording.

use std::sync::{Mutex, PoisonError};
use std::time::Instant;

use mpdf_core::error::DetectError;
use mpdf_core::profile::DetectorConfig;
use mpdf_core::scheme::{
    Baseline, DetectionScheme, SubcarrierAndPathWeighting, SubcarrierWeighting,
};
use mpdf_par::queue::Bounded;
use mpdf_wifi::band::Band;
use mpdf_wifi::csi::CsiPacket;
use mpdf_wifi::wire;

use crate::scenario::five_cases;
use crate::workload::{run_campaign, score_campaign, CampaignConfig, CaseData, ScoredWindow};

/// Per-epoch scores in scheme order (baseline, subcarrier, combined);
/// `None` where that scheme abstained (degraded beyond budget / empty),
/// mirroring [`score_campaign`]'s skip semantics.
pub type EpochScores = [Option<f64>; 3];

/// Knobs of the replay transport.
#[derive(Debug, Clone, Copy)]
pub struct StreamOptions {
    /// Bytes per ingest chunk. The default is an MTU-ish 1460, which is
    /// *smaller* than one 3×30 frame (1466 bytes) — every frame crosses
    /// a chunk boundary, so the replay exercises reassembly constantly.
    pub chunk_bytes: usize,
    /// Ingest queue capacity in chunks (back-pressure bound).
    pub queue_chunks: usize,
    /// AGC gain step stamped on every encoded frame.
    pub agc: u8,
}

impl Default for StreamOptions {
    fn default() -> Self {
        StreamOptions {
            chunk_bytes: 1460,
            queue_chunks: 64,
            agc: 40,
        }
    }
}

/// Transport-level statistics of one case replay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CaseStreamStats {
    /// Case id.
    pub case_id: usize,
    /// Epochs (decision windows) scored.
    pub epochs: usize,
    /// Packets decoded from the wire.
    pub packets: u64,
    /// Wire bytes consumed.
    pub bytes: u64,
    /// Resync events (corrupt/garbage bytes rejected).
    pub rejects: u64,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn invalid(what: String) -> DetectError {
    DetectError::InvalidConfig { what }
}

/// Validates the configured band at the ingest boundary.
///
/// Config files and wire headers are untrusted inputs; revalidating
/// through [`Band::try_with_indices`] turns a malformed grid into a
/// typed error before any packet is decoded against it.
fn validate_band(band: &Band) -> Result<(), DetectError> {
    Band::try_with_indices(band.center_hz(), band.indices().to_vec())
        .map(|_| ())
        .map_err(|e| invalid(format!("stream ingest band rejected: {e}")))
}

/// Replays one recorded case through the wire codec and bounded-queue
/// path, returning per-epoch scheme scores (epoch order) plus transport
/// stats.
///
/// The recording must be *clean*: every window exactly
/// `detector.window` packets, as a fault-free campaign produces. Epoch
/// batching drains a fixed N packets per decision window, so a recording
/// with ragged windows (packet loss already applied) cannot be aligned
/// and is rejected with a typed error.
///
/// # Errors
/// [`DetectError::InvalidConfig`] for a malformed band, ragged
/// recording, or a replay that lost epochs; scheme errors other than
/// the abstention cases propagate.
pub fn stream_case_scores(
    case: &CaseData,
    detector: &DetectorConfig,
    threads: usize,
    opts: &StreamOptions,
) -> Result<(Vec<EpochScores>, CaseStreamStats), DetectError> {
    validate_band(&detector.band)?;
    let window = detector.window.max(1);
    if let Some(w) = case.windows.iter().find(|w| w.packets.len() != window) {
        return Err(invalid(format!(
            "stream replay needs uniform {window}-packet windows; case {} recorded one with {}",
            case.case_id,
            w.packets.len()
        )));
    }

    // Encode the recording into one contiguous wire stream — the bytes a
    // socket would deliver.
    let mut bytes = Vec::new();
    for w in &case.windows {
        for p in &w.packets {
            wire::encode_frame(p, opts.agc, &mut bytes)
                .map_err(|e| invalid(format!("recorded packet does not fit the wire: {e}")))?;
        }
    }

    let expected_epochs = case.windows.len();
    let workers = mpdf_par::resolve_threads(threads);
    let chunk_bytes = opts.chunk_bytes.max(1);
    let ingest: Bounded<Vec<u8>> = Bounded::new(opts.queue_chunks.max(1));
    let epochs: Bounded<(usize, Vec<CsiPacket>)> = Bounded::new(workers.max(1) * 2);
    let slots: Vec<Mutex<Option<EpochScores>>> =
        (0..expected_epochs).map(|_| Mutex::new(None)).collect();
    let failure: Mutex<Option<DetectError>> = Mutex::new(None);
    let transport: Mutex<CaseStreamStats> = Mutex::new(CaseStreamStats {
        case_id: case.case_id,
        ..CaseStreamStats::default()
    });

    std::thread::scope(|scope| {
        // Producer: the socket stand-in, pushing MTU-sized chunks with
        // back-pressure (push blocks while the queue is full).
        scope.spawn(|| {
            for chunk in bytes.chunks(chunk_bytes) {
                if ingest.push(chunk.to_vec()).is_err() {
                    return; // queue closed early (downstream failure)
                }
                let depth = ingest.len() as i64;
                mpdf_obs::gauge!("eval.stream.ingest_depth").set(depth);
                mpdf_obs::gauge!("eval.stream.ingest_depth_max").set_max(depth);
            }
            ingest.close();
        });

        // Framer: reassembles chunks, splits frames zero-copy, batches
        // N packets per epoch.
        scope.spawn(|| {
            let mut tail: Vec<u8> = Vec::new();
            let mut pending: Vec<CsiPacket> = Vec::new();
            let mut epoch_idx = 0usize;
            while let Some(chunk) = ingest.pop() {
                tail.extend_from_slice(&chunk);
                let stats = wire::drain_frames(&tail, &mut pending);
                tail.drain(..stats.consumed);
                {
                    let mut t = lock(&transport);
                    t.packets += stats.frames;
                    t.bytes += stats.consumed as u64;
                    t.rejects += stats.rejects;
                }
                mpdf_obs::counter!("eval.stream.packets_total").add(stats.frames);
                while pending.len() >= window {
                    let epoch: Vec<CsiPacket> = pending.drain(..window).collect();
                    if epochs.push((epoch_idx, epoch)).is_err() {
                        ingest.close();
                        return;
                    }
                    epoch_idx += 1;
                }
            }
            // A clean replay consumes everything; a trailing partial
            // epoch (corruption ate frames) is dropped, and the missing
            // slot surfaces below as a typed error.
            epochs.close();
        });

        // Scoring workers: pop epochs in whatever order, write results
        // into their epoch-indexed slot — output order is data-determined.
        for _ in 0..workers.max(1) {
            scope.spawn(|| {
                while let Some((idx, packets)) = epochs.pop() {
                    let results = [
                        Baseline.score(&case.profile, &packets, detector),
                        SubcarrierWeighting.score(&case.profile, &packets, detector),
                        SubcarrierAndPathWeighting.score(&case.profile, &packets, detector),
                    ];
                    let mut scores: EpochScores = [None, None, None];
                    for (slot, result) in scores.iter_mut().zip(results) {
                        match result {
                            Ok(s) => *slot = Some(s),
                            Err(
                                DetectError::DegradedBeyondBudget { .. } | DetectError::EmptyWindow,
                            ) => {}
                            Err(e) => {
                                let mut f = lock(&failure);
                                if f.is_none() {
                                    *f = Some(e);
                                }
                                drop(f);
                                // Tear the pipeline down; the producer
                                // and framer observe closed queues.
                                ingest.close();
                                epochs.close();
                                return;
                            }
                        }
                    }
                    if let Some(cell) = slots.get(idx) {
                        *lock(cell) = Some(scores);
                    }
                    mpdf_obs::counter!("eval.stream.windows_total").inc();
                }
            });
        }
    });

    if let Some(e) = lock(&failure).take() {
        return Err(e);
    }
    let mut out = Vec::with_capacity(expected_epochs);
    for (idx, cell) in slots.iter().enumerate() {
        match lock(cell).take() {
            Some(scores) => out.push(scores),
            None => {
                return Err(invalid(format!(
                    "stream replay of case {} lost epoch {idx}",
                    case.case_id
                )))
            }
        }
    }
    let mut stats = lock(&transport).to_owned();
    stats.epochs = out.len();
    Ok((out, stats))
}

/// One case's replay outcome, compared against the offline reference.
#[derive(Debug, Clone)]
pub struct CaseReport {
    /// Transport statistics.
    pub stats: CaseStreamStats,
    /// Per-scheme bit-identity with the offline scoring pass (scheme
    /// order: baseline, subcarrier, combined).
    pub matches_offline: [bool; 3],
}

/// Outcome of a full campaign replay.
#[derive(Debug, Clone)]
pub struct StreamRun {
    /// Per-case reports, in case order.
    pub cases: Vec<CaseReport>,
    /// Total packets pushed through the wire path.
    pub packets_total: u64,
    /// Wall-clock seconds spent in the streaming section (explicitly
    /// nondeterministic — never printed on the deterministic report).
    pub elapsed_seconds: f64,
}

impl StreamRun {
    /// Whether every case matched the offline path bit-for-bit.
    pub fn all_match(&self) -> bool {
        self.cases
            .iter()
            .all(|c| c.matches_offline.iter().all(|&m| m))
    }

    /// Decoded packets per wall-clock second over the streaming section.
    pub fn packets_per_second(&self) -> f64 {
        if self.elapsed_seconds > 0.0 {
            self.packets_total as f64 / self.elapsed_seconds
        } else {
            0.0
        }
    }
}

/// Offline scores of one scheme restricted to one case, as bit patterns.
fn offline_bits(scores: &[ScoredWindow], case_id: usize) -> Vec<u64> {
    scores
        .iter()
        .filter(|s| s.case_id == case_id)
        .map(|s| s.score.to_bits())
        .collect()
}

/// Records the five-case campaign, replays it through the wire codec +
/// bounded-queue path, and verifies the stream scores bit-identical to
/// the offline scoring pass on the same recording.
///
/// # Errors
/// Propagates campaign, scoring and replay errors.
pub fn run_stream(cfg: &CampaignConfig, opts: &StreamOptions) -> Result<StreamRun, DetectError> {
    let _stage = mpdf_obs::stage!("eval.stream");
    let cases = five_cases();
    let data = run_campaign(&cases, cfg)?;
    let offline = [
        score_campaign(&data, &Baseline, &cfg.detector)?,
        score_campaign(&data, &SubcarrierWeighting, &cfg.detector)?,
        score_campaign(&data, &SubcarrierAndPathWeighting, &cfg.detector)?,
    ];

    let start = Instant::now();
    let mut reports = Vec::with_capacity(data.len());
    let mut packets_total = 0u64;
    for case in &data {
        let (scores, stats) = stream_case_scores(case, &cfg.detector, cfg.threads, opts)?;
        packets_total += stats.packets;
        let mut matches_offline = [false; 3];
        for (scheme_idx, matched) in matches_offline.iter_mut().enumerate() {
            let streamed: Vec<u64> = scores
                .iter()
                .filter_map(|epoch| epoch[scheme_idx])
                .map(f64::to_bits)
                .collect();
            *matched = streamed == offline_bits(&offline[scheme_idx], case.case_id);
        }
        reports.push(CaseReport {
            stats,
            matches_offline,
        });
    }
    Ok(StreamRun {
        cases: reports,
        packets_total,
        elapsed_seconds: start.elapsed().as_secs_f64(),
    })
}

/// Renders the deterministic replay report (throughput is deliberately
/// excluded — it goes to stderr, keeping stdout byte-stable).
pub fn report(run: &StreamRun) -> String {
    let mut out = String::from("stream — campaign replay over the CSI wire codec\n");
    let rows: Vec<Vec<String>> = run
        .cases
        .iter()
        .map(|c| {
            vec![
                format!("{}", c.stats.case_id),
                format!("{}", c.stats.epochs),
                format!("{}", c.stats.packets),
                format!("{}", c.stats.bytes),
                format!("{}", c.stats.rejects),
                if c.matches_offline.iter().all(|&m| m) {
                    "yes".to_owned()
                } else {
                    "NO".to_owned()
                },
            ]
        })
        .collect();
    out.push_str(&crate::report::table(
        &[
            "case",
            "windows",
            "packets",
            "bytes",
            "rejects",
            "bit-identical",
        ],
        &rows,
    ));
    let matched = run
        .cases
        .iter()
        .filter(|c| c.matches_offline.iter().all(|&m| m))
        .count();
    out.push_str(&format!(
        "{matched}/{} cases score bit-identical to the offline path\n",
        run.cases.len()
    ));
    out
}
