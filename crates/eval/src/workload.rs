//! Campaign workloads: generate labeled CSI windows for the evaluation.
//!
//! Mirrors the paper's methodology (§V-A): per link case, capture a
//! no-human calibration session, then windows with a (swaying) person at
//! each grid position and matched empty windows — optionally with
//! background dynamics (people moving far from the link, as the paper
//! allowed during its campaign).

use serde::{Deserialize, Serialize};

use mpdf_core::profile::{CalibrationProfile, DetectorConfig};
use mpdf_core::scheme::DetectionScheme;
use mpdf_geom::vec2::{Point, Vec2};
use mpdf_propagation::channel::ChannelModel;
use mpdf_propagation::human::HumanBody;
use mpdf_propagation::tracer::TraceError;
use mpdf_propagation::trajectory::StaticSway;
use mpdf_wifi::csi::CsiPacket;
use mpdf_wifi::receiver::{Actor, CsiReceiver, ReceiverConfig};
use mpdf_wifi::{FaultModel, ImpairmentModel};

use crate::metrics::LabeledScore;
use crate::scenario::LinkCase;

/// Ground-truth annotation of a window containing a human.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HumanInfo {
    /// Person position.
    pub position: Point,
    /// Distance from the receiver in metres.
    pub distance_to_rx: f64,
    /// Angle from the receiver's broadside (which faces the TX), degrees.
    pub angle_deg: f64,
}

/// One labeled monitoring window.
#[derive(Debug, Clone)]
pub struct WindowRecord {
    /// Captured packets (window length).
    pub packets: Vec<CsiPacket>,
    /// `Some` when a person was inside the monitored area.
    pub human: Option<HumanInfo>,
}

/// Captured data for one link case.
#[derive(Debug, Clone)]
pub struct CaseData {
    /// Case id (1–5).
    pub case_id: usize,
    /// Profile built from the calibration capture.
    pub profile: CalibrationProfile,
    /// Labeled monitoring windows.
    pub windows: Vec<WindowRecord>,
}

/// Campaign configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Detection pipeline configuration.
    pub detector: DetectorConfig,
    /// Calibration capture length in packets.
    pub calibration_packets: usize,
    /// Windows captured per human grid position.
    pub episodes_per_position: usize,
    /// Empty windows captured per case.
    pub negative_windows: usize,
    /// Per-subcarrier SNR (dB).
    pub snr_db: f64,
    /// Probability a packet is hit by narrowband interference.
    pub interference_prob: f64,
    /// Interference power relative to the signal (dB). Kept below the
    /// decode threshold: stronger bursts would fail the CRC and produce
    /// no CSI at all.
    pub interference_power_db: f64,
    /// Fraction of monitoring windows with background dynamics.
    pub background_rate: f64,
    /// Sway amplitude of the nominally static person (m).
    pub sway_amplitude: f64,
    /// Minimum distance of background walkers from the link (m).
    pub background_distance: f64,
    /// Session-to-session clutter drift relative amplitude (see
    /// `ReceiverConfig::clutter_drift_rel`).
    pub clutter_drift_rel: f64,
    /// Peak session gain drift in dB (see
    /// `ReceiverConfig::session_gain_drift_db`).
    pub session_gain_drift_db: f64,
    /// Injected receiver faults (loss bursts, chain dropouts, AGC
    /// saturation, decoder glitches). [`FaultModel::none`] by default;
    /// a zero-fault model leaves every capture byte-identical to a
    /// fault-free build.
    pub faults: FaultModel,
    /// Base RNG seed.
    pub seed: u64,
    /// Worker threads for the campaign (`0` = all available cores).
    /// The output is bit-for-bit identical for every value: each window
    /// captures on its own [`CsiReceiver::fork`] whose stream is derived
    /// from `(seed, case id, window index)`, never from scheduling order.
    pub threads: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            detector: DetectorConfig::default(),
            calibration_packets: 500,
            episodes_per_position: 3,
            negative_windows: 27,
            snr_db: 25.0,
            interference_prob: 0.35,
            interference_power_db: -4.0,
            background_rate: 0.15,
            sway_amplitude: 0.03,
            background_distance: 3.0,
            clutter_drift_rel: 0.025,
            session_gain_drift_db: 0.3,
            faults: FaultModel::none(),
            seed: 0xC51,
            threads: 0,
        }
    }
}

/// Builds the receiver for a case with the campaign's impairments.
///
/// # Errors
/// Propagates [`TraceError`] for invalid link geometry.
pub fn case_receiver(
    case: &LinkCase,
    cfg: &CampaignConfig,
    seed: u64,
) -> Result<CsiReceiver, TraceError> {
    let channel = ChannelModel::new(case.environment.clone(), case.tx, case.rx)?;
    let mut impairments = ImpairmentModel::commodity_nic().with_snr_db(cfg.snr_db);
    impairments.interference_prob = cfg.interference_prob;
    impairments.interference_power_db = cfg.interference_power_db;
    // Orient the array broadside toward the transmitter (axis ⟂ link), as
    // the paper's receiver is deployed; `annotate`'s angle convention then
    // matches the array's incidence angles.
    let axis = (case.tx - case.rx)
        .normalized()
        .unwrap_or(Vec2::new(1.0, 0.0))
        .perp();
    let band = cfg.detector.band.clone();
    let array = mpdf_wifi::UniformLinearArray::new(3, band.center_wavelength() / 2.0, axis);
    let rx_cfg = ReceiverConfig {
        band,
        array,
        impairments,
        clutter_drift_rel: cfg.clutter_drift_rel,
        session_gain_drift_db: cfg.session_gain_drift_db,
        faults: cfg.faults,
        ..ReceiverConfig::default()
    };
    CsiReceiver::with_config(channel, rx_cfg, seed)
}

/// Annotates a human position relative to the case's receiver.
pub fn annotate(case: &LinkCase, position: Point) -> HumanInfo {
    let broadside = (case.tx - case.rx)
        .normalized()
        .unwrap_or(Vec2::new(1.0, 0.0));
    let to_human = position - case.rx;
    let angle_deg = broadside
        .cross(to_human)
        .atan2(broadside.dot(to_human))
        .to_degrees();
    HumanInfo {
        position,
        distance_to_rx: case.rx.distance(position),
        angle_deg,
    }
}

/// Deterministic pseudo-random stream for workload-level choices
/// (background on/off, background position), independent of the
/// receiver's noise RNG.
fn mix(seed: u64, a: u64, b: u64) -> u64 {
    let mut x = seed
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(a.wrapping_mul(0xBF58476D1CE4E5B9))
        .wrapping_add(b.wrapping_mul(0x94D049BB133111EB));
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58476D1CE4E5B9);
    x ^= x >> 27;
    x
}

fn unit(seed: u64, a: u64, b: u64) -> f64 {
    (mix(seed, a, b) >> 11) as f64 / (1u64 << 53) as f64
}

/// Stream id of the calibration capture within a case (window streams
/// use `(widx << 2) | salt` with salt 1 or 2, so bit 0 set with bit 1
/// clear can never collide with a window).
const CALIBRATION_STREAM: u64 = 1;

/// RNG stream for one monitoring window: a pure function of the campaign
/// seed, the case and the window index, so a window's capture does not
/// depend on which thread runs it or in what order.
fn window_stream(cfg: &CampaignConfig, case: &LinkCase, window_idx: u64, label_salt: u64) -> u64 {
    mix(cfg.seed, case.id as u64, (window_idx << 2) | label_salt)
}

/// Captures one monitoring window with an optional monitored person and
/// campaign-level background dynamics.
///
/// The window runs on a dedicated [`CsiReceiver::fork`] of the case's
/// template receiver, seeded by [`window_stream`]: the result is a pure
/// function of `(template, cfg, monitored, window_idx, label_salt)`, so
/// serial and parallel campaigns produce bit-identical packets.
fn capture_window(
    template: &CsiReceiver,
    case: &LinkCase,
    cfg: &CampaignConfig,
    monitored: Option<Point>,
    window_idx: u64,
    label_salt: u64,
) -> Result<Vec<CsiPacket>, TraceError> {
    let _stage = mpdf_obs::stage!("eval.window");
    // Trajectory sampling is keyed to window counts, not wall-clock, so
    // the sample boundaries are deterministic at any thread count.
    mpdf_obs::trajectory::tick();
    let mut receiver = template.fork(window_stream(cfg, case, window_idx, label_salt));
    // Each monitoring window belongs to a different "session" than the
    // calibration capture: the clutter has drifted.
    receiver.resample_drift();
    let mut sways: Vec<StaticSway> = Vec::new();
    if let Some(pos) = monitored {
        sways.push(StaticSway::new(pos, cfg.sway_amplitude));
    }
    // Background walker, far from the link.
    if unit(cfg.seed, window_idx, label_salt) < cfg.background_rate {
        let candidates = case.background_positions(cfg.background_distance);
        if !candidates.is_empty() {
            let pick = (mix(cfg.seed, window_idx, label_salt ^ 0xB6) as usize) % candidates.len();
            // Background people move more than a standing subject sways.
            sways.push(StaticSway::new(candidates[pick], 0.25));
        }
    }
    let actors: Vec<Actor<'_>> = sways
        .iter()
        .map(|s| Actor {
            body: HumanBody::new(s.anchor),
            trajectory: s,
        })
        .collect();
    receiver.capture_actors(&actors, cfg.detector.window)
}

/// One window capture in the campaign's flat work list.
#[derive(Debug, Clone, Copy)]
struct WindowJob {
    case_idx: usize,
    monitored: Option<Point>,
    widx: u64,
    salt: u64,
}

/// Runs the full campaign over the given cases: calibration plus labeled
/// positive/negative windows per case.
///
/// Work fans out over `cfg.threads` workers (see [`CampaignConfig`]),
/// first across cases (template receiver + calibration profile), then
/// across the flat case × window list so uneven case sizes still balance.
/// Because every window runs on its own seed-derived receiver fork, the
/// result is bit-for-bit identical for any thread count.
///
/// # Errors
/// Propagates capture and calibration errors.
pub fn run_campaign(
    cases: &[LinkCase],
    cfg: &CampaignConfig,
) -> Result<Vec<CaseData>, mpdf_core::error::DetectError> {
    let _stage = mpdf_obs::stage!("eval.campaign");
    // Stage 1: per-case template receiver and calibration profile.
    let calibrated: Vec<(CsiReceiver, CalibrationProfile)> =
        mpdf_par::try_map_indexed(cfg.threads, cases, |_, case| {
            let template = case_receiver(case, cfg, cfg.seed ^ (case.id as u64) << 8)?;
            let calibration = template
                .fork(mix(cfg.seed, case.id as u64, CALIBRATION_STREAM))
                .capture_static(None, cfg.calibration_packets)?;
            let profile = CalibrationProfile::build(&calibration, &cfg.detector)?;
            mpdf_obs::counter!("eval.cases_total").inc();
            Ok::<_, mpdf_core::error::DetectError>((template, profile))
        })?;

    // Stage 2: one flat job list across all cases and windows, grouped by
    // case in declaration order (positives by grid position, then
    // negatives) so reassembly below is a straight split.
    let mut jobs: Vec<WindowJob> = Vec::new();
    for (case_idx, case) in cases.iter().enumerate() {
        let mut widx = 0u64;
        for &pos in &case.grid {
            for _ in 0..cfg.episodes_per_position {
                jobs.push(WindowJob {
                    case_idx,
                    monitored: Some(pos),
                    widx,
                    salt: 1,
                });
                widx += 1;
            }
        }
        for _ in 0..cfg.negative_windows {
            jobs.push(WindowJob {
                case_idx,
                monitored: None,
                widx,
                salt: 2,
            });
            widx += 1;
        }
    }
    let captured: Vec<WindowRecord> = mpdf_par::try_map_indexed(cfg.threads, &jobs, |_, job| {
        let case = &cases[job.case_idx];
        let template = &calibrated[job.case_idx].0;
        let packets = capture_window(template, case, cfg, job.monitored, job.widx, job.salt)?;
        mpdf_obs::counter!("eval.windows_total").inc();
        mpdf_obs::counter!("eval.packets_total").add(packets.len() as u64);
        // Per-case breakdown keyed by the scenario's case id (dynamic
        // name, so it goes through the registry rather than the macro).
        mpdf_obs::metrics::counter(&format!("eval.case{}.windows_total", case.id)).inc();
        Ok::<_, mpdf_core::error::DetectError>(WindowRecord {
            packets,
            human: job.monitored.map(|pos| annotate(case, pos)),
        })
    })?;

    // Reassemble per case; jobs and results share indices.
    let mut out: Vec<CaseData> = calibrated
        .into_iter()
        .zip(cases)
        .map(|((_, profile), case)| CaseData {
            case_id: case.id,
            profile,
            windows: Vec::new(),
        })
        .collect();
    for (job, record) in jobs.iter().zip(captured) {
        out[job.case_idx].windows.push(record);
    }
    Ok(out)
}

/// A scored window with full annotation, for per-case/distance/angle
/// breakdowns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredWindow {
    /// Case the window came from.
    pub case_id: usize,
    /// Scheme score.
    pub score: f64,
    /// Human annotation, `None` for empty windows.
    pub human: Option<HumanInfo>,
}

impl ScoredWindow {
    /// Converts to the metric layer's labeled form.
    pub fn labeled(&self) -> LabeledScore {
        LabeledScore {
            score: self.score,
            positive: self.human.is_some(),
        }
    }
}

/// Scores every window of a campaign with one scheme.
///
/// Windows that the graceful-degradation path aborts with
/// [`DegradedBeyondBudget`](mpdf_core::error::DetectError::DegradedBeyondBudget)
/// — or that the faulty receiver lost outright
/// ([`EmptyWindow`](mpdf_core::error::DetectError::EmptyWindow)) — are
/// skipped: a detector facing a fault burst abstains on that window
/// rather than failing the whole campaign. Abstentions are counted on
/// `eval.aborted_windows_total`. Fault-free campaigns never abort, so
/// this keeps the zero-fault output byte-identical.
///
/// # Errors
/// Propagates scheme errors other than gap-budget aborts and lost
/// windows.
pub fn score_campaign<S: DetectionScheme>(
    data: &[CaseData],
    scheme: &S,
    detector: &DetectorConfig,
) -> Result<Vec<ScoredWindow>, mpdf_core::error::DetectError> {
    let _stage = mpdf_obs::stage!("eval.score");
    let mut out = Vec::new();
    for case in data {
        for w in &case.windows {
            let score = match scheme.score(&case.profile, &w.packets, detector) {
                Ok(score) => score,
                Err(
                    mpdf_core::error::DetectError::DegradedBeyondBudget { .. }
                    | mpdf_core::error::DetectError::EmptyWindow,
                ) => {
                    mpdf_obs::counter!("eval.aborted_windows_total").inc();
                    continue;
                }
                Err(e) => return Err(e),
            };
            mpdf_obs::counter!("eval.scored_windows_total").inc();
            out.push(ScoredWindow {
                case_id: case.case_id,
                score,
                human: w.human,
            });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::five_cases;
    use mpdf_core::scheme::Baseline;

    fn tiny_config() -> CampaignConfig {
        CampaignConfig {
            calibration_packets: 120,
            episodes_per_position: 1,
            negative_windows: 4,
            detector: DetectorConfig {
                window: 10,
                ..DetectorConfig::default()
            },
            // Tests run serial by default; the parallel-equivalence test
            // below compares against explicit multi-threaded runs.
            threads: 1,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn annotate_geometry() {
        let case = &five_cases()[0]; // tx (2,3), rx (6,3): broadside −x
        let on_axis = annotate(case, Point::new(5.0, 3.0));
        assert!((on_axis.distance_to_rx - 1.0).abs() < 1e-12);
        assert!(on_axis.angle_deg.abs() < 1e-9);
        let side = annotate(case, Point::new(6.0, 4.0));
        assert!((side.distance_to_rx - 1.0).abs() < 1e-12);
        assert!((side.angle_deg.abs() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn campaign_produces_labeled_windows() {
        let cases = &five_cases()[..1];
        let cfg = tiny_config();
        let data = run_campaign(cases, &cfg).unwrap();
        assert_eq!(data.len(), 1);
        let case = &data[0];
        assert_eq!(case.windows.len(), 9 + 4);
        let positives = case.windows.iter().filter(|w| w.human.is_some()).count();
        assert_eq!(positives, 9);
        for w in &case.windows {
            assert_eq!(w.packets.len(), 10);
        }
    }

    #[test]
    fn campaign_is_reproducible() {
        let cases = &five_cases()[..1];
        let cfg = tiny_config();
        let d1 = run_campaign(cases, &cfg).unwrap();
        let d2 = run_campaign(cases, &cfg).unwrap();
        let s1 = score_campaign(&d1, &Baseline, &cfg.detector).unwrap();
        let s2 = score_campaign(&d2, &Baseline, &cfg.detector).unwrap();
        assert_eq!(s1, s2);
    }

    #[test]
    fn campaign_is_identical_across_thread_counts() {
        let cases = &five_cases()[..2];
        let serial_cfg = tiny_config();
        let serial = run_campaign(cases, &serial_cfg).unwrap();
        for threads in [2, 4] {
            let cfg = CampaignConfig {
                threads,
                ..tiny_config()
            };
            let parallel = run_campaign(cases, &cfg).unwrap();
            assert_eq!(parallel.len(), serial.len(), "threads={threads}");
            for (p, s) in parallel.iter().zip(&serial) {
                assert_eq!(p.case_id, s.case_id, "threads={threads}");
                assert_eq!(p.windows.len(), s.windows.len(), "threads={threads}");
                for (pw, sw) in p.windows.iter().zip(&s.windows) {
                    // Bit-for-bit: packets, labels, the lot.
                    assert_eq!(pw.packets, sw.packets, "threads={threads}");
                    assert_eq!(pw.human, sw.human, "threads={threads}");
                }
            }
            // Profiles feed thresholds downstream; scores must agree too.
            let ss = score_campaign(&serial, &Baseline, &serial_cfg.detector).unwrap();
            let ps = score_campaign(&parallel, &Baseline, &cfg.detector).unwrap();
            assert_eq!(ss, ps, "threads={threads}");
        }
    }

    #[test]
    fn scoring_separates_classes_on_average() {
        let cases = &five_cases()[..1];
        let cfg = tiny_config();
        let data = run_campaign(cases, &cfg).unwrap();
        let scored = score_campaign(&data, &Baseline, &cfg.detector).unwrap();
        let pos: Vec<f64> = scored
            .iter()
            .filter(|s| s.human.is_some())
            .map(|s| s.score)
            .collect();
        let neg: Vec<f64> = scored
            .iter()
            .filter(|s| s.human.is_none())
            .map(|s| s.score)
            .collect();
        let mp = pos.iter().sum::<f64>() / pos.len() as f64;
        let mn = neg.iter().sum::<f64>() / neg.len() as f64;
        assert!(mp > mn, "positives {mp} must outscore negatives {mn}");
    }
}
