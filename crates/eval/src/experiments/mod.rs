//! Experiment runners, one module per paper exhibit.
//!
//! Each module exposes a `run*` function returning a typed result and a
//! `report*` function rendering the paper-style rows/series. The `repro`
//! binary dispatches on experiment ids.

pub mod ext_ablate;
pub mod ext_array;
pub mod ext_chaos;
pub mod ext_drift;
pub mod ext_hmm;
pub mod ext_sweep;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod sweeps;
