//! Fig. 9 — detection rate vs. human distance from the receiver.
//!
//! Paper: the baseline collapses below 60 % at 5 m; both weighted schemes
//! stay above 90 %, and path weighting gains the most (≈12 %) for distant
//! humans — roughly doubling the usable detection range at a 90 %
//! detection-rate requirement.

use serde::{Deserialize, Serialize};

use mpdf_core::scheme::{
    Baseline, DetectionScheme, SubcarrierAndPathWeighting, SubcarrierWeighting,
};
use mpdf_propagation::human::HumanBody;
use mpdf_propagation::trajectory::StaticSway;
use mpdf_wifi::receiver::Actor;

use crate::metrics::detection_rate;
use crate::scenario::{distance_ring_positions, five_cases};
use crate::workload::{case_receiver, CampaignConfig};

use super::fig7::{run_campaign_scores, CampaignScores};

/// Detection rates per distance bin.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig9Result {
    /// Rows of `(distance m, baseline, subcarrier, combined)`.
    pub rows: Vec<(f64, f64, f64, f64)>,
    /// Largest distance at which each scheme still reaches 90 %:
    /// `(baseline, subcarrier, combined)`.
    pub range_at_90: (f64, f64, f64),
}

/// Runs Fig. 9: distance rings 1–5 m on the two longest links, scored
/// with the thresholds of the shared Fig. 7 campaign.
///
/// # Errors
/// Propagates pipeline errors.
pub fn run(cfg: &CampaignConfig) -> Result<Fig9Result, mpdf_core::error::DetectError> {
    let shared = run_campaign_scores(cfg)?;
    let thr_b = CampaignScores::balanced_threshold(&shared.baseline);
    let thr_s = CampaignScores::balanced_threshold(&shared.subcarrier);
    let thr_c = CampaignScores::balanced_threshold(&shared.combined);

    let distances = [1.0, 2.0, 3.0, 4.0, 5.0];
    let cases = five_cases();
    // Use the two longest links so 5 m positions exist.
    let mut picked: Vec<_> = cases.iter().collect();
    picked.sort_by(|a, b| b.link_length().total_cmp(&a.link_length()));
    let picked = &picked[..2];

    /// Scores per distance bin: `(distance, baseline, subcarrier, combined)`.
    type DistanceBin = (f64, Vec<f64>, Vec<f64>, Vec<f64>);
    let mut per_distance: Vec<DistanceBin> = distances
        .iter()
        .map(|&d| (d, Vec::new(), Vec::new(), Vec::new()))
        .collect();

    for case in picked {
        let mut receiver = case_receiver(case, cfg, cfg.seed ^ 0x919 ^ case.id as u64)?;
        let calibration = receiver.capture_static(None, cfg.calibration_packets)?;
        let profile = mpdf_core::profile::CalibrationProfile::build(&calibration, &cfg.detector)?;
        for (d, pos) in distance_ring_positions(case, &distances) {
            for episode in 0..cfg.episodes_per_position {
                receiver.resample_drift();
                let sway = StaticSway::new(pos, cfg.sway_amplitude);
                let actors = [Actor {
                    body: HumanBody::new(pos),
                    trajectory: &sway,
                }];
                let window = receiver.capture_actors(&actors, cfg.detector.window)?;
                // `d` comes from iterating `distances`, so a bin always
                // exists; skip defensively rather than panic.
                let Some(slot) = per_distance
                    .iter_mut()
                    .find(|(dd, ..)| (*dd - d).abs() < 1e-9)
                else {
                    continue;
                };
                slot.1
                    .push(Baseline.score(&profile, &window, &cfg.detector)?);
                slot.2
                    .push(SubcarrierWeighting.score(&profile, &window, &cfg.detector)?);
                slot.3
                    .push(SubcarrierAndPathWeighting.score(&profile, &window, &cfg.detector)?);
                let _ = episode;
            }
        }
    }

    let rows: Vec<(f64, f64, f64, f64)> = per_distance
        .iter()
        .map(|(d, b, s, c)| {
            (
                *d,
                detection_rate(b, thr_b),
                detection_rate(s, thr_s),
                detection_rate(c, thr_c),
            )
        })
        .collect();
    let range = |idx: usize| -> f64 {
        rows.iter()
            .filter(|r| match idx {
                0 => r.1 >= 0.9,
                1 => r.2 >= 0.9,
                _ => r.3 >= 0.9,
            })
            .map(|r| r.0)
            .fold(0.0, f64::max)
    };
    Ok(Fig9Result {
        range_at_90: (range(0), range(1), range(2)),
        rows,
    })
}

/// Renders the report.
pub fn report(r: &Fig9Result) -> String {
    let mut out = String::from("Fig. 9 — detection rate vs distance from the receiver\n");
    let rows: Vec<Vec<String>> = r
        .rows
        .iter()
        .map(|(d, b, s, c)| {
            vec![
                format!("{d:.0} m"),
                crate::report::pct(*b),
                crate::report::pct(*s),
                crate::report::pct(*c),
            ]
        })
        .collect();
    out.push_str(&crate::report::table(
        &["distance", "baseline", "subcarrier", "sub+path"],
        &rows,
    ));
    out.push_str(&format!(
        "range at ≥90% detection: baseline {:.0} m, subcarrier {:.0} m, sub+path {:.0} m\n",
        r.range_at_90.0, r.range_at_90.1, r.range_at_90.2
    ));
    out.push_str("paper: baseline <60% at 5 m; weighted schemes >90% at 5 m (≈1× range gain)\n");
    out
}
