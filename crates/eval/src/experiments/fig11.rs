//! Fig. 11 — path weighting's gain across human angles.
//!
//! Humans at the same radius but different angles from the receiver:
//! path weighting helps most at large angles (NLOS directions), while
//! the gain near the LOS direction (0°) is marginal.

use serde::{Deserialize, Serialize};

use mpdf_core::scheme::{DetectionScheme, SubcarrierAndPathWeighting, SubcarrierWeighting};
use mpdf_propagation::human::HumanBody;
use mpdf_propagation::trajectory::StaticSway;
use mpdf_wifi::receiver::Actor;

use crate::metrics::detection_rate;
use crate::scenario::{angle_fan_positions, five_cases};
use crate::workload::{case_receiver, CampaignConfig};

use super::fig7::{run_campaign_scores, CampaignScores};

/// Detection rate by angle for the two weighted schemes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig11Result {
    /// Rows of `(angle°, subcarrier-only, subcarrier+path)`.
    pub rows: Vec<(f64, f64, f64)>,
    /// Mean gain of path weighting at |angle| ≥ 45°.
    pub gain_large_angles: f64,
    /// Mean gain of path weighting at |angle| ≤ 15°.
    pub gain_small_angles: f64,
}

/// Runs Fig. 11 on the 4 m classroom link at 1.5 m radius.
///
/// # Errors
/// Propagates pipeline errors.
pub fn run(cfg: &CampaignConfig) -> Result<Fig11Result, mpdf_core::error::DetectError> {
    let shared = run_campaign_scores(cfg)?;
    let thr_s = CampaignScores::balanced_threshold(&shared.subcarrier);
    let thr_c = CampaignScores::balanced_threshold(&shared.combined);

    let case = &five_cases()[0];
    let mut receiver = case_receiver(case, cfg, cfg.seed ^ 0xB11)?;
    let calibration = receiver.capture_static(None, cfg.calibration_packets)?;
    let profile = mpdf_core::profile::CalibrationProfile::build(&calibration, &cfg.detector)?;

    let fan: Vec<f64> = (-6..=6).map(|i| i as f64 * 15.0).collect();
    let mut rows = Vec::new();
    for (angle, pos) in angle_fan_positions(case, 1.5, &fan) {
        let mut s_scores = Vec::new();
        let mut c_scores = Vec::new();
        for _ in 0..cfg.episodes_per_position.max(3) {
            receiver.resample_drift();
            let sway = StaticSway::new(pos, cfg.sway_amplitude);
            let actors = [Actor {
                body: HumanBody::new(pos),
                trajectory: &sway,
            }];
            let window = receiver.capture_actors(&actors, cfg.detector.window)?;
            s_scores.push(SubcarrierWeighting.score(&profile, &window, &cfg.detector)?);
            c_scores.push(SubcarrierAndPathWeighting.score(&profile, &window, &cfg.detector)?);
        }
        rows.push((
            angle,
            detection_rate(&s_scores, thr_s),
            detection_rate(&c_scores, thr_c),
        ));
    }

    let mean_gain = |pred: &dyn Fn(f64) -> bool| -> f64 {
        let sel: Vec<&(f64, f64, f64)> = rows.iter().filter(|(a, ..)| pred(*a)).collect();
        if sel.is_empty() {
            return 0.0;
        }
        sel.iter().map(|(_, s, c)| c - s).sum::<f64>() / sel.len() as f64
    };
    Ok(Fig11Result {
        gain_large_angles: mean_gain(&|a: f64| a.abs() >= 45.0),
        gain_small_angles: mean_gain(&|a: f64| a.abs() <= 15.0),
        rows,
    })
}

/// Renders the report.
pub fn report(r: &Fig11Result) -> String {
    let mut out = String::from("Fig. 11 — path weighting gain vs human angle (1.5 m radius)\n");
    let rows: Vec<Vec<String>> = r
        .rows
        .iter()
        .map(|(a, s, c)| {
            vec![
                format!("{a:.0}°"),
                crate::report::pct(*s),
                crate::report::pct(*c),
            ]
        })
        .collect();
    out.push_str(&crate::report::table(
        &["angle", "subcarrier", "sub+path"],
        &rows,
    ));
    out.push_str(&format!(
        "mean path-weighting gain: {:.1} pts at |angle|≥45°, {:.1} pts at |angle|≤15°\n",
        100.0 * r.gain_large_angles,
        100.0 * r.gain_small_angles
    ));
    out.push_str("paper: notable improvement at large angles, marginal near the LOS\n");
    out
}
