//! Fig. 4 — temporal stability of the multipath factor.
//!
//! 5000 packets at each of two human-presence locations on a 3 m link.
//! Per-packet `μ_k` vectors show that (a) the maximal-μ subcarrier can
//! move between packets, and (b/c) per-subcarrier stability differs
//! between locations — the motivation for the stability ratio `r_k`
//! (Eq. 13/14).

use serde::{Deserialize, Serialize};

use mpdf_core::error::DetectError;
use mpdf_core::multipath_factor::multipath_factors;
use mpdf_core::subcarrier_weight::SubcarrierWeights;
use mpdf_geom::vec2::{Point, Vec2};
use mpdf_propagation::human::HumanBody;
use mpdf_propagation::trajectory::StaticSway;
use mpdf_wifi::receiver::Actor;
use mpdf_wifi::sanitize::sanitize_packet;

use crate::scenario::five_cases;
use crate::workload::{case_receiver, CampaignConfig};

/// Per-location stability measurements.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LocationStability {
    /// Human position.
    pub position: Point,
    /// Temporal mean of μ per subcarrier.
    pub mean_mu: Vec<f64>,
    /// Temporal standard deviation of μ per subcarrier.
    pub std_mu: Vec<f64>,
    /// Stability ratio `r_k` over the capture (Eq. 13/14).
    pub stability: Vec<f64>,
    /// Fraction of packets whose arg-max μ subcarrier differs from the
    /// capture's modal arg-max (how often the "best" subcarrier moves).
    pub argmax_flip_rate: f64,
}

/// Result of the Fig. 4 experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4Result {
    /// The two measured locations.
    pub locations: Vec<LocationStability>,
}

fn measure(
    case_idx: usize,
    position: Point,
    cfg: &CampaignConfig,
    packets: usize,
) -> Result<LocationStability, DetectError> {
    let case = &five_cases()[case_idx];
    let mut receiver = case_receiver(case, cfg, cfg.seed ^ 0x414)?;
    // Warm the static profile (not otherwise used here) so captures run in
    // monitoring conditions.
    let _ = receiver.capture_static(None, cfg.calibration_packets.min(200))?;
    let sway = StaticSway::new(position, cfg.sway_amplitude);
    let actors = [Actor {
        body: HumanBody::new(position),
        trajectory: &sway,
    }];
    let stream = receiver.capture_actors(&actors, packets)?;
    let freqs = cfg.detector.band.frequencies();

    let per_packet: Vec<Vec<f64>> = stream
        .iter()
        .map(|p| {
            let mut q = p.clone();
            sanitize_packet(&mut q, cfg.detector.band.indices());
            multipath_factors(&q, &freqs)
        })
        .collect();

    let k = freqs.len();
    let n = per_packet.len() as f64;
    let mut mean_mu = vec![0.0; k];
    for mus in &per_packet {
        for (s, &m) in mean_mu.iter_mut().zip(mus) {
            *s += m;
        }
    }
    for s in &mut mean_mu {
        *s /= n;
    }
    let mut std_mu = vec![0.0; k];
    for mus in &per_packet {
        for ((s, &m), &mean) in std_mu.iter_mut().zip(mus).zip(&mean_mu) {
            *s += (m - mean) * (m - mean);
        }
    }
    for s in &mut std_mu {
        *s = (*s / n).sqrt();
    }
    let weights = SubcarrierWeights::from_factors(&per_packet);

    // Arg-max flips.
    let argmaxes: Vec<usize> = per_packet
        .iter()
        .map(|mus| {
            mus.iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .unwrap_or(0)
        })
        .collect();
    let mut counts = vec![0usize; k];
    for &a in &argmaxes {
        counts[a] += 1;
    }
    let modal = counts
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .map(|(i, _)| i)
        .unwrap_or(0);
    let flips = argmaxes.iter().filter(|&&a| a != modal).count();

    Ok(LocationStability {
        position,
        mean_mu,
        std_mu,
        stability: weights.stability,
        argmax_flip_rate: flips as f64 / argmaxes.len() as f64,
    })
}

/// Runs Fig. 4 on the short (3 m) classroom link with two distinct human
/// locations.
///
/// # Errors
/// Propagates trace and capture errors for invalid links.
pub fn run(cfg: &CampaignConfig, packets: usize) -> Result<Fig4Result, DetectError> {
    // Case 3 is the short link. One location near the LOS, one beside it.
    let case = &five_cases()[2];
    let mid = case.midpoint();
    let across = (case.rx - case.tx)
        .normalized()
        .unwrap_or(Vec2::new(1.0, 0.0))
        .perp();
    let loc1 = mid;
    let loc2 = mid + across * (-1.2);
    Ok(Fig4Result {
        locations: vec![
            measure(2, loc1, cfg, packets)?,
            measure(2, Vec2::new(loc2.x, loc2.y), cfg, packets)?,
        ],
    })
}

/// Renders the Fig. 4 report.
pub fn report(r: &Fig4Result) -> String {
    let mut out = String::from("Fig. 4 — temporal stability of the multipath factor\n");
    for (i, loc) in r.locations.iter().enumerate() {
        out.push_str(&format!("\nlocation {} at {}\n", i + 1, loc.position));
        // Top-5 subcarriers by mean μ with their variability.
        let mut order: Vec<usize> = (0..loc.mean_mu.len()).collect();
        order.sort_by(|&a, &b| loc.mean_mu[b].total_cmp(&loc.mean_mu[a]));
        let rows: Vec<Vec<String>> = order
            .iter()
            .take(5)
            .map(|&k| {
                vec![
                    format!("{k}"),
                    format!("{:.3}", loc.mean_mu[k]),
                    format!("{:.3}", loc.std_mu[k]),
                    format!("{:.2}", loc.stability[k]),
                ]
            })
            .collect();
        out.push_str(&crate::report::table(
            &["slot", "mean μ", "std μ", "r_k"],
            &rows,
        ));
        out.push_str(&format!(
            "arg-max μ subcarrier flips in {} of packets\n",
            crate::report::pct(loc.argmax_flip_rate)
        ));
    }
    out.push_str(
        "\npaper: the max-μ subcarrier varies between packets; large-μ subcarriers are\n\
         stable at some locations but fluctuate at others — hence weighting by μ̄_k·r_k\n",
    );
    out
}
