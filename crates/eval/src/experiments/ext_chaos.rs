//! Chaos campaign: detection quality under injected receiver faults.
//!
//! Extension beyond the paper: the measurement stack is subjected to the
//! `chaos` fault preset (loss bursts, chain dropouts, AGC saturation,
//! decoder glitches) at increasing intensity, and the subcarrier-weighted
//! detector runs through its graceful-degradation path. The threshold is
//! frozen at intensity 0 — a deployed detector cannot recalibrate the
//! moment its receiver starts failing — so the sweep reports how the
//! detection and false-positive rates of the *fault-free* operating point
//! erode, and how many windows the gap budget aborts outright.

use serde::{Deserialize, Serialize};

use mpdf_core::error::DetectError;
use mpdf_core::scheme::{DetectionScheme, SubcarrierWeighting};
use mpdf_core::threshold::threshold_for_fp;
use mpdf_wifi::FaultModel;

use crate::metrics::detection_rate;
use crate::scenario::five_cases;
use crate::workload::{run_campaign, CampaignConfig};

/// The fault intensities swept (scale factors on the `chaos` preset's
/// probabilities; 0 disables fault injection entirely).
pub const INTENSITIES: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];

/// False-positive target the frozen threshold is calibrated to at
/// intensity 0.
const TARGET_FP: f64 = 0.1;

/// One intensity step of the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChaosRow {
    /// Scale factor on the `chaos` preset.
    pub intensity: f64,
    /// Detection rate of human windows at the frozen threshold.
    pub detection_rate: f64,
    /// False-positive rate of empty windows at the frozen threshold.
    pub fp_rate: f64,
    /// Windows scored through the degradation path (packets lost,
    /// rejected or antenna-reduced).
    pub degraded_windows: usize,
    /// Windows aborted with [`DetectError::DegradedBeyondBudget`].
    pub aborted_windows: usize,
    /// Windows that produced a score.
    pub scored_windows: usize,
}

/// Result of the chaos sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExtChaosResult {
    /// Threshold frozen from the intensity-0 negative scores.
    pub threshold: f64,
    /// One row per swept intensity.
    pub rows: Vec<ChaosRow>,
}

/// Runs the chaos sweep.
///
/// # Errors
/// Propagates pipeline errors other than the expected
/// [`DetectError::DegradedBeyondBudget`] aborts and fully-lost
/// ([`DetectError::EmptyWindow`]) windows.
pub fn run(cfg: &CampaignConfig) -> Result<ExtChaosResult, DetectError> {
    let _stage = mpdf_obs::stage!("eval.ext_chaos");
    let cases = five_cases();
    let scheme = SubcarrierWeighting;
    let mut threshold: Option<f64> = None;
    let mut rows = Vec::with_capacity(INTENSITIES.len());
    for &intensity in &INTENSITIES {
        let fault_cfg = CampaignConfig {
            faults: FaultModel::chaos().scaled(intensity),
            ..cfg.clone()
        };
        let data = run_campaign(&cases, &fault_cfg)?;
        let mut positives = Vec::new();
        let mut negatives = Vec::new();
        let mut degraded_windows = 0usize;
        let mut aborted_windows = 0usize;
        for case in &data {
            for w in &case.windows {
                match scheme.score_with_health(&case.profile, &w.packets, &fault_cfg.detector) {
                    Ok((score, health)) => {
                        if health.degraded {
                            degraded_windows += 1;
                        }
                        if w.human.is_some() {
                            positives.push(score);
                        } else {
                            negatives.push(score);
                        }
                    }
                    Err(DetectError::DegradedBeyondBudget { .. } | DetectError::EmptyWindow) => {
                        aborted_windows += 1;
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        // Freeze the operating point on the first (fault-free) pass.
        let thr = *threshold.get_or_insert_with(|| threshold_for_fp(&negatives, TARGET_FP));
        rows.push(ChaosRow {
            intensity,
            detection_rate: detection_rate(&positives, thr),
            fp_rate: detection_rate(&negatives, thr),
            degraded_windows,
            aborted_windows,
            scored_windows: positives.len() + negatives.len(),
        });
    }
    Ok(ExtChaosResult {
        threshold: threshold.unwrap_or(f64::INFINITY),
        rows,
    })
}

/// Renders the report.
pub fn report(r: &ExtChaosResult) -> String {
    let mut out = String::from("Chaos sweep — detection under injected receiver faults\n");
    out.push_str(&format!(
        "threshold frozen at intensity 0 (target FP {:.0}%): {:.4}\n",
        TARGET_FP * 100.0,
        r.threshold
    ));
    let rows: Vec<Vec<String>> = r
        .rows
        .iter()
        .map(|row| {
            vec![
                format!("{:.2}", row.intensity),
                crate::report::pct(row.detection_rate),
                crate::report::pct(row.fp_rate),
                row.degraded_windows.to_string(),
                row.aborted_windows.to_string(),
                row.scored_windows.to_string(),
            ]
        })
        .collect();
    out.push_str(&crate::report::table(
        &["intensity", "detect", "FP", "degraded", "aborted", "scored"],
        &rows,
    ));
    out.push_str(
        "graceful degradation: quarantine + gap budgets keep the detector live on a\n\
         failing receiver; windows beyond the budget abort typed instead of scoring\n",
    );
    out
}
