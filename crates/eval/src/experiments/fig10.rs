//! Fig. 10 — angle-of-arrival estimation errors.
//!
//! With only three antennas the median AoA error can exceed 20°; the
//! paper shows that averaging over multiple packets (possible because the
//! person is never perfectly still) moderately reduces errors but heavy
//! tails remain — the cause of path weighting's occasional losses.

use serde::{Deserialize, Serialize};

use mpdf_music::music::{estimate_aoa, AngleGrid, UlaSteering};
use mpdf_propagation::human::HumanBody;
use mpdf_propagation::trajectory::StaticSway;
use mpdf_rfmath::complex::Complex64;
use mpdf_rfmath::stats::Ecdf;
use mpdf_wifi::csi::CsiPacket;
use mpdf_wifi::receiver::Actor;
use mpdf_wifi::sanitize::sanitize_packet;

use crate::scenario::angle_fan_positions;
use crate::workload::{annotate, case_receiver, CampaignConfig};

use super::fig5::wall_adjacent_case;

/// Result of the angle-error experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig10Result {
    /// CDF of single-packet estimation errors (degrees).
    pub single_packet_cdf: Vec<(f64, f64)>,
    /// CDF of window-averaged estimation errors (degrees).
    pub averaged_cdf: Vec<(f64, f64)>,
    /// Median errors `(single, averaged)`.
    pub medians: (f64, f64),
    /// 90th-percentile errors `(single, averaged)`.
    pub p90: (f64, f64),
}

/// Extracts MUSIC snapshots (subcarrier columns) from packets.
fn snapshots(packets: &[CsiPacket], indices: &[i32]) -> Vec<Vec<Complex64>> {
    packets
        .iter()
        .flat_map(|p| {
            let mut q = p.clone();
            sanitize_packet(&mut q, indices);
            (0..q.subcarriers())
                .map(|k| q.subcarrier_column(k))
                .collect::<Vec<_>>()
        })
        .collect()
}

/// Runs Fig. 10 on the wall-adjacent link: a human at each fan angle
/// scatters toward the receiver; MUSIC estimates the scatter angle from
/// one packet and from a full window; errors are compared against the
/// geometric ground truth.
///
/// # Errors
/// Propagates trace and capture errors for invalid links.
pub fn run(cfg: &CampaignConfig) -> Result<Fig10Result, mpdf_core::error::DetectError> {
    let case = wall_adjacent_case();
    let mut receiver = case_receiver(&case, cfg, cfg.seed ^ 0xA10)?;
    let steering = UlaSteering::three_half_wavelength();
    let grid = AngleGrid::full_front(1.0);

    let fan: Vec<f64> = (-5..=5).map(|i| i as f64 * 12.0).collect();
    let positions = angle_fan_positions(&case, 1.2, &fan);
    let mut single_errors = Vec::new();
    let mut averaged_errors = Vec::new();

    for (_, pos) in positions {
        let truth = annotate(&case, pos).angle_deg;
        let sway = StaticSway::new(pos, cfg.sway_amplitude.max(0.02));
        let actors = [Actor {
            body: HumanBody::new(pos),
            trajectory: &sway,
        }];
        for episode in 0..cfg.episodes_per_position {
            let window = receiver.capture_actors(&actors, cfg.detector.window)?;
            // MUSIC with 2 sources: the LOS (0°) and the human's scatter.
            // Error = distance from the truth to the *closest* estimate,
            // as the paper matches peaks to paths.
            let err_of = |packets: &[CsiPacket]| -> Option<f64> {
                let snaps = snapshots(packets, cfg.detector.band.indices());
                let angles = estimate_aoa(&snaps, &steering, 2, &grid).ok()?;
                angles
                    .iter()
                    .map(|a| (a - truth).abs())
                    .fold(None, |acc: Option<f64>, e| {
                        Some(acc.map_or(e, |a| a.min(e)))
                    })
            };
            if let Some(e) = err_of(&window[..1]) {
                single_errors.push(e);
            }
            if let Some(e) = err_of(&window) {
                averaged_errors.push(e);
            }
            let _ = episode;
        }
    }

    let single = Ecdf::new(&single_errors);
    let averaged = Ecdf::new(&averaged_errors);
    Ok(Fig10Result {
        single_packet_cdf: single.curve(31),
        averaged_cdf: averaged.curve(31),
        medians: (single.quantile(0.5), averaged.quantile(0.5)),
        p90: (single.quantile(0.9), averaged.quantile(0.9)),
    })
}

/// Renders the report.
pub fn report(r: &Fig10Result) -> String {
    let mut out = String::from("Fig. 10 — angle estimation errors (3-antenna MUSIC)\n");
    out.push_str("single packet:\n");
    out.push_str(&crate::report::series(
        "error [deg]",
        "CDF",
        &r.single_packet_cdf,
    ));
    out.push_str("window averaged:\n");
    out.push_str(&crate::report::series(
        "error [deg]",
        "CDF",
        &r.averaged_cdf,
    ));
    out.push_str(&format!(
        "median error: single {:.1}°, averaged {:.1}°; p90: single {:.1}°, averaged {:.1}°\n",
        r.medians.0, r.medians.1, r.p90.0, r.p90.1
    ));
    out.push_str("paper: median errors can exceed 20°; averaging helps moderately, tails remain\n");
    out
}
