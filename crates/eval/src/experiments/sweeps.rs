//! Shared measurement sweeps used by the Fig. 2/3/4 link-characterization
//! experiments.

use mpdf_core::error::DetectError;
use mpdf_core::multipath_factor::multipath_factors;
use mpdf_core::profile::{CalibrationProfile, DetectorConfig};
use mpdf_geom::vec2::{Point, Vec2};
use mpdf_propagation::human::HumanBody;
use mpdf_propagation::trajectory::StaticSway;
use mpdf_wifi::csi::CsiPacket;
use mpdf_wifi::receiver::Actor;
use mpdf_wifi::sanitize::sanitize_packet;

use crate::scenario::LinkCase;
use crate::workload::{case_receiver, CampaignConfig};

/// Measurements for one human-presence location.
#[derive(Debug, Clone)]
pub struct LocationSample {
    /// Human position.
    pub position: Point,
    /// Per-subcarrier RSS change `Δs` in dB vs. the static profile.
    pub delta_s_db: Vec<f64>,
    /// Per-subcarrier multipath factor `μ_k` (window mean, measured with
    /// the human present — what the runtime system would see).
    pub mu: Vec<f64>,
}

/// Deterministic low-discrepancy point inside a rectangle band around the
/// link: positions both on and near the LOS, as in the paper's 500-location
/// sweep (§III-A).
fn location(case: &LinkCase, i: usize) -> Point {
    // Halton-like sequence in 2-D.
    fn radical_inverse(base: u64, mut n: u64) -> f64 {
        let mut inv = 1.0 / base as f64;
        let mut out = 0.0;
        while n > 0 {
            out += (n % base) as f64 * inv;
            n /= base;
            inv /= base as f64;
        }
        out
    }
    let u = radical_inverse(2, i as u64 + 1);
    let v = radical_inverse(3, i as u64 + 1);
    let along = (case.rx - case.tx)
        .normalized()
        .unwrap_or(Vec2::new(1.0, 0.0));
    let across = along.perp();
    let mid = case.midpoint();
    let length = case.link_length();
    // Band: the whole link length, ±1.5 m across.
    let p = mid + along * ((u - 0.5) * length) + across * ((v - 0.5) * 3.0);
    let bounds = case.room.shrunk(0.35);
    Point::new(
        p.x.clamp(bounds.min().x, bounds.max().x),
        p.y.clamp(bounds.min().y, bounds.max().y),
    )
}

/// Captures the static profile plus `n_locations` human-presence windows
/// on a link, returning per-location `Δs` (dB) and `μ` vectors.
///
/// # Errors
/// Propagates trace and calibration errors for invalid links.
pub fn location_sweep(
    case: &LinkCase,
    cfg: &CampaignConfig,
    n_locations: usize,
    window: usize,
) -> Result<(CalibrationProfile, Vec<LocationSample>), DetectError> {
    let mut receiver = case_receiver(case, cfg, cfg.seed ^ 0xF1C2)?;
    let detector = &cfg.detector;
    let calibration = receiver.capture_static(None, cfg.calibration_packets)?;
    let profile = CalibrationProfile::build(&calibration, detector)?;
    let freqs = detector.band.frequencies();

    let samples = (0..n_locations)
        .map(|i| {
            let position = location(case, i);
            let sway = StaticSway::new(position, cfg.sway_amplitude);
            let actors = [Actor {
                body: HumanBody::new(position),
                trajectory: &sway,
            }];
            let packets = receiver.capture_actors(&actors, window)?;
            let sanitized: Vec<CsiPacket> = packets
                .iter()
                .map(|p| {
                    let mut q = p.clone();
                    sanitize_packet(&mut q, detector.band.indices());
                    q
                })
                .collect();
            let monitored = CsiPacket::median_power_profile(&sanitized);
            let delta_s_db: Vec<f64> = monitored
                .iter()
                .zip(profile.static_power())
                .map(|(m, s)| {
                    if *m <= f64::MIN_POSITIVE || *s <= f64::MIN_POSITIVE {
                        0.0
                    } else {
                        10.0 * (m / s).log10()
                    }
                })
                .collect();
            // Window-mean μ per subcarrier.
            let mut mu = vec![0.0; freqs.len()];
            for p in &sanitized {
                for (slot, v) in mu.iter_mut().zip(multipath_factors(p, &freqs)) {
                    *slot += v;
                }
            }
            for v in &mut mu {
                *v /= sanitized.len() as f64;
            }
            Ok(LocationSample {
                position,
                delta_s_db,
                mu,
            })
        })
        .collect::<Result<Vec<_>, DetectError>>()?;
    Ok((profile, samples))
}

/// The §III measurement link: the paper's 4 m link in the classroom
/// (case 1).
pub fn measurement_case() -> LinkCase {
    crate::scenario::five_cases().remove(0)
}

/// A sweep-specific detector configuration builder.
pub fn sweep_config() -> (CampaignConfig, DetectorConfig) {
    let cfg = CampaignConfig::default();
    let det = cfg.detector.clone();
    (cfg, det)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locations_are_inside_the_room() {
        let case = measurement_case();
        for i in 0..200 {
            let p = location(&case, i);
            assert!(case.room.contains(p), "location {i}: {p}");
        }
    }

    #[test]
    fn locations_are_diverse() {
        let case = measurement_case();
        let pts: Vec<Point> = (0..50).map(|i| location(&case, i)).collect();
        let mut min_x = f64::MAX;
        let mut max_x = f64::MIN;
        for p in &pts {
            min_x = min_x.min(p.x);
            max_x = max_x.max(p.x);
        }
        assert!(max_x - min_x > 2.0, "x spread {}", max_x - min_x);
    }

    #[test]
    fn sweep_produces_full_vectors() {
        let case = measurement_case();
        let cfg = CampaignConfig {
            calibration_packets: 80,
            ..Default::default()
        };
        let (_, samples) = location_sweep(&case, &cfg, 5, 10).unwrap();
        assert_eq!(samples.len(), 5);
        for s in &samples {
            assert_eq!(s.delta_s_db.len(), 30);
            assert_eq!(s.mu.len(), 30);
            assert!(s.mu.iter().all(|&m| m.is_finite() && m >= 0.0));
        }
    }
}
