//! Fig. 5 — impact of angle-of-arrival on signal strength.
//!
//! (b) The MUSIC pseudospectrum of a wall-adjacent 3 m link resolves two
//! peaks: the LOS and the wall reflection.
//! (c) RSS change for 16 human positions fanned −90°…90° around the
//! receiver: strong changes along the LOS direction plus a notable bump
//! near the reflected path's angle.

use serde::{Deserialize, Serialize};

use mpdf_core::error::DetectError;
use mpdf_core::profile::CalibrationProfile;
use mpdf_geom::vec2::{Point, Vec2};
use mpdf_propagation::channel::ChannelModel;
use mpdf_propagation::human::HumanBody;
use mpdf_propagation::path::PathKind;
use mpdf_propagation::trajectory::StaticSway;
use mpdf_wifi::csi::CsiPacket;
use mpdf_wifi::receiver::Actor;
use mpdf_wifi::sanitize::sanitize_packet;

use crate::scenario::{classroom, classroom_room, LinkCase};
use crate::workload::{annotate, case_receiver, CampaignConfig};

/// The Fig. 5 scenario: a 3 m link 1 m from the bottom wall, which casts
/// a strong distinct-angle reflection (paper: "placed in the proximity to
/// a concrete wall").
pub fn wall_adjacent_case() -> LinkCase {
    let env = classroom();
    let tx = Point::new(2.5, 1.5);
    let rx = Point::new(5.5, 1.5);
    LinkCase {
        id: 99,
        environment: env,
        tx,
        rx,
        room: classroom_room(),
        grid: vec![],
    }
}

/// Result of Fig. 5b.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5bResult {
    /// Normalized static pseudospectrum (angle°, value), downsampled.
    pub spectrum: Vec<(f64, f64)>,
    /// Peak angles (degrees), strongest first.
    pub peaks: Vec<f64>,
    /// Ground-truth arrival angles of the strongest paths, from the
    /// simulator (unavailable on a physical testbed).
    pub true_angles: Vec<f64>,
}

/// Runs Fig. 5b: the static pseudospectrum of the wall-adjacent link.
///
/// # Errors
/// Propagates trace and calibration errors for invalid links.
pub fn run_fig5b(cfg: &CampaignConfig) -> Result<Fig5bResult, DetectError> {
    let case = wall_adjacent_case();
    let mut receiver = case_receiver(&case, cfg, cfg.seed ^ 0x5B)?;
    let calibration = receiver.capture_static(None, cfg.calibration_packets)?;
    let profile = CalibrationProfile::build(&calibration, &cfg.detector)?;
    let norm = profile.static_spectrum().normalized();
    let spectrum: Vec<(f64, f64)> = norm
        .angles_deg()
        .iter()
        .zip(norm.values())
        .step_by(5)
        .map(|(&a, &v)| (a, v))
        .collect();
    let peaks = norm.peaks(2, 0.02).into_iter().map(|(a, _)| a).collect();

    // Ground truth from the propagation model: incidence angles of the
    // two strongest paths on the receiver array (broadside faces the TX).
    let channel = ChannelModel::new(case.environment.clone(), case.tx, case.rx)?;
    let snap = channel.snapshot(None)?;
    let broadside = (case.tx - case.rx)
        .normalized()
        .unwrap_or(Vec2::new(1.0, 0.0));
    let mut paths: Vec<(f64, f64)> = snap
        .paths()
        .iter()
        .filter_map(|p| {
            p.arrival_direction().map(|u| {
                // Same convention as the array: sinθ = u·axis, axis ⟂ broadside.
                let axis = broadside.perp();
                let theta = u.dot(axis).clamp(-1.0, 1.0).asin().to_degrees();
                (theta, p.amplitude_factor())
            })
        })
        .collect();
    paths.sort_by(|a, b| b.1.total_cmp(&a.1));
    let true_angles = paths.into_iter().take(2).map(|(a, _)| a).collect();

    Ok(Fig5bResult {
        spectrum,
        peaks,
        true_angles,
    })
}

/// Renders the Fig. 5b report.
pub fn report_fig5b(r: &Fig5bResult) -> String {
    let mut out = String::from("Fig. 5b — MUSIC pseudospectrum, wall-adjacent 3 m link\n");
    out.push_str(&crate::report::series(
        "angle [deg]",
        "Ps (norm.)",
        &r.spectrum,
    ));
    out.push_str(&format!(
        "estimated peaks: {:?} deg; ground-truth strongest arrivals: {:?} deg\n",
        r.peaks
            .iter()
            .map(|a| (a * 10.0).round() / 10.0)
            .collect::<Vec<_>>(),
        r.true_angles
            .iter()
            .map(|a| (a * 10.0).round() / 10.0)
            .collect::<Vec<_>>()
    ));
    out.push_str("paper: two peaks — the LOS and one wall reflection\n");
    out
}

/// Result of Fig. 5c.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5cResult {
    /// Per-angle mean |Δs| (dB) over subcarriers.
    pub rss_change_by_angle: Vec<(f64, f64)>,
    /// Angle of the maximum response.
    pub peak_angle_deg: f64,
}

/// Runs Fig. 5c: 16 human positions, −90°…90°, 1 m from the receiver.
///
/// # Errors
/// Propagates trace and capture errors for invalid links.
pub fn run_fig5c(cfg: &CampaignConfig) -> Result<Fig5cResult, DetectError> {
    let case = wall_adjacent_case();
    let mut receiver = case_receiver(&case, cfg, cfg.seed ^ 0x5C)?;
    let calibration = receiver.capture_static(None, cfg.calibration_packets)?;
    let sanitized: Vec<CsiPacket> = calibration
        .iter()
        .map(|p| {
            let mut q = p.clone();
            sanitize_packet(&mut q, cfg.detector.band.indices());
            q
        })
        .collect();
    let static_power = CsiPacket::median_power_profile(&sanitized);

    let angles: Vec<f64> = (0..16).map(|i| -90.0 + 180.0 * i as f64 / 15.0).collect();
    let positions = crate::scenario::angle_fan_positions(&case, 1.0, &angles);
    let mut series = Vec::with_capacity(positions.len());
    for (angle, pos) in positions {
        let sway = StaticSway::new(pos, cfg.sway_amplitude);
        let actors = [Actor {
            body: HumanBody::new(pos),
            trajectory: &sway,
        }];
        let window = receiver.capture_actors(&actors, cfg.detector.window)?;
        let sanitized: Vec<CsiPacket> = window
            .iter()
            .map(|p| {
                let mut q = p.clone();
                sanitize_packet(&mut q, cfg.detector.band.indices());
                q
            })
            .collect();
        let monitored = CsiPacket::median_power_profile(&sanitized);
        let mean_abs: f64 = monitored
            .iter()
            .zip(&static_power)
            .map(|(m, s)| {
                if *m <= f64::MIN_POSITIVE || *s <= f64::MIN_POSITIVE {
                    0.0
                } else {
                    (10.0 * (m / s).log10()).abs()
                }
            })
            .sum::<f64>()
            / 30.0;
        let _ = annotate(&case, pos);
        series.push((angle, mean_abs));
    }
    let peak_angle_deg = series
        .iter()
        .cloned()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .map(|(a, _)| a)
        .unwrap_or(0.0);
    Ok(Fig5cResult {
        rss_change_by_angle: series,
        peak_angle_deg,
    })
}

/// Renders the Fig. 5c report.
pub fn report_fig5c(r: &Fig5cResult) -> String {
    let mut out = String::from("Fig. 5c — RSS change vs human angle (1 m from receiver)\n");
    out.push_str(&crate::report::series(
        "angle [deg]",
        "mean |Δs| [dB]",
        &r.rss_change_by_angle,
    ));
    out.push_str(&format!(
        "strongest response at {:.1} deg (paper: dramatic changes along the LOS,\n plus a bump near the reflected path's direction)\n",
        r.peak_angle_deg
    ));
    out
}

/// Sanity helper used by tests: does the wall-adjacent link actually have
/// a strong first-order bottom-wall bounce?
pub fn has_wall_reflection() -> bool {
    let case = wall_adjacent_case();
    let Ok(channel) = ChannelModel::new(case.environment, case.tx, case.rx) else {
        return false;
    };
    let Ok(snap) = channel.snapshot(None) else {
        return false;
    };
    snap.paths()
        .iter()
        .any(|p| p.kind() == (PathKind::WallReflection { order: 1 }) && p.amplitude_factor() > 0.2)
}
