//! Fig. 12 — impact of the packet budget per decision.
//!
//! Paper: at 50 pkt/s the detection rate saturates within ≈0.5 s of
//! packets — the weighting schemes add negligible computational latency,
//! so response time is packet-budget-bound.

use serde::{Deserialize, Serialize};

use crate::metrics::{LabeledScore, RocCurve};
use crate::workload::CampaignConfig;

use super::fig7::run_campaign_scores;

/// Balanced detection rates vs window size.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig12Result {
    /// Rows of `(window packets, seconds at 50 pkt/s, baseline TP,
    /// subcarrier TP, combined TP)` at each scheme's balanced threshold.
    pub rows: Vec<(usize, f64, f64, f64, f64)>,
    /// Smallest window whose combined-scheme TP is within 5 points of the
    /// best TP over all window sizes — the packet budget needed for
    /// near-peak accuracy.
    pub saturation_window: usize,
}

fn balanced_tp(scores: &[crate::workload::ScoredWindow]) -> f64 {
    let labeled: Vec<LabeledScore> = scores
        .iter()
        .map(super::super::workload::ScoredWindow::labeled)
        .collect();
    RocCurve::from_scores(&labeled)
        .balanced_operating_point()
        .tp
}

/// Runs Fig. 12 by re-running reduced campaigns at several window sizes.
///
/// # Errors
/// Propagates pipeline errors.
pub fn run(cfg: &CampaignConfig) -> Result<Fig12Result, mpdf_core::error::DetectError> {
    let windows = [5usize, 10, 25, 50, 100];
    let mut rows = Vec::with_capacity(windows.len());
    for &w in &windows {
        let mut wcfg = cfg.clone();
        wcfg.detector.window = w;
        let scores = run_campaign_scores(&wcfg)?;
        rows.push((
            w,
            w as f64 / 50.0,
            balanced_tp(&scores.baseline),
            balanced_tp(&scores.subcarrier),
            balanced_tp(&scores.combined),
        ));
    }
    let best = rows.iter().map(|r| r.4).fold(0.0f64, f64::max);
    let saturation_window = rows
        .iter()
        .find(|r| r.4 >= best - 0.05)
        .map_or_else(|| windows.last().copied().unwrap_or(0), |r| r.0);
    Ok(Fig12Result {
        rows,
        saturation_window,
    })
}

/// Renders the report.
pub fn report(r: &Fig12Result) -> String {
    let mut out = String::from("Fig. 12 — detection rate vs packets per decision\n");
    let rows: Vec<Vec<String>> = r
        .rows
        .iter()
        .map(|(w, secs, b, s, c)| {
            vec![
                format!("{w}"),
                format!("{secs:.2} s"),
                crate::report::pct(*b),
                crate::report::pct(*s),
                crate::report::pct(*c),
            ]
        })
        .collect();
    out.push_str(&crate::report::table(
        &["packets", "time@50Hz", "baseline", "subcarrier", "sub+path"],
        &rows,
    ));
    out.push_str(&format!(
        "combined scheme reaches near-peak accuracy from {} packets ({:.2} s)\n",
        r.saturation_window,
        r.saturation_window as f64 / 50.0
    ));
    out.push_str(
        "paper: rates stay almost stable and saturate by ≈0.5 s — detection needs\n         well under a second of packets (our swaying-subject model mildly favours\n         short windows instead of mildly favouring long ones)\n",
    );
    out
}
