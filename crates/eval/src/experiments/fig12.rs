//! Fig. 12 — impact of the packet budget per decision.
//!
//! Paper: at 50 pkt/s the detection rate saturates within ≈0.5 s of
//! packets — the weighting schemes add negligible computational latency,
//! so response time is packet-budget-bound.

use serde::{Deserialize, Serialize};

use mpdf_core::error::DetectError;

use crate::metrics::{LabeledScore, RocCurve};
use crate::workload::CampaignConfig;

use super::fig7::run_campaign_scores;

/// Balanced detection rates vs window size.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig12Result {
    /// Rows of `(window packets, seconds at 50 pkt/s, baseline TP,
    /// subcarrier TP, combined TP)` at each scheme's balanced threshold.
    pub rows: Vec<(usize, f64, f64, f64, f64)>,
    /// Smallest window whose combined-scheme TP is within 5 points of the
    /// best TP over all window sizes — the packet budget needed for
    /// near-peak accuracy.
    pub saturation_window: usize,
}

/// Smallest window whose combined-scheme TP (`rows[i].4`) is within 5
/// points of the best TP over all window sizes.
///
/// `best` is NaN-aware: NaN columns (a window size where every score
/// degraded) are excluded rather than poisoning the max — the old
/// `fold(0.0, f64::max)` start value also masked any all-below-zero
/// column, silently reporting window 0 territory. Non-degenerate inputs
/// (every TP a real rate in `[0, 1]`) select exactly as before.
///
/// # Errors
/// [`DetectError::InvalidConfig`] when no rows were produced or every
/// combined TP is NaN — there is no saturation point to report.
fn saturation_window(rows: &[(usize, f64, f64, f64, f64)]) -> Result<usize, DetectError> {
    if rows.is_empty() {
        return Err(DetectError::InvalidConfig {
            what: "fig12: no window sizes produced scored rows".to_owned(),
        });
    }
    let best = rows
        .iter()
        .map(|r| r.4)
        .filter(|tp| !tp.is_nan())
        .fold(f64::NEG_INFINITY, f64::max);
    if !best.is_finite() {
        return Err(DetectError::InvalidConfig {
            what: "fig12: combined-scheme TP is NaN for every window size".to_owned(),
        });
    }
    // `best` is attained by some non-NaN row, so the find always hits;
    // the fallback is unreachable but keeps the lookup total.
    Ok(rows
        .iter()
        .find(|r| r.4 >= best - 0.05)
        .map_or(rows[rows.len() - 1].0, |r| r.0))
}

fn balanced_tp(scores: &[crate::workload::ScoredWindow]) -> f64 {
    let labeled: Vec<LabeledScore> = scores
        .iter()
        .map(super::super::workload::ScoredWindow::labeled)
        .collect();
    RocCurve::from_scores(&labeled)
        .balanced_operating_point()
        .tp
}

/// Runs Fig. 12 by re-running reduced campaigns at several window sizes.
///
/// # Errors
/// Propagates pipeline errors.
pub fn run(cfg: &CampaignConfig) -> Result<Fig12Result, mpdf_core::error::DetectError> {
    let windows = [5usize, 10, 25, 50, 100];
    let mut rows = Vec::with_capacity(windows.len());
    for &w in &windows {
        let mut wcfg = cfg.clone();
        wcfg.detector.window = w;
        let scores = run_campaign_scores(&wcfg)?;
        rows.push((
            w,
            w as f64 / 50.0,
            balanced_tp(&scores.baseline),
            balanced_tp(&scores.subcarrier),
            balanced_tp(&scores.combined),
        ));
    }
    let saturation_window = saturation_window(&rows)?;
    Ok(Fig12Result {
        rows,
        saturation_window,
    })
}

/// Renders the report.
pub fn report(r: &Fig12Result) -> String {
    let mut out = String::from("Fig. 12 — detection rate vs packets per decision\n");
    let rows: Vec<Vec<String>> = r
        .rows
        .iter()
        .map(|(w, secs, b, s, c)| {
            vec![
                format!("{w}"),
                format!("{secs:.2} s"),
                crate::report::pct(*b),
                crate::report::pct(*s),
                crate::report::pct(*c),
            ]
        })
        .collect();
    out.push_str(&crate::report::table(
        &["packets", "time@50Hz", "baseline", "subcarrier", "sub+path"],
        &rows,
    ));
    out.push_str(&format!(
        "combined scheme reaches near-peak accuracy from {} packets ({:.2} s)\n",
        r.saturation_window,
        r.saturation_window as f64 / 50.0
    ));
    out.push_str(
        "paper: rates stay almost stable and saturate by ≈0.5 s — detection needs\n         well under a second of packets (our swaying-subject model mildly favours\n         short windows instead of mildly favouring long ones)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(w: usize, combined_tp: f64) -> (usize, f64, f64, f64, f64) {
        (w, w as f64 / 50.0, 0.5, 0.6, combined_tp)
    }

    #[test]
    fn picks_smallest_window_within_five_points_of_best() {
        // The non-degenerate shape the experiment actually produces:
        // TPs in [0, 1], rising then flat. Must match the historical
        // selection exactly (byte-identical repro output rides on it).
        let rows = vec![
            row(5, 0.70),
            row(10, 0.88),
            row(25, 0.90),
            row(50, 0.92),
            row(100, 0.91),
        ];
        assert_eq!(saturation_window(&rows).unwrap(), 10);
    }

    #[test]
    fn nan_columns_no_longer_mask_the_best() {
        // Old fold(0.0, max) kept best=0.90 here too, but a NaN first
        // column also satisfied `NaN >= best - 0.05 == false`, so NaN
        // rows were only safe by accident; make it explicit: NaN rows
        // are excluded from both best and selection.
        let rows = vec![row(5, f64::NAN), row(10, 0.90), row(25, 0.88)];
        assert_eq!(saturation_window(&rows).unwrap(), 10);
        // All-NaN: typed error instead of a fabricated window 0/ best=0.
        let rows = vec![row(5, f64::NAN), row(10, f64::NAN)];
        assert!(matches!(
            saturation_window(&rows),
            Err(DetectError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn empty_rows_are_a_typed_error_not_window_zero() {
        assert!(matches!(
            saturation_window(&[]),
            Err(DetectError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn all_negative_columns_select_the_true_max() {
        // fold(0.0, max) reported best=0.0 for all-negative columns and
        // then found no row within 0.05, falling through to the last
        // window; the NEG_INFINITY fold finds the real (negative) best.
        let rows = vec![row(5, -0.4), row(10, -0.1), row(25, -0.3)];
        assert_eq!(saturation_window(&rows).unwrap(), 10);
    }
}
