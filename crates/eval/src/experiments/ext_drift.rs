//! Drift-adaptation campaign: a long-running session under growing
//! environmental drift, frozen versus adaptive.
//!
//! Extension beyond the paper: the paper calibrates once and monitors
//! forever, but its own premise — the static multipath profile is the
//! reference — erodes as the environment drifts (furniture, doors, AGC
//! references). This experiment drives one *continuous* receiver
//! timeline whose session drift grows block by block and replays the
//! identical packet stream through three session configurations:
//!
//! - **frozen** — recalibration disabled: the day-one operating point,
//!   which the drift slowly walks away from (false positives erode
//!   first: drifted null windows score above the stale threshold);
//! - **adaptive** — the full supervised loop: vacancy-gated drift
//!   sentinel, shadow recalibration, rollback guard;
//! - **no-gate control** — adaptation with the vacancy gate disabled and
//!   a zero-tolerance rollback guard: occupied windows poison the shadow
//!   buffer, and the guard is the only thing standing between a
//!   person-shaped "baseline" and the live profile. Its rejection count
//!   is the guard doing its job (`session.recal_rejected_total`).
//!
//! Every block also probes detection with occupied windows, so the
//! report shows whether adaptation *sustains* the paper's operating
//! point (detection high, FP near target) where the frozen profile
//! erodes.

use serde::{Deserialize, Serialize};

use mpdf_core::error::DetectError;
use mpdf_core::scheme::SubcarrierWeighting;
use mpdf_geom::vec2::Vec2;
use mpdf_propagation::human::HumanBody;
use mpdf_session::runtime::{RecalOutcome, RecalPolicy, SessionConfig, SessionRuntime};
use mpdf_wifi::csi::CsiPacket;

use crate::scenario::five_cases;
use crate::workload::{case_receiver, CampaignConfig};

/// Drift blocks (the drift magnitude grows linearly per block).
pub const BLOCKS: usize = 6;
/// Vacant monitoring windows per block.
const VACANT_PER_BLOCK: usize = 18;
/// Occupied probe windows per block.
const OCCUPIED_PER_BLOCK: usize = 4;
/// Clutter-drift relative amplitude added per block.
const REL_STEP: f64 = 0.004;
/// Session gain-drift amplitude (dB) added per block.
const DB_STEP: f64 = 0.04;
/// Calibration capture length in windows.
const CALIBRATION_WINDOWS: usize = 12;

/// One drift block of the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftRow {
    /// Block index (drift magnitude = block × step).
    pub block: usize,
    /// Clutter-drift relative amplitude in this block.
    pub drift_rel: f64,
    /// Detection rate of occupied windows, frozen profile.
    pub frozen_detect: f64,
    /// False-positive rate of vacant windows, frozen profile.
    pub frozen_fp: f64,
    /// Detection rate of occupied windows, adaptive session.
    pub adaptive_detect: f64,
    /// False-positive rate of vacant windows, adaptive session.
    pub adaptive_fp: f64,
    /// Cumulative accepted recalibrations in the adaptive session.
    pub recals_accepted: usize,
    /// Cumulative guard-rejected recalibrations in the adaptive session.
    pub recals_rejected: usize,
}

/// Result of the drift-adaptation campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExtDriftResult {
    /// Day-one threshold both sessions start from.
    pub initial_threshold: f64,
    /// Threshold the adaptive session ends on.
    pub final_adaptive_threshold: f64,
    /// One row per drift block.
    pub rows: Vec<DriftRow>,
    /// Accepted recalibrations in the no-gate control.
    pub nogate_accepted: usize,
    /// Guard rejections in the no-gate control (the rollback guard
    /// refusing occupied-window-poisoned candidates).
    pub nogate_rejected: usize,
}

/// One pre-captured window of the shared session timeline.
struct TimelineWindow {
    packets: Vec<CsiPacket>,
    occupied: bool,
    block: usize,
}

fn session_config(kind: Mode) -> SessionConfig {
    let mut cfg = SessionConfig {
        recalibration: RecalPolicy {
            enabled: !matches!(kind, Mode::Frozen),
            shadow_windows: 4,
            ..RecalPolicy::default()
        },
        ..SessionConfig::default()
    };
    if matches!(kind, Mode::NoGate) {
        // Gate open for every window (posterior < 1.0 always holds), and
        // a guard that refuses any candidate raising reservoir FP at all.
        cfg.vacancy_eps = 1.0;
        cfg.recalibration.guard_fp_tolerance = 0.0;
    }
    cfg
}

#[derive(Clone, Copy)]
enum Mode {
    Frozen,
    Adaptive,
    NoGate,
}

struct ModeOutcome {
    detect: Vec<(usize, usize)>,
    fp: Vec<(usize, usize)>,
    accepted: usize,
    rejected: usize,
    threshold: f64,
}

fn replay(
    kind: Mode,
    calibration: &[CsiPacket],
    timeline: &[TimelineWindow],
    cfg: &CampaignConfig,
) -> Result<ModeOutcome, DetectError> {
    let mut rt = SessionRuntime::calibrate(
        calibration,
        SubcarrierWeighting,
        cfg.detector.clone(),
        session_config(kind),
    )?;
    let mut detect = vec![(0usize, 0usize); BLOCKS];
    let mut fp = vec![(0usize, 0usize); BLOCKS];
    let mut accepted = 0usize;
    let mut rejected = 0usize;
    for tw in timeline {
        let d = rt.step(&tw.packets)?;
        if let Some(decision) = d.decision {
            let (fired, scored) = if tw.occupied {
                &mut detect[tw.block]
            } else {
                &mut fp[tw.block]
            };
            *scored += 1;
            if decision.detected {
                *fired += 1;
            }
        }
        match d.recal {
            Some(RecalOutcome::Accepted { .. }) => accepted += 1,
            Some(RecalOutcome::Rejected { .. }) => rejected += 1,
            _ => {}
        }
    }
    Ok(ModeOutcome {
        detect,
        fp,
        accepted,
        rejected,
        threshold: rt.threshold(),
    })
}

fn rate((fired, scored): (usize, usize)) -> f64 {
    if scored == 0 {
        0.0
    } else {
        fired as f64 / scored as f64
    }
}

/// Runs the drift-adaptation campaign.
///
/// # Errors
/// Propagates pipeline errors; gap-budget aborts abstain inside the
/// session loop instead of erroring.
pub fn run(cfg: &CampaignConfig) -> Result<ExtDriftResult, DetectError> {
    let _stage = mpdf_obs::stage!("eval.ext_drift");
    let cases = five_cases();
    let case = &cases[0];
    let template =
        case_receiver(case, cfg, cfg.seed ^ 0xD81F).map_err(|e| DetectError::InvalidConfig {
            what: format!("ext-drift link geometry: {e}"),
        })?;
    let window = cfg.detector.window;
    // Calibration day: a fork has zero accumulated drift.
    let calibration = template
        .fork(cfg.seed ^ 0xCA11B)
        .capture_static(None, 2 * CALIBRATION_WINDOWS * window)
        .map_err(DetectError::from)?;
    // A person standing just off the link midline — an unambiguous
    // presence for every block's detection probe.
    let body = HumanBody::new(case.midpoint() + Vec2::new(0.0, 0.6));

    // One timeline, captured once and replayed through every session
    // mode so the comparison is packet-identical. The drift draw uses a
    // *fixed* fork seed so every block perturbs the environment in the
    // same direction at growing magnitude — a monotone walk away from
    // the calibration-day environment, not a fresh random jolt per block.
    let mut timeline = Vec::with_capacity(BLOCKS * (VACANT_PER_BLOCK + OCCUPIED_PER_BLOCK));
    for block in 0..BLOCKS {
        let mut drifted = template.fork(cfg.seed ^ 0xB10C);
        drifted.set_drift_magnitude(REL_STEP * block as f64, DB_STEP * block as f64);
        drifted.resample_drift();
        let mut rx = drifted.fork_with_drift(cfg.seed ^ (0xCAFE_0000 + block as u64));
        for _ in 0..VACANT_PER_BLOCK {
            timeline.push(TimelineWindow {
                packets: rx.capture_static(None, window).map_err(DetectError::from)?,
                occupied: false,
                block,
            });
        }
        for _ in 0..OCCUPIED_PER_BLOCK {
            timeline.push(TimelineWindow {
                packets: rx
                    .capture_static(Some(&body), window)
                    .map_err(DetectError::from)?,
                occupied: true,
                block,
            });
        }
    }

    let frozen = replay(Mode::Frozen, &calibration, &timeline, cfg)?;
    let adaptive = replay(Mode::Adaptive, &calibration, &timeline, cfg)?;
    let nogate = replay(Mode::NoGate, &calibration, &timeline, cfg)?;

    let mut rows = Vec::with_capacity(BLOCKS);
    for block in 0..BLOCKS {
        rows.push(DriftRow {
            block,
            drift_rel: REL_STEP * block as f64,
            frozen_detect: rate(frozen.detect[block]),
            frozen_fp: rate(frozen.fp[block]),
            adaptive_detect: rate(adaptive.detect[block]),
            adaptive_fp: rate(adaptive.fp[block]),
            recals_accepted: adaptive.accepted,
            recals_rejected: adaptive.rejected,
        });
    }
    Ok(ExtDriftResult {
        initial_threshold: frozen.threshold,
        final_adaptive_threshold: adaptive.threshold,
        rows,
        nogate_accepted: nogate.accepted,
        nogate_rejected: nogate.rejected,
    })
}

/// Renders the report.
pub fn report(r: &ExtDriftResult) -> String {
    let mut out = String::from("Drift adaptation — frozen vs recalibrating session\n");
    out.push_str(&format!(
        "day-one threshold {:.4}; adaptive session ends at {:.4}\n",
        r.initial_threshold, r.final_adaptive_threshold
    ));
    let rows: Vec<Vec<String>> = r
        .rows
        .iter()
        .map(|row| {
            vec![
                row.block.to_string(),
                format!("{:.3}", row.drift_rel),
                crate::report::pct(row.frozen_detect),
                crate::report::pct(row.frozen_fp),
                crate::report::pct(row.adaptive_detect),
                crate::report::pct(row.adaptive_fp),
            ]
        })
        .collect();
    out.push_str(&crate::report::table(
        &["block", "drift", "frz det", "frz FP", "ada det", "ada FP"],
        &rows,
    ));
    if let Some(last) = r.rows.last() {
        out.push_str(&format!(
            "adaptive session: {} recalibration(s) accepted, {} rejected by the rollback guard\n",
            last.recals_accepted, last.recals_rejected
        ));
    }
    out.push_str(&format!(
        "no-gate control (occupied windows feed the shadow buffer): {} accepted, {} rejected —\n\
         the zero-tolerance rollback guard is what keeps a person-shaped baseline out\n",
        r.nogate_accepted, r.nogate_rejected
    ));
    out
}
