//! Fig. 2 — diverse RSS change trends on a multipath link.
//!
//! (a) CDF of per-subcarrier RSS change over 500 human-presence
//! locations on a 4 m link: unlike an idealized LOS link, changes spread
//! over both drops *and* rises.
//! (b) Per-subcarrier RSS over 1000 packets while a person crosses the
//! link: different subcarriers disagree (one mostly drops, another also
//! rises), and trends flip over time.

use serde::{Deserialize, Serialize};

use mpdf_core::error::DetectError;
use mpdf_geom::vec2::{Point, Vec2};
use mpdf_propagation::human::HumanBody;
use mpdf_propagation::trajectory::LinearWalk;
use mpdf_rfmath::stats::Ecdf;
use mpdf_wifi::csi::CsiPacket;
use mpdf_wifi::receiver::Actor;
use mpdf_wifi::sanitize::sanitize_packet;

use crate::workload::{case_receiver, CampaignConfig};

use super::sweeps::{location_sweep, measurement_case};

/// Result of Fig. 2a.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig2aResult {
    /// CDF of Δs (dB) sampled at 41 points.
    pub cdf: Vec<(f64, f64)>,
    /// Fraction of (location, subcarrier) pairs with an RSS **drop**
    /// beyond −0.5 dB.
    pub drop_fraction: f64,
    /// Fraction with an RSS **rise** beyond +0.5 dB.
    pub rise_fraction: f64,
    /// Key quantiles of Δs (p10, p50, p90).
    pub quantiles: (f64, f64, f64),
}

/// Runs Fig. 2a: 500 human locations on the 4 m classroom link.
///
/// # Errors
/// Propagates trace and calibration errors from the sweep.
pub fn run_fig2a(cfg: &CampaignConfig, locations: usize) -> Result<Fig2aResult, DetectError> {
    let case = measurement_case();
    let (_, samples) = location_sweep(&case, cfg, locations, cfg.detector.window)?;
    let all: Vec<f64> = samples
        .iter()
        .flat_map(|s| s.delta_s_db.iter().copied())
        .collect();
    let ecdf = Ecdf::new(&all);
    let drop_fraction = all.iter().filter(|&&d| d < -0.5).count() as f64 / all.len() as f64;
    let rise_fraction = all.iter().filter(|&&d| d > 0.5).count() as f64 / all.len() as f64;
    Ok(Fig2aResult {
        cdf: ecdf.curve(41),
        drop_fraction,
        rise_fraction,
        quantiles: (ecdf.quantile(0.1), ecdf.quantile(0.5), ecdf.quantile(0.9)),
    })
}

/// Renders the Fig. 2a report.
pub fn report_fig2a(r: &Fig2aResult) -> String {
    let mut out = String::from("Fig. 2a — CDF of subcarrier RSS change over human locations\n");
    out.push_str(&crate::report::series("Δs [dB]", "CDF", &r.cdf));
    out.push_str(&format!(
        "drops < -0.5 dB: {}   rises > +0.5 dB: {}   (paper: both drops and rises occur)\n",
        crate::report::pct(r.drop_fraction),
        crate::report::pct(r.rise_fraction)
    ));
    out.push_str(&format!(
        "Δs quantiles: p10 {:.2} dB, p50 {:.2} dB, p90 {:.2} dB\n",
        r.quantiles.0, r.quantiles.1, r.quantiles.2
    ));
    out
}

/// Result of Fig. 2b.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig2bResult {
    /// Packet-indexed Δs series (dB) for the two showcased subcarriers
    /// (paper: f15 and f25), downsampled.
    pub subcarrier_a: Vec<(f64, f64)>,
    /// Second subcarrier series.
    pub subcarrier_b: Vec<(f64, f64)>,
    /// Index (slot) of the showcased subcarriers.
    pub slots: (usize, usize),
    /// Number of subcarriers whose Δs both rises above +1 dB and falls
    /// below −1 dB during the crossing.
    pub bidirectional_subcarriers: usize,
    /// Total subcarriers.
    pub total_subcarriers: usize,
}

/// Runs Fig. 2b: a person crosses the 4 m link while 1000 packets are
/// captured.
///
/// # Errors
/// Propagates trace and capture errors for invalid links.
pub fn run_fig2b(cfg: &CampaignConfig, packets: usize) -> Result<Fig2bResult, DetectError> {
    let case = measurement_case();
    let mut receiver = case_receiver(&case, cfg, cfg.seed ^ 0xF1B)?;
    let calibration = receiver.capture_static(None, cfg.calibration_packets)?;
    let sanitized_cal: Vec<CsiPacket> = calibration
        .iter()
        .map(|p| {
            let mut q = p.clone();
            sanitize_packet(&mut q, cfg.detector.band.indices());
            q
        })
        .collect();
    let static_power = CsiPacket::median_power_profile(&sanitized_cal);

    // Crossing: walk perpendicular through the link midpoint, 4 m wide,
    // for the duration of the capture.
    let mid = case.midpoint();
    let across = (case.rx - case.tx)
        .normalized()
        .unwrap_or(Vec2::new(1.0, 0.0))
        .perp();
    let start = mid + across * 2.0;
    let end = mid - across * 2.0;
    let duration = packets as f64 / 50.0;
    let walk = LinearWalk::new(
        clamp_to_room(&case, start),
        clamp_to_room(&case, end),
        duration,
    );
    let body = HumanBody::new(walk.start);
    let actors = [Actor {
        body,
        trajectory: &walk,
    }];
    let stream = receiver.capture_actors(&actors, packets)?;

    // Per-packet Δs per subcarrier.
    let mut series: Vec<Vec<f64>> = (0..30).map(|_| Vec::with_capacity(packets)).collect();
    for p in &stream {
        let mut q = p.clone();
        sanitize_packet(&mut q, cfg.detector.band.indices());
        for (k, slot) in series.iter_mut().enumerate() {
            let power = (0..q.antennas()).map(|a| q.power(a, k)).sum::<f64>() / q.antennas() as f64;
            let ds = if power <= f64::MIN_POSITIVE || static_power[k] <= f64::MIN_POSITIVE {
                0.0
            } else {
                10.0 * (power / static_power[k]).log10()
            };
            slot.push(ds);
        }
    }

    // Showcase the two subcarriers with the most distinct behaviours:
    // the one with the deepest drop and the one with the highest rise.
    let min_of = |v: &Vec<f64>| v.iter().cloned().fold(f64::MAX, f64::min);
    let max_of = |v: &Vec<f64>| v.iter().cloned().fold(f64::MIN, f64::max);
    let slot_a = (0..30)
        .min_by(|&a, &b| min_of(&series[a]).total_cmp(&min_of(&series[b])))
        .unwrap_or(0);
    let slot_b = (0..30)
        .max_by(|&a, &b| max_of(&series[a]).total_cmp(&max_of(&series[b])))
        .unwrap_or(0);
    let bidirectional = series
        .iter()
        .filter(|v| min_of(v) < -1.0 && max_of(v) > 1.0)
        .count();

    let down = |slot: usize| {
        series[slot]
            .iter()
            .enumerate()
            .step_by((packets / 40).max(1))
            .map(|(i, &d)| (i as f64, d))
            .collect()
    };
    Ok(Fig2bResult {
        subcarrier_a: down(slot_a),
        subcarrier_b: down(slot_b),
        slots: (slot_a, slot_b),
        bidirectional_subcarriers: bidirectional,
        total_subcarriers: 30,
    })
}

fn clamp_to_room(case: &crate::scenario::LinkCase, p: Point) -> Point {
    let b = case.room.shrunk(0.35);
    Point::new(
        p.x.clamp(b.min().x, b.max().x),
        p.y.clamp(b.min().y, b.max().y),
    )
}

/// Renders the Fig. 2b report.
pub fn report_fig2b(r: &Fig2bResult) -> String {
    let mut out = String::from("Fig. 2b — per-subcarrier RSS while a person crosses the link\n");
    out.push_str(&format!(
        "showcased slots: {} (deepest drop) and {} (highest rise)\n",
        r.slots.0, r.slots.1
    ));
    out.push_str(&format!("slot {} series:\n", r.slots.0));
    out.push_str(&crate::report::series("packet", "Δs [dB]", &r.subcarrier_a));
    out.push_str(&format!("slot {} series:\n", r.slots.1));
    out.push_str(&crate::report::series("packet", "Δs [dB]", &r.subcarrier_b));
    out.push_str(&format!(
        "subcarriers with both >1 dB rise and >1 dB drop: {}/{} (paper: trends differ and flip)\n",
        r.bidirectional_subcarriers, r.total_subcarriers
    ));
    out
}
