//! Ablation: what does each ingredient buy?
//!
//! Compares four detectors on the shared campaign:
//! MAC-layer RSSI (wideband power only) → per-subcarrier CSI amplitudes
//! (the paper's baseline) → subcarrier weighting → subcarrier + path
//! weighting. The RSSI row quantifies the paper's §VI remark that RSSI
//! is too coarse ("a fickle feature"); the rest is the paper's own
//! progression.

use mpdf_core::scheme::RssiBaseline;
use serde::{Deserialize, Serialize};

use crate::metrics::{LabeledScore, SchemeSummary};
use crate::scenario::five_cases;
use crate::workload::{run_campaign, score_campaign, CampaignConfig, ScoredWindow};

use super::fig7::run_campaign_scores;

/// One ablation row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationRow {
    /// Detector label.
    pub name: String,
    /// Summary at the balanced operating point.
    pub summary: SchemeSummary,
}

/// Result of the ablation study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExtAblateResult {
    /// Rows from coarsest to fullest detector.
    pub rows: Vec<AblationRow>,
}

fn summarize(name: &str, scores: &[ScoredWindow]) -> AblationRow {
    let labeled: Vec<LabeledScore> = scores.iter().map(ScoredWindow::labeled).collect();
    AblationRow {
        name: name.to_string(),
        summary: SchemeSummary::from_scores(&labeled),
    }
}

/// Runs the ablation.
///
/// # Errors
/// Propagates pipeline errors.
pub fn run(cfg: &CampaignConfig) -> Result<ExtAblateResult, mpdf_core::error::DetectError> {
    // The shared campaign covers the paper's three schemes; the RSSI
    // detector is scored on an identical fresh campaign (same seed ⇒
    // identical captures).
    let shared = run_campaign_scores(cfg)?;
    let data = run_campaign(&five_cases(), cfg)?;
    let rssi = score_campaign(&data, &RssiBaseline, &cfg.detector)?;
    Ok(ExtAblateResult {
        rows: vec![
            summarize("rssi (wideband power)", &rssi),
            summarize("csi baseline", &shared.baseline),
            summarize("+ subcarrier weighting", &shared.subcarrier),
            summarize("+ path weighting", &shared.combined),
        ],
    })
}

/// Renders the report.
pub fn report(r: &ExtAblateResult) -> String {
    let mut out = String::from("Ablation — RSSI → CSI → frequency diversity → spatial diversity\n");
    let rows: Vec<Vec<String>> = r
        .rows
        .iter()
        .map(|row| {
            vec![
                row.name.clone(),
                crate::report::pct(row.summary.operating.tp),
                crate::report::pct(row.summary.operating.fp),
                format!("{:.3}", row.summary.auc),
            ]
        })
        .collect();
    out.push_str(&crate::report::table(
        &["detector", "balanced TP", "FP", "AUC"],
        &rows,
    ));
    out.push_str(
        "paper §VI: RSSI 'proves to be a fickle feature'; CSI granularity, then the\n\
         paper's two diversity mechanisms, each buy a step of performance\n",
    );
    out
}
