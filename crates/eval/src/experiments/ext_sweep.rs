//! Extension (paper §VI): channel sweeping vs. the multipath factor.
//!
//! Wilson & Patwari's fade level (\[12\]) indicates a link's multipath
//! state but "can be adjusted by sequentially sweeping channels" (\[28\]) —
//! i.e. it costs airtime: the radio must hop across channels to find a
//! sensitive one. The paper's multipath factor delivers the equivalent
//! adaptivity from a single packet on a single channel.
//!
//! This experiment quantifies that contrast on one link:
//!
//! 1. baseline detector, fixed on channel 11;
//! 2. baseline detector with fade-level channel selection over channels
//!    1/6/11 (paying a 3× probing overhead per decision);
//! 3. the paper's subcarrier weighting, fixed on channel 11, no sweep.

use serde::{Deserialize, Serialize};

use mpdf_core::fade_level::fade_level_db;
use mpdf_core::profile::{CalibrationProfile, DetectorConfig};
use mpdf_core::scheme::{Baseline, DetectionScheme, SubcarrierWeighting};
use mpdf_geom::vec2::Vec2;
use mpdf_propagation::channel::ChannelModel;
use mpdf_propagation::human::HumanBody;
use mpdf_propagation::trajectory::StaticSway;
use mpdf_wifi::band::{channel_center_hz, Band, INTEL5300_SUBCARRIER_INDICES};
use mpdf_wifi::receiver::{Actor, CsiReceiver, ReceiverConfig};
use mpdf_wifi::{ImpairmentModel, UniformLinearArray};

use crate::metrics::{LabeledScore, SchemeSummary};
use crate::scenario::five_cases;
use crate::workload::CampaignConfig;

/// One detector's outcome plus its airtime overhead.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepRow {
    /// Detector label.
    pub name: String,
    /// Balanced operating point + AUC.
    pub summary: SchemeSummary,
    /// Channels probed per decision (airtime cost multiplier).
    pub channels_probed: usize,
}

/// Result of the sweep study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExtSweepResult {
    /// Rows: fixed baseline, swept baseline, subcarrier weighting.
    pub rows: Vec<SweepRow>,
}

/// One per-channel measurement context.
struct ChannelCtx {
    receiver: CsiReceiver,
    profile: CalibrationProfile,
    detector: DetectorConfig,
    /// Predicted empty-link power per sample under the 1 m-normalized
    /// front end: `power_gain(d) / power_gain(1 m)`.
    predicted_power: f64,
}

/// The study link: the longest evaluation link, where distant humans
/// actually stress a detector.
fn study_case() -> crate::scenario::LinkCase {
    let mut cases = five_cases();
    cases.sort_by(|a, b| b.link_length().total_cmp(&a.link_length()));
    cases.remove(0)
}

fn channel_ctx(
    channel: u8,
    cfg: &CampaignConfig,
    seed: u64,
) -> Result<ChannelCtx, mpdf_core::error::DetectError> {
    let case = study_case();
    let link = ChannelModel::new(case.environment.clone(), case.tx, case.rx)?;
    let band = Band::new(
        channel_center_hz(channel),
        INTEL5300_SUBCARRIER_INDICES.to_vec(),
    );
    let axis = (case.tx - case.rx)
        .normalized()
        .unwrap_or(Vec2::new(1.0, 0.0))
        .perp();
    let array = UniformLinearArray::new(3, band.center_wavelength() / 2.0, axis);
    // Run 12 dB below the campaign SNR: a long link in a noisy band is
    // where channel adaptivity matters at all — at campaign SNR every
    // detector ceilings and the comparison degenerates.
    let mut impairments = ImpairmentModel::commodity_nic().with_snr_db(cfg.snr_db - 12.0);
    impairments.interference_prob = cfg.interference_prob;
    impairments.interference_power_db = cfg.interference_power_db;
    let rx_cfg = ReceiverConfig {
        band: band.clone(),
        array,
        impairments,
        clutter_drift_rel: cfg.clutter_drift_rel,
        session_gain_drift_db: cfg.session_gain_drift_db,
        ..ReceiverConfig::default()
    };
    let mut receiver = CsiReceiver::with_config(link.clone(), rx_cfg, seed)?;
    let detector = DetectorConfig {
        band: band.clone(),
        ..cfg.detector.clone()
    };
    let calibration = receiver.capture_static(None, cfg.calibration_packets)?;
    let profile = CalibrationProfile::build(&calibration, &detector)?;
    let d = link.link_length();
    let model = link.pathloss();
    let fc = band.center_hz();
    let predicted_power = model.power_gain(d, fc) / model.power_gain(1.0, fc);
    Ok(ChannelCtx {
        receiver,
        profile,
        detector,
        predicted_power,
    })
}

/// Mean per-sample power of a window (normalized units).
fn window_power(window: &[mpdf_wifi::CsiPacket]) -> f64 {
    let per = (window[0].antennas() * window[0].subcarriers()) as f64;
    window.iter().map(|p| p.total_power() / per).sum::<f64>() / window.len() as f64
}

/// Runs the sweep study on the paper's 4 m classroom link.
///
/// # Errors
/// Propagates pipeline errors.
pub fn run(cfg: &CampaignConfig) -> Result<ExtSweepResult, mpdf_core::error::DetectError> {
    let case = study_case();
    let mut channels: Vec<ChannelCtx> = [1u8, 6, 11]
        .iter()
        .map(|&ch| channel_ctx(ch, cfg, cfg.seed ^ (ch as u64) << 4))
        .collect::<Result<Vec<_>, _>>()?;

    // Build the evaluation windows: each grid position (episodes×) plus
    // matched negatives — captured simultaneously on all three channels
    // (the same human state seen by three radios).
    let mut fixed = Vec::new(); // baseline on channel 11 (index 2)
    let mut swept = Vec::new(); // baseline on the deepest-fade channel
    let mut weighted = Vec::new(); // subcarrier weighting on channel 11

    // Hard positives: the Fig. 9 distance rings (1–5 m from the RX),
    // where adaptivity actually matters.
    let rings = crate::scenario::distance_ring_positions(&case, &[1.0, 2.0, 3.0, 4.0, 5.0]);
    let mut episodes: Vec<Option<mpdf_geom::vec2::Point>> = Vec::new();
    for (_, pos) in &rings {
        for _ in 0..cfg.episodes_per_position.min(2) {
            episodes.push(Some(*pos));
        }
    }
    for _ in 0..episodes.len().max(cfg.negative_windows) {
        episodes.push(None);
    }

    for (w, maybe_pos) in episodes.iter().enumerate() {
        let mut windows = Vec::with_capacity(3);
        for ctx in channels.iter_mut() {
            ctx.receiver.resample_drift();
            let window = match maybe_pos {
                Some(pos) => {
                    let sway = StaticSway::new(*pos, cfg.sway_amplitude);
                    let actors = [Actor {
                        body: HumanBody::new(*pos),
                        trajectory: &sway,
                    }];
                    ctx.receiver.capture_actors(&actors, cfg.detector.window)?
                }
                None => ctx.receiver.capture_static(None, cfg.detector.window)?,
            };
            windows.push(window);
        }
        let positive = maybe_pos.is_some();

        // 1. Fixed channel 11.
        let ch11 = &channels[2];
        fixed.push(LabeledScore {
            score: Baseline.score(&ch11.profile, &windows[2], &ch11.detector)?,
            positive,
        });
        // 2. Fade-level selection: the *calibration-time* fade level picks
        //    the most multipath-sensitive channel (deepest fade). The probe
        //    airtime is modelled, not charged, but counted as overhead.
        let deepest = (0..3)
            .max_by(|&a, &b| {
                let fa =
                    fade_level_db(window_power(&windows[a]), channels[a].predicted_power).abs();
                let fb =
                    fade_level_db(window_power(&windows[b]), channels[b].predicted_power).abs();
                fa.total_cmp(&fb)
            })
            .unwrap_or(0);
        let ctx = &channels[deepest];
        swept.push(LabeledScore {
            score: Baseline.score(&ctx.profile, &windows[deepest], &ctx.detector)?,
            positive,
        });
        // 3. The paper's subcarrier weighting, single channel.
        weighted.push(LabeledScore {
            score: SubcarrierWeighting.score(&ch11.profile, &windows[2], &ch11.detector)?,
            positive,
        });
        let _ = w;
    }

    Ok(ExtSweepResult {
        rows: vec![
            SweepRow {
                name: "baseline, fixed ch 11".into(),
                summary: SchemeSummary::from_scores(&fixed),
                channels_probed: 1,
            },
            SweepRow {
                name: "baseline + fade-level sweep (ch 1/6/11)".into(),
                summary: SchemeSummary::from_scores(&swept),
                channels_probed: 3,
            },
            SweepRow {
                name: "subcarrier weighting, fixed ch 11".into(),
                summary: SchemeSummary::from_scores(&weighted),
                channels_probed: 1,
            },
        ],
    })
}

/// Renders the report.
pub fn report(r: &ExtSweepResult) -> String {
    let mut out =
        String::from("Extension (§VI) — fade-level channel sweeping vs the multipath factor\n");
    let rows: Vec<Vec<String>> = r
        .rows
        .iter()
        .map(|row| {
            vec![
                row.name.clone(),
                crate::report::pct(row.summary.operating.tp),
                crate::report::pct(row.summary.operating.fp),
                format!("{:.3}", row.summary.auc),
                format!("{}x", row.channels_probed),
            ]
        })
        .collect();
    out.push_str(&crate::report::table(
        &["detector", "balanced TP", "FP", "AUC", "airtime"],
        &rows,
    ));
    out.push_str(
        "paper: fade level needs channel sweeps (airtime) to adapt; the multipath\n\
         factor reads the superposition state from one packet on one channel.\n\
         On a single well-calibrated link every detector can ceiling — the lasting\n\
         difference is the 3x probing airtime the sweep pays per decision, which\n\
         the paper's runtime-μ approach avoids entirely\n",
    );
    out
}
