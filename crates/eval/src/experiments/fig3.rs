//! Fig. 3 — the multipath factor and its relationship with RSS change.
//!
//! (a) Distribution of measured `μ_k` over 500 locations × 30 subcarriers.
//! (b) `Δs` vs `μ` with a logarithmic fit at one subcarrier.
//! (c) The fit at 5 separated subcarriers: the monotone falling trend
//! holds everywhere, though coefficients vary.

use serde::{Deserialize, Serialize};

use mpdf_core::error::DetectError;
use mpdf_rfmath::fit::{log_fit, Fit};
use mpdf_rfmath::stats::Ecdf;

use crate::workload::CampaignConfig;

use super::sweeps::{location_sweep, measurement_case, LocationSample};

/// Result of Fig. 3a.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3aResult {
    /// CDF of μ sampled at 41 points.
    pub cdf: Vec<(f64, f64)>,
    /// (p10, p50, p90) of μ.
    pub quantiles: (f64, f64, f64),
    /// Mean spread of μ across subcarriers within a location (max−min).
    pub mean_within_location_spread: f64,
}

/// Result of one subcarrier's log fit (Fig. 3b/3c rows).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SubcarrierFit {
    /// Subcarrier slot.
    pub slot: usize,
    /// Fitted `Δs = a·ln μ + b`.
    pub fit: Fit,
    /// Number of points used.
    pub points: usize,
}

/// Result of the Fig. 3 experiments.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3Result {
    /// Fig. 3a distribution.
    pub distribution: Fig3aResult,
    /// Fig. 3b: the showcased single-subcarrier fit (paper: f5 → slot 4).
    pub showcase: SubcarrierFit,
    /// Fig. 3c: fits at 5 separated subcarriers.
    pub fits: Vec<SubcarrierFit>,
    /// Fraction of the 5 fits with a negative (falling) slope.
    pub falling_fraction: f64,
}

fn fit_slot(samples: &[LocationSample], slot: usize) -> SubcarrierFit {
    let (mus, dss): (Vec<f64>, Vec<f64>) = samples
        .iter()
        .map(|s| (s.mu[slot], s.delta_s_db[slot]))
        .unzip();
    let fit = log_fit(&mus, &dss).unwrap_or(Fit {
        slope: 0.0,
        intercept: 0.0,
        r_squared: 0.0,
    });
    SubcarrierFit {
        slot,
        fit,
        points: mus.len(),
    }
}

/// Runs the Fig. 3 experiments on the §III measurement link.
///
/// # Errors
/// Propagates trace and calibration errors from the sweep.
pub fn run(cfg: &CampaignConfig, locations: usize) -> Result<Fig3Result, DetectError> {
    let case = measurement_case();
    let (_, samples) = location_sweep(&case, cfg, locations, cfg.detector.window)?;

    let all_mu: Vec<f64> = samples.iter().flat_map(|s| s.mu.iter().copied()).collect();
    let ecdf = Ecdf::new(&all_mu);
    // Interdecile spread is robust to the occasional deep-fade subcarrier
    // whose measured μ spikes (|H|² ≈ 0 in the denominator of Eq. 11).
    let spread = samples
        .iter()
        .map(|s| {
            mpdf_rfmath::stats::percentile(&s.mu, 90.0)
                - mpdf_rfmath::stats::percentile(&s.mu, 10.0)
        })
        .sum::<f64>()
        / samples.len() as f64;
    let distribution = Fig3aResult {
        cdf: ecdf.curve(41),
        quantiles: (ecdf.quantile(0.1), ecdf.quantile(0.5), ecdf.quantile(0.9)),
        mean_within_location_spread: spread,
    };

    // Paper's subcarrier f5 ≈ slot 4; five separated slots for Fig. 3c.
    let showcase = fit_slot(&samples, 4);
    let slots = [1usize, 7, 14, 21, 28];
    let fits: Vec<SubcarrierFit> = slots.iter().map(|&s| fit_slot(&samples, s)).collect();
    let falling = fits.iter().filter(|f| f.fit.slope < 0.0).count();
    Ok(Fig3Result {
        distribution,
        showcase,
        falling_fraction: falling as f64 / fits.len() as f64,
        fits,
    })
}

/// Renders the Fig. 3 report.
pub fn report(r: &Fig3Result) -> String {
    let mut out = String::from("Fig. 3a — multipath factor distribution\n");
    out.push_str(&crate::report::series("μ", "CDF", &r.distribution.cdf));
    out.push_str(&format!(
        "μ quantiles: p10 {:.3}, p50 {:.3}, p90 {:.3}; mean within-location p90−p10 spread {:.3}\n",
        r.distribution.quantiles.0,
        r.distribution.quantiles.1,
        r.distribution.quantiles.2,
        r.distribution.mean_within_location_spread
    ));
    out.push_str("\nFig. 3b — log fit Δs = a·ln(μ) + b at the showcase subcarrier\n");
    out.push_str(&format!(
        "slot {}: a = {:.3}, b = {:.3}, R² = {:.3} over {} locations (paper: falling trend)\n",
        r.showcase.slot,
        r.showcase.fit.slope,
        r.showcase.fit.intercept,
        r.showcase.fit.r_squared,
        r.showcase.points
    ));
    out.push_str("\nFig. 3c — fits at 5 separated subcarriers\n");
    let rows: Vec<Vec<String>> = r
        .fits
        .iter()
        .map(|f| {
            vec![
                format!("{}", f.slot),
                format!("{:.3}", f.fit.slope),
                format!("{:.3}", f.fit.intercept),
                format!("{:.3}", f.fit.r_squared),
            ]
        })
        .collect();
    out.push_str(&crate::report::table(&["slot", "a", "b", "R²"], &rows));
    out.push_str(&format!(
        "fits with falling slope: {} (paper: monotone decrease holds on all subcarriers,\n coefficients vary)\n",
        crate::report::pct(r.falling_fraction)
    ));
    out
}
