//! Fig. 8 — detection rates per link case at the balanced threshold.
//!
//! Paper: no large gap between cases; case 3 (short, strong-LOS link)
//! slightly leads, and path weighting can slightly hurt where angle
//! estimates err (case 1 in the paper's data).

use serde::{Deserialize, Serialize};

use crate::metrics::detection_rate;
use crate::workload::{CampaignConfig, ScoredWindow};

use super::fig7::{run_campaign_scores, CampaignScores};

/// Per-case detection rates of the three schemes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig8Result {
    /// Rows of `(case id, baseline, subcarrier, combined)` detection rates.
    pub rows: Vec<(usize, f64, f64, f64)>,
}

fn per_case_rate(scores: &[ScoredWindow], case_id: usize, threshold: f64) -> f64 {
    let positives: Vec<f64> = scores
        .iter()
        .filter(|s| s.case_id == case_id && s.human.is_some())
        .map(|s| s.score)
        .collect();
    detection_rate(&positives, threshold)
}

/// Computes Fig. 8 from shared campaign scores.
pub fn from_scores(scores: &CampaignScores) -> Fig8Result {
    let thr_b = CampaignScores::balanced_threshold(&scores.baseline);
    let thr_s = CampaignScores::balanced_threshold(&scores.subcarrier);
    let thr_c = CampaignScores::balanced_threshold(&scores.combined);
    let mut ids: Vec<usize> = scores.baseline.iter().map(|s| s.case_id).collect();
    ids.sort_unstable();
    ids.dedup();
    let rows = ids
        .into_iter()
        .map(|id| {
            (
                id,
                per_case_rate(&scores.baseline, id, thr_b),
                per_case_rate(&scores.subcarrier, id, thr_s),
                per_case_rate(&scores.combined, id, thr_c),
            )
        })
        .collect();
    Fig8Result { rows }
}

/// Runs the campaign and computes Fig. 8.
///
/// # Errors
/// Propagates pipeline errors.
pub fn run(cfg: &CampaignConfig) -> Result<Fig8Result, mpdf_core::error::DetectError> {
    Ok(from_scores(&run_campaign_scores(cfg)?))
}

/// Renders the report.
pub fn report(r: &Fig8Result) -> String {
    let mut out = String::from("Fig. 8 — detection rate per case (balanced threshold)\n");
    let rows: Vec<Vec<String>> = r
        .rows
        .iter()
        .map(|(id, b, s, c)| {
            vec![
                format!("case {id}"),
                crate::report::pct(*b),
                crate::report::pct(*s),
                crate::report::pct(*c),
            ]
        })
        .collect();
    out.push_str(&crate::report::table(
        &["case", "baseline", "subcarrier", "sub+path"],
        &rows,
    ));
    out.push_str("paper: no clear gap across cases; case 3 slightly ahead\n");
    out
}
