//! Extension (paper §V-B1): HMM smoothing of the decision stream.
//!
//! The paper's proposed remedy for its ROC plateau — "model the static
//! profiles as well, e.g. via hidden Markov models" — applied to the
//! combined scheme's scores. Synthetic timelines are assembled from the
//! campaign's scored windows (absent → present → absent), and raw
//! per-window thresholding is compared against the forward-filtered HMM.

use mpdf_core::hmm::HmmSmoother;
use mpdf_core::threshold::threshold_for_fp;
use serde::{Deserialize, Serialize};

use crate::workload::{CampaignConfig, ScoredWindow};

use super::fig7::run_campaign_scores;

/// Outcome of the HMM-smoothing ablation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExtHmmResult {
    /// Window-level false-positive rate: raw threshold vs HMM.
    pub fp: (f64, f64),
    /// Window-level detection rate on present windows: raw vs HMM.
    pub tp: (f64, f64),
    /// Window-level balanced accuracy: raw vs HMM.
    pub balanced: (f64, f64),
    /// Number of timeline windows evaluated.
    pub windows: usize,
}

/// Deterministic shuffle-free timeline: alternating absent/present blocks
/// drawn round-robin from the pools.
fn timeline(
    negatives: &[f64],
    positives: &[f64],
    blocks: usize,
    block_len: usize,
) -> (Vec<f64>, Vec<bool>) {
    let mut scores = Vec::new();
    let mut truth = Vec::new();
    let mut ni = 0usize;
    let mut pi = 0usize;
    for b in 0..blocks {
        let present = b % 2 == 1;
        for _ in 0..block_len {
            if present {
                scores.push(positives[pi % positives.len()]);
                pi += 1;
            } else {
                scores.push(negatives[ni % negatives.len()]);
                ni += 1;
            }
            truth.push(present);
        }
    }
    (scores, truth)
}

/// Runs the ablation on the shared campaign's combined-scheme scores.
///
/// # Errors
/// Propagates pipeline errors.
pub fn run(cfg: &CampaignConfig) -> Result<ExtHmmResult, mpdf_core::error::DetectError> {
    let shared = run_campaign_scores(cfg)?;
    let negatives: Vec<f64> = shared
        .combined
        .iter()
        .filter(|s| s.human.is_none())
        .map(ScoredWindow::labeled)
        .map(|l| l.score)
        .collect();
    let positives: Vec<f64> = shared
        .combined
        .iter()
        .filter(|s| s.human.is_some())
        .map(|s| s.score)
        .collect();

    // Calibrate threshold and HMM from half the negatives (the "null").
    let half = negatives.len() / 2;
    let (null, rest) = negatives.split_at(half);
    let thr = threshold_for_fp(null, 0.1);
    let hmm = HmmSmoother::with_defaults(null)?;

    let (scores, truth) = timeline(rest, &positives, 12, 10);
    let raw: Vec<bool> = scores.iter().map(|&s| s > thr).collect();
    let posterior = hmm.filter(&scores);
    let smoothed: Vec<bool> = posterior.iter().map(|&p| p > 0.5).collect();

    let rate = |decisions: &[bool], want: bool, over: bool| -> f64 {
        let idx: Vec<usize> = truth
            .iter()
            .enumerate()
            .filter(|(_, &t)| t == over)
            .map(|(i, _)| i)
            .collect();
        if idx.is_empty() {
            return 0.0;
        }
        idx.iter().filter(|&&i| decisions[i] == want).count() as f64 / idx.len() as f64
    };
    let fp = (rate(&raw, true, false), rate(&smoothed, true, false));
    let tp = (rate(&raw, true, true), rate(&smoothed, true, true));
    Ok(ExtHmmResult {
        fp,
        tp,
        balanced: ((tp.0 + 1.0 - fp.0) / 2.0, (tp.1 + 1.0 - fp.1) / 2.0),
        windows: scores.len(),
    })
}

/// Renders the report.
pub fn report(r: &ExtHmmResult) -> String {
    let mut out = String::from(
        "Extension (§V-B1) — HMM smoothing of the combined scheme's decision stream\n",
    );
    let rows = vec![
        vec![
            "raw threshold".to_string(),
            crate::report::pct(r.tp.0),
            crate::report::pct(r.fp.0),
            crate::report::pct(r.balanced.0),
        ],
        vec![
            "HMM filtered".to_string(),
            crate::report::pct(r.tp.1),
            crate::report::pct(r.fp.1),
            crate::report::pct(r.balanced.1),
        ],
    ];
    out.push_str(&crate::report::table(
        &["decision rule", "TP", "FP", "balanced"],
        &rows,
    ));
    out.push_str(&format!(
        "over {} timeline windows; the HMM trades detection latency for rejection of\n\
         isolated background blips — the paper's proposed fix for its ROC plateau\n",
        r.windows
    ));
    out
}
