//! Fig. 7 — overall ROC of the three schemes.
//!
//! Paper result: baseline ≈70 % balanced accuracy at ≈30 % FP; subcarrier
//! weighting 88.2 % TP at 13.0 % FP; subcarrier+path weighting 92.0 % TP
//! at 4.5 % FP. Shape target: strict ordering of the three ROC curves.

use mpdf_core::scheme::{Baseline, SubcarrierAndPathWeighting, SubcarrierWeighting};
use serde::{Deserialize, Serialize};

use crate::metrics::{LabeledScore, RocCurve, SchemeSummary};
use crate::scenario::five_cases;
use crate::workload::{run_campaign, score_campaign, CampaignConfig, ScoredWindow};

/// Per-scheme outcome of the Fig. 7 campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SchemeOutcome {
    /// Scheme label.
    pub name: String,
    /// Balanced operating point + AUC.
    pub summary: SchemeSummary,
    /// ROC curve sampled at 21 FP points for plotting.
    pub roc_points: Vec<(f64, f64)>,
}

/// Result of the Fig. 7 experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig7Result {
    /// Outcomes in scheme order: baseline, subcarrier, subcarrier+path.
    pub schemes: Vec<SchemeOutcome>,
}

/// Scored windows of all three schemes (shared by Figs. 8, 9, 11).
#[derive(Debug, Clone)]
pub struct CampaignScores {
    /// Baseline scores.
    pub baseline: Vec<ScoredWindow>,
    /// Subcarrier-weighting scores.
    pub subcarrier: Vec<ScoredWindow>,
    /// Combined-weighting scores.
    pub combined: Vec<ScoredWindow>,
}

impl CampaignScores {
    /// Balanced-accuracy threshold of a score set.
    pub fn balanced_threshold(scores: &[ScoredWindow]) -> f64 {
        let labeled: Vec<LabeledScore> = scores.iter().map(ScoredWindow::labeled).collect();
        RocCurve::from_scores(&labeled)
            .balanced_operating_point()
            .threshold
    }
}

/// Runs the shared evaluation campaign and scores it with all three
/// schemes.
///
/// # Errors
/// Propagates pipeline errors.
pub fn run_campaign_scores(
    cfg: &CampaignConfig,
) -> Result<CampaignScores, mpdf_core::error::DetectError> {
    let cases = five_cases();
    let data = run_campaign(&cases, cfg)?;
    Ok(CampaignScores {
        baseline: score_campaign(&data, &Baseline, &cfg.detector)?,
        subcarrier: score_campaign(&data, &SubcarrierWeighting, &cfg.detector)?,
        combined: score_campaign(&data, &SubcarrierAndPathWeighting, &cfg.detector)?,
    })
}

fn outcome(name: &str, scores: &[ScoredWindow]) -> SchemeOutcome {
    let labeled: Vec<LabeledScore> = scores.iter().map(ScoredWindow::labeled).collect();
    let roc = RocCurve::from_scores(&labeled);
    SchemeOutcome {
        name: name.to_string(),
        summary: SchemeSummary {
            operating: roc.balanced_operating_point(),
            auc: roc.auc(),
        },
        roc_points: roc.sampled(21),
    }
}

/// Runs Fig. 7 from pre-computed campaign scores.
pub fn from_scores(scores: &CampaignScores) -> Fig7Result {
    Fig7Result {
        schemes: vec![
            outcome("baseline", &scores.baseline),
            outcome("subcarrier-weighting", &scores.subcarrier),
            outcome("subcarrier+path-weighting", &scores.combined),
        ],
    }
}

/// Runs the full Fig. 7 experiment.
///
/// # Errors
/// Propagates pipeline errors.
pub fn run(cfg: &CampaignConfig) -> Result<Fig7Result, mpdf_core::error::DetectError> {
    Ok(from_scores(&run_campaign_scores(cfg)?))
}

/// Renders the paper-style report.
pub fn report(result: &Fig7Result) -> String {
    let mut out = String::from("Fig. 7 — overall detection performance (ROC)\n");
    let rows: Vec<Vec<String>> = result
        .schemes
        .iter()
        .map(|s| {
            vec![
                s.name.clone(),
                crate::report::pct(s.summary.operating.tp),
                crate::report::pct(s.summary.operating.fp),
                format!("{:.3}", s.summary.auc),
            ]
        })
        .collect();
    out.push_str(&crate::report::table(
        &["scheme", "balanced TP", "FP", "AUC"],
        &rows,
    ));
    out.push_str("paper: baseline ~70%/30%, subcarrier 88.2%/13.0%, combined 92.0%/4.5%\n");
    for s in &result.schemes {
        out.push('\n');
        out.push_str(&format!("ROC — {}\n", s.name));
        out.push_str(&crate::report::series("FP", "TP", &s.roc_points));
    }
    out
}
