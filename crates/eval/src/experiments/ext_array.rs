//! Extension (paper §IV-B1/§V-B3): larger antenna arrays.
//!
//! The paper's angle estimates are limited by the 3-antenna aperture and
//! it "envision\[s\] more accurate angle estimation via larger antenna
//! arrays or advanced SAR technique would contribute to more robust path
//! weighting". This experiment scales the receive ULA from 3 to 8
//! elements and measures both the angle-error median (Fig. 10's metric)
//! and the combined scheme's detection rate on the hard large-angle fan
//! (Fig. 11's metric).

use serde::{Deserialize, Serialize};

use mpdf_core::error::DetectError;
use mpdf_core::profile::{CalibrationProfile, DetectorConfig};
use mpdf_core::scheme::{DetectionScheme, SubcarrierAndPathWeighting};
use mpdf_core::threshold::{static_score_distribution, threshold_for_fp};
use mpdf_geom::vec2::Vec2;
use mpdf_music::music::{estimate_aoa, AngleGrid, UlaSteering};
use mpdf_propagation::channel::ChannelModel;
use mpdf_propagation::human::HumanBody;
use mpdf_propagation::trajectory::StaticSway;
use mpdf_rfmath::stats::median;
use mpdf_wifi::receiver::{Actor, CsiReceiver, ReceiverConfig};
use mpdf_wifi::sanitize::sanitize_packet;
use mpdf_wifi::{ImpairmentModel, UniformLinearArray};

use crate::metrics::detection_rate;
use crate::scenario::angle_fan_positions;
use crate::workload::{annotate, CampaignConfig};

use super::fig5::wall_adjacent_case;

/// Per-array-size outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ArrayOutcome {
    /// Number of ULA elements.
    pub elements: usize,
    /// Median angle-estimation error (degrees).
    pub median_angle_error_deg: f64,
    /// Combined-scheme detection rate on the |angle| ≥ 45° fan.
    pub large_angle_tp: f64,
}

/// Result of the array-scaling study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExtArrayResult {
    /// One row per array size.
    pub rows: Vec<ArrayOutcome>,
}

fn receiver_with_elements(
    case: &crate::scenario::LinkCase,
    cfg: &CampaignConfig,
    elements: usize,
    seed: u64,
) -> Result<(CsiReceiver, DetectorConfig), DetectError> {
    let channel = ChannelModel::new(case.environment.clone(), case.tx, case.rx)?;
    let axis = (case.tx - case.rx)
        .normalized()
        .unwrap_or(Vec2::new(1.0, 0.0))
        .perp();
    let band = cfg.detector.band.clone();
    let array = UniformLinearArray::new(elements, band.center_wavelength() / 2.0, axis);
    let mut impairments = ImpairmentModel::commodity_nic().with_snr_db(cfg.snr_db);
    impairments.interference_prob = cfg.interference_prob;
    impairments.interference_power_db = cfg.interference_power_db;
    let rx_cfg = ReceiverConfig {
        band: band.clone(),
        array,
        impairments,
        clutter_drift_rel: cfg.clutter_drift_rel,
        session_gain_drift_db: cfg.session_gain_drift_db,
        ..ReceiverConfig::default()
    };
    let receiver = CsiReceiver::with_config(channel, rx_cfg, seed)?;
    let detector = DetectorConfig {
        band,
        steering: UlaSteering::new(elements, 0.5),
        // More antennas resolve more simultaneous paths.
        num_sources: (elements - 1).min(3),
        ..cfg.detector.clone()
    };
    Ok((receiver, detector))
}

fn study(elements: usize, cfg: &CampaignConfig) -> Result<ArrayOutcome, DetectError> {
    let case = wall_adjacent_case();
    let (mut receiver, detector) = receiver_with_elements(&case, cfg, elements, cfg.seed ^ 0xEA)?;

    // --- Angle errors (Fig. 10 metric) ---
    let steering = UlaSteering::new(elements, 0.5);
    let grid = AngleGrid::full_front(1.0);
    let fan: Vec<f64> = (-4..=4).map(|i| i as f64 * 15.0).collect();
    let mut errors = Vec::new();
    for (_, pos) in angle_fan_positions(&case, 1.2, &fan) {
        let truth = annotate(&case, pos).angle_deg;
        let sway = StaticSway::new(pos, cfg.sway_amplitude.max(0.02));
        let actors = [Actor {
            body: HumanBody::new(pos),
            trajectory: &sway,
        }];
        let window = receiver.capture_actors(&actors, detector.window)?;
        let snaps: Vec<Vec<mpdf_rfmath::Complex64>> = window
            .iter()
            .flat_map(|p| {
                let mut q = p.clone();
                sanitize_packet(&mut q, detector.band.indices());
                (0..q.subcarriers())
                    .map(|k| q.subcarrier_column(k))
                    .collect::<Vec<_>>()
            })
            .collect();
        if let Ok(angles) = estimate_aoa(&snaps, &steering, detector.num_sources, &grid) {
            if let Some(best) = angles
                .iter()
                .map(|a| (a - truth).abs())
                .min_by(f64::total_cmp)
            {
                errors.push(best);
            }
        }
    }
    let median_angle_error_deg = median(&errors);

    // --- Large-angle detection (Fig. 11 metric) ---
    let calibration = receiver.capture_static(None, cfg.calibration_packets)?;
    let profile = CalibrationProfile::build(&calibration, &detector)?;
    let nulls = static_score_distribution(
        &profile,
        &receiver.capture_sessions(None, detector.window, 10)?,
        &SubcarrierAndPathWeighting,
        &detector,
    )?;
    let thr = threshold_for_fp(&nulls, 0.1);
    let mut scores = Vec::new();
    let big: Vec<f64> = [-75.0, -60.0, -45.0, 45.0, 60.0, 75.0].to_vec();
    for (_, pos) in angle_fan_positions(&case, 1.5, &big) {
        for _ in 0..cfg.episodes_per_position.max(2) {
            receiver.resample_drift();
            let sway = StaticSway::new(pos, cfg.sway_amplitude);
            let actors = [Actor {
                body: HumanBody::new(pos),
                trajectory: &sway,
            }];
            let window = receiver.capture_actors(&actors, detector.window)?;
            scores.push(SubcarrierAndPathWeighting.score(&profile, &window, &detector)?);
        }
    }
    Ok(ArrayOutcome {
        elements,
        median_angle_error_deg,
        large_angle_tp: detection_rate(&scores, thr),
    })
}

/// Runs the array-scaling study for 3–8 elements.
///
/// # Errors
/// Propagates trace and capture errors for invalid links.
pub fn run(cfg: &CampaignConfig) -> Result<ExtArrayResult, DetectError> {
    Ok(ExtArrayResult {
        rows: [3usize, 4, 6, 8]
            .iter()
            .map(|&n| study(n, cfg))
            .collect::<Result<Vec<_>, _>>()?,
    })
}

/// Renders the report.
pub fn report(r: &ExtArrayResult) -> String {
    let mut out = String::from("Extension (§V-B3) — scaling the receive antenna array\n");
    let rows: Vec<Vec<String>> = r
        .rows
        .iter()
        .map(|o| {
            vec![
                format!("{}", o.elements),
                format!("{:.1}°", o.median_angle_error_deg),
                crate::report::pct(o.large_angle_tp),
            ]
        })
        .collect();
    out.push_str(&crate::report::table(
        &["elements", "median angle error", "large-angle TP"],
        &rows,
    ));
    out.push_str(
        "paper: with 3 antennas median errors exceed 20°; larger arrays should make\n\
         path weighting more robust — this study quantifies that projection\n",
    );
    out
}
