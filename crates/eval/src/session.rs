//! Deterministic long-running session demo behind `repro --session`.
//!
//! Drives a [`SessionRuntime`] over a drifting, intermittently occupied
//! monitoring timeline, checkpointing after every window. Each window's
//! packets are a pure function of `(campaign config, window index)` —
//! drift resamples once per session block on a block-keyed fork, windows
//! capture on [`mpdf_wifi::receiver::CsiReceiver::fork_with_drift`]
//! keyed by the window index — so a run killed after `n` windows and
//! restored from its checkpoint emits **byte-identical** output to the
//! uninterrupted run from window `n` on. Scores and posteriors are
//! printed as raw `f64` bit patterns: equality of the transcripts is
//! equality to 0 ULP, not to printing precision.

use std::io::Write;
use std::path::PathBuf;

use mpdf_core::error::DetectError;
use mpdf_core::scheme::SubcarrierWeighting;
use mpdf_geom::vec2::Vec2;
use mpdf_propagation::human::HumanBody;
use mpdf_session::checkpoint::CheckpointStore;
use mpdf_session::runtime::{RecalOutcome, RecalPolicy, SessionConfig, SessionRuntime};
use mpdf_wifi::csi::CsiPacket;
use mpdf_wifi::receiver::CsiReceiver;

use crate::scenario::{five_cases, LinkCase};
use crate::workload::{case_receiver, CampaignConfig};

/// Total windows in the demo session.
pub const SESSION_WINDOWS: u64 = 48;
/// Windows per drift block (drift resamples at block boundaries, one
/// magnitude step larger each time).
const PER_BLOCK: u64 = 8;
/// Clutter-drift relative amplitude added per block.
const REL_STEP: f64 = 0.004;
/// Session gain-drift amplitude (dB) added per block.
const DB_STEP: f64 = 0.04;

/// Options for the session demo.
#[derive(Debug, Clone, Default)]
pub struct SessionDemoOptions {
    /// Checkpoint file; `None` runs without persistence.
    pub checkpoint: Option<PathBuf>,
    /// Exit (successfully) after this many windows *processed in this
    /// run*, leaving the checkpoint behind for a later resume.
    pub kill_after: Option<u64>,
}

fn session_config() -> SessionConfig {
    SessionConfig {
        recalibration: RecalPolicy {
            enabled: true,
            shadow_windows: 4,
            ..RecalPolicy::default()
        },
        ..SessionConfig::default()
    }
}

/// Captures window `w` of the demo timeline — a pure function of the
/// template receiver, the campaign seed and `w`.
fn capture_window(
    template: &CsiReceiver,
    case: &LinkCase,
    cfg: &CampaignConfig,
    w: u64,
) -> Result<Vec<CsiPacket>, DetectError> {
    let block = w / PER_BLOCK;
    let idx = w % PER_BLOCK;
    // Fixed drift-draw seed: every block perturbs the environment in the
    // same direction at growing magnitude (a monotone walk, not a fresh
    // jolt per block).
    let mut session = template.fork(cfg.seed ^ 0x5E55);
    session.set_drift_magnitude(REL_STEP * block as f64, DB_STEP * block as f64);
    session.resample_drift();
    // One noise stream per block; window `w` sits `idx` windows into it.
    // Packet-noise draws are occupancy-independent, so advancing with
    // vacant throwaway captures reproduces the in-block stream position
    // as a pure function of `w` — the property kill-and-restore needs.
    let mut rx = session.fork_with_drift(cfg.seed ^ (0xA11C_E000 + block));
    for _ in 0..idx {
        rx.capture_static(None, cfg.detector.window)
            .map_err(DetectError::from)?;
    }
    // The last quarter of every block is occupied: each block probes
    // both sides of the operating point.
    let occupied = idx >= PER_BLOCK - PER_BLOCK / 4;
    let body = HumanBody::new(case.midpoint() + Vec2::new(0.0, 0.6));
    rx.capture_static(occupied.then_some(&body), cfg.detector.window)
        .map_err(DetectError::from)
}

fn emit(out: &mut dyn Write, line: &str) -> Result<(), String> {
    writeln!(out, "{line}").map_err(|e| format!("write session output: {e}"))
}

/// Runs (or resumes) the demo session, writing one line per processed
/// window to `out`.
///
/// With a checkpoint configured, the runtime state is saved after every
/// window; if the checkpoint already exists the session resumes from its
/// cursor instead of recalibrating, and prints only the windows it
/// processes itself — concatenating a killed run's output with its
/// resumed run's output reproduces the uninterrupted transcript exactly.
///
/// # Errors
/// Returns a rendered error string (the `repro` binary's error currency)
/// on pipeline or checkpoint failures.
pub fn run_session_demo(
    cfg: &CampaignConfig,
    opts: &SessionDemoOptions,
    out: &mut dyn Write,
) -> Result<(), String> {
    let _stage = mpdf_obs::stage!("eval.session_demo");
    let cases = five_cases();
    let case = &cases[0];
    let template = case_receiver(case, cfg, cfg.seed ^ 0xD81F)
        .map_err(|e| format!("session link geometry: {e}"))?;
    let store = opts.checkpoint.as_ref().map(CheckpointStore::new);

    let mut rt = match &store {
        Some(store) if store.exists() => {
            let snap = store
                .load(&cfg.detector)
                .map_err(|e| format!("load checkpoint: {e}"))?;
            let rt = SessionRuntime::from_snapshot(
                snap,
                SubcarrierWeighting,
                cfg.detector.clone(),
                session_config(),
            )
            .map_err(|e| format!("restore session: {e}"))?;
            emit(out, &format!("resumed window={}", rt.cursor()))?;
            rt
        }
        _ => {
            // Calibration day: drift magnitude zero, one continuous
            // capture (window index space starts after it).
            let mut calib_rx = template.fork(cfg.seed ^ 0xCA11B);
            let calibration = calib_rx
                .capture_static(None, 24 * cfg.detector.window)
                .map_err(|e| format!("calibration capture: {e}"))?;
            let rt = SessionRuntime::calibrate(
                &calibration,
                SubcarrierWeighting,
                cfg.detector.clone(),
                session_config(),
            )
            .map_err(|e| format!("session calibration: {e}"))?;
            emit(
                out,
                &format!("calibrated threshold={:016x}", rt.threshold().to_bits()),
            )?;
            rt
        }
    };

    let mut processed = 0u64;
    while rt.cursor() < SESSION_WINDOWS {
        let w = rt.cursor();
        let window =
            capture_window(&template, case, cfg, w).map_err(|e| format!("window {w}: {e}"))?;
        let d = rt.step(&window).map_err(|e| format!("window {w}: {e}"))?;
        let (score, detected) = match d.decision {
            Some(x) => (format!("{:016x}", x.score.to_bits()), u8::from(x.detected)),
            None => ("abstain".to_string(), 0),
        };
        let recal = match d.recal {
            Some(RecalOutcome::Accepted { .. }) => "accepted",
            Some(RecalOutcome::Rejected { .. }) => "rejected",
            Some(RecalOutcome::Frozen) => "frozen",
            None => "-",
        };
        emit(
            out,
            &format!(
                "window={w} score={score} detected={detected} posterior={:016x} \
                 vacant={} drift={:?} mode={:?} recal={recal} threshold={:016x}",
                d.posterior.to_bits(),
                u8::from(d.vacant),
                d.drift,
                d.mode,
                rt.threshold().to_bits()
            ),
        )?;
        if let Some(store) = &store {
            store
                .save(&rt.snapshot())
                .map_err(|e| format!("checkpoint window {w}: {e}"))?;
        }
        processed += 1;
        if opts.kill_after.is_some_and(|n| processed >= n) && rt.cursor() < SESSION_WINDOWS {
            emit(out, &format!("killed window={}", rt.cursor()))?;
            return Ok(());
        }
    }
    emit(
        out,
        &format!(
            "session complete windows={SESSION_WINDOWS} threshold={:016x} mode={:?}",
            rt.threshold().to_bits(),
            rt.mode()
        ),
    )?;
    Ok(())
}
