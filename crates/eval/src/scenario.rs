//! Evaluation scenarios (§V-A, Fig. 6).
//!
//! The paper measures 5 TX–RX links ("cases") across two furnished rooms
//! in an academic building, with a 3×3 grid of human test positions per
//! link, plus distance rings (1–5 m from the receiver, Fig. 9) and an
//! angle fan (−90°…90° at fixed radius, Fig. 11).

use serde::{Deserialize, Serialize};

use mpdf_geom::segment::Segment;
use mpdf_geom::shapes::Rect;
use mpdf_geom::vec2::{Point, Vec2};
use mpdf_propagation::environment::Environment;
use mpdf_propagation::material::Material;

/// One evaluated TX–RX link.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinkCase {
    /// Case number (1–5, matching Fig. 8's x-axis).
    pub id: usize,
    /// Room environment.
    pub environment: Environment,
    /// Transmitter (AP) position.
    pub tx: Point,
    /// Receiver position.
    pub rx: Point,
    /// The interior room the link and test subjects occupy (a subset of
    /// the environment, which extends to the building shell).
    pub room: Rect,
    /// Human-presence test grid (3×3).
    pub grid: Vec<Point>,
}

impl LinkCase {
    /// TX–RX distance in metres.
    pub fn link_length(&self) -> f64 {
        self.tx.distance(self.rx)
    }

    /// Midpoint of the link.
    pub fn midpoint(&self) -> Point {
        self.tx.lerp(self.rx, 0.5)
    }

    /// Positions far from the link (≥ `min_dist` from the TX–RX segment
    /// but inside the room) where background dynamics may occur.
    pub fn background_positions(&self, min_dist: f64) -> Vec<Point> {
        let link = Segment::new(self.tx, self.rx);
        let bounds = self.room.shrunk(0.3);
        let mut out = Vec::new();
        let steps = 12;
        for ix in 0..steps {
            for iy in 0..steps {
                let p = Point::new(
                    bounds.min().x + bounds.width() * ix as f64 / (steps - 1) as f64,
                    bounds.min().y + bounds.height() * iy as f64 / (steps - 1) as f64,
                );
                if link.distance_to_point(p) >= min_dist {
                    out.push(p);
                }
            }
        }
        out
    }
}

/// Builds a 3×3 grid of human positions centred on the link midpoint,
/// spanning `span_along` metres along the link and `span_across` across
/// it (clamped inside the room with a 0.4 m margin).
pub fn grid_3x3(room: Rect, tx: Point, rx: Point, span_along: f64, span_across: f64) -> Vec<Point> {
    let along = (rx - tx).normalized().unwrap_or(Vec2::new(1.0, 0.0));
    let across = along.perp();
    let mid = tx.lerp(rx, 0.5);
    let bounds = room.shrunk(0.4);
    let mut grid = Vec::with_capacity(9);
    for i in -1..=1 {
        for j in -1..=1 {
            let p = mid
                + along * (i as f64 * span_along / 2.0)
                + across * (j as f64 * span_across / 2.0);
            let clamped = Point::new(
                p.x.clamp(bounds.min().x, bounds.max().x),
                p.y.clamp(bounds.min().y, bounds.max().y),
            );
            grid.push(clamped);
        }
    }
    grid
}

/// Adds the four walls of an interior room to a builder.
fn add_room_walls(
    b: &mut mpdf_propagation::environment::EnvironmentBuilder,
    room: Rect,
    material: Material,
) {
    for seg in room.walls() {
        b.interior_wall(seg, material);
    }
}

/// The 6 m × 8 m classroom of §III, modelled *inside* a concrete building
/// shell. Walls beyond the room create the long-delay multipath
/// (excess paths of 10–25 m) that gives indoor WiFi its frequency
/// selectivity — the phenomenon the paper's subcarrier diversity rides on.
/// The room itself has drywall walls signals partially penetrate.
pub fn classroom() -> Environment {
    let shell = Rect::new(Point::new(-4.0, -3.0), Point::new(12.0, 9.0));
    let room = Rect::new(Point::new(0.0, 0.0), Point::new(8.0, 6.0));
    let mut b = Environment::builder(shell, Material::CONCRETE);
    add_room_walls(&mut b, room, Material::DRYWALL);
    // Classroom furniture: a teacher desk and a bookshelf.
    b.furniture(
        Rect::new(Point::new(0.6, 4.8), Point::new(2.2, 5.5)),
        Material::WOOD,
    );
    b.furniture(
        Rect::new(Point::new(7.2, 0.4), Point::new(7.8, 2.4)),
        Material::WOOD,
    );
    b.build()
}

/// Interior rectangle of the classroom (where links and humans live).
pub fn classroom_room() -> Rect {
    Rect::new(Point::new(0.0, 0.0), Point::new(8.0, 6.0))
}

/// A furnished office inside the same building shell: drywall partition
/// stub, desks and a metal cabinet.
pub fn office() -> Environment {
    let shell = Rect::new(Point::new(-4.0, -3.5), Point::new(11.0, 8.5));
    let room = Rect::new(Point::new(0.0, 0.0), Point::new(7.0, 5.0));
    let mut b = Environment::builder(shell, Material::CONCRETE);
    add_room_walls(&mut b, room, Material::DRYWALL);
    b.interior_wall(
        Segment::new(Point::new(4.5, 0.0), Point::new(4.5, 1.8)),
        Material::DRYWALL,
    );
    b.furniture(
        Rect::new(Point::new(0.8, 3.6), Point::new(2.4, 4.4)),
        Material::WOOD,
    );
    b.furniture(
        Rect::new(Point::new(5.6, 0.6), Point::new(6.4, 1.4)),
        Material::WOOD,
    );
    b.furniture(
        Rect::new(Point::new(6.4, 4.2), Point::new(6.8, 4.8)),
        Material::METAL,
    );
    // An angled lectern near the partition — real offices are not
    // axis-aligned.
    b.furniture_polygon(
        mpdf_geom::polygon::ConvexPolygon::rotated_rectangle(Point::new(3.2, 3.9), 1.2, 0.5, 0.6),
        Material::WOOD,
    );
    b.build()
}

/// Interior rectangle of the office.
pub fn office_room() -> Rect {
    Rect::new(Point::new(0.0, 0.0), Point::new(7.0, 5.0))
}

/// The five evaluation cases (Fig. 6): three classroom links of different
/// lengths/placements and two office links threading furniture.
pub fn five_cases() -> Vec<LinkCase> {
    let cr = classroom();
    let of = office();
    let mk = |id, env: &Environment, room: Rect, tx: Point, rx: Point| {
        // Wide grids: span past the link ends and 2 m to each side, so
        // positions cover the easy (on-LOS) through hard (distant NLOS)
        // range, as in the paper's campaign.
        let grid = grid_3x3(room, tx, rx, tx.distance(rx) + 1.5, 4.0);
        LinkCase {
            id,
            environment: env.clone(),
            tx,
            rx,
            room,
            grid,
        }
    };
    vec![
        // Case 1: 4 m mid-room link (the §III measurement link).
        mk(
            1,
            &cr,
            classroom_room(),
            Point::new(2.0, 3.0),
            Point::new(6.0, 3.0),
        ),
        // Case 2: 5.5 m diagonal-ish link near a wall.
        mk(
            2,
            &cr,
            classroom_room(),
            Point::new(1.0, 1.2),
            Point::new(6.5, 1.6),
        ),
        // Case 3: short 3 m link in a vacant area (the paper notes case 3
        // is a strong-LOS 3 m link where path weighting helps least).
        mk(
            3,
            &cr,
            classroom_room(),
            Point::new(2.5, 4.5),
            Point::new(5.5, 4.5),
        ),
        // Case 4: office link crossing the room past furniture.
        mk(
            4,
            &of,
            office_room(),
            Point::new(1.0, 2.5),
            Point::new(6.0, 2.8),
        ),
        // Case 5: office link near the drywall stub.
        mk(
            5,
            &of,
            office_room(),
            Point::new(1.5, 0.8),
            Point::new(5.8, 1.0),
        ),
    ]
}

/// Human positions at the given distances (metres) from the receiver,
/// walking back along the link direction and fanning slightly — the
/// Fig. 9 distance sweep.
pub fn distance_ring_positions(case: &LinkCase, distances: &[f64]) -> Vec<(f64, Point)> {
    let toward_tx = (case.tx - case.rx)
        .normalized()
        .unwrap_or(Vec2::new(1.0, 0.0));
    let across = toward_tx.perp();
    let bounds = case.room.shrunk(0.35);
    let mut out = Vec::new();
    for &d in distances {
        for &off in &[-0.5f64, 0.0, 0.5] {
            let p = case.rx + toward_tx * d + across * off;
            if bounds.contains(p) {
                out.push((d, p));
            }
        }
    }
    out
}

/// Human positions on an angle fan around the receiver at `radius`
/// metres: the Fig. 5c / Fig. 11 sweep. Angles are measured against the
/// receiver's array broadside, which faces the transmitter.
pub fn angle_fan_positions(case: &LinkCase, radius: f64, angles_deg: &[f64]) -> Vec<(f64, Point)> {
    let broadside = (case.tx - case.rx)
        .normalized()
        .unwrap_or(Vec2::new(1.0, 0.0));
    let bounds = case.room.shrunk(0.35);
    angles_deg
        .iter()
        .filter_map(|&deg| {
            let dir = broadside.rotated(deg.to_radians());
            let p = case.rx + dir * radius;
            if bounds.contains(p) {
                Some((deg, p))
            } else {
                None
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_cases_are_valid_links() {
        let cases = five_cases();
        assert_eq!(cases.len(), 5);
        for c in &cases {
            assert!(c.environment.contains(c.tx), "case {} tx", c.id);
            assert!(c.environment.contains(c.rx), "case {} rx", c.id);
            assert!(c.link_length() > 2.0, "case {} too short", c.id);
            assert_eq!(c.grid.len(), 9);
            for p in &c.grid {
                assert!(c.environment.contains(*p), "case {} grid point {p}", c.id);
            }
        }
        // Case 3 is the short strong-LOS link.
        assert!(cases[2].link_length() <= cases[0].link_length());
    }

    #[test]
    fn case_ids_are_one_through_five() {
        let ids: Vec<usize> = five_cases().iter().map(|c| c.id).collect();
        assert_eq!(ids, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn grid_spans_both_sides_of_link() {
        let grid = grid_3x3(
            classroom_room(),
            Point::new(2.0, 3.0),
            Point::new(6.0, 3.0),
            2.4,
            2.0,
        );
        let above = grid.iter().filter(|p| p.y > 3.01).count();
        let below = grid.iter().filter(|p| p.y < 2.99).count();
        let on = grid.iter().filter(|p| (p.y - 3.0).abs() < 0.01).count();
        assert_eq!(above, 3);
        assert_eq!(below, 3);
        assert_eq!(on, 3);
    }

    #[test]
    fn distance_rings_reach_out_to_5m() {
        let case = &five_cases()[1]; // the long link
        let pos = distance_ring_positions(case, &[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!(!pos.is_empty());
        let max_d = pos.iter().map(|(d, _)| *d).fold(f64::MIN, f64::max);
        assert!(max_d >= 5.0, "need positions out to 5 m, got {max_d}");
        for (d, p) in &pos {
            assert!(case.environment.contains(*p));
            assert!((case.rx.distance(*p) - d).abs() < 0.6);
        }
    }

    #[test]
    fn angle_fan_covers_wide_range() {
        let case = &five_cases()[0];
        let angles: Vec<f64> = (-8..=8).map(|i| i as f64 * 11.25).collect();
        let pos = angle_fan_positions(case, 1.0, &angles);
        assert!(pos.len() >= 12, "got only {} fan positions", pos.len());
        let min = pos.iter().map(|(a, _)| *a).fold(f64::MAX, f64::min);
        let max = pos.iter().map(|(a, _)| *a).fold(f64::MIN, f64::max);
        assert!(min <= -60.0 && max >= 60.0);
    }

    #[test]
    fn background_positions_are_far_from_link() {
        let case = &five_cases()[0];
        let link = Segment::new(case.tx, case.rx);
        let bg = case.background_positions(2.2);
        assert!(!bg.is_empty());
        for p in &bg {
            assert!(link.distance_to_point(*p) >= 2.2);
            assert!(case.environment.contains(*p));
        }
    }

    #[test]
    fn office_has_furniture_and_partition() {
        let env = office();
        // 4 shell walls + 4 room walls + partition stub.
        assert_eq!(env.walls().len(), 9);
        assert_eq!(env.furniture().len(), 4);
    }

    #[test]
    fn shell_creates_long_delay_paths() {
        // The building shell must contribute propagation paths with
        // excess lengths beyond ~9 m — the delay spread that makes the
        // 17.5 MHz band frequency selective.
        use mpdf_propagation::tracer::{trace, TraceConfig};
        let env = classroom();
        let paths = trace(
            &env,
            Point::new(2.0, 3.0),
            Point::new(6.0, 3.0),
            &TraceConfig {
                max_order: 2,
                min_amplitude_factor: 1e-3,
            },
        )
        .unwrap();
        let los = paths[0].length();
        let long = paths.iter().filter(|p| p.length() - los > 9.0).count();
        assert!(long >= 2, "need long-delay paths, got {long}");
    }
}
