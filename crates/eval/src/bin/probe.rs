//! Diagnostic probe: inspect per-subcarrier features and score
//! distributions for the three schemes on case 1.

use mpdf_core::multipath_factor::multipath_factors;
use mpdf_core::profile::CalibrationProfile;
use mpdf_core::scheme::{
    Baseline, DetectionScheme, SubcarrierAndPathWeighting, SubcarrierWeighting,
};
use mpdf_core::subcarrier_weight::SubcarrierWeights;
use mpdf_eval::scenario::five_cases;
use mpdf_eval::workload::{case_receiver, CampaignConfig};
use mpdf_geom::vec2::Vec2;
use mpdf_propagation::human::HumanBody;
use mpdf_propagation::trajectory::StaticSway;
use mpdf_wifi::receiver::Actor;
use mpdf_wifi::sanitize::sanitize_packet;

fn main() {
    let cfg = CampaignConfig::default();
    let case = &five_cases()[0];
    let mut rx = case_receiver(case, &cfg, 42).unwrap();
    let freqs = cfg.detector.band.frequencies();

    let calibration = rx.capture_static(None, 500).unwrap();
    let profile = CalibrationProfile::build(&calibration, &cfg.detector).unwrap();

    // Static channel frequency profile.
    println!("static per-subcarrier power:");
    for (k, p) in profile.static_power().iter().enumerate() {
        print!("{p:.3} ");
        if k % 10 == 9 {
            println!();
        }
    }

    // μ of a sanitized static packet.
    let mut pkt = calibration[0].clone();
    sanitize_packet(&mut pkt, cfg.detector.band.indices());
    let mus = multipath_factors(&pkt, &freqs);
    println!(
        "\nμ_k (static packet): min {:.3} max {:.3}",
        mus.iter().cloned().fold(f64::MAX, f64::min),
        mus.iter().cloned().fold(f64::MIN, f64::max)
    );

    // One positive window (human near midpoint, 1 m off-link) and one far.
    for (label, pos) in [
        ("human at midpoint", Vec2::new(4.0, 3.0)),
        ("human 1m beside", Vec2::new(4.0, 4.0)),
        ("human far corner", Vec2::new(7.3, 5.3)),
    ] {
        let sway = StaticSway::new(pos, cfg.sway_amplitude);
        let actors = [Actor {
            body: HumanBody::new(pos),
            trajectory: &sway,
        }];
        let window = rx.capture_actors(&actors, 25).unwrap();
        let sanitized: Vec<_> = window
            .iter()
            .map(|p| {
                let mut q = p.clone();
                sanitize_packet(&mut q, cfg.detector.band.indices());
                q
            })
            .collect();
        let monitored = mpdf_wifi::csi::CsiPacket::mean_power_profile(&sanitized);
        let delta: Vec<f64> = monitored
            .iter()
            .zip(profile.static_power())
            .map(|(m, s)| m - s)
            .collect();
        let w = SubcarrierWeights::from_packets(&sanitized, &freqs);
        println!("\n== {label}");
        println!(
            "|Δs| mean {:.4} max {:.4}",
            delta.iter().map(|d| d.abs()).sum::<f64>() / 30.0,
            delta.iter().map(|d| d.abs()).fold(f64::MIN, f64::max)
        );
        // correlation between |Δs| and weight
        let corr = mpdf_rfmath::fit::pearson(
            &delta.iter().map(|d| d.abs()).collect::<Vec<_>>(),
            &w.weights,
        );
        println!("corr(|Δs|, weight) = {corr:.3}");
        for scheme in [
            &Baseline as &dyn DetectionScheme,
            &SubcarrierWeighting,
            &SubcarrierAndPathWeighting,
        ] {
            let s = scheme.score(&profile, &window, &cfg.detector).unwrap();
            println!("  {:28} {s:.5}", scheme.name());
        }
    }

    // Empty windows with/without background.
    for (label, bg) in [
        ("empty quiet", None),
        ("empty + background", Some(Vec2::new(1.0, 5.4))),
    ] {
        let window = match bg {
            None => rx.capture_static(None, 25).unwrap(),
            Some(p) => {
                let sway = StaticSway::new(p, 0.25);
                let actors = [Actor {
                    body: HumanBody::new(p),
                    trajectory: &sway,
                }];
                rx.capture_actors(&actors, 25).unwrap()
            }
        };
        println!("\n== {label}");
        for scheme in [
            &Baseline as &dyn DetectionScheme,
            &SubcarrierWeighting,
            &SubcarrierAndPathWeighting,
        ] {
            let s = scheme.score(&profile, &window, &cfg.detector).unwrap();
            println!("  {:28} {s:.5}", scheme.name());
        }
    }
}
