//! `repro` — regenerate any table/figure of the paper's evaluation.
//!
//! Usage: `repro [options] <experiment>...`; see [`USAGE`] (or
//! `repro --help`) for the experiment list and options. Experiments run
//! in parallel on `--threads` workers with output printed in request
//! order, so `repro all --threads 8` is byte-identical on stdout (and in
//! `--csvdir` artifacts) to `repro all --threads 1`.

use mpdf_eval::experiments as exp;
use mpdf_eval::workload::CampaignConfig;

// With `--features alloc-profile` the binary counts every heap
// allocation and attributes it to the active stage; the default build
// runs on the system allocator untouched.
#[cfg(feature = "alloc-profile")]
#[global_allocator]
static COUNTING_ALLOC: mpdf_obs::allocs::CountingAllocator = mpdf_obs::allocs::CountingAllocator;

/// Known experiment names, in `all` execution order.
const ALL_EXPERIMENTS: [&str; 18] = [
    "fig2a",
    "fig2b",
    "fig3",
    "fig4",
    "fig5b",
    "fig5c",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "ext-hmm",
    "ext-array",
    "ext-ablate",
    "ext-sweep",
    "ext-chaos",
    "ext-drift",
];

/// Help text; printed on `--help` and after usage errors.
const USAGE: &str = "\
usage: repro [options] <experiment>...

experiments:
  fig2a fig2b fig3 fig4 fig5b fig5c fig7 fig8 fig9 fig10 fig11 fig12
  ext-hmm ext-array ext-ablate ext-sweep ext-chaos ext-drift all
  (default: fig7)

  stream             replay the recorded campaign through the CSI wire codec
                     and bounded-queue ingest path at max speed, verifying
                     stream-path scores bit-identical to the offline pass
                     (runs alone, not part of `all`)
  fleet              run many links under the sharded fleet supervisor:
                     fault containment, overload shedding, room fusion;
                     with --chaos, crash-recoverable shard logs under
                     seeded IO faults and shard kills, asserting recovery
                     equivalence (runs alone, not part of `all`)

options:
  --snr <db>         per-subcarrier SNR in dB
  --bg <rate>        background-dynamics rate in [0, 1]
  --bgdist <m>       minimum background-walker distance from the link
  --sway <m>         sway amplitude of the monitored person
  --seed <u64>       base RNG seed (non-negative integer)
  --episodes <n>     windows per human grid position
  --drift <rel>      session clutter-drift relative amplitude
  --gaindrift <db>   peak session gain drift in dB
  --intf <p>         narrowband interference probability in [0, 1]
  --intfpow <db>     interference power relative to the signal
  --faults <preset>  inject receiver faults into every capture; presets:
                     none loss dropout agc glitch chaos
  --locations <n>    sample locations for fig2a/fig3
  --packets <n>      packets for fig2b
  --threads <n>      worker threads (0 = all cores); output is identical
                     for every value
  --csvdir <dir>     export each experiment's key series as CSV
  --case <name>      select an experiment (alias for the positional form)
  --trace <path>     write an NDJSON span trace of the run to <path>
  --metrics <path>   write a metrics snapshot (counters, gauges, per-stage
                     latency histograms) as JSON to <path>
  --trajectory <p>   write windowed metric trajectories (registry deltas
                     sampled every K windows) as NDJSON to <p>
  --traj-every <k>   windows per trajectory sample (default 64, min 1)
  --session          run a supervised long-running session demo instead of
                     experiments: drift sentinels, staged recalibration and
                     per-window checkpointing (one line per window)
  --chunk <bytes>    stream mode: wire bytes per ingest chunk (default 1460,
                     deliberately smaller than one 3x30 frame so every frame
                     crosses a chunk boundary)
  --checkpoint <p>   session checkpoint file; an existing checkpoint is
                     resumed from its window cursor, bit-identically
  --kill-after <n>   exit after processing n windows of this session run,
                     leaving the checkpoint behind for a later resume
  --links <n>        fleet mode: number of links (default 24)
  --ticks <n>        fleet mode: number of ticks (default 12)
  --fleet-shards <n> fleet mode: number of shards (default 4)
  --fleet-dir <p>    fleet mode: shard-log directory for --chaos (default:
                     a temp directory, removed afterwards)
  --chaos            fleet mode: inject seeded shard kills and log IO
                     faults, asserting bit-identical recovery
  --help             print this message

observability flags only add artifacts: stdout and --csvdir output stay
byte-identical with or without them, at any thread count.";

struct Options {
    cfg: CampaignConfig,
    locations: usize,
    packets: usize,
    csv_dir: Option<std::path::PathBuf>,
    trace: Option<std::path::PathBuf>,
    metrics: Option<std::path::PathBuf>,
    trajectory: Option<std::path::PathBuf>,
    traj_every: u64,
    experiments: Vec<String>,
    session: Option<mpdf_eval::session::SessionDemoOptions>,
    stream: mpdf_eval::stream::StreamOptions,
    fleet: mpdf_eval::fleet::FleetDemoOptions,
    help: bool,
}

/// Parses a flag value with a strict grammar, rejecting what `v as u64`
/// style casts used to silently accept (negatives, fractions, overflow).
fn parse_num<T: std::str::FromStr>(flag: &str, value: &str, what: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("bad value `{value}` for --{flag}: expected {what}"))
}

fn parse_float(flag: &str, value: &str) -> Result<f64, String> {
    let v: f64 = parse_num(flag, value, "a finite number")?;
    if v.is_finite() {
        Ok(v)
    } else {
        Err(format!("bad value `{value}` for --{flag}: must be finite"))
    }
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut cfg = CampaignConfig::default();
    let mut locations = 300usize;
    let mut packets = 1000usize;
    let mut experiments = Vec::new();
    let mut csv_dir = None;
    let mut trace = None;
    let mut metrics = None;
    let mut trajectory = None;
    let mut traj_every = 64u64;
    let mut session = false;
    let mut session_opts = mpdf_eval::session::SessionDemoOptions::default();
    let mut stream_opts = mpdf_eval::stream::StreamOptions::default();
    let mut fleet_opts = mpdf_eval::fleet::FleetDemoOptions::default();
    let mut fleet_flags = false;
    let mut help = false;
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        let Some(flag) = a.strip_prefix("--") else {
            experiments.push(a.clone());
            continue;
        };
        if flag == "help" {
            help = true;
            continue;
        }
        // `--session` and `--chaos` are the boolean flags besides
        // `--help`.
        if flag == "session" {
            session = true;
            continue;
        }
        if flag == "chaos" {
            fleet_opts.chaos = true;
            fleet_flags = true;
            continue;
        }
        let value = iter
            .next()
            .ok_or_else(|| format!("missing value for --{flag}"))?;
        match flag {
            "snr" => cfg.snr_db = parse_float(flag, value)?,
            "bg" => cfg.background_rate = parse_float(flag, value)?,
            "bgdist" => cfg.background_distance = parse_float(flag, value)?,
            "sway" => cfg.sway_amplitude = parse_float(flag, value)?,
            "seed" => cfg.seed = parse_num(flag, value, "a non-negative integer")?,
            "episodes" => {
                cfg.episodes_per_position = parse_num(flag, value, "a non-negative integer")?;
            }
            "drift" => cfg.clutter_drift_rel = parse_float(flag, value)?,
            "gaindrift" => cfg.session_gain_drift_db = parse_float(flag, value)?,
            "intf" => cfg.interference_prob = parse_float(flag, value)?,
            "intfpow" => cfg.interference_power_db = parse_float(flag, value)?,
            "faults" => {
                cfg.faults = mpdf_wifi::FaultModel::preset(value).ok_or_else(|| {
                    format!(
                        "bad value `{value}` for --faults: known presets {:?}",
                        mpdf_wifi::fault::PRESET_NAMES
                    )
                })?;
            }
            "locations" => locations = parse_num(flag, value, "a non-negative integer")?,
            "packets" => packets = parse_num(flag, value, "a non-negative integer")?,
            "threads" => cfg.threads = parse_num(flag, value, "a non-negative integer")?,
            "csvdir" => csv_dir = Some(std::path::PathBuf::from(value)),
            "case" => experiments.push(value.clone()),
            "trace" => trace = Some(std::path::PathBuf::from(value)),
            "metrics" => metrics = Some(std::path::PathBuf::from(value)),
            "trajectory" => trajectory = Some(std::path::PathBuf::from(value)),
            "traj-every" => {
                traj_every = parse_num(flag, value, "a positive integer")?;
                if traj_every == 0 {
                    return Err("bad value `0` for --traj-every: must be at least 1".to_string());
                }
            }
            "chunk" => {
                stream_opts.chunk_bytes = parse_num(flag, value, "a positive integer")?;
                if stream_opts.chunk_bytes == 0 {
                    return Err("bad value `0` for --chunk: must be at least 1".to_string());
                }
            }
            "checkpoint" => session_opts.checkpoint = Some(std::path::PathBuf::from(value)),
            "kill-after" => {
                session_opts.kill_after = Some(parse_num(flag, value, "a non-negative integer")?);
            }
            "links" => {
                fleet_opts.links = parse_num(flag, value, "a positive integer")?;
                if fleet_opts.links == 0 {
                    return Err("bad value `0` for --links: must be at least 1".to_string());
                }
                fleet_flags = true;
            }
            "ticks" => {
                fleet_opts.ticks = parse_num(flag, value, "a positive integer")?;
                if fleet_opts.ticks == 0 {
                    return Err("bad value `0` for --ticks: must be at least 1".to_string());
                }
                fleet_flags = true;
            }
            "fleet-shards" => {
                fleet_opts.shards = parse_num(flag, value, "a positive integer")?;
                if fleet_opts.shards == 0 {
                    return Err("bad value `0` for --fleet-shards: must be at least 1".to_string());
                }
                fleet_flags = true;
            }
            "fleet-dir" => {
                fleet_opts.dir = Some(std::path::PathBuf::from(value));
                fleet_flags = true;
            }
            other => return Err(format!("unknown option --{other}")),
        }
    }
    if !session && (session_opts.checkpoint.is_some() || session_opts.kill_after.is_some()) {
        return Err("--checkpoint/--kill-after require --session".to_string());
    }
    if fleet_flags && !experiments.iter().any(|e| e == "fleet") {
        return Err(
            "--links/--ticks/--fleet-shards/--fleet-dir/--chaos require the `fleet` experiment"
                .to_string(),
        );
    }
    if experiments.is_empty() {
        experiments.push("fig7".to_string());
    }
    Ok(Options {
        cfg,
        locations,
        packets,
        csv_dir,
        trace,
        metrics,
        trajectory,
        traj_every,
        experiments,
        session: session.then_some(session_opts),
        stream: stream_opts,
        fleet: fleet_opts,
        help,
    })
}

/// The renderable product of one experiment: the stdout report plus any
/// CSV artifacts, generated on a worker and emitted later in request
/// order so parallel runs print exactly what serial runs print.
struct ExperimentOutput {
    report: String,
    csvs: Vec<(String, String)>,
    seconds: f64,
}

fn run_experiment(name: &str, opts: &Options) -> Result<ExperimentOutput, String> {
    let _stage = mpdf_obs::stage!("repro.experiment");
    mpdf_obs::trace::instant(match name {
        // Static tag so the trace shows which experiment a span tree
        // belongs to without allocating per event.
        "fig2a" => "repro.start.fig2a",
        "fig2b" => "repro.start.fig2b",
        "fig3" => "repro.start.fig3",
        "fig4" => "repro.start.fig4",
        "fig5b" => "repro.start.fig5b",
        "fig5c" => "repro.start.fig5c",
        "fig7" => "repro.start.fig7",
        "fig8" => "repro.start.fig8",
        "fig9" => "repro.start.fig9",
        "fig10" => "repro.start.fig10",
        "fig11" => "repro.start.fig11",
        "fig12" => "repro.start.fig12",
        "ext-hmm" => "repro.start.ext-hmm",
        "ext-array" => "repro.start.ext-array",
        "ext-ablate" => "repro.start.ext-ablate",
        "ext-sweep" => "repro.start.ext-sweep",
        "ext-chaos" => "repro.start.ext-chaos",
        "ext-drift" => "repro.start.ext-drift",
        _ => "repro.start.unknown",
    });
    let started = std::time::Instant::now();
    let mut csvs: Vec<(String, String)> = Vec::new();
    let err = |e: mpdf_core::error::DetectError| format!("{name}: {e}");
    let report = match name {
        "fig2a" => {
            let r = exp::fig2::run_fig2a(&opts.cfg, opts.locations).map_err(err)?;
            csvs.push((
                "fig2a_cdf".into(),
                mpdf_eval::report::csv_series("delta_s_db", "cdf", &r.cdf),
            ));
            exp::fig2::report_fig2a(&r)
        }
        "fig2b" => {
            let r = exp::fig2::run_fig2b(&opts.cfg, opts.packets).map_err(err)?;
            csvs.push((
                "fig2b_drop_slot".into(),
                mpdf_eval::report::csv_series("packet", "ds_db", &r.subcarrier_a),
            ));
            csvs.push((
                "fig2b_rise_slot".into(),
                mpdf_eval::report::csv_series("packet", "ds_db", &r.subcarrier_b),
            ));
            exp::fig2::report_fig2b(&r)
        }
        "fig3" => {
            let r = exp::fig3::run(&opts.cfg, opts.locations).map_err(err)?;
            csvs.push((
                "fig3a_cdf".into(),
                mpdf_eval::report::csv_series("mu", "cdf", &r.distribution.cdf),
            ));
            let mut rows = vec![vec!["slot".into(), "a".into(), "b".into(), "r2".into()]];
            for f in &r.fits {
                rows.push(vec![
                    f.slot.to_string(),
                    f.fit.slope.to_string(),
                    f.fit.intercept.to_string(),
                    f.fit.r_squared.to_string(),
                ]);
            }
            csvs.push(("fig3c_fits".into(), mpdf_eval::report::csv(&rows)));
            exp::fig3::report(&r)
        }
        "fig4" => exp::fig4::report(&exp::fig4::run(&opts.cfg, 2000).map_err(err)?),
        "fig5b" => {
            let r = exp::fig5::run_fig5b(&opts.cfg).map_err(err)?;
            csvs.push((
                "fig5b_spectrum".into(),
                mpdf_eval::report::csv_series("angle_deg", "ps", &r.spectrum),
            ));
            exp::fig5::report_fig5b(&r)
        }
        "fig5c" => {
            let r = exp::fig5::run_fig5c(&opts.cfg).map_err(err)?;
            csvs.push((
                "fig5c_rss_by_angle".into(),
                mpdf_eval::report::csv_series(
                    "angle_deg",
                    "mean_abs_ds_db",
                    &r.rss_change_by_angle,
                ),
            ));
            exp::fig5::report_fig5c(&r)
        }
        "fig7" => {
            let r = exp::fig7::run(&opts.cfg).map_err(err)?;
            for s in &r.schemes {
                let tag = s.name.replace(['+', ' '], "_");
                csvs.push((
                    format!("fig7_roc_{tag}"),
                    mpdf_eval::report::csv_series("fp", "tp", &s.roc_points),
                ));
            }
            exp::fig7::report(&r)
        }
        "fig8" => {
            let r = exp::fig8::run(&opts.cfg).map_err(err)?;
            let mut rows = vec![vec![
                "case".into(),
                "baseline".into(),
                "subcarrier".into(),
                "combined".into(),
            ]];
            for (id, b, s2, c) in &r.rows {
                rows.push(vec![
                    id.to_string(),
                    b.to_string(),
                    s2.to_string(),
                    c.to_string(),
                ]);
            }
            csvs.push(("fig8_cases".into(), mpdf_eval::report::csv(&rows)));
            exp::fig8::report(&r)
        }
        "fig9" => {
            let r = exp::fig9::run(&opts.cfg).map_err(err)?;
            let mut rows = vec![vec![
                "distance_m".into(),
                "baseline".into(),
                "subcarrier".into(),
                "combined".into(),
            ]];
            for (d, b, s2, c) in &r.rows {
                rows.push(vec![
                    d.to_string(),
                    b.to_string(),
                    s2.to_string(),
                    c.to_string(),
                ]);
            }
            csvs.push(("fig9_distance".into(), mpdf_eval::report::csv(&rows)));
            exp::fig9::report(&r)
        }
        "fig10" => {
            let r = exp::fig10::run(&opts.cfg).map_err(err)?;
            csvs.push((
                "fig10_single_packet".into(),
                mpdf_eval::report::csv_series("error_deg", "cdf", &r.single_packet_cdf),
            ));
            csvs.push((
                "fig10_averaged".into(),
                mpdf_eval::report::csv_series("error_deg", "cdf", &r.averaged_cdf),
            ));
            exp::fig10::report(&r)
        }
        "fig11" => {
            let r = exp::fig11::run(&opts.cfg).map_err(err)?;
            let mut rows = vec![vec![
                "angle_deg".into(),
                "subcarrier".into(),
                "combined".into(),
            ]];
            for (a, s2, c) in &r.rows {
                rows.push(vec![a.to_string(), s2.to_string(), c.to_string()]);
            }
            csvs.push(("fig11_angles".into(), mpdf_eval::report::csv(&rows)));
            exp::fig11::report(&r)
        }
        "fig12" => {
            let r = exp::fig12::run(&opts.cfg).map_err(err)?;
            let mut rows = vec![vec![
                "packets".into(),
                "seconds".into(),
                "baseline".into(),
                "subcarrier".into(),
                "combined".into(),
            ]];
            for (w, t, b, s2, c) in &r.rows {
                rows.push(vec![
                    w.to_string(),
                    t.to_string(),
                    b.to_string(),
                    s2.to_string(),
                    c.to_string(),
                ]);
            }
            csvs.push(("fig12_windows".into(), mpdf_eval::report::csv(&rows)));
            exp::fig12::report(&r)
        }
        "ext-hmm" => exp::ext_hmm::report(&exp::ext_hmm::run(&opts.cfg).map_err(err)?),
        "ext-array" => exp::ext_array::report(&exp::ext_array::run(&opts.cfg).map_err(err)?),
        "ext-sweep" => exp::ext_sweep::report(&exp::ext_sweep::run(&opts.cfg).map_err(err)?),
        "ext-ablate" => exp::ext_ablate::report(&exp::ext_ablate::run(&opts.cfg).map_err(err)?),
        "ext-chaos" => {
            let r = exp::ext_chaos::run(&opts.cfg).map_err(err)?;
            let mut rows = vec![vec![
                "intensity".into(),
                "detection_rate".into(),
                "fp_rate".into(),
                "degraded_windows".into(),
                "aborted_windows".into(),
                "scored_windows".into(),
            ]];
            for row in &r.rows {
                rows.push(vec![
                    row.intensity.to_string(),
                    row.detection_rate.to_string(),
                    row.fp_rate.to_string(),
                    row.degraded_windows.to_string(),
                    row.aborted_windows.to_string(),
                    row.scored_windows.to_string(),
                ]);
            }
            csvs.push((
                "ext_chaos_degradation".into(),
                mpdf_eval::report::csv(&rows),
            ));
            exp::ext_chaos::report(&r)
        }
        "ext-drift" => {
            let r = exp::ext_drift::run(&opts.cfg).map_err(err)?;
            let mut rows = vec![vec![
                "block".into(),
                "drift_rel".into(),
                "frozen_detect".into(),
                "frozen_fp".into(),
                "adaptive_detect".into(),
                "adaptive_fp".into(),
                "recals_accepted".into(),
                "recals_rejected".into(),
            ]];
            for row in &r.rows {
                rows.push(vec![
                    row.block.to_string(),
                    row.drift_rel.to_string(),
                    row.frozen_detect.to_string(),
                    row.frozen_fp.to_string(),
                    row.adaptive_detect.to_string(),
                    row.adaptive_fp.to_string(),
                    row.recals_accepted.to_string(),
                    row.recals_rejected.to_string(),
                ]);
            }
            csvs.push(("ext_drift_adaptation".into(), mpdf_eval::report::csv(&rows)));
            exp::ext_drift::report(&r)
        }
        other => return Err(format!("unknown experiment `{other}`")),
    };
    Ok(ExperimentOutput {
        report,
        csvs,
        seconds: started.elapsed().as_secs_f64(),
    })
}

/// Writes one CSV artifact under `dir`.
fn write_csv(dir: &std::path::Path, name: &str, contents: &str) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let path = dir.join(format!("{name}.csv"));
    std::fs::write(&path, contents).map_err(|e| format!("write {}: {e}", path.display()))?;
    eprintln!("wrote {}", path.display());
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };
    if opts.help {
        println!("{USAGE}");
        return;
    }
    // Stream mode replaces the experiment fan-out: record the campaign,
    // replay it through the wire codec + bounded-queue path, and verify
    // bit-identity with the offline scoring pass. Kept out of `all` so
    // `repro all` output is unchanged; throughput goes to stderr so the
    // stdout report stays deterministic.
    if opts.experiments.iter().any(|e| e == "stream") {
        if opts.experiments.len() != 1 {
            eprintln!("error: `stream` runs alone, not alongside other experiments");
            std::process::exit(2);
        }
        let started = std::time::Instant::now();
        let run = match mpdf_eval::stream::run_stream(&opts.cfg, &opts.stream) {
            Ok(run) => run,
            Err(e) => {
                eprintln!("error: stream: {e}");
                flush_observability(&opts);
                std::process::exit(1);
            }
        };
        println!("{}", mpdf_eval::stream::report(&run));
        eprintln!(
            "[stream done in {:.1}s: {} packets over the wire at {:.0} packets/s]\n",
            started.elapsed().as_secs_f64(),
            run.packets_total,
            run.packets_per_second(),
        );
        let mut failed = !run.all_match();
        if failed {
            eprintln!("error: stream-path scores diverge from the offline path");
        }
        if flush_observability(&opts) > 0 {
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        return;
    }

    // Fleet mode likewise replaces the experiment fan-out: many links
    // under the sharded supervisor, optionally with the chaos harness.
    // Kept out of `all` so `repro all` output is unchanged.
    if opts.experiments.iter().any(|e| e == "fleet") {
        if opts.experiments.len() != 1 {
            eprintln!("error: `fleet` runs alone, not alongside other experiments");
            std::process::exit(2);
        }
        if opts.metrics.is_some() {
            mpdf_obs::metrics::enable_timing();
        }
        let started = std::time::Instant::now();
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        let result = mpdf_eval::fleet::run_fleet_demo(&opts.cfg, &opts.fleet, &mut out);
        drop(out);
        let mut failed = result.is_err();
        if let Err(e) = &result {
            eprintln!("error: fleet: {e}");
        }
        eprintln!("[fleet done in {:.1}s]\n", started.elapsed().as_secs_f64());
        if flush_observability(&opts) > 0 {
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        return;
    }

    let selected: Vec<&str> = if opts.experiments.iter().any(|e| e == "all") {
        ALL_EXPERIMENTS.to_vec()
    } else {
        opts.experiments.iter().map(String::as_str).collect()
    };
    if let Some(unknown) = selected.iter().find(|n| !ALL_EXPERIMENTS.contains(n)) {
        eprintln!("error: unknown experiment `{unknown}`; known: {ALL_EXPERIMENTS:?} or `all`");
        std::process::exit(2);
    }

    // Observability backends (stderr/artifacts only — stdout is reserved
    // for the reports and stays byte-identical with these flags on).
    if let Some(path) = &opts.trace {
        match mpdf_obs::trace::NdjsonWriter::create(path) {
            Ok(writer) => {
                mpdf_obs::trace::install(std::sync::Arc::new(writer));
                eprintln!("tracing spans to {}", path.display());
            }
            Err(e) => {
                eprintln!("error: create trace file {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
    if opts.metrics.is_some() {
        mpdf_obs::metrics::enable_timing();
    }
    if let Some(path) = &opts.trajectory {
        mpdf_obs::trajectory::install(opts.traj_every);
        eprintln!(
            "sampling metric trajectories every {} window(s) to {}",
            opts.traj_every,
            path.display()
        );
    }
    #[cfg(feature = "alloc-profile")]
    mpdf_obs::allocs::enable();

    // Session mode replaces the experiment fan-out entirely: one
    // supervised long-running loop, windows printed in order.
    if let Some(demo) = &opts.session {
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        let result = mpdf_eval::session::run_session_demo(&opts.cfg, demo, &mut out);
        drop(out);
        let mut failed = result.is_err();
        if let Err(e) = &result {
            eprintln!("error: {e}");
        }
        if flush_observability(&opts) > 0 {
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        return;
    }

    // Fan the experiments out, then emit everything in request order so
    // stdout and the CSV directory are independent of the thread count.
    // A panicking experiment surfaces as a named pool error instead of
    // unwinding through main with a truncated result set.
    let results = match mpdf_par::catch_map_indexed(opts.cfg.threads, &selected, |_, name| {
        run_experiment(name, &opts)
    }) {
        Ok(results) => results,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let mut failures = 0usize;
    for (name, result) in selected.iter().zip(results) {
        match result {
            Ok(out) => {
                if let Some(dir) = &opts.csv_dir {
                    for (csv_name, contents) in &out.csvs {
                        if let Err(msg) = write_csv(dir, csv_name, contents) {
                            eprintln!("error: {msg}");
                            failures += 1;
                        }
                    }
                }
                println!("{}", out.report);
                eprintln!("[{name} done in {:.1}s]\n", out.seconds);
            }
            Err(msg) => {
                eprintln!("error: {msg}");
                failures += 1;
            }
        }
    }
    failures += flush_observability(&opts);
    if failures > 0 {
        std::process::exit(1);
    }
}

/// Flushes observability artifacts before any exit path (`process::exit`
/// skips destructors, so the trace writer is flushed explicitly).
/// Returns the number of artifact-write failures.
fn flush_observability(opts: &Options) -> usize {
    mpdf_obs::trace::uninstall();
    let mut failures = 0usize;
    // Allocation totals publish before the snapshot is written so the
    // obs.alloc.* counters land in --metrics output.
    #[cfg(feature = "alloc-profile")]
    mpdf_obs::allocs::publish();
    if let Some(path) = &opts.trajectory {
        if let Some(recorder) = mpdf_obs::trajectory::uninstall() {
            match mpdf_obs::trajectory::write_ndjson(path, &recorder.take_samples()) {
                Ok(()) => eprintln!("wrote {}", path.display()),
                Err(e) => {
                    eprintln!("error: write trajectory {}: {e}", path.display());
                    failures += 1;
                }
            }
        }
    }
    if let Some(path) = &opts.metrics {
        match mpdf_obs::metrics::write_json(path) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("error: write metrics {}: {e}", path.display());
                failures += 1;
            }
        }
    }
    failures
}
