//! `repro` — regenerate any table/figure of the paper's evaluation.
//!
//! Usage: `repro [options] <experiment>...`
//!
//! Experiments: `fig2a fig2b fig3 fig4 fig5b fig5c fig7 fig8 fig9 fig10
//! fig11 fig12 ext-hmm ext-array ext-ablate all`
//!
//! Options (all take a number unless noted): `--snr --bg --bgdist --sway
//! --seed --episodes --drift --gaindrift --intf --intfpow --locations
//! --packets --csvdir <dir>` (the last exports each experiment's key
//! series as CSV for plotting)

use mpdf_eval::experiments as exp;
use mpdf_eval::workload::CampaignConfig;

struct Options {
    cfg: CampaignConfig,
    locations: usize,
    packets: usize,
    csv_dir: Option<std::path::PathBuf>,
    experiments: Vec<String>,
}

fn parse_args() -> Options {
    let mut cfg = CampaignConfig::default();
    let mut locations = 300usize;
    let mut packets = 1000usize;
    let mut experiments = Vec::new();
    let mut csv_dir = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        if let Some(flag) = a.strip_prefix("--") {
            if flag == "csvdir" {
                csv_dir = Some(std::path::PathBuf::from(
                    iter.next().expect("missing value for --csvdir"),
                ));
                continue;
            }
            let v: f64 = iter
                .next()
                .unwrap_or_else(|| panic!("missing value for --{flag}"))
                .parse()
                .unwrap_or_else(|_| panic!("bad value for --{flag}"));
            match flag {
                "snr" => cfg.snr_db = v,
                "bg" => cfg.background_rate = v,
                "bgdist" => cfg.background_distance = v,
                "sway" => cfg.sway_amplitude = v,
                "seed" => cfg.seed = v as u64,
                "episodes" => cfg.episodes_per_position = v as usize,
                "drift" => cfg.clutter_drift_rel = v,
                "gaindrift" => cfg.session_gain_drift_db = v,
                "intf" => cfg.interference_prob = v,
                "intfpow" => cfg.interference_power_db = v,
                "locations" => locations = v as usize,
                "packets" => packets = v as usize,
                other => panic!("unknown option --{other}"),
            }
        } else {
            experiments.push(a.clone());
        }
    }
    if experiments.is_empty() {
        experiments.push("fig7".to_string());
    }
    Options {
        cfg,
        locations,
        packets,
        csv_dir,
        experiments,
    }
}

/// Writes a CSV artifact if `--csvdir` was given.
fn write_csv(dir: &Option<std::path::PathBuf>, name: &str, contents: String) {
    if let Some(dir) = dir {
        std::fs::create_dir_all(dir).expect("create csv dir");
        let path = dir.join(format!("{name}.csv"));
        std::fs::write(&path, contents).expect("write csv");
        eprintln!("wrote {}", path.display());
    }
}

fn main() {
    let opts = parse_args();
    let all = [
        "fig2a",
        "fig2b",
        "fig3",
        "fig4",
        "fig5b",
        "fig5c",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "ext-hmm",
        "ext-array",
        "ext-ablate",
        "ext-sweep",
    ];
    let selected: Vec<&str> = if opts.experiments.iter().any(|e| e == "all") {
        all.to_vec()
    } else {
        opts.experiments.iter().map(String::as_str).collect()
    };
    for name in selected {
        let started = std::time::Instant::now();
        let csv = &opts.csv_dir;
        let report = match name {
            "fig2a" => {
                let r = exp::fig2::run_fig2a(&opts.cfg, opts.locations).expect("fig2a");
                write_csv(
                    csv,
                    "fig2a_cdf",
                    mpdf_eval::report::csv_series("delta_s_db", "cdf", &r.cdf),
                );
                exp::fig2::report_fig2a(&r)
            }
            "fig2b" => {
                let r = exp::fig2::run_fig2b(&opts.cfg, opts.packets).expect("fig2b");
                write_csv(
                    csv,
                    "fig2b_drop_slot",
                    mpdf_eval::report::csv_series("packet", "ds_db", &r.subcarrier_a),
                );
                write_csv(
                    csv,
                    "fig2b_rise_slot",
                    mpdf_eval::report::csv_series("packet", "ds_db", &r.subcarrier_b),
                );
                exp::fig2::report_fig2b(&r)
            }
            "fig3" => {
                let r = exp::fig3::run(&opts.cfg, opts.locations).expect("fig3");
                write_csv(
                    csv,
                    "fig3a_cdf",
                    mpdf_eval::report::csv_series("mu", "cdf", &r.distribution.cdf),
                );
                let mut rows = vec![vec!["slot".into(), "a".into(), "b".into(), "r2".into()]];
                for f in &r.fits {
                    rows.push(vec![
                        f.slot.to_string(),
                        f.fit.slope.to_string(),
                        f.fit.intercept.to_string(),
                        f.fit.r_squared.to_string(),
                    ]);
                }
                write_csv(csv, "fig3c_fits", mpdf_eval::report::csv(&rows));
                exp::fig3::report(&r)
            }
            "fig4" => exp::fig4::report(&exp::fig4::run(&opts.cfg, 2000).expect("fig4")),
            "fig5b" => {
                let r = exp::fig5::run_fig5b(&opts.cfg).expect("fig5b");
                write_csv(
                    csv,
                    "fig5b_spectrum",
                    mpdf_eval::report::csv_series("angle_deg", "ps", &r.spectrum),
                );
                exp::fig5::report_fig5b(&r)
            }
            "fig5c" => {
                let r = exp::fig5::run_fig5c(&opts.cfg).expect("fig5c");
                write_csv(
                    csv,
                    "fig5c_rss_by_angle",
                    mpdf_eval::report::csv_series(
                        "angle_deg",
                        "mean_abs_ds_db",
                        &r.rss_change_by_angle,
                    ),
                );
                exp::fig5::report_fig5c(&r)
            }
            "fig7" => {
                let r = exp::fig7::run(&opts.cfg).expect("fig7");
                for s in &r.schemes {
                    let tag = s.name.replace(['+', ' '], "_");
                    write_csv(
                        csv,
                        &format!("fig7_roc_{tag}"),
                        mpdf_eval::report::csv_series("fp", "tp", &s.roc_points),
                    );
                }
                exp::fig7::report(&r)
            }
            "fig8" => {
                let r = exp::fig8::run(&opts.cfg).expect("fig8");
                let mut rows = vec![vec![
                    "case".into(),
                    "baseline".into(),
                    "subcarrier".into(),
                    "combined".into(),
                ]];
                for (id, b, s2, c) in &r.rows {
                    rows.push(vec![
                        id.to_string(),
                        b.to_string(),
                        s2.to_string(),
                        c.to_string(),
                    ]);
                }
                write_csv(csv, "fig8_cases", mpdf_eval::report::csv(&rows));
                exp::fig8::report(&r)
            }
            "fig9" => {
                let r = exp::fig9::run(&opts.cfg).expect("fig9");
                let mut rows = vec![vec![
                    "distance_m".into(),
                    "baseline".into(),
                    "subcarrier".into(),
                    "combined".into(),
                ]];
                for (d, b, s2, c) in &r.rows {
                    rows.push(vec![
                        d.to_string(),
                        b.to_string(),
                        s2.to_string(),
                        c.to_string(),
                    ]);
                }
                write_csv(csv, "fig9_distance", mpdf_eval::report::csv(&rows));
                exp::fig9::report(&r)
            }
            "fig10" => {
                let r = exp::fig10::run(&opts.cfg).expect("fig10");
                write_csv(
                    csv,
                    "fig10_single_packet",
                    mpdf_eval::report::csv_series("error_deg", "cdf", &r.single_packet_cdf),
                );
                write_csv(
                    csv,
                    "fig10_averaged",
                    mpdf_eval::report::csv_series("error_deg", "cdf", &r.averaged_cdf),
                );
                exp::fig10::report(&r)
            }
            "fig11" => {
                let r = exp::fig11::run(&opts.cfg).expect("fig11");
                let mut rows = vec![vec![
                    "angle_deg".into(),
                    "subcarrier".into(),
                    "combined".into(),
                ]];
                for (a, s2, c) in &r.rows {
                    rows.push(vec![a.to_string(), s2.to_string(), c.to_string()]);
                }
                write_csv(csv, "fig11_angles", mpdf_eval::report::csv(&rows));
                exp::fig11::report(&r)
            }
            "fig12" => {
                let r = exp::fig12::run(&opts.cfg).expect("fig12");
                let mut rows = vec![vec![
                    "packets".into(),
                    "seconds".into(),
                    "baseline".into(),
                    "subcarrier".into(),
                    "combined".into(),
                ]];
                for (w, t, b, s2, c) in &r.rows {
                    rows.push(vec![
                        w.to_string(),
                        t.to_string(),
                        b.to_string(),
                        s2.to_string(),
                        c.to_string(),
                    ]);
                }
                write_csv(csv, "fig12_windows", mpdf_eval::report::csv(&rows));
                exp::fig12::report(&r)
            }
            "ext-hmm" => exp::ext_hmm::report(&exp::ext_hmm::run(&opts.cfg).expect("ext-hmm")),
            "ext-array" => {
                exp::ext_array::report(&exp::ext_array::run(&opts.cfg).expect("ext-array"))
            }
            "ext-sweep" => {
                exp::ext_sweep::report(&exp::ext_sweep::run(&opts.cfg).expect("ext-sweep"))
            }
            "ext-ablate" => {
                exp::ext_ablate::report(&exp::ext_ablate::run(&opts.cfg).expect("ext-ablate"))
            }
            other => {
                eprintln!("unknown experiment `{other}`; known: {all:?} or `all`");
                std::process::exit(2);
            }
        };
        println!("{report}");
        eprintln!("[{name} done in {:.1}s]\n", started.elapsed().as_secs_f64());
    }
}
