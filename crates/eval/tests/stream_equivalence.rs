//! The streaming contract: replaying a recorded campaign through the
//! wire codec + bounded-queue ingest path must reproduce the offline
//! scoring pass **bit-identically**, at any thread count and any chunk
//! size — the wire format, the splitter reassembly and the epoch
//! batching are all lossless by construction, and this test pins it.

use mpdf_core::profile::DetectorConfig;
use mpdf_core::scheme::{Baseline, SubcarrierAndPathWeighting, SubcarrierWeighting};
use mpdf_eval::scenario::five_cases;
use mpdf_eval::stream::{run_stream, stream_case_scores, StreamOptions};
use mpdf_eval::workload::{run_campaign, score_campaign, CampaignConfig, ScoredWindow};

fn tiny_config(threads: usize) -> CampaignConfig {
    CampaignConfig {
        calibration_packets: 120,
        episodes_per_position: 1,
        negative_windows: 4,
        detector: DetectorConfig {
            window: 10,
            ..DetectorConfig::default()
        },
        threads,
        ..CampaignConfig::default()
    }
}

fn offline_bits(scores: &[ScoredWindow], case_id: usize) -> Vec<u64> {
    scores
        .iter()
        .filter(|s| s.case_id == case_id)
        .map(|s| s.score.to_bits())
        .collect()
}

/// Streams every case at the given thread count and chunk size and
/// compares each scheme's scores bitwise against the offline pass.
fn assert_stream_matches_offline(threads: usize, chunk_bytes: usize) {
    let cfg = tiny_config(threads);
    let cases = &five_cases()[..2];
    let data = run_campaign(cases, &cfg).expect("campaign");
    let offline = [
        score_campaign(&data, &Baseline, &cfg.detector).expect("baseline"),
        score_campaign(&data, &SubcarrierWeighting, &cfg.detector).expect("subcarrier"),
        score_campaign(&data, &SubcarrierAndPathWeighting, &cfg.detector).expect("combined"),
    ];
    let opts = StreamOptions {
        chunk_bytes,
        ..StreamOptions::default()
    };
    for case in &data {
        let (scores, stats) =
            stream_case_scores(case, &cfg.detector, threads, &opts).expect("stream case");
        assert_eq!(stats.epochs, case.windows.len(), "every window scored");
        assert_eq!(stats.rejects, 0, "clean replay has no resyncs");
        for (scheme_idx, reference) in offline.iter().enumerate() {
            let streamed: Vec<u64> = scores
                .iter()
                .filter_map(|epoch| epoch[scheme_idx])
                .map(f64::to_bits)
                .collect();
            assert_eq!(
                streamed,
                offline_bits(reference, case.case_id),
                "scheme {scheme_idx} diverged for case {} at {threads} thread(s), \
                 {chunk_bytes}-byte chunks",
                case.case_id
            );
        }
    }
}

#[test]
fn stream_scores_are_bit_identical_to_offline_serial() {
    assert_stream_matches_offline(1, 1460);
}

#[test]
fn stream_scores_are_bit_identical_to_offline_on_four_threads() {
    assert_stream_matches_offline(4, 1460);
}

#[test]
fn chunk_size_cannot_change_a_single_bit() {
    // A 7-byte chunk shreds every header across several pushes; the
    // splitter's carry-over tail must reassemble them losslessly.
    assert_stream_matches_offline(2, 7);
}

#[test]
fn full_replay_reports_every_case_matching() {
    let cfg = tiny_config(4);
    let run = run_stream(&cfg, &StreamOptions::default()).expect("replay");
    assert_eq!(run.cases.len(), 5);
    assert!(
        run.all_match(),
        "stream path must match offline bit-for-bit"
    );
    assert!(run.packets_total > 0);
    let report = mpdf_eval::stream::report(&run);
    assert!(report.contains("5/5 cases score bit-identical"), "{report}");
}

#[test]
fn ragged_recordings_are_a_typed_error() {
    let cfg = tiny_config(1);
    let cases = &five_cases()[..1];
    let mut data = run_campaign(cases, &cfg).expect("campaign");
    // Drop one packet from one window: the fixed-N epoch batching can no
    // longer align the stream, which must surface as a typed error, not
    // silently shifted windows.
    data[0].windows[1].packets.pop();
    let err = stream_case_scores(&data[0], &cfg.detector, 1, &StreamOptions::default())
        .expect_err("ragged recording must be rejected");
    assert!(
        matches!(err, mpdf_core::error::DetectError::InvalidConfig { .. }),
        "{err}"
    );
}
