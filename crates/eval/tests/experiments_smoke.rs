//! Invariant checks for every experiment runner at reduced size.
//!
//! These are not performance runs: each experiment executes with a tiny
//! workload and its *structural* guarantees are asserted — monotone CDFs,
//! probability-valued rates, complete tables, paper-shaped relations that
//! must hold even on small samples.

use mpdf_eval::experiments as exp;
use mpdf_eval::workload::CampaignConfig;

fn tiny() -> CampaignConfig {
    CampaignConfig {
        calibration_packets: 120,
        episodes_per_position: 1,
        negative_windows: 9,
        ..Default::default()
    }
}

fn assert_prob(x: f64, what: &str) {
    assert!((0.0..=1.0).contains(&x), "{what} = {x} not a probability");
}

fn assert_monotone_cdf(curve: &[(f64, f64)], what: &str) {
    assert!(!curve.is_empty(), "{what} empty");
    for w in curve.windows(2) {
        assert!(w[1].1 >= w[0].1 - 1e-12, "{what} not monotone");
    }
    let last = curve.last().unwrap().1;
    assert!(
        (last - 1.0).abs() < 1e-9,
        "{what} must end at 1, got {last}"
    );
}

#[test]
fn fig2a_invariants() {
    let r = exp::fig2::run_fig2a(&tiny(), 20).unwrap();
    assert_monotone_cdf(&r.cdf, "fig2a cdf");
    assert_prob(r.drop_fraction, "drop fraction");
    assert_prob(r.rise_fraction, "rise fraction");
    assert!(r.quantiles.0 <= r.quantiles.1 && r.quantiles.1 <= r.quantiles.2);
    // The paper's core observation: both signs occur.
    assert!(r.drop_fraction > 0.0 && r.rise_fraction > 0.0);
}

#[test]
fn fig2b_invariants() {
    let r = exp::fig2::run_fig2b(&tiny(), 200).unwrap();
    assert!(!r.subcarrier_a.is_empty() && !r.subcarrier_b.is_empty());
    assert!(r.slots.0 < 30 && r.slots.1 < 30);
    assert!(r.bidirectional_subcarriers <= r.total_subcarriers);
    assert_eq!(r.total_subcarriers, 30);
}

#[test]
fn fig3_invariants() {
    let r = exp::fig3::run(&tiny(), 30).unwrap();
    assert_monotone_cdf(&r.distribution.cdf, "fig3a cdf");
    assert!(r.distribution.mean_within_location_spread >= 0.0);
    assert_eq!(r.fits.len(), 5);
    assert_prob(r.falling_fraction, "falling fraction");
    for f in &r.fits {
        assert!(f.fit.slope.is_finite());
        assert!(f.points > 0);
    }
}

#[test]
fn fig4_invariants() {
    let r = exp::fig4::run(&tiny(), 300).unwrap();
    assert_eq!(r.locations.len(), 2);
    for loc in &r.locations {
        assert_eq!(loc.mean_mu.len(), 30);
        assert_eq!(loc.std_mu.len(), 30);
        assert!(loc.stability.iter().all(|&s| (0.0..=1.0).contains(&s)));
        assert_prob(loc.argmax_flip_rate, "flip rate");
        assert!(loc.mean_mu.iter().all(|&m| m >= 0.0 && m.is_finite()));
    }
}

#[test]
fn fig5b_invariants() {
    let r = exp::fig5::run_fig5b(&tiny()).unwrap();
    assert!(!r.spectrum.is_empty());
    assert!(!r.peaks.is_empty() && r.peaks.len() <= 2);
    assert_eq!(r.true_angles.len(), 2);
    // Normalized spectrum.
    let max = r.spectrum.iter().map(|p| p.1).fold(f64::MIN, f64::max);
    assert!(max <= 1.0 + 1e-9);
    // One true arrival is the LOS (0°).
    assert!(r.true_angles.iter().any(|a| a.abs() < 1.0));
}

#[test]
fn fig5c_invariants() {
    let r = exp::fig5::run_fig5c(&tiny()).unwrap();
    assert!(r.rss_change_by_angle.len() >= 10);
    assert!(r.rss_change_by_angle.iter().all(|(_, v)| *v >= 0.0));
    assert!(r.peak_angle_deg.abs() <= 90.0);
}

#[test]
fn fig7_and_fig8_invariants() {
    let cfg = tiny();
    let scores = exp::fig7::run_campaign_scores(&cfg).unwrap();
    let f7 = exp::fig7::from_scores(&scores);
    assert_eq!(f7.schemes.len(), 3);
    for s in &f7.schemes {
        assert_prob(s.summary.operating.tp, "tp");
        assert_prob(s.summary.operating.fp, "fp");
        assert!(s.summary.auc >= 0.0 && s.summary.auc <= 1.0);
        // Sampled ROC is monotone in FP.
        for w in s.roc_points.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-12);
        }
    }
    let f8 = exp::fig8::from_scores(&scores);
    assert_eq!(f8.rows.len(), 5);
    for (id, b, s, c) in &f8.rows {
        assert!((1..=5).contains(id));
        assert_prob(*b, "case baseline");
        assert_prob(*s, "case subcarrier");
        assert_prob(*c, "case combined");
    }
}

#[test]
fn fig9_invariants() {
    let r = exp::fig9::run(&tiny()).unwrap();
    assert_eq!(r.rows.len(), 5);
    for (d, b, s, c) in &r.rows {
        assert!(*d >= 1.0 && *d <= 5.0);
        assert_prob(*b, "fig9 baseline");
        assert_prob(*s, "fig9 subcarrier");
        assert_prob(*c, "fig9 combined");
    }
    let (rb, rs, rc) = r.range_at_90;
    for v in [rb, rs, rc] {
        assert!(v == 0.0 || (1.0..=5.0).contains(&v));
    }
}

#[test]
fn fig10_invariants() {
    let r = exp::fig10::run(&tiny()).unwrap();
    assert_monotone_cdf(&r.single_packet_cdf, "fig10 single");
    assert_monotone_cdf(&r.averaged_cdf, "fig10 averaged");
    assert!(r.medians.0 >= 0.0 && r.medians.1 >= 0.0);
    assert!(r.p90.0 >= r.medians.0 - 1e-9);
    assert!(r.p90.1 >= r.medians.1 - 1e-9);
}

#[test]
fn fig11_invariants() {
    let r = exp::fig11::run(&tiny()).unwrap();
    assert!(r.rows.len() >= 9);
    for (a, s, c) in &r.rows {
        assert!(a.abs() <= 90.0);
        assert_prob(*s, "fig11 subcarrier");
        assert_prob(*c, "fig11 combined");
    }
    assert!(r.gain_large_angles.abs() <= 1.0);
    assert!(r.gain_small_angles.abs() <= 1.0);
}

#[test]
fn ext_hmm_invariants() {
    let r = exp::ext_hmm::run(&tiny()).unwrap();
    assert_prob(r.fp.0, "raw fp");
    assert_prob(r.fp.1, "hmm fp");
    assert_prob(r.tp.0, "raw tp");
    assert_prob(r.tp.1, "hmm tp");
    assert!(r.windows > 0);
    // The extension's purpose: the HMM must not raise the FP rate.
    assert!(
        r.fp.1 <= r.fp.0 + 1e-9,
        "HMM FP {} vs raw {}",
        r.fp.1,
        r.fp.0
    );
}

#[test]
fn ext_sweep_invariants() {
    let r = exp::ext_sweep::run(&tiny()).unwrap();
    assert_eq!(r.rows.len(), 3);
    assert_eq!(r.rows[0].channels_probed, 1);
    assert_eq!(r.rows[1].channels_probed, 3);
    assert_eq!(r.rows[2].channels_probed, 1);
    for row in &r.rows {
        assert_prob(row.summary.operating.tp, "sweep tp");
        assert_prob(row.summary.operating.fp, "sweep fp");
        assert!(row.summary.auc.is_finite());
    }
}

#[test]
fn ext_array_invariants() {
    let mut cfg = tiny();
    cfg.episodes_per_position = 1;
    let r = exp::ext_array::run(&cfg).unwrap();
    assert_eq!(r.rows.len(), 4);
    let sizes: Vec<usize> = r.rows.iter().map(|o| o.elements).collect();
    assert_eq!(sizes, vec![3, 4, 6, 8]);
    for o in &r.rows {
        assert!(o.median_angle_error_deg >= 0.0 && o.median_angle_error_deg <= 180.0);
        assert_prob(o.large_angle_tp, "array tp");
    }
}

#[test]
fn ext_ablate_invariants() {
    let r = exp::ext_ablate::run(&tiny()).unwrap();
    assert_eq!(r.rows.len(), 4);
    for row in &r.rows {
        assert_prob(row.summary.operating.tp, "ablate tp");
        assert_prob(row.summary.operating.fp, "ablate fp");
        assert!(row.summary.auc.is_finite());
    }
    assert_eq!(r.rows[0].name, "rssi (wideband power)");
}
