//! Fault injection must be pay-for-use: a zero-fault `FaultModel` leaves
//! the whole pipeline byte-identical to a fault-free build at any thread
//! count, while an actually-faulted campaign completes through the
//! graceful-degradation path and fills the quarantine/degradation
//! counters.

use mpdf_core::error::DetectError;
use mpdf_core::profile::DetectorConfig;
use mpdf_core::scheme::{DetectionScheme, SubcarrierWeighting};
use mpdf_eval::scenario::five_cases;
use mpdf_eval::workload::{run_campaign, score_campaign, CampaignConfig};
use mpdf_wifi::FaultModel;

fn tiny_config(threads: usize, faults: FaultModel) -> CampaignConfig {
    CampaignConfig {
        calibration_packets: 120,
        episodes_per_position: 1,
        negative_windows: 4,
        detector: DetectorConfig {
            window: 10,
            ..DetectorConfig::default()
        },
        threads,
        faults,
        ..CampaignConfig::default()
    }
}

#[test]
fn zero_fault_model_is_byte_identical_to_fault_free_pipeline() {
    let cases = &five_cases()[..2];

    // Reference: the default config (fault machinery disabled), serial.
    let plain_cfg = tiny_config(1, FaultModel::none());
    let plain = run_campaign(cases, &plain_cfg).expect("plain campaign");
    let plain_scores =
        score_campaign(&plain, &SubcarrierWeighting, &plain_cfg.detector).expect("score");

    // A chaos model scaled to zero intensity is still "no faults": the
    // fault pass must consume no randomness and change no bytes — on
    // four worker threads, for good measure.
    let zero_cfg = tiny_config(4, FaultModel::chaos().scaled(0.0));
    let zero = run_campaign(cases, &zero_cfg).expect("zero-fault campaign");
    let zero_scores =
        score_campaign(&zero, &SubcarrierWeighting, &zero_cfg.detector).expect("score");

    assert_eq!(plain_scores, zero_scores);
    for (p, z) in plain.iter().zip(&zero) {
        assert_eq!(p.case_id, z.case_id);
        assert_eq!(p.windows.len(), z.windows.len());
        for (pw, zw) in p.windows.iter().zip(&z.windows) {
            assert_eq!(pw.packets, zw.packets);
            assert_eq!(pw.human, zw.human);
        }
    }
}

#[test]
fn faulted_campaign_completes_and_degrades_gracefully() {
    let cases = &five_cases()[..2];

    // Packet loss plus a lossy antenna chain: the ISSUE's reference
    // fault mix, at rates high enough that a tiny campaign still sees
    // every fault class.
    let mut faults = FaultModel::packet_loss();
    faults.loss_burst_prob = 0.05;
    faults.loss_burst_len = 3.0;
    faults.chain_dropout_prob = 0.03;
    faults.chain_dropout_len = 8.0;
    faults.dropout_nan = true;
    let cfg = tiny_config(2, faults);

    let data = run_campaign(cases, &cfg).expect("faulted campaign must not panic");

    // Score every window through the degradation path; gap-budget aborts
    // are expected and typed, anything else is a real failure.
    let mut scored = 0usize;
    let mut degraded = 0usize;
    let mut aborted = 0usize;
    for case in &data {
        for w in &case.windows {
            match SubcarrierWeighting.score_with_health(&case.profile, &w.packets, &cfg.detector) {
                Ok((score, health)) => {
                    assert!(score.is_finite(), "degraded scoring produced {score}");
                    scored += 1;
                    if health.degraded {
                        degraded += 1;
                    }
                }
                Err(DetectError::DegradedBeyondBudget { lost, budget }) => {
                    assert!(lost > budget);
                    aborted += 1;
                }
                Err(e) => panic!("unexpected pipeline error under faults: {e}"),
            }
        }
    }
    assert!(scored > 0, "no window survived the fault mix");
    assert!(
        degraded > 0,
        "fault rates high enough that some windows must degrade \
         (scored {scored}, aborted {aborted})"
    );

    // The observability layer saw the machinery work.
    let snap = mpdf_obs::metrics::snapshot();
    let counter = |name: &str| {
        snap.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    };
    assert!(
        counter("wifi.faults_lost_total") > 0,
        "loss faults never fired:\n{}",
        snap.to_json()
    );
    assert!(
        counter("wifi.quarantine_degraded_total") > 0,
        "quarantine never classified a degraded packet:\n{}",
        snap.to_json()
    );
    assert!(
        counter("core.degraded_windows_total") > 0,
        "no degraded window reached the scorer:\n{}",
        snap.to_json()
    );
}
