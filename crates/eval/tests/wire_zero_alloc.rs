//! Proof of the wire decoder's zero-alloc claim, through the real
//! global allocator: run with
//! `cargo test -p mpdf-eval --features alloc-profile --test wire_zero_alloc`.
//!
//! The splitter + `WireRecord::parse` path borrows the input buffer and
//! decodes I/Q in place, so walking an entire stream of valid frames —
//! and resyncing over corrupt ones — must perform **zero** heap
//! allocations. Materializing packets (`to_packet`) allocates, by
//! design; that cost is measured separately by the `stream/ingest_30sub`
//! benchmark, not bounded here.
#![cfg(feature = "alloc-profile")]

use mpdf_obs::allocs::{self, CountingAllocator, StageScope};
use mpdf_rfmath::complex::Complex64;
use mpdf_wifi::csi::CsiPacket;
use mpdf_wifi::wire::{self, Split};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn stage_allocs(wanted: &str) -> u64 {
    allocs::stage_totals()
        .iter()
        .find(|(name, _, _)| *name == wanted)
        .map_or(0, |(_, a, _)| *a)
}

#[test]
fn splitting_and_validating_frames_allocates_nothing() {
    // Build the stream before accounting starts: 64 packets of the
    // paper's 3×30 shape, with garbage and a corrupt frame interleaved
    // so the resync path is exercised under measurement too.
    let mut stream = Vec::new();
    for seq in 0..64u64 {
        let data: Vec<Complex64> = (0..90)
            .map(|i| Complex64::new(seq as f64 + f64::from(i) * 0.5, -f64::from(i)))
            .collect();
        let packet = CsiPacket::new(3, 30, data, seq, seq as f64 * 0.02);
        wire::encode_frame(&packet, 40, &mut stream).expect("3x30 fits the wire");
    }
    // Prepend garbage, then corrupt the second frame's version byte: the
    // splitter must reject that header and resync forward to the third
    // frame. (Payload bytes are unchecked by design — no checksum — so
    // only header corruption drops a frame.)
    stream.splice(0..0, [0x00, 0x7F, 0xFF]);
    let second_frame = 3 + stream[3..].len() / 64 + 1;
    stream[second_frame] = 2;

    allocs::enable();
    let mut frames = 0u64;
    let mut rejects = 0u64;
    let mut checksum = 0.0f64;
    {
        // Attribute only this thread's allocations inside the scope to
        // the probe stage; the cell is interned by `enter` itself, so
        // that setup allocation lands outside the measurement.
        let _scope = StageScope::enter("test.wire_decode_probe");
        let mut splitter = wire::FrameSplitter::new(&stream);
        for item in &mut splitter {
            match item {
                Split::Frame(record) => {
                    frames += 1;
                    // Touch the in-place I/Q decode so it cannot be
                    // optimized out of the measurement.
                    let iq = record.iq(0, 0);
                    checksum += iq.re + iq.im;
                }
                Split::Garbage { .. } => rejects += 1,
            }
        }
        std::hint::black_box(splitter.consumed());
    }
    allocs::disable();

    std::hint::black_box(checksum);
    assert_eq!(frames, 63, "one frame lost to the corrupted byte");
    assert!(rejects >= 1, "garbage head must be reported");
    assert_eq!(
        stage_allocs("test.wire_decode_probe"),
        0,
        "frame splitting/validation must not touch the heap"
    );
}
