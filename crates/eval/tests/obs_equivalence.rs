//! Observability must be write-only: an instrumented campaign (tracing
//! subscriber installed, stage timing on, multiple worker threads)
//! produces bit-identical data and scores to an uninstrumented serial
//! run, while the metrics registry fills with per-stage histograms and
//! pool telemetry.

use std::sync::Arc;

use mpdf_core::profile::DetectorConfig;
use mpdf_core::scheme::SubcarrierWeighting;
use mpdf_eval::scenario::five_cases;
use mpdf_eval::workload::{run_campaign, score_campaign, CampaignConfig};

fn tiny_config(threads: usize) -> CampaignConfig {
    CampaignConfig {
        calibration_packets: 120,
        episodes_per_position: 1,
        negative_windows: 4,
        detector: DetectorConfig {
            window: 10,
            ..DetectorConfig::default()
        },
        threads,
        ..CampaignConfig::default()
    }
}

#[test]
fn instrumentation_does_not_perturb_results() {
    let cases = &five_cases()[..2];

    // Reference: no subscriber, no timing, serial.
    let plain = run_campaign(cases, &tiny_config(1)).expect("plain campaign");
    let plain_scores =
        score_campaign(&plain, &SubcarrierWeighting, &tiny_config(1).detector).expect("score");

    // Instrumented: ring-buffer subscriber + stage timing, two workers.
    let ring = Arc::new(mpdf_obs::trace::RingBuffer::new(4096));
    mpdf_obs::trace::install(Arc::clone(&ring) as Arc<dyn mpdf_obs::trace::Subscriber>);
    mpdf_obs::metrics::enable_timing();
    let traced = run_campaign(cases, &tiny_config(2)).expect("instrumented campaign");
    let traced_scores =
        score_campaign(&traced, &SubcarrierWeighting, &tiny_config(2).detector).expect("score");
    mpdf_obs::metrics::disable_timing();
    mpdf_obs::trace::uninstall();

    // Bit-identical pipeline output.
    assert_eq!(plain_scores, traced_scores);
    for (p, t) in plain.iter().zip(&traced) {
        assert_eq!(p.case_id, t.case_id);
        assert_eq!(p.windows.len(), t.windows.len());
        for (pw, tw) in p.windows.iter().zip(&t.windows) {
            assert_eq!(pw.packets, tw.packets);
        }
    }

    // The instrumented run actually observed the pipeline.
    let snap = mpdf_obs::metrics::snapshot();
    let hist = |name: &str| {
        snap.histograms
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("missing histogram `{name}`:\n{}", snap.to_json()))
            .1
            .clone()
    };
    for stage in [
        "core.calibration",
        "core.mu_k",
        "core.subcarrier_weight",
        "core.path_weight",
        "music.covariance",
        "music.eig",
        "music.scan",
        "core.score.subcarrier",
        "eval.campaign",
        "eval.window",
        "eval.score",
    ] {
        let h = hist(stage);
        assert!(h.count > 0, "stage `{stage}` recorded no samples");
        assert!(h.max >= h.min);
        assert!(h.p50 <= h.p99);
    }

    // Pool telemetry from the two-worker run.
    let counter = |name: &str| {
        snap.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    };
    assert!(counter("par.jobs_total") > 0, "pool jobs not counted");
    assert!(counter("eval.windows_total") > 0);
    assert!(counter("eval.packets_total") > counter("eval.windows_total"));
    assert!(counter("eval.case1.windows_total") > 0, "per-case counter");
    let depth_max = snap
        .gauges
        .iter()
        .find(|(n, _)| n == "par.queue_depth_max")
        .map_or(0, |(_, v)| *v);
    assert!(depth_max >= 1, "queue depth high-water never moved");

    // The span stream saw the detection stages too, properly nested.
    let events = ring.events();
    assert!(
        events
            .iter()
            .any(|e| e.name == "music.scan" && e.kind == mpdf_obs::trace::SpanKind::Exit),
        "no music.scan exits in {} events",
        events.len()
    );
    assert!(events
        .iter()
        .any(|e| e.name == "eval.window" && e.depth >= 1));

    // The captured stream reconstructs into a clean span forest whose
    // stages line up with the histogram registry.
    let trace_events: Vec<mpdf_obs::profile::TraceEvent> = events
        .iter()
        .map(mpdf_obs::profile::TraceEvent::from)
        .collect();
    let prof = mpdf_obs::profile::reconstruct_with_dropped(&trace_events, ring.dropped());
    assert!(prof.stages.iter().any(|s| s.name == "music.scan"));
    assert!(prof.stages.iter().any(|s| s.name == "eval.window"));
    assert!(!prof.critical_path.is_empty(), "no critical path extracted");

    // A trajectory-sampling run is still write-only: identical scores,
    // plus a deterministic window-keyed sample series.
    let recorder = mpdf_obs::trajectory::install(2);
    let sampled = run_campaign(cases, &tiny_config(2)).expect("sampled campaign");
    let sampled_scores =
        score_campaign(&sampled, &SubcarrierWeighting, &tiny_config(2).detector).expect("score");
    mpdf_obs::trajectory::uninstall();
    assert_eq!(plain_scores, sampled_scores);
    let samples = recorder.take_samples();
    assert!(
        !samples.is_empty(),
        "no trajectory samples at every-2 sampling"
    );
    for pair in samples.windows(2) {
        assert!(
            pair[0].windows < pair[1].windows,
            "trajectory samples out of order"
        );
    }
    assert!(
        samples
            .iter()
            .any(|s| s.counters.get("eval.windows_total").copied().unwrap_or(0) > 0),
        "window counter deltas never moved:\n{}",
        mpdf_obs::trajectory::to_ndjson(&samples)
    );
}
