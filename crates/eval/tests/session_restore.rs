//! Kill-and-restore determinism for the supervised session demo.
//!
//! A session killed mid-run and restored from its checkpoint must emit a
//! transcript whose concatenation with the killed run's output is
//! byte-identical to the uninterrupted run — at any worker thread count.
//! Scores are printed as raw `f64` bit patterns, so "identical" here
//! means 0 ULP, not printing precision.

use std::path::PathBuf;

use mpdf_eval::session::{run_session_demo, SessionDemoOptions};
use mpdf_eval::workload::CampaignConfig;

fn temp_checkpoint(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "mpdf_session_restore_{}_{}.ckpt",
        std::process::id(),
        tag
    ))
}

fn cleanup(path: &PathBuf) {
    let _ = std::fs::remove_file(path);
    let mut bak = path.clone().into_os_string();
    bak.push(".bak");
    let _ = std::fs::remove_file(PathBuf::from(bak));
}

fn run(cfg: &CampaignConfig, opts: &SessionDemoOptions) -> String {
    let mut buf = Vec::new();
    run_session_demo(cfg, opts, &mut buf).expect("session demo");
    String::from_utf8(buf).expect("utf8 transcript")
}

fn window_lines(transcript: &str) -> Vec<&str> {
    transcript
        .lines()
        .filter(|l| l.starts_with("window="))
        .collect()
}

#[test]
fn killed_and_restored_session_matches_uninterrupted_run() {
    let mut transcripts = Vec::new();
    for threads in [1usize, 4] {
        let cfg = CampaignConfig {
            threads,
            ..CampaignConfig::default()
        };
        let full = run(&cfg, &SessionDemoOptions::default());

        let ckpt = temp_checkpoint(&format!("t{threads}"));
        cleanup(&ckpt);
        let killed = run(
            &cfg,
            &SessionDemoOptions {
                checkpoint: Some(ckpt.clone()),
                kill_after: Some(13),
            },
        );
        assert!(
            killed
                .lines()
                .last()
                .is_some_and(|l| l.starts_with("killed")),
            "killed run must end on a killed marker, got:\n{killed}"
        );
        let resumed = run(
            &cfg,
            &SessionDemoOptions {
                checkpoint: Some(ckpt.clone()),
                kill_after: None,
            },
        );
        cleanup(&ckpt);
        assert!(
            resumed.starts_with("resumed window=13"),
            "resume must pick up at the killed cursor, got:\n{resumed}"
        );

        let stitched: Vec<&str> = window_lines(&killed)
            .into_iter()
            .chain(window_lines(&resumed))
            .collect();
        assert_eq!(
            window_lines(&full),
            stitched,
            "threads={threads}: stitched kill+restore transcript diverged"
        );
        transcripts.push(full);
    }
    // The uninterrupted transcript must also be byte-identical across
    // worker thread counts.
    assert_eq!(
        transcripts[0], transcripts[1],
        "session transcript must not depend on threads"
    );
}
