//! Discrete Fourier transforms.
//!
//! Three flavours are provided:
//!
//! - [`dft`]/[`idft`] — direct O(N²) transforms for arbitrary lengths;
//!   plenty fast for 30-subcarrier CSI vectors.
//! - [`fft`]/[`ifft`] — radix-2 Cooley–Tukey for power-of-two lengths,
//!   used by the benchmark harness on longer synthetic signals.
//! - [`nudft_at_delay`] — evaluates the inverse transform of a channel
//!   frequency response sampled on a **non-uniform** frequency grid at an
//!   arbitrary delay τ. The Intel 5300 reports CSI on a non-uniform
//!   subcarrier grid (paper footnote 1), so the dominant-tap power
//!   `|ĥ(0)|²` of Eq. 10 is computed with this routine.

use std::error::Error;
use std::f64::consts::PI;
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

use crate::complex::Complex64;

/// One cached twiddle table: `(transform length, shared table)`.
type TwiddleEntry = (usize, Arc<[Complex64]>);

/// Process-wide cache of forward twiddle tables, keyed by transform
/// length. CSI work hits a handful of lengths (30 subcarriers, the
/// benchmark's power-of-two signals), so a small linear-scan vector
/// behind a mutex beats hashing.
static TWIDDLE_CACHE: OnceLock<Mutex<Vec<TwiddleEntry>>> = OnceLock::new();

/// Largest transform length worth caching (the table is O(N)).
const TWIDDLE_CACHE_MAX_LEN: usize = 1 << 14;

/// Forward twiddle table `w[j] = e^{-2πi j/N}` for length `n`, shared and
/// cached process-wide. The inverse transform conjugates on lookup.
fn forward_twiddles(n: usize) -> Arc<[Complex64]> {
    let build = || -> Arc<[Complex64]> {
        (0..n)
            .map(|j| Complex64::cis(-2.0 * PI * j as f64 / n as f64))
            .collect()
    };
    if n > TWIDDLE_CACHE_MAX_LEN {
        return build();
    }
    let cache = TWIDDLE_CACHE.get_or_init(|| Mutex::new(Vec::new()));
    // Poisoning cannot corrupt the table (entries are write-once), so
    // recover the inner value instead of panicking.
    let mut tables = cache
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some((_, t)) = tables.iter().find(|(len, _)| *len == n) {
        return Arc::clone(t);
    }
    let t = build();
    tables.push((n, Arc::clone(&t)));
    t
}

/// Error returned by the fixed-radix FFT routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FftError {
    /// The input length was not a power of two.
    NotPowerOfTwo(usize),
    /// The input was empty.
    Empty,
}

impl fmt::Display for FftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FftError::NotPowerOfTwo(n) => write!(f, "length {n} is not a power of two"),
            FftError::Empty => write!(f, "input is empty"),
        }
    }
}

impl Error for FftError {}

/// Direct forward DFT: `X[k] = Σ_n x[n]·e^{-2πi kn/N}`.
///
/// Accepts any non-zero length. Returns an empty vector for empty input.
/// Twiddle factors come from a cached per-length table — no `sin`/`cos`
/// in the O(N²) loop.
pub fn dft(x: &[Complex64]) -> Vec<Complex64> {
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    let w = forward_twiddles(n);
    let mut out = Vec::with_capacity(n);
    for k in 0..n {
        let mut acc = Complex64::ZERO;
        for (i, &xi) in x.iter().enumerate() {
            acc += xi * w[(k * i) % n];
        }
        out.push(acc);
    }
    out
}

/// Direct inverse DFT with `1/N` normalization: `x[n] = (1/N) Σ_k X[k]·e^{2πi kn/N}`.
///
/// Shares the forward twiddle table, conjugated on lookup.
pub fn idft(x: &[Complex64]) -> Vec<Complex64> {
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    let w = forward_twiddles(n);
    let mut out = Vec::with_capacity(n);
    for k in 0..n {
        let mut acc = Complex64::ZERO;
        for (i, &xi) in x.iter().enumerate() {
            acc += xi * w[(k * i) % n].conj();
        }
        out.push(acc / n as f64);
    }
    out
}

/// Radix-2 in-place Cooley–Tukey FFT.
///
/// # Errors
/// Returns [`FftError::NotPowerOfTwo`] for non-power-of-two lengths and
/// [`FftError::Empty`] for empty input.
pub fn fft(x: &[Complex64]) -> Result<Vec<Complex64>, FftError> {
    let mut buf = x.to_vec();
    fft_in_place(&mut buf, false)?;
    Ok(buf)
}

/// Radix-2 inverse FFT with `1/N` normalization.
///
/// # Errors
/// Same conditions as [`fft`].
pub fn ifft(x: &[Complex64]) -> Result<Vec<Complex64>, FftError> {
    let mut buf = x.to_vec();
    fft_in_place(&mut buf, true)?;
    let n = buf.len() as f64;
    for z in &mut buf {
        *z /= n;
    }
    Ok(buf)
}

fn fft_in_place(buf: &mut [Complex64], inverse: bool) -> Result<(), FftError> {
    let n = buf.len();
    if n == 0 {
        return Err(FftError::Empty);
    }
    if !n.is_power_of_two() {
        return Err(FftError::NotPowerOfTwo(n));
    }
    if n == 1 {
        return Ok(());
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
        if j > i {
            buf.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * PI / len as f64;
        let wlen = Complex64::cis(ang);
        let mut i = 0;
        while i < n {
            let mut w = Complex64::ONE;
            for j in 0..len / 2 {
                let u = buf[i + j];
                let v = buf[i + j + len / 2] * w;
                buf[i + j] = u + v;
                buf[i + j + len / 2] = u - v;
                w *= wlen;
            }
            i += len;
        }
        len <<= 1;
    }
    Ok(())
}

/// Evaluates the time-domain channel response at delay `tau` from CFR
/// samples `h_f` taken at (possibly non-uniform) frequencies `freqs_hz`:
///
/// `ĥ(τ) = (1/K) Σ_k H(f_k)·e^{+2πi f_k τ}`
///
/// With `tau = 0` this is the mean of the CFR — the dominant-tap estimate
/// used by the multipath factor (paper Eq. 10, following refs [11, 21]).
/// Frequencies may be absolute or baseband-relative; only their product
/// with `tau` matters, and at `tau = 0` the grid is irrelevant.
///
/// # Panics
/// Panics if `h_f` and `freqs_hz` have different lengths or are empty.
pub fn nudft_at_delay(h_f: &[Complex64], freqs_hz: &[f64], tau: f64) -> Complex64 {
    assert_eq!(
        h_f.len(),
        freqs_hz.len(),
        "CFR samples and frequency grid must have equal length"
    );
    assert!(!h_f.is_empty(), "CFR must be non-empty");
    let k = h_f.len() as f64;
    // τ = 0 is the per-packet hot path (the Eq. 10 dominant-tap estimate):
    // every phasor is exactly 1, so skip the `cis` evaluations entirely.
    // `h · cis(0) = h` bit-for-bit, so this changes nothing numerically.
    if tau == 0.0 {
        return h_f.iter().copied().sum::<Complex64>() / k;
    }
    h_f.iter()
        .zip(freqs_hz)
        .map(|(&h, &f)| h * Complex64::cis(2.0 * PI * f * tau))
        .sum::<Complex64>()
        / k
}

/// Power-delay profile on a uniform delay grid from non-uniform CFR
/// samples: `|ĥ(τ_m)|²` for `τ_m = m·Δτ`, `m = 0..bins`.
///
/// The delay grid is uniform, so each frequency's phasor advances by a
/// constant step `e^{2πi f·Δτ}` per bin: one `cis` per frequency up
/// front, then a multiply per (bin, frequency) — instead of a fresh
/// trig evaluation for every pair.
///
/// # Panics
/// Panics if `h_f` and `freqs_hz` have different lengths, or if `h_f` is
/// empty while `bins > 0`.
pub fn delay_power_profile(
    h_f: &[Complex64],
    freqs_hz: &[f64],
    delta_tau: f64,
    bins: usize,
) -> Vec<f64> {
    assert_eq!(
        h_f.len(),
        freqs_hz.len(),
        "CFR samples and frequency grid must have equal length"
    );
    if bins == 0 {
        return Vec::new();
    }
    assert!(!h_f.is_empty(), "CFR must be non-empty");
    let k = h_f.len() as f64;
    let steps: Vec<Complex64> = freqs_hz
        .iter()
        .map(|&f| Complex64::cis(2.0 * PI * f * delta_tau))
        .collect();
    let mut rotated: Vec<Complex64> = h_f.to_vec();
    let mut out = Vec::with_capacity(bins);
    for _ in 0..bins {
        let acc = rotated.iter().copied().sum::<Complex64>() / k;
        out.push(acc.norm_sqr());
        for (h, s) in rotated.iter_mut().zip(&steps) {
            *h *= *s;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close_vec(a: &[Complex64], b: &[Complex64], eps: f64) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (*x - *y).norm() < eps)
    }

    fn impulse(n: usize, at: usize) -> Vec<Complex64> {
        let mut v = vec![Complex64::ZERO; n];
        v[at] = Complex64::ONE;
        v
    }

    #[test]
    fn dft_of_impulse_is_flat() {
        let x = impulse(8, 0);
        let y = dft(&x);
        assert!(y.iter().all(|z| (*z - Complex64::ONE).norm() < 1e-12));
    }

    #[test]
    fn dft_of_shifted_impulse_is_phasor() {
        let x = impulse(8, 1);
        let y = dft(&x);
        for (k, z) in y.iter().enumerate() {
            let expect = Complex64::cis(-2.0 * PI * k as f64 / 8.0);
            assert!((*z - expect).norm() < 1e-12);
        }
    }

    #[test]
    fn idft_inverts_dft_arbitrary_length() {
        let x: Vec<Complex64> = (0..30)
            .map(|i| Complex64::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let y = idft(&dft(&x));
        assert!(close_vec(&x, &y, 1e-10));
    }

    #[test]
    fn fft_matches_direct_dft() {
        let x: Vec<Complex64> = (0..64)
            .map(|i| Complex64::new((i as f64).sin(), (i as f64 * 0.5).cos()))
            .collect();
        let a = dft(&x);
        let b = fft(&x).unwrap();
        assert!(close_vec(&a, &b, 1e-9));
    }

    #[test]
    fn ifft_inverts_fft() {
        let x: Vec<Complex64> = (0..128)
            .map(|i| Complex64::new((i % 7) as f64, (i % 5) as f64))
            .collect();
        let y = ifft(&fft(&x).unwrap()).unwrap();
        assert!(close_vec(&x, &y, 1e-9));
    }

    #[test]
    fn fft_rejects_non_power_of_two() {
        let x = vec![Complex64::ONE; 30];
        assert_eq!(fft(&x), Err(FftError::NotPowerOfTwo(30)));
        assert_eq!(fft(&[]), Err(FftError::Empty));
    }

    #[test]
    fn parseval_holds_for_fft() {
        let x: Vec<Complex64> = (0..32)
            .map(|i| Complex64::new((i as f64 * 1.7).sin(), (i as f64 * 0.3).cos()))
            .collect();
        let y = fft(&x).unwrap();
        let ex: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let ey: f64 = y.iter().map(|z| z.norm_sqr()).sum::<f64>() / 32.0;
        assert!((ex - ey).abs() < 1e-9 * ex.max(1.0));
    }

    #[test]
    fn nudft_at_zero_delay_is_cfr_mean() {
        let h = vec![
            Complex64::new(1.0, 1.0),
            Complex64::new(2.0, -1.0),
            Complex64::new(-0.5, 0.25),
        ];
        let f = vec![2.40e9, 2.41e9, 2.47e9];
        let got = nudft_at_delay(&h, &f, 0.0);
        let mean = (h[0] + h[1] + h[2]) / 3.0;
        assert!((got - mean).norm() < 1e-12);
    }

    #[test]
    fn nudft_recovers_single_path_delay() {
        // Single path at delay τ0: H(f) = e^{-2πi f τ0}. |ĥ(τ)| peaks at τ0.
        let tau0 = 40e-9;
        let freqs: Vec<f64> = (0..30)
            .map(|i| 2.462e9 + (i as f64 - 15.0) * 312.5e3)
            .collect();
        let h: Vec<Complex64> = freqs
            .iter()
            .map(|&f| Complex64::cis(-2.0 * PI * f * tau0))
            .collect();
        let at_tau0 = nudft_at_delay(&h, &freqs, tau0).norm();
        let off = nudft_at_delay(&h, &freqs, tau0 + 150e-9).norm();
        assert!((at_tau0 - 1.0).abs() < 1e-9);
        assert!(off < 0.6 * at_tau0, "off-peak {off} not attenuated");
    }

    #[test]
    fn delay_profile_peaks_at_path_delay() {
        // Two paths; profile evaluated on a 10 ns grid should have its
        // global maximum at the stronger (first) path. A wide synthetic
        // bandwidth (300 MHz) makes the 60 ns separation resolvable — on
        // the 20 MHz WiFi grid it would not be, which is exactly why the
        // paper falls back to the dominant-tap approximation.
        let freqs: Vec<f64> = (0..30).map(|i| i as f64 * 10e6).collect();
        let tau1 = 0.0;
        let tau2 = 60e-9;
        let h: Vec<Complex64> = freqs
            .iter()
            .map(|&f| {
                Complex64::cis(-2.0 * PI * f * tau1) + Complex64::cis(-2.0 * PI * f * tau2) * 0.4
            })
            .collect();
        // Stay inside one unambiguous delay range: 10 MHz spacing aliases
        // with period 100 ns, so only scan bins 0..9.
        let profile = delay_power_profile(&h, &freqs, 10e-9, 10);
        let argmax = profile
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(argmax, 0, "profile: {profile:?}");
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn nudft_length_mismatch_panics() {
        nudft_at_delay(&[Complex64::ONE], &[1.0, 2.0], 0.0);
    }

    #[test]
    fn delay_profile_recurrence_matches_direct_nudft() {
        let freqs: Vec<f64> = (0..30)
            .map(|i| 2.462e9 + (i as f64 - 15.0) * 312.5e3)
            .collect();
        let h: Vec<Complex64> = freqs
            .iter()
            .enumerate()
            .map(|(i, &f)| Complex64::cis(-2.0 * PI * f * 35e-9) * (1.0 + 0.02 * i as f64))
            .collect();
        let profile = delay_power_profile(&h, &freqs, 5e-9, 24);
        for (m, &p) in profile.iter().enumerate() {
            let direct = nudft_at_delay(&h, &freqs, m as f64 * 5e-9).norm_sqr();
            assert!(
                (p - direct).abs() <= 1e-9 * direct.max(1.0),
                "bin {m}: recurrence {p} vs direct {direct}"
            );
        }
    }

    #[test]
    fn delay_profile_zero_bins_is_empty() {
        assert!(delay_power_profile(&[Complex64::ONE], &[1.0], 1e-9, 0).is_empty());
    }

    #[test]
    fn twiddle_cache_is_consistent_across_lengths() {
        // Interleave lengths so cached tables for one length cannot leak
        // into another.
        for n in [3usize, 8, 30, 8, 3] {
            let x: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i as f64 * 0.9).cos(), (i as f64 * 0.4).sin()))
                .collect();
            let y = idft(&dft(&x));
            assert!(close_vec(&x, &y, 1e-10), "length {n} round trip");
        }
    }
}
