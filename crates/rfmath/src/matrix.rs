//! Dense complex matrices.
//!
//! [`CMatrix`] is a row-major dense matrix of [`Complex64`] sized for the
//! small linear-algebra problems in this workspace (antenna covariance
//! matrices are 3×3; spatial smoothing uses 2×2 subarrays). It provides the
//! products, Hermitian transpose and norms required by the MUSIC estimator.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

use serde::{Deserialize, Serialize};

use crate::complex::Complex64;

/// A dense, row-major complex matrix.
///
/// ```
/// use mpdf_rfmath::matrix::CMatrix;
/// use mpdf_rfmath::complex::Complex64;
///
/// let eye = CMatrix::identity(3);
/// let a = CMatrix::from_fn(3, 3, |r, c| Complex64::new((r + c) as f64, 0.0));
/// assert_eq!(&eye * &a, a);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex64>,
}

impl CMatrix {
    /// Creates a zero matrix of the given shape.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        CMatrix {
            rows,
            cols,
            data: vec![Complex64::ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = CMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex64::ONE;
        }
        m
    }

    /// Builds a matrix by evaluating `f(row, col)` at every entry.
    pub fn from_fn<F: FnMut(usize, usize) -> Complex64>(
        rows: usize,
        cols: usize,
        mut f: F,
    ) -> Self {
        let mut m = CMatrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = f(r, c);
            }
        }
        m
    }

    /// Extracts the principal submatrix selecting `idx` rows and the same
    /// columns — the spatial covariance of a reduced antenna subset.
    ///
    /// # Panics
    /// Panics if `idx` is empty or any index is out of range.
    pub fn principal_submatrix(&self, idx: &[usize]) -> Self {
        assert!(!idx.is_empty(), "cannot select an empty submatrix");
        for &i in idx {
            assert!(
                i < self.rows && i < self.cols,
                "submatrix index {i} out of range for {}x{}",
                self.rows,
                self.cols
            );
        }
        CMatrix::from_fn(idx.len(), idx.len(), |r, c| self[(idx[r], idx[c])])
    }

    /// Builds a matrix from a row-major slice.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: &[Complex64]) -> Self {
        assert_eq!(data.len(), rows * cols, "row-major data length mismatch");
        CMatrix {
            rows,
            cols,
            data: data.to_vec(),
        }
    }

    /// Builds a column vector (`n × 1`) from a slice.
    pub fn col_vector(data: &[Complex64]) -> Self {
        CMatrix::from_rows(data.len(), 1, data)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True when the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Row-major view of the underlying data.
    pub fn as_slice(&self) -> &[Complex64] {
        &self.data
    }

    /// Returns the `r`-th row as a vector of entries.
    ///
    /// # Panics
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[Complex64] {
        assert!(r < self.rows, "row index out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns the `c`-th column as an owned vector.
    ///
    /// # Panics
    /// Panics if `c >= cols`.
    pub fn col(&self, c: usize) -> Vec<Complex64> {
        assert!(c < self.cols, "column index out of bounds");
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Hermitian (conjugate) transpose `Aᴴ`.
    pub fn hermitian(&self) -> CMatrix {
        CMatrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)].conj())
    }

    /// Plain transpose `Aᵀ` (no conjugation).
    pub fn transpose(&self) -> CMatrix {
        CMatrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Element-wise conjugate.
    pub fn conj(&self) -> CMatrix {
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| z.conj()).collect(),
        }
    }

    /// Multiplies every entry by a real scalar.
    pub fn scale(&self, k: f64) -> CMatrix {
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| z.scale(k)).collect(),
        }
    }

    /// Matrix trace (sum of diagonal entries).
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> Complex64 {
        assert!(self.is_square(), "trace requires a square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Frobenius norm `‖A‖_F`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Largest off-diagonal modulus; the Jacobi sweep convergence measure.
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn max_off_diagonal(&self) -> f64 {
        assert!(self.is_square(), "off-diagonal scan requires square matrix");
        let mut m = 0.0f64;
        for r in 0..self.rows {
            for c in 0..self.cols {
                if r != c {
                    m = m.max(self[(r, c)].norm());
                }
            }
        }
        m
    }

    /// True when `‖A − Aᴴ‖_F ≤ tol·‖A‖_F` (Hermitian up to `tol`).
    pub fn is_hermitian(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        let diff = self - &self.hermitian();
        diff.frobenius_norm() <= tol * self.frobenius_norm().max(1.0)
    }

    /// Computes `A · v` for a vector `v` given as a slice.
    ///
    /// # Panics
    /// Panics if `v.len() != cols`.
    pub fn mul_vec(&self, v: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(v.len(), self.cols, "vector length must equal column count");
        (0..self.rows)
            .map(|r| {
                self.row(r)
                    .iter()
                    .zip(v)
                    .map(|(&a, &x)| a * x)
                    .sum::<Complex64>()
            })
            .collect()
    }

    /// Computes the quadratic form `vᴴ A v` (real for Hermitian `A`).
    ///
    /// Runs allocation-free: the angle scan of the MUSIC pseudospectrum
    /// evaluates this once per grid point, so no intermediate `A·v`
    /// vector is materialized.
    ///
    /// # Panics
    /// Panics if `v.len() != cols` or the matrix is not square.
    pub fn quadratic_form(&self, v: &[Complex64]) -> Complex64 {
        assert!(self.is_square(), "quadratic form requires square matrix");
        assert_eq!(v.len(), self.cols, "vector length must equal column count");
        let mut acc = Complex64::ZERO;
        for (r, &vr) in v.iter().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            let mut row_acc = Complex64::ZERO;
            for (&a, &vc) in row.iter().zip(v) {
                row_acc += a * vc;
            }
            acc += vr.conj() * row_acc;
        }
        acc
    }

    /// Extracts the square submatrix of size `k` starting at `(r0, c0)`.
    ///
    /// # Panics
    /// Panics if the block extends past the matrix bounds.
    pub fn block(&self, r0: usize, c0: usize, k: usize) -> CMatrix {
        assert!(
            r0 + k <= self.rows && c0 + k <= self.cols,
            "block out of bounds"
        );
        CMatrix::from_fn(k, k, |r, c| self[(r0 + r, c0 + c)])
    }

    /// Outer product `u · vᴴ` of two vectors.
    pub fn outer(u: &[Complex64], v: &[Complex64]) -> CMatrix {
        CMatrix::from_fn(u.len(), v.len(), |r, c| u[r] * v[c].conj())
    }

    /// In-place rank-1 update `A += u · vᴴ`.
    ///
    /// This is the covariance accumulator's hot path: one call per array
    /// snapshot, with no temporary matrix allocated (unlike
    /// [`CMatrix::outer`] + [`Add`]).
    ///
    /// # Panics
    /// Panics if `u.len() != rows` or `v.len() != cols`.
    pub fn axpy_outer(&mut self, u: &[Complex64], v: &[Complex64]) {
        assert_eq!(u.len(), self.rows, "outer-update row length mismatch");
        assert_eq!(v.len(), self.cols, "outer-update column length mismatch");
        let mut idx = 0;
        for &ur in u {
            for &vc in v {
                self.data[idx] += ur * vc.conj();
                idx += 1;
            }
        }
    }

    /// Subtracts the outer product `u·vᴴ` in place — the downdate
    /// sibling of [`CMatrix::axpy_outer`], used by sliding-window
    /// covariance maintenance to retire the oldest snapshot.
    ///
    /// # Panics
    /// Panics if `u.len() != rows` or `v.len() != cols`.
    pub fn axpy_outer_sub(&mut self, u: &[Complex64], v: &[Complex64]) {
        assert_eq!(u.len(), self.rows, "outer-update row length mismatch");
        assert_eq!(v.len(), self.cols, "outer-update column length mismatch");
        let mut idx = 0;
        for &ur in u {
            for &vc in v {
                self.data[idx] -= ur * vc.conj();
                idx += 1;
            }
        }
    }

    /// Multiplies every entry by a real scalar in place (the
    /// non-allocating sibling of [`CMatrix::scale`]).
    pub fn scale_in_place(&mut self, k: f64) {
        for z in &mut self.data {
            *z = z.scale(k);
        }
    }

    /// Resets every entry to zero, keeping the allocation — lets hot
    /// loops reuse one accumulator matrix across iterations.
    pub fn set_zero(&mut self) {
        for z in &mut self.data {
            *z = Complex64::ZERO;
        }
    }

    /// In-place elementwise sum `A += B` (the non-allocating sibling of
    /// the `&A + &B` operator; entries see the identical addition).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_in_place(&mut self, rhs: &CMatrix) {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch in addition"
        );
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }

    /// In-place scaled accumulation `A += k·B` — one fused pass instead
    /// of `&A + &B.scale(k)`'s two temporaries; each entry still sees the
    /// identical `a + b.scale(k)` arithmetic.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, k: f64, rhs: &CMatrix) {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch in scaled accumulation"
        );
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b.scale(k);
        }
    }
}

impl Index<(usize, usize)> for CMatrix {
    type Output = Complex64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &Complex64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for CMatrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Complex64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl Add for &CMatrix {
    type Output = CMatrix;
    fn add(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch in addition"
        );
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| a + b)
                .collect(),
        }
    }
}

impl Sub for &CMatrix {
    type Output = CMatrix;
    fn sub(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch in subtraction"
        );
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| a - b)
                .collect(),
        }
    }
}

impl Mul for &CMatrix {
    type Output = CMatrix;
    fn mul(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(
            self.cols, rhs.rows,
            "inner dimensions must agree in product"
        );
        let mut out = CMatrix::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a == Complex64::ZERO {
                    continue;
                }
                for c in 0..rhs.cols {
                    out[(r, c)] += a * rhs[(k, c)];
                }
            }
        }
        out
    }
}

impl fmt::Display for CMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                write!(f, "{:>24}", self[(r, c)].to_string())?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> Complex64 {
        Complex64::new(re, im)
    }

    #[test]
    fn identity_is_multiplicative_unit() {
        let a = CMatrix::from_fn(3, 3, |r, c| Complex64::new(r as f64, c as f64));
        let i = CMatrix::identity(3);
        assert_eq!(&i * &a, a);
        assert_eq!(&a * &i, a);
    }

    #[test]
    fn product_matches_hand_computation() {
        let a = CMatrix::from_rows(2, 2, &[c(1.0, 0.0), c(0.0, 1.0), c(2.0, 0.0), c(0.0, 0.0)]);
        let b = CMatrix::from_rows(2, 2, &[c(0.0, 1.0), c(1.0, 0.0), c(1.0, 0.0), c(0.0, -1.0)]);
        let p = &a * &b;
        assert_eq!(p[(0, 0)], c(0.0, 2.0));
        assert_eq!(p[(0, 1)], c(2.0, 0.0));
        assert_eq!(p[(1, 0)], c(0.0, 2.0));
        assert_eq!(p[(1, 1)], c(2.0, 0.0));
    }

    #[test]
    fn hermitian_transpose_conjugates() {
        let a = CMatrix::from_rows(
            2,
            3,
            &[
                c(1.0, 2.0),
                c(3.0, -1.0),
                c(0.0, 0.5),
                c(-1.0, 0.0),
                c(2.0, 2.0),
                c(4.0, -4.0),
            ],
        );
        let h = a.hermitian();
        assert_eq!(h.rows(), 3);
        assert_eq!(h.cols(), 2);
        assert_eq!(h[(0, 0)], c(1.0, -2.0));
        assert_eq!(h[(2, 1)], c(4.0, 4.0));
        // (AB)ᴴ = Bᴴ Aᴴ
        let b = CMatrix::from_fn(3, 2, |r, cc| c(r as f64 - 1.0, cc as f64));
        let lhs = (&a * &b).hermitian();
        let rhs = &b.hermitian() * &a.hermitian();
        assert!((&lhs - &rhs).frobenius_norm() < 1e-12);
    }

    #[test]
    fn quadratic_form_of_hermitian_is_real() {
        // A = v vᴴ + I is Hermitian positive definite.
        let v = [c(1.0, 1.0), c(0.0, -2.0), c(0.5, 0.0)];
        let a = &CMatrix::outer(&v, &v) + &CMatrix::identity(3);
        assert!(a.is_hermitian(1e-12));
        let x = [c(0.3, 0.1), c(-1.0, 0.7), c(0.0, 2.0)];
        let q = a.quadratic_form(&x);
        assert!(q.im.abs() < 1e-12);
        assert!(q.re > 0.0);
    }

    #[test]
    fn mul_vec_agrees_with_matrix_product() {
        let a = CMatrix::from_fn(3, 3, |r, cc| c((r * 3 + cc) as f64, 1.0));
        let v = [c(1.0, 0.0), c(0.0, 1.0), c(-1.0, -1.0)];
        let av = a.mul_vec(&v);
        let vm = CMatrix::col_vector(&v);
        let p = &a * &vm;
        for (i, &x) in av.iter().enumerate() {
            assert!((x - p[(i, 0)]).norm() < 1e-12);
        }
    }

    #[test]
    fn block_extracts_submatrix() {
        let a = CMatrix::from_fn(4, 4, |r, cc| c((r * 4 + cc) as f64, 0.0));
        let b = a.block(1, 2, 2);
        assert_eq!(b[(0, 0)], c(6.0, 0.0));
        assert_eq!(b[(1, 1)], c(11.0, 0.0));
    }

    #[test]
    fn trace_and_norm() {
        let a = CMatrix::from_rows(2, 2, &[c(1.0, 1.0), c(0.0, 0.0), c(0.0, 0.0), c(2.0, -1.0)]);
        assert_eq!(a.trace(), c(3.0, 0.0));
        assert!((a.frobenius_norm() - (2.0f64 + 5.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn max_off_diagonal_finds_peak() {
        let mut a = CMatrix::identity(3);
        a[(0, 2)] = c(0.0, 4.0);
        assert!((a.max_off_diagonal() - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn product_shape_mismatch_panics() {
        let a = CMatrix::zeros(2, 3);
        let b = CMatrix::zeros(2, 3);
        let _ = &a * &b;
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_panics() {
        let _ = CMatrix::zeros(0, 3);
    }

    #[test]
    fn axpy_outer_matches_outer_plus_add() {
        let u = [c(1.0, 0.5), c(0.0, 1.0), c(-0.7, 0.2)];
        let v = [c(2.0, -0.3), c(0.4, 1.1), c(0.0, -1.0)];
        let mut acc = CMatrix::identity(3);
        let expect = &CMatrix::identity(3) + &CMatrix::outer(&u, &v);
        acc.axpy_outer(&u, &v);
        assert!((&acc - &expect).frobenius_norm() < 1e-15);
    }

    #[test]
    fn axpy_outer_sub_reverses_axpy_outer() {
        // Dyadic components keep every product and sum exactly
        // representable, so update followed by downdate of the same pair
        // restores the base bitwise (both apply the identical ±ur·vc̄).
        let u = [c(1.0, 0.5), c(0.0, 2.0), c(-0.75, 0.25)];
        let v = [c(2.0, -0.5), c(0.5, 1.0), c(0.0, -1.0)];
        let base = CMatrix::from_fn(3, 3, |r, cc| c(r as f64 - 0.25, cc as f64 + 0.5));
        let mut acc = base.clone();
        acc.axpy_outer(&u, &v);
        acc.axpy_outer_sub(&u, &v);
        for r in 0..3 {
            for cc in 0..3 {
                assert_eq!(acc[(r, cc)].re.to_bits(), base[(r, cc)].re.to_bits());
                assert_eq!(acc[(r, cc)].im.to_bits(), base[(r, cc)].im.to_bits());
            }
        }
    }

    #[test]
    fn add_in_place_matches_operator_add() {
        let a = CMatrix::from_fn(2, 3, |r, cc| c(r as f64 + 0.5, cc as f64 - 1.0));
        let b = CMatrix::from_fn(2, 3, |r, cc| c(cc as f64 * 0.3, r as f64 * -0.7));
        let mut acc = a.clone();
        acc.add_in_place(&b);
        assert_eq!(acc, &a + &b);
    }

    #[test]
    fn axpy_matches_add_of_scaled() {
        let a = CMatrix::from_fn(2, 2, |r, cc| c(r as f64 + 0.5, cc as f64 - 1.0));
        let b = CMatrix::from_fn(2, 2, |r, cc| c(cc as f64 * 0.3, r as f64 * -0.7));
        let mut acc = a.clone();
        acc.axpy(0.37, &b);
        assert_eq!(acc, &a + &b.scale(0.37));
    }

    #[test]
    fn set_zero_clears_all_entries() {
        let mut a = CMatrix::from_fn(2, 2, |r, cc| c(r as f64 + 1.0, cc as f64 + 1.0));
        a.set_zero();
        assert_eq!(a, CMatrix::zeros(2, 2));
    }

    #[test]
    fn scale_in_place_matches_scale() {
        let a = CMatrix::from_fn(2, 3, |r, cc| c(r as f64 + 0.5, cc as f64 - 1.0));
        let mut b = a.clone();
        b.scale_in_place(0.37);
        assert_eq!(b, a.scale(0.37));
    }

    #[test]
    #[should_panic(expected = "row length mismatch")]
    fn axpy_outer_shape_mismatch_panics() {
        let mut a = CMatrix::zeros(2, 2);
        a.axpy_outer(&[c(1.0, 0.0)], &[c(1.0, 0.0), c(0.0, 1.0)]);
    }

    #[test]
    fn outer_product_rank_one() {
        let u = [c(1.0, 0.0), c(0.0, 1.0)];
        let v = [c(2.0, 0.0), c(0.0, -1.0)];
        let m = CMatrix::outer(&u, &v);
        assert_eq!(m[(0, 0)], c(2.0, 0.0));
        assert_eq!(m[(0, 1)], c(0.0, 1.0));
        assert_eq!(m[(1, 0)], c(0.0, 2.0));
        assert_eq!(m[(1, 1)], c(-1.0, 0.0));
    }

    #[test]
    fn principal_submatrix_selects_rows_and_cols() {
        let m = CMatrix::from_fn(3, 3, |r, cc| c((10 * r + cc) as f64, 0.0));
        let s = m.principal_submatrix(&[0, 2]);
        assert_eq!(s.rows(), 2);
        assert_eq!(s.cols(), 2);
        assert_eq!(s[(0, 0)], c(0.0, 0.0));
        assert_eq!(s[(0, 1)], c(2.0, 0.0));
        assert_eq!(s[(1, 0)], c(20.0, 0.0));
        assert_eq!(s[(1, 1)], c(22.0, 0.0));
        // Full selection is the identity operation.
        assert_eq!(m.principal_submatrix(&[0, 1, 2]), m);
    }

    #[test]
    #[should_panic(expected = "empty submatrix")]
    fn principal_submatrix_rejects_empty_selection() {
        CMatrix::identity(3).principal_submatrix(&[]);
    }
}
