//! Runtime numerical contracts for the hot signal-processing paths.
//!
//! The pipeline's numeric kernels carry physical invariants the type
//! system cannot express: multipath factors `μ_k` are non-negative,
//! stability ratios live in `[0, 1]`, Eq. 12 weights sum to one, MUSIC
//! pseudospectra are strictly positive and covariances are Hermitian.
//! Violating one of these upstream produces silent garbage downstream
//! (NaN-poisoned ROC curves, negative "power"), so the hot paths assert
//! them at their boundaries.
//!
//! Every check is `debug_assert!`-backed: it runs under `cargo test` and
//! debug builds and compiles to nothing in release, so the contracts are
//! free on the benchmark/eval configurations that matter for throughput.
//!
//! Conventions:
//!
//! - `label` names the quantity being checked (it appears verbatim in the
//!   panic message, e.g. `` contract `multipath factors μ` violated ``).
//! - Element-wise checks are vacuously true for empty slices; emptiness
//!   itself is a *shape* error the callers already reject with their own
//!   (always-on) asserts.
//! - All checks imply finiteness: a NaN or infinity fails every contract.

use crate::matrix::CMatrix;

/// Asserts every value is finite (neither NaN nor ±∞).
#[track_caller]
pub fn assert_finite(label: &str, values: &[f64]) {
    debug_assert!(
        values.iter().all(|v| v.is_finite()),
        "contract `{label}` violated: non-finite value at index {} of {}",
        first_offender(values, |v| !v.is_finite()),
        values.len()
    );
}

/// Asserts every value is finite and `>= 0` (e.g. multipath factors
/// `μ_k`, spectral powers).
#[track_caller]
pub fn assert_non_negative(label: &str, values: &[f64]) {
    debug_assert!(
        values.iter().all(|v| v.is_finite() && *v >= 0.0),
        "contract `{label}` violated: negative or non-finite value at index {} of {}",
        first_offender(values, |v| !(v.is_finite() && *v >= 0.0)),
        values.len()
    );
}

/// Asserts every value is finite and strictly `> 0` (e.g. the MUSIC
/// pseudospectrum, whose construction clamps the denominator away from
/// zero).
#[track_caller]
pub fn assert_positive(label: &str, values: &[f64]) {
    debug_assert!(
        values.iter().all(|v| v.is_finite() && *v > 0.0),
        "contract `{label}` violated: non-positive or non-finite value at index {} of {}",
        first_offender(values, |v| !(v.is_finite() && *v > 0.0)),
        values.len()
    );
}

/// Asserts every value lies in the closed unit interval `[0, 1]`
/// (e.g. the stability ratio `r_k` of Eq. 13/14).
#[track_caller]
pub fn assert_unit_interval(label: &str, values: &[f64]) {
    debug_assert!(
        values
            .iter()
            .all(|v| v.is_finite() && (0.0..=1.0).contains(v)),
        "contract `{label}` violated: value outside [0, 1] at index {} of {}",
        first_offender(values, |v| !(v.is_finite() && (0.0..=1.0).contains(v))),
        values.len()
    );
}

/// Asserts the values form a normalized weight vector: all finite,
/// non-negative, and summing to 1 within `tol`. Empty slices are
/// vacuously accepted (see the module docs).
#[track_caller]
pub fn assert_normalized(label: &str, values: &[f64], tol: f64) {
    assert_non_negative(label, values);
    debug_assert!(
        values.is_empty() || (values.iter().sum::<f64>() - 1.0).abs() <= tol,
        "contract `{label}` violated: weights sum to {} (expected 1 ± {tol})",
        values.iter().sum::<f64>()
    );
}

/// Asserts the matrix is Hermitian within `tol` (element-wise
/// `|R[i,j] − conj(R[j,i])| ≤ tol`), as every spatial covariance must be.
#[track_caller]
pub fn assert_hermitian(label: &str, matrix: &CMatrix, tol: f64) {
    debug_assert!(
        matrix.is_hermitian(tol),
        "contract `{label}` violated: {}×{} matrix is not Hermitian within {tol}",
        matrix.rows(),
        matrix.cols()
    );
}

/// Index of the first value failing `bad` — only evaluated when a
/// contract has already failed, to point the panic message at the
/// offending element.
fn first_offender(values: &[f64], bad: impl Fn(&f64) -> bool) -> usize {
    values.iter().position(bad).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Complex64;
    use proptest::prelude::*;

    /// Runs `f` and reports whether it panicked (contracts are
    /// `debug_assert`-backed, so violations must panic under test).
    fn panics(f: impl FnOnce() + std::panic::UnwindSafe) -> bool {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // keep test output clean
        let r = std::panic::catch_unwind(f);
        std::panic::set_hook(prev);
        r.is_err()
    }

    #[test]
    fn accepts_valid_inputs() {
        assert_finite("x", &[0.0, -3.5, 1e300]);
        assert_non_negative("x", &[0.0, 2.0]);
        assert_positive("x", &[f64::MIN_POSITIVE, 1.0]);
        assert_unit_interval("x", &[0.0, 0.5, 1.0]);
        assert_normalized("x", &[0.25, 0.75], 1e-12);
        assert_normalized("x", &[], 1e-12); // vacuous
        assert_hermitian("x", &CMatrix::identity(3), 1e-12);
    }

    #[test]
    fn rejects_violations() {
        assert!(panics(|| assert_finite("x", &[1.0, f64::NAN])));
        assert!(panics(|| assert_finite("x", &[f64::INFINITY])));
        assert!(panics(|| assert_non_negative("x", &[-1e-9])));
        assert!(panics(|| assert_positive("x", &[0.0])));
        assert!(panics(|| assert_unit_interval("x", &[1.0 + 1e-9])));
        assert!(panics(|| assert_unit_interval("x", &[-0.1])));
        assert!(panics(|| assert_normalized("x", &[0.6, 0.6], 1e-12)));
        let skew = CMatrix::from_fn(2, 2, |i, j| {
            if i == j {
                Complex64::ONE
            } else {
                Complex64::new(0.0, 1.0) // (0,1) == (1,0): not conjugate
            }
        });
        assert!(panics(|| assert_hermitian("x", &skew, 1e-9)));
    }

    #[test]
    fn panic_message_names_label_and_offender() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let result = std::panic::catch_unwind(|| {
            assert_non_negative("multipath factors μ", &[1.0, -2.0, 3.0]);
        });
        std::panic::set_hook(prev);
        let err = result.expect_err("contract must fire");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("multipath factors μ"), "{msg}");
        assert!(msg.contains("index 1"), "{msg}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn finite_samples_always_pass(v in proptest::collection::vec(-1e6f64..1e6, 0..16usize)) {
            assert_finite("prop", &v);
        }

        #[test]
        fn abs_normalization_satisfies_normalized(
            v in proptest::collection::vec(1e-3f64..10.0, 1..32usize),
        ) {
            let total: f64 = v.iter().sum();
            let w: Vec<f64> = v.iter().map(|x| x / total).collect();
            assert_normalized("prop", &w, 1e-9);
            assert_unit_interval("prop", &w);
        }

        #[test]
        fn outer_products_are_hermitian(
            parts in proptest::collection::vec((-2.0f64..2.0, -2.0f64..2.0), 2..5usize),
        ) {
            let x: Vec<Complex64> = parts.iter().map(|&(re, im)| Complex64::new(re, im)).collect();
            let r = CMatrix::outer(&x, &x);
            assert_hermitian("prop", &r, 1e-12);
        }

        #[test]
        fn any_nan_position_is_caught(
            v in proptest::collection::vec(-5.0f64..5.0, 1..8usize),
            idx in 0usize..8,
        ) {
            let has_negative = v.iter().any(|x| *x < 0.0);
            let mut poisoned = v.clone();
            let k = idx % poisoned.len();
            poisoned[k] = f64::NAN;
            prop_assert!(panics(move || assert_finite("prop", &poisoned)));
            prop_assert_eq!(panics(move || assert_non_negative("prop", &v)), has_negative);
        }
    }
}
