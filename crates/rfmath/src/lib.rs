//! # mpdf-rfmath — numerics substrate
//!
//! The signal-processing mathematics the rest of the `multipath-hd`
//! workspace is built on. The allowed dependency set contains no complex
//! arithmetic, FFT, eigendecomposition or fitting crates, so this crate
//! implements exactly what the paper's pipeline needs:
//!
//! - [`complex`] — `Complex64` scalar arithmetic (channel superposition).
//! - [`contract`] — `debug_assert`-backed numerical contracts the hot
//!   paths assert at their boundaries (finiteness, normalization,
//!   Hermitian symmetry).
//! - [`matrix`] — dense complex matrices (antenna covariance).
//! - [`eig`] — Hermitian Jacobi eigendecomposition (MUSIC subspaces).
//! - [`dft`] — uniform and non-uniform Fourier transforms (dominant-tap
//!   power `|ĥ(0)|²` of paper Eq. 10 on the Intel 5300's non-uniform
//!   subcarrier grid).
//! - [`stats`] — descriptive statistics, ECDFs and histograms (Figs. 2–4).
//! - [`fit`] — linear/logarithmic least squares (Fig. 3 fits).
//! - [`db`] — decibel conversions (`Δs` in dB, Eq. 5/8).
//!
//! ```
//! use mpdf_rfmath::complex::Complex64;
//! use mpdf_rfmath::dft::nudft_at_delay;
//!
//! // Dominant-tap estimate from a flat two-sample CFR.
//! let h = [Complex64::ONE, Complex64::ONE];
//! let freqs = [2.462e9, 2.4623e9];
//! assert!((nudft_at_delay(&h, &freqs, 0.0).norm() - 1.0).abs() < 1e-12);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod complex;
pub mod contract;
pub mod db;
pub mod dft;
pub mod eig;
pub mod fit;
pub mod matrix;
pub mod stats;

pub use complex::Complex64;
pub use matrix::CMatrix;
