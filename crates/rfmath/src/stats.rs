//! Descriptive statistics and empirical distributions.
//!
//! These back the paper's evaluation: CDFs of RSS change (Fig. 2a) and of
//! multipath factor (Fig. 3a), medians for the stability ratio `r_k`
//! (Eq. 13–14), and variances for threshold selection and the
//! moving-variance detector.

use serde::{Deserialize, Serialize};

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance (divides by `N`); `0.0` for fewer than two samples.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (square root of population variance).
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Median by sorting a copy; average of middle pair for even lengths.
/// Returns `0.0` for an empty slice.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(f64::total_cmp);
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

/// Linear-interpolated percentile, `p ∈ [0, 100]`.
///
/// # Panics
/// Panics if `p` is outside `[0, 100]` or the slice is empty.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    assert!(!xs.is_empty(), "percentile of empty slice");
    let mut v = xs.to_vec();
    v.sort_by(f64::total_cmp);
    let rank = p / 100.0 * (v.len() - 1) as f64;
    // lint: allow(lossy-cast) — rank ∈ [0, len-1] by the asserted p range
    let lo = rank.floor() as usize;
    // lint: allow(lossy-cast) — rank ∈ [0, len-1] by the asserted p range
    let hi = rank.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let w = rank - lo as f64;
        v[lo] * (1.0 - w) + v[hi] * w
    }
}

/// Minimum and maximum of a non-empty slice.
///
/// # Panics
/// Panics on empty input.
pub fn min_max(xs: &[f64]) -> (f64, f64) {
    assert!(!xs.is_empty(), "min_max of empty slice");
    xs.iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &x| {
            (lo.min(x), hi.max(x))
        })
}

/// An empirical cumulative distribution function built from samples.
///
/// ```
/// use mpdf_rfmath::stats::Ecdf;
/// let e = Ecdf::new(&[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(e.eval(2.5), 0.5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from samples (NaNs are dropped).
    pub fn new(samples: &[f64]) -> Self {
        let mut sorted: Vec<f64> = samples.iter().copied().filter(|x| !x.is_nan()).collect();
        sorted.sort_by(f64::total_cmp);
        Ecdf { sorted }
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if the ECDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples `≤ x`; `0.0` when empty.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&s| s <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Generalized inverse: smallest sample `x` with `F(x) ≥ q`, `q ∈ (0, 1]`.
    ///
    /// # Panics
    /// Panics if the ECDF is empty or `q` outside `(0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "quantile of empty ECDF");
        assert!(q > 0.0 && q <= 1.0, "quantile must be in (0, 1]");
        // lint: allow(lossy-cast) — q ≤ 1 so the product is bounded by len
        let idx = ((q * self.sorted.len() as f64).ceil() as usize).saturating_sub(1);
        self.sorted[idx.min(self.sorted.len() - 1)]
    }

    /// Samples the CDF at `n` evenly spaced points spanning the data range,
    /// returning `(x, F(x))` pairs — the series plotted in Fig. 2a / 3a.
    ///
    /// A degenerate all-equal sample has zero span; its true CDF is a
    /// single step 0 → 1 at that value, so the vertical step is emitted
    /// explicitly as two points sharing `x` (one point at `F = 1` when
    /// `n == 1`) instead of a flat `F ≡ 1` line with no rise.
    pub fn curve(&self, n: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || n == 0 {
            return Vec::new();
        }
        let lo = self.sorted[0];
        let hi = *self.sorted.last().unwrap_or(&lo);
        if hi <= lo {
            return if n == 1 {
                vec![(lo, 1.0)]
            } else {
                vec![(lo, 0.0), (lo, 1.0)]
            };
        }
        let span = hi - lo;
        (0..n)
            .map(|i| {
                let x = lo + span * i as f64 / (n - 1).max(1) as f64;
                (x, self.eval(x))
            })
            .collect()
    }
}

/// A fixed-bin histogram over `[lo, hi)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Adds a sample; out-of-range and NaN samples are clamped/dropped.
    pub fn add(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        let bins = self.counts.len();
        let t = ((x - self.lo) / (self.hi - self.lo) * bins as f64).floor();
        let idx = (t.max(0.0) as usize).min(bins - 1);
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total samples added.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Normalized bin densities summing to 1 (all zeros when empty).
    pub fn densities(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// Center x-coordinate of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }
}

/// Sliding-window variance over a series — the detector feature the paper
/// cites for mobile targets (§III, \[18\]).
///
/// Returns one variance per full window (length `xs.len() - window + 1`);
/// empty when the series is shorter than the window.
///
/// # Panics
/// Panics if `window == 0`.
pub fn moving_variance(xs: &[f64], window: usize) -> Vec<f64> {
    assert!(window > 0, "window must be positive");
    if xs.len() < window {
        return Vec::new();
    }
    xs.windows(window).map(variance).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_median() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 4.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
        assert!((median(&xs) - 4.5).abs() < 1e-12);
        assert!((median(&[1.0, 3.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_are_graceful() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(median(&[]), 0.0);
        assert!(Ecdf::new(&[]).is_empty());
        assert_eq!(Ecdf::new(&[]).eval(1.0), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert!((percentile(&xs, 0.0) - 10.0).abs() < 1e-12);
        assert!((percentile(&xs, 100.0) - 40.0).abs() < 1e-12);
        assert!((percentile(&xs, 50.0) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn ecdf_step_behaviour() {
        let e = Ecdf::new(&[1.0, 2.0, 2.0, 3.0]);
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.0), 0.75);
        assert_eq!(e.eval(10.0), 1.0);
        assert_eq!(e.quantile(0.75), 2.0);
        assert_eq!(e.quantile(1.0), 3.0);
    }

    #[test]
    fn ecdf_curve_is_monotone() {
        let e = Ecdf::new(&[0.3, -1.0, 2.5, 0.7, 0.7, 1.1]);
        let curve = e.curve(50);
        assert_eq!(curve.len(), 50);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        assert!((curve.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ecdf_curve_degenerate_sample_keeps_rising_step() {
        // Regression: all-equal samples used to clamp the span to
        // f64::MIN_POSITIVE, placing every sampled point at F(x)=1 with no
        // rising step in the plotted CDF.
        let e = Ecdf::new(&[4.2; 7]);
        let curve = e.curve(50);
        assert_eq!(curve, vec![(4.2, 0.0), (4.2, 1.0)]);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1 && w[1].0 >= w[0].0);
        }
        assert_eq!(e.curve(1), vec![(4.2, 1.0)]);

        // Single-sample ECDFs are degenerate too.
        let single = Ecdf::new(&[-1.5]).curve(10);
        assert_eq!(single, vec![(-1.5, 0.0), (-1.5, 1.0)]);
    }

    #[test]
    fn ecdf_drops_nans() {
        let e = Ecdf::new(&[1.0, f64::NAN, 2.0]);
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn histogram_bins_and_density() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.5, 1.5, 2.5, 2.6, 9.9, 11.0, -3.0] {
            h.add(x);
        }
        assert_eq!(h.total(), 7);
        // Bins of width 2; -3.0 clamps into bin 0 and 11.0 into bin 4.
        assert_eq!(h.counts(), &[3, 2, 0, 0, 2]);
        let d = h.densities();
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((h.bin_center(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn moving_variance_detects_bursts() {
        let mut xs = vec![1.0; 20];
        for (i, x) in xs.iter_mut().enumerate().take(14).skip(10) {
            *x = if i % 2 == 0 { 5.0 } else { -3.0 };
        }
        let mv = moving_variance(&xs, 5);
        let calm: f64 = mv[..3].iter().sum();
        let burst = mv.iter().cloned().fold(0.0f64, f64::max);
        assert!(calm < 1e-12);
        assert!(burst > 1.0);
    }

    #[test]
    fn min_max_works() {
        assert_eq!(min_max(&[3.0, -1.0, 2.0]), (-1.0, 3.0));
    }
}
