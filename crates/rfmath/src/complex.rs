//! Double-precision complex numbers.
//!
//! The allowed dependency set for this project contains no complex-number
//! crate, so [`Complex64`] provides the arithmetic the rest of the workspace
//! needs: field operations, polar forms, the complex exponential, conjugation
//! and the norms used by channel models and the MUSIC estimator.
//!
//! ```
//! use mpdf_rfmath::complex::Complex64;
//!
//! let unit = Complex64::from_polar(1.0, std::f64::consts::FRAC_PI_2);
//! assert!((unit - Complex64::I).norm() < 1e-12);
//! ```

use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A complex number with `f64` real and imaginary parts.
///
/// The type is `Copy` and all arithmetic operators are implemented for both
/// value and mixed `Complex64`/`f64` operands, so expressions read like the
/// formulas in the paper:
///
/// ```
/// use mpdf_rfmath::complex::Complex64;
/// let a = Complex64::new(3.0, 4.0);
/// assert_eq!(a.norm(), 5.0);
/// assert_eq!((a * a.conj()).re, 25.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from Cartesian parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_re(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `r·e^{iθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex64::new(r * theta.cos(), r * theta.sin())
    }

    /// Returns `e^{iθ}`, a unit phasor — the workhorse of path superposition.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex64::new(theta.cos(), theta.sin())
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex64::new(self.re, -self.im)
    }

    /// Squared modulus `|z|²`. Exact and cheaper than `norm()²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`, computed with `hypot` for robustness near overflow.
    #[inline]
    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument (phase) in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Returns the polar decomposition `(r, θ)` such that `z = r·e^{iθ}`.
    #[inline]
    pub fn to_polar(self) -> (f64, f64) {
        (self.norm(), self.arg())
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns non-finite components when `z` is zero, mirroring `f64`
    /// division semantics.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Complex64::new(self.re / d, -self.im / d)
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        Complex64::from_polar(self.re.exp(), self.im)
    }

    /// Principal square root.
    #[inline]
    pub fn sqrt(self) -> Self {
        let (r, theta) = self.to_polar();
        Complex64::from_polar(r.sqrt(), theta / 2.0)
    }

    /// Scales the complex number by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex64::new(self.re * k, self.im * k)
    }

    /// True when both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// True when either part is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }
}

impl From<f64> for Complex64 {
    fn from(re: f64) -> Self {
        Complex64::from_re(re)
    }
}

impl From<(f64, f64)> for Complex64 {
    fn from((re, im): (f64, f64)) -> Self {
        Complex64::new(re, im)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: Complex64) -> Complex64 {
        let d = rhs.norm_sqr();
        Complex64::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Add<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re + rhs, self.im)
    }
}

impl Sub<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re - rhs, self.im)
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Complex64 {
        self.scale(rhs)
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re / rhs, self.im / rhs)
    }
}

impl Add<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Complex64) -> Complex64 {
        rhs + self
    }
}

impl Sub<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self - rhs.re, -rhs.im)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs * self
    }
}

impl Div<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: Complex64) -> Complex64 {
        Complex64::from_re(self) / rhs
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Complex64) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex64) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: Complex64) {
        *self = *self / rhs;
    }
}

impl MulAssign<f64> for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: f64) {
        *self = *self * rhs;
    }
}

impl DivAssign<f64> for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: f64) {
        *self = *self / rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, |acc, z| acc + z)
    }
}

impl<'a> Sum<&'a Complex64> for Complex64 {
    fn sum<I: Iterator<Item = &'a Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, |acc, z| acc + *z)
    }
}

impl Product for Complex64 {
    fn product<I: Iterator<Item = Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ONE, |acc, z| acc * z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    fn close(a: Complex64, b: Complex64) -> bool {
        (a - b).norm() < 1e-10
    }

    #[test]
    fn constructors_agree() {
        assert_eq!(Complex64::new(2.0, 0.0), Complex64::from_re(2.0));
        assert_eq!(Complex64::from(2.0), Complex64::from_re(2.0));
        assert_eq!(Complex64::from((2.0, 3.0)), Complex64::new(2.0, 3.0));
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex64::new(-1.5, 2.25);
        let (r, t) = z.to_polar();
        assert!(close(Complex64::from_polar(r, t), z));
    }

    #[test]
    fn cis_is_unit_phasor() {
        for k in 0..32 {
            let theta = k as f64 * 0.2 - 3.0;
            let z = Complex64::cis(theta);
            assert!((z.norm() - 1.0).abs() < EPS);
            assert!(
                (z.arg() - theta.rem_euclid(2.0 * std::f64::consts::PI))
                    .abs()
                    .min(
                        (z.arg() + 2.0 * std::f64::consts::PI
                            - theta.rem_euclid(2.0 * std::f64::consts::PI))
                        .abs()
                    )
                    < 1e-9
            );
        }
    }

    #[test]
    fn field_arithmetic() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(-3.0, 0.5);
        assert!(close(a + b, Complex64::new(-2.0, 2.5)));
        assert!(close(a - b, Complex64::new(4.0, 1.5)));
        assert!(close(a * b, Complex64::new(-4.0, -5.5)));
        assert!(close((a / b) * b, a));
        assert!(close(a * a.inv(), Complex64::ONE));
    }

    #[test]
    fn mixed_real_ops() {
        let a = Complex64::new(1.0, -1.0);
        assert!(close(a + 2.0, Complex64::new(3.0, -1.0)));
        assert!(close(2.0 + a, Complex64::new(3.0, -1.0)));
        assert!(close(a - 1.0, Complex64::new(0.0, -1.0)));
        assert!(close(1.0 - a, Complex64::new(0.0, 1.0)));
        assert!(close(a * 3.0, Complex64::new(3.0, -3.0)));
        assert!(close(3.0 * a, Complex64::new(3.0, -3.0)));
        assert!(close(a / 2.0, Complex64::new(0.5, -0.5)));
        assert!(close(2.0 / a, Complex64::new(1.0, 1.0)));
    }

    #[test]
    fn assign_ops() {
        let mut z = Complex64::new(1.0, 1.0);
        z += Complex64::ONE;
        z -= Complex64::I;
        z *= Complex64::new(0.0, 2.0);
        z /= Complex64::new(2.0, 0.0);
        z *= 2.0;
        z /= 4.0;
        assert!(close(z, Complex64::new(0.0, 1.0)));
    }

    #[test]
    fn conjugate_properties() {
        let a = Complex64::new(0.3, -0.7);
        let b = Complex64::new(-1.1, 2.2);
        assert!(close((a * b).conj(), a.conj() * b.conj()));
        assert!(((a * a.conj()).re - a.norm_sqr()).abs() < EPS);
        assert!((a * a.conj()).im.abs() < EPS);
    }

    #[test]
    fn exp_of_imaginary_is_cis() {
        let theta = 0.731;
        assert!(close(
            Complex64::new(0.0, theta).exp(),
            Complex64::cis(theta)
        ));
    }

    #[test]
    fn exp_adds_exponents() {
        let a = Complex64::new(0.2, 1.3);
        let b = Complex64::new(-0.4, 0.9);
        assert!(close((a + b).exp(), a.exp() * b.exp()));
    }

    #[test]
    fn sqrt_squares_back() {
        for &(re, im) in &[(4.0, 0.0), (0.0, 1.0), (-1.0, 0.0), (3.0, -4.0)] {
            let z = Complex64::new(re, im);
            let s = z.sqrt();
            assert!(close(s * s, z), "sqrt failed for {z}");
        }
    }

    #[test]
    fn sum_and_product_iterators() {
        let v = vec![
            Complex64::new(1.0, 0.0),
            Complex64::new(0.0, 1.0),
            Complex64::new(-1.0, 2.0),
        ];
        let s: Complex64 = v.iter().sum();
        assert!(close(s, Complex64::new(0.0, 3.0)));
        let p: Complex64 = v.into_iter().product();
        assert!(close(p, Complex64::new(-2.0, -1.0)));
    }

    #[test]
    fn norm_is_robust() {
        let z = Complex64::new(3e200, 4e200);
        assert!((z.norm() - 5e200).abs() / 5e200 < 1e-12);
    }

    #[test]
    fn finite_and_nan_flags() {
        assert!(Complex64::new(1.0, 2.0).is_finite());
        assert!(!Complex64::new(f64::INFINITY, 0.0).is_finite());
        assert!(Complex64::new(f64::NAN, 0.0).is_nan());
        assert!(!Complex64::ONE.is_nan());
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn serde_round_trip() {
        let z = Complex64::new(1.25, -0.5);
        let json = serde_json_like(&z);
        assert!(json.contains("1.25"));
    }

    // We avoid a serde_json dev-dependency; just ensure Serialize is wired by
    // serializing through the Debug-stable helper below.
    fn serde_json_like(z: &Complex64) -> String {
        format!("{z:?}")
    }
}
