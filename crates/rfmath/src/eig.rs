//! Hermitian eigendecomposition via the cyclic complex Jacobi method.
//!
//! The MUSIC angle-of-arrival estimator (paper §IV-B1) needs the
//! eigendecomposition of a small Hermitian sample-covariance matrix
//! (3×3 for the paper's three-antenna receiver). The complex Jacobi
//! iteration diagonalizes a Hermitian matrix with a sequence of unitary
//! plane rotations; it is unconditionally convergent and numerically
//! benign for the tiny matrices used here.

use std::error::Error;
use std::fmt;

use crate::complex::Complex64;
use crate::matrix::CMatrix;

/// Error returned by [`hermitian_eig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EigError {
    /// The input matrix was not square.
    NotSquare,
    /// The input matrix was not Hermitian within tolerance.
    NotHermitian,
    /// The Jacobi iteration failed to converge within the sweep budget.
    NoConvergence,
}

impl fmt::Display for EigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EigError::NotSquare => write!(f, "matrix is not square"),
            EigError::NotHermitian => write!(f, "matrix is not hermitian"),
            EigError::NoConvergence => write!(f, "jacobi iteration did not converge"),
        }
    }
}

impl Error for EigError {}

/// Result of a Hermitian eigendecomposition `A = V diag(λ) Vᴴ`.
///
/// Eigenvalues are real (Hermitian input) and sorted in **descending**
/// order; `vectors.col(k)` is the unit eigenvector for `values[k]`. The
/// descending order matches how MUSIC partitions signal and noise subspaces.
#[derive(Debug, Clone, PartialEq)]
pub struct EigDecomposition {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Unitary matrix whose k-th column is the eigenvector of `values[k]`.
    pub vectors: CMatrix,
}

impl EigDecomposition {
    /// Reconstructs `V diag(λ) Vᴴ`; used by tests to bound residuals.
    pub fn reconstruct(&self) -> CMatrix {
        let n = self.values.len();
        let lambda = CMatrix::from_fn(n, n, |r, c| {
            if r == c {
                Complex64::from_re(self.values[r])
            } else {
                Complex64::ZERO
            }
        });
        &(&self.vectors * &lambda) * &self.vectors.hermitian()
    }

    /// Returns the eigenvectors spanning the noise subspace: columns
    /// `signal_dim..n`. This is the `E_N` matrix of the MUSIC estimator.
    ///
    /// # Panics
    /// Panics if `signal_dim > n`.
    pub fn noise_subspace(&self, signal_dim: usize) -> CMatrix {
        let n = self.values.len();
        assert!(signal_dim <= n, "signal dimension exceeds matrix order");
        let cols = n - signal_dim;
        assert!(cols > 0, "noise subspace is empty");
        CMatrix::from_fn(n, cols, |r, c| self.vectors[(r, signal_dim + c)])
    }
}

/// Maximum number of full Jacobi sweeps before giving up.
const MAX_SWEEPS: usize = 100;

/// Computes the eigendecomposition of a Hermitian matrix.
///
/// `tol` bounds both the Hermitian-input check and the convergence test
/// (largest off-diagonal modulus relative to the Frobenius norm); `1e-12`
/// is a good default for covariance matrices.
///
/// # Errors
/// - [`EigError::NotSquare`] if the matrix is not square.
/// - [`EigError::NotHermitian`] if `‖A − Aᴴ‖` exceeds `tol·‖A‖`.
/// - [`EigError::NoConvergence`] if the sweep budget is exhausted.
///
/// ```
/// use mpdf_rfmath::complex::Complex64;
/// use mpdf_rfmath::matrix::CMatrix;
/// use mpdf_rfmath::eig::hermitian_eig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let a = CMatrix::from_rows(2, 2, &[
///     Complex64::new(2.0, 0.0), Complex64::new(0.0, 1.0),
///     Complex64::new(0.0, -1.0), Complex64::new(2.0, 0.0),
/// ]);
/// let eig = hermitian_eig(&a, 1e-12)?;
/// assert!((eig.values[0] - 3.0).abs() < 1e-9);
/// assert!((eig.values[1] - 1.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn hermitian_eig(a: &CMatrix, tol: f64) -> Result<EigDecomposition, EigError> {
    if !a.is_square() {
        return Err(EigError::NotSquare);
    }
    if !a.is_hermitian(tol.max(1e-9)) {
        return Err(EigError::NotHermitian);
    }
    let n = a.rows();
    // Symmetrize to kill floating-point asymmetry before iterating.
    let mut m = (a + &a.hermitian()).scale(0.5);
    let mut v = CMatrix::identity(n);
    let scale = m.frobenius_norm().max(f64::MIN_POSITIVE);
    let threshold = tol.max(f64::EPSILON) * scale;

    for _sweep in 0..MAX_SWEEPS {
        if m.max_off_diagonal() <= threshold {
            return Ok(sorted_decomposition(&m, &v));
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.norm() <= threshold * 1e-2 {
                    continue;
                }
                let rot = plane_rotation(n, p, q, m[(p, p)].re, m[(q, q)].re, apq);
                m = &(&rot.hermitian() * &m) * &rot;
                v = &v * &rot;
            }
        }
    }
    if m.max_off_diagonal() <= threshold * 10.0 {
        return Ok(sorted_decomposition(&m, &v));
    }
    Err(EigError::NoConvergence)
}

/// Builds the unitary plane rotation that annihilates entry `(p, q)` of a
/// Hermitian matrix with diagonal entries `app`, `aqq` and off-diagonal
/// `apq = |apq| e^{iφ}`.
fn plane_rotation(n: usize, p: usize, q: usize, app: f64, aqq: f64, apq: Complex64) -> CMatrix {
    let abs = apq.norm();
    let phi = apq.arg();
    // tan(2θ) = 2|apq| / (app − aqq); pick the small-angle root for stability.
    let tau = (app - aqq) / (2.0 * abs);
    let t = if tau >= 0.0 {
        1.0 / (tau + (tau * tau + 1.0).sqrt())
    } else {
        -1.0 / (-tau + (tau * tau + 1.0).sqrt())
    };
    let c = 1.0 / (t * t + 1.0).sqrt();
    let s = t * c;
    let mut rot = CMatrix::identity(n);
    rot[(p, p)] = Complex64::from_re(c);
    rot[(q, q)] = Complex64::from_re(c);
    rot[(p, q)] = Complex64::from_polar(-s, phi);
    rot[(q, p)] = Complex64::from_polar(s, -phi);
    rot
}

/// Sorts the diagonal of the (near-)diagonalized matrix descending and
/// permutes the eigenvector columns to match.
fn sorted_decomposition(m: &CMatrix, v: &CMatrix) -> EigDecomposition {
    let n = m.rows();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| m[(j, j)].re.total_cmp(&m[(i, i)].re));
    let values = order.iter().map(|&i| m[(i, i)].re).collect();
    let vectors = CMatrix::from_fn(n, n, |r, c| v[(r, order[c])]);
    EigDecomposition { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> Complex64 {
        Complex64::new(re, im)
    }

    fn residual(a: &CMatrix, eig: &EigDecomposition) -> f64 {
        (a - &eig.reconstruct()).frobenius_norm() / a.frobenius_norm().max(1.0)
    }

    #[test]
    fn diagonal_matrix_is_its_own_decomposition() {
        let a = CMatrix::from_fn(3, 3, |r, cc| {
            if r == cc {
                c(3.0 - r as f64, 0.0)
            } else {
                Complex64::ZERO
            }
        });
        let e = hermitian_eig(&a, 1e-12).unwrap();
        assert_eq!(e.values, vec![3.0, 2.0, 1.0]);
        assert!(residual(&a, &e) < 1e-12);
    }

    #[test]
    fn pauli_y_like_matrix() {
        // [[2, i], [-i, 2]] has eigenvalues 3 and 1.
        let a = CMatrix::from_rows(2, 2, &[c(2.0, 0.0), c(0.0, 1.0), c(0.0, -1.0), c(2.0, 0.0)]);
        let e = hermitian_eig(&a, 1e-12).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
        assert!(residual(&a, &e) < 1e-10);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let v = [c(1.0, 2.0), c(-0.5, 0.3), c(0.0, -1.0)];
        let w = [c(0.2, 0.0), c(1.0, -1.0), c(0.4, 0.4)];
        let a = &(&CMatrix::outer(&v, &v).scale(2.0) + &CMatrix::outer(&w, &w))
            + &CMatrix::identity(3).scale(0.1);
        let e = hermitian_eig(&a, 1e-12).unwrap();
        let gram = &e.vectors.hermitian() * &e.vectors;
        assert!((&gram - &CMatrix::identity(3)).frobenius_norm() < 1e-9);
    }

    #[test]
    fn rank_one_plus_noise_floor() {
        // σ²I + p·u uᴴ: top eigenvalue σ² + p‖u‖², rest σ².
        let u = [c(0.6, 0.0), c(0.0, 0.8)];
        let sigma2 = 0.25;
        let p = 4.0;
        let a = &CMatrix::outer(&u, &u).scale(p) + &CMatrix::identity(2).scale(sigma2);
        let e = hermitian_eig(&a, 1e-12).unwrap();
        assert!((e.values[0] - (sigma2 + p)).abs() < 1e-10);
        assert!((e.values[1] - sigma2).abs() < 1e-10);
        // Top eigenvector is parallel to u.
        let v0 = e.vectors.col(0);
        let dot: Complex64 = u.iter().zip(&v0).map(|(&a, &b)| a.conj() * b).sum();
        assert!((dot.norm() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn noise_subspace_is_orthogonal_to_signal() {
        let u = [c(1.0, 0.0), c(0.0, 1.0), c(1.0, 1.0)];
        let a = &CMatrix::outer(&u, &u).scale(5.0) + &CMatrix::identity(3).scale(0.01);
        let e = hermitian_eig(&a, 1e-12).unwrap();
        let en = e.noise_subspace(1);
        assert_eq!(en.cols(), 2);
        // uᴴ E_N should vanish.
        for col in 0..2 {
            let proj: Complex64 = (0..3).map(|i| u[i].conj() * en[(i, col)]).sum();
            assert!(proj.norm() < 1e-8, "noise column {col} not orthogonal");
        }
    }

    #[test]
    fn larger_random_like_matrix_converges() {
        // Deterministic pseudo-random Hermitian 8×8.
        let mut seed = 42u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut a = CMatrix::zeros(8, 8);
        for r in 0..8 {
            for cc in r..8 {
                let z = if r == cc {
                    c(next(), 0.0)
                } else {
                    c(next(), next())
                };
                a[(r, cc)] = z;
                a[(cc, r)] = z.conj();
            }
        }
        let e = hermitian_eig(&a, 1e-12).unwrap();
        assert!(residual(&a, &e) < 1e-9);
        // Trace is preserved by similarity transforms.
        let tr: f64 = e.values.iter().sum();
        assert!((tr - a.trace().re).abs() < 1e-9);
        // Sorted descending.
        for w in e.values.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn rejects_non_square() {
        let a = CMatrix::zeros(2, 3);
        assert_eq!(hermitian_eig(&a, 1e-12), Err(EigError::NotSquare));
    }

    #[test]
    fn rejects_non_hermitian() {
        let a = CMatrix::from_rows(2, 2, &[c(1.0, 0.0), c(1.0, 0.0), c(0.0, 0.0), c(1.0, 0.0)]);
        assert_eq!(hermitian_eig(&a, 1e-12), Err(EigError::NotHermitian));
    }

    #[test]
    fn error_display_is_lowercase() {
        assert_eq!(EigError::NotSquare.to_string(), "matrix is not square");
        assert_eq!(
            EigError::NoConvergence.to_string(),
            "jacobi iteration did not converge"
        );
    }
}
