//! Least-squares curve fitting.
//!
//! The paper fits the relationship between RSS change `Δs` and the
//! multipath factor `μ` with a logarithmic model (Fig. 3b/3c). This module
//! provides ordinary least-squares [`linear_fit`] and the derived
//! [`log_fit`] `y = a·ln(x) + b`, each with the coefficient of
//! determination R² used to judge fit quality.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::stats::mean;

/// Error returned by the fitting routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitError {
    /// Fewer than two usable points were supplied.
    TooFewPoints,
    /// All x-values were identical (or unusable), so the slope is undefined.
    DegenerateX,
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::TooFewPoints => write!(f, "need at least two points to fit"),
            FitError::DegenerateX => write!(f, "x-values are degenerate"),
        }
    }
}

impl Error for FitError {}

/// A fitted model `y = slope·g(x) + intercept` with its R².
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fit {
    /// Slope coefficient `a`.
    pub slope: f64,
    /// Intercept `b`.
    pub intercept: f64,
    /// Coefficient of determination in `[..1]` (can be negative for
    /// pathological fits).
    pub r_squared: f64,
}

impl Fit {
    /// Predicted value of the *linear* model at `x`.
    pub fn predict_linear(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }

    /// Predicted value of the *logarithmic* model at `x > 0`.
    pub fn predict_log(&self, x: f64) -> f64 {
        self.slope * x.ln() + self.intercept
    }
}

/// Ordinary least squares for `y = a·x + b`.
///
/// Non-finite points are ignored.
///
/// # Errors
/// [`FitError::TooFewPoints`] with fewer than two usable points,
/// [`FitError::DegenerateX`] when the x-variance vanishes.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Result<Fit, FitError> {
    let pts: Vec<(f64, f64)> = xs
        .iter()
        .zip(ys)
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .map(|(&x, &y)| (x, y))
        .collect();
    if pts.len() < 2 {
        return Err(FitError::TooFewPoints);
    }
    let n = pts.len() as f64;
    let mx = pts.iter().map(|p| p.0).sum::<f64>() / n;
    let my = pts.iter().map(|p| p.1).sum::<f64>() / n;
    let sxx: f64 = pts.iter().map(|p| (p.0 - mx) * (p.0 - mx)).sum();
    let sxy: f64 = pts.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
    if sxx <= f64::EPSILON * n {
        return Err(FitError::DegenerateX);
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    // R² = 1 − SS_res / SS_tot.
    let ss_tot: f64 = pts.iter().map(|p| (p.1 - my) * (p.1 - my)).sum();
    let ss_res: f64 = pts
        .iter()
        .map(|p| {
            let e = p.1 - (slope * p.0 + intercept);
            e * e
        })
        .sum();
    let r_squared = if ss_tot <= f64::EPSILON {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    Ok(Fit {
        slope,
        intercept,
        r_squared,
    })
}

/// Logarithmic least squares `y = a·ln(x) + b` by transforming x.
///
/// Points with `x ≤ 0` or non-finite coordinates are ignored (the multipath
/// factor is strictly positive, so nothing meaningful is lost).
///
/// # Errors
/// Same conditions as [`linear_fit`] after filtering.
pub fn log_fit(xs: &[f64], ys: &[f64]) -> Result<Fit, FitError> {
    let (lx, ly): (Vec<f64>, Vec<f64>) = xs
        .iter()
        .zip(ys)
        .filter(|(&x, &y)| x > 0.0 && x.is_finite() && y.is_finite())
        .map(|(&x, &y)| (x.ln(), y))
        .unzip();
    linear_fit(&lx, &ly)
}

/// Pearson correlation coefficient of two equal-length series; `0.0` when
/// either side is degenerate.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    if xs.len() != ys.len() || xs.len() < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxx = 0.0;
    let mut syy = 0.0;
    let mut sxy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
        sxy += (x - mx) * (y - my);
    }
    if sxx <= f64::EPSILON || syy <= f64::EPSILON {
        return 0.0;
    }
    sxy / (sxx.sqrt() * syy.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.5 * x - 1.0).collect();
        let fit = linear_fit(&xs, &ys).unwrap();
        assert!((fit.slope - 2.5).abs() < 1e-12);
        assert!((fit.intercept + 1.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!((fit.predict_linear(100.0) - 249.0).abs() < 1e-9);
    }

    #[test]
    fn noisy_line_r2_below_one() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64 * 0.1).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 3.0 * x + if i % 2 == 0 { 0.4 } else { -0.4 })
            .collect();
        let fit = linear_fit(&xs, &ys).unwrap();
        assert!((fit.slope - 3.0).abs() < 0.1);
        assert!(fit.r_squared > 0.9 && fit.r_squared < 1.0);
    }

    #[test]
    fn log_fit_recovers_log_model() {
        // Mirrors Fig. 3b: Δs falls ~logarithmically with μ.
        let xs: Vec<f64> = (1..100).map(|i| i as f64 * 0.01).collect();
        let ys: Vec<f64> = xs.iter().map(|x| -4.0 * x.ln() + 2.0).collect();
        let fit = log_fit(&xs, &ys).unwrap();
        assert!((fit.slope + 4.0).abs() < 1e-9);
        assert!((fit.intercept - 2.0).abs() < 1e-9);
        assert!((fit.predict_log(0.5) - (-4.0 * 0.5f64.ln() + 2.0)).abs() < 1e-9);
    }

    #[test]
    fn log_fit_filters_nonpositive_x() {
        let xs = [0.0, -1.0, 1.0, std::f64::consts::E];
        let ys = [100.0, 100.0, 2.0, 6.0];
        let fit = log_fit(&xs, &ys).unwrap();
        assert!((fit.slope - 4.0).abs() < 1e-9);
        assert!((fit.intercept - 2.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_inputs_error() {
        assert_eq!(linear_fit(&[1.0], &[2.0]), Err(FitError::TooFewPoints));
        assert_eq!(
            linear_fit(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]),
            Err(FitError::DegenerateX)
        );
        assert_eq!(
            log_fit(&[-1.0, -2.0], &[0.0, 0.0]),
            Err(FitError::TooFewPoints)
        );
    }

    #[test]
    fn nan_points_are_skipped() {
        let xs = [0.0, 1.0, f64::NAN, 2.0];
        let ys = [1.0, 3.0, 0.0, 5.0];
        let fit = linear_fit(&xs, &ys).unwrap();
        assert!((fit.slope - 2.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_limits() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let up: Vec<f64> = xs.iter().map(|x| 2.0 * x).collect();
        let down: Vec<f64> = xs.iter().map(|x| -x).collect();
        assert!((pearson(&xs, &up) - 1.0).abs() < 1e-12);
        assert!((pearson(&xs, &down) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&xs, &[1.0; 10]), 0.0);
        assert_eq!(pearson(&xs[..3], &up), 0.0); // length mismatch
    }
}
