//! Decibel conversions.
//!
//! The paper states link sensitivities in dB (Eq. 5, 8): `Δs = 10·lg(P₁/P₀)`.
//! These helpers keep power-ratio bookkeeping explicit and tested.

/// Converts a linear power ratio to decibels: `10·log10(p)`.
///
/// Returns `-inf` for `p == 0` and NaN for negative input, mirroring
/// `f64::log10`.
#[inline]
pub fn power_to_db(p: f64) -> f64 {
    10.0 * p.log10()
}

/// Converts decibels to a linear power ratio: `10^(db/10)`.
#[inline]
pub fn db_to_power(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Converts a linear amplitude ratio to decibels: `20·log10(a)`.
#[inline]
pub fn amplitude_to_db(a: f64) -> f64 {
    20.0 * a.log10()
}

/// Converts decibels to a linear amplitude ratio: `10^(db/20)`.
#[inline]
pub fn db_to_amplitude(db: f64) -> f64 {
    10f64.powf(db / 20.0)
}

/// Converts milliwatts to dBm.
#[inline]
pub fn milliwatts_to_dbm(mw: f64) -> f64 {
    power_to_db(mw)
}

/// Converts dBm to milliwatts.
#[inline]
pub fn dbm_to_milliwatts(dbm: f64) -> f64 {
    db_to_power(dbm)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_round_trip() {
        for &db in &[-30.0, -3.0, 0.0, 3.0, 20.0] {
            assert!((power_to_db(db_to_power(db)) - db).abs() < 1e-12);
        }
    }

    #[test]
    fn amplitude_round_trip() {
        for &db in &[-12.0, 0.0, 6.0] {
            assert!((amplitude_to_db(db_to_amplitude(db)) - db).abs() < 1e-12);
        }
    }

    #[test]
    fn known_values() {
        assert!((power_to_db(100.0) - 20.0).abs() < 1e-12);
        assert!((db_to_power(3.0) - 1.9952623149688795).abs() < 1e-12);
        assert!((amplitude_to_db(10.0) - 20.0).abs() < 1e-12);
        assert!((dbm_to_milliwatts(0.0) - 1.0).abs() < 1e-12);
        assert!((milliwatts_to_dbm(1000.0) - 30.0).abs() < 1e-12);
    }

    #[test]
    fn amplitude_db_is_twice_power_db() {
        let a = 0.37;
        assert!((amplitude_to_db(a) - power_to_db(a * a)).abs() < 1e-12);
    }

    #[test]
    fn zero_power_is_neg_infinity() {
        assert_eq!(power_to_db(0.0), f64::NEG_INFINITY);
        assert!(power_to_db(-1.0).is_nan());
    }
}
