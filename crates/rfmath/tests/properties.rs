//! Property-based tests for the numerics substrate.

use mpdf_rfmath::complex::Complex64;
use mpdf_rfmath::dft::{dft, fft, idft, ifft, nudft_at_delay};
use mpdf_rfmath::eig::hermitian_eig;
use mpdf_rfmath::fit::{linear_fit, log_fit};
use mpdf_rfmath::matrix::CMatrix;
use mpdf_rfmath::stats::{mean, median, moving_variance, variance, Ecdf};
use proptest::prelude::*;

fn finite() -> impl Strategy<Value = f64> {
    -1e3f64..1e3f64
}

fn complex() -> impl Strategy<Value = Complex64> {
    (finite(), finite()).prop_map(|(re, im)| Complex64::new(re, im))
}

fn complex_vec(
    len: impl Into<proptest::collection::SizeRange>,
) -> impl Strategy<Value = Vec<Complex64>> {
    proptest::collection::vec(complex(), len)
}

proptest! {
    // ---- Complex field axioms ----

    #[test]
    fn complex_addition_commutes(a in complex(), b in complex()) {
        prop_assert!(((a + b) - (b + a)).norm() < 1e-9);
    }

    #[test]
    fn complex_multiplication_commutes(a in complex(), b in complex()) {
        prop_assert!(((a * b) - (b * a)).norm() < 1e-6);
    }

    #[test]
    fn complex_multiplication_associates(a in complex(), b in complex(), c in complex()) {
        let lhs = (a * b) * c;
        let rhs = a * (b * c);
        let scale = lhs.norm().max(rhs.norm()).max(1.0);
        prop_assert!((lhs - rhs).norm() / scale < 1e-9);
    }

    #[test]
    fn complex_distributes(a in complex(), b in complex(), c in complex()) {
        let lhs = a * (b + c);
        let rhs = a * b + a * c;
        let scale = lhs.norm().max(rhs.norm()).max(1.0);
        prop_assert!((lhs - rhs).norm() / scale < 1e-9);
    }

    #[test]
    fn complex_inverse_cancels(a in complex()) {
        prop_assume!(a.norm() > 1e-6);
        prop_assert!((a * a.inv() - Complex64::ONE).norm() < 1e-7);
    }

    #[test]
    fn norm_is_multiplicative(a in complex(), b in complex()) {
        let lhs = (a * b).norm();
        let rhs = a.norm() * b.norm();
        prop_assert!((lhs - rhs).abs() <= 1e-9 * rhs.max(1.0));
    }

    #[test]
    fn conjugation_is_involution(a in complex()) {
        prop_assert_eq!(a.conj().conj(), a);
    }

    #[test]
    fn polar_round_trips(a in complex()) {
        prop_assume!(a.norm() > 1e-9);
        let (r, t) = a.to_polar();
        prop_assert!((Complex64::from_polar(r, t) - a).norm() < 1e-9 * r.max(1.0));
    }

    // ---- Transforms ----

    #[test]
    fn idft_inverts_dft(x in complex_vec(1..40usize)) {
        let y = idft(&dft(&x));
        let scale = x.iter().map(|z| z.norm()).fold(1.0f64, f64::max);
        for (a, b) in x.iter().zip(&y) {
            prop_assert!((*a - *b).norm() < 1e-8 * scale * x.len() as f64);
        }
    }

    #[test]
    fn ifft_inverts_fft(x in complex_vec(1..8usize).prop_map(|v| {
        let n = v.len().next_power_of_two();
        let mut v = v;
        v.resize(n, Complex64::ZERO);
        v
    })) {
        let y = ifft(&fft(&x).unwrap()).unwrap();
        let scale = x.iter().map(|z| z.norm()).fold(1.0f64, f64::max);
        for (a, b) in x.iter().zip(&y) {
            prop_assert!((*a - *b).norm() < 1e-8 * scale.max(1.0));
        }
    }

    #[test]
    fn parseval_for_dft(x in complex_vec(1..32usize)) {
        let y = dft(&x);
        let ex: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let ey: f64 = y.iter().map(|z| z.norm_sqr()).sum::<f64>() / x.len() as f64;
        prop_assert!((ex - ey).abs() <= 1e-6 * ex.max(1.0));
    }

    #[test]
    fn dft_is_linear(x in complex_vec(1..16usize), k in finite()) {
        let scaled: Vec<Complex64> = x.iter().map(|&z| z * k).collect();
        let a = dft(&scaled);
        let b: Vec<Complex64> = dft(&x).into_iter().map(|z| z * k).collect();
        let scale = b.iter().map(|z| z.norm()).fold(1.0f64, f64::max);
        for (p, q) in a.iter().zip(&b) {
            prop_assert!((*p - *q).norm() < 1e-7 * scale);
        }
    }

    #[test]
    fn nudft_zero_delay_is_mean(x in complex_vec(1..31usize)) {
        let freqs: Vec<f64> = (0..x.len()).map(|i| 2.4e9 + i as f64 * 312.5e3).collect();
        let got = nudft_at_delay(&x, &freqs, 0.0);
        let mean: Complex64 = x.iter().sum::<Complex64>() / x.len() as f64;
        prop_assert!((got - mean).norm() < 1e-9 * mean.norm().max(1.0));
    }

    // ---- Eigendecomposition ----

    #[test]
    fn hermitian_eig_reconstructs(entries in proptest::collection::vec((finite(), finite()), 9)) {
        // Build a 3×3 Hermitian matrix from arbitrary entries: A = BᴴB + εI.
        let b = CMatrix::from_fn(3, 3, |r, c| {
            let (re, im) = entries[r * 3 + c];
            Complex64::new(re / 100.0, im / 100.0)
        });
        let a = &(&b.hermitian() * &b) + &CMatrix::identity(3).scale(0.01);
        let e = hermitian_eig(&a, 1e-12).unwrap();
        let resid = (&a - &e.reconstruct()).frobenius_norm() / a.frobenius_norm();
        prop_assert!(resid < 1e-8, "residual {resid}");
        // PSD + shift: all eigenvalues ≥ 0.01 − tol.
        for &v in &e.values {
            prop_assert!(v >= 0.01 - 1e-8);
        }
        // Unitary eigenvectors.
        let gram = &e.vectors.hermitian() * &e.vectors;
        prop_assert!((&gram - &CMatrix::identity(3)).frobenius_norm() < 1e-7);
        // Trace preserved.
        let tr: f64 = e.values.iter().sum();
        prop_assert!((tr - a.trace().re).abs() < 1e-7 * a.trace().re.abs().max(1.0));
    }

    // ---- Statistics ----

    #[test]
    fn variance_is_nonnegative_and_shift_invariant(xs in proptest::collection::vec(finite(), 2..64), shift in finite()) {
        let v = variance(&xs);
        prop_assert!(v >= 0.0);
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        prop_assert!((variance(&shifted) - v).abs() < 1e-5 * v.max(1.0));
    }

    #[test]
    fn mean_bounded_by_extremes(xs in proptest::collection::vec(finite(), 1..64)) {
        let m = mean(&xs);
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
    }

    #[test]
    fn median_splits_mass(xs in proptest::collection::vec(finite(), 1..64)) {
        let med = median(&xs);
        let below = xs.iter().filter(|&&x| x <= med + 1e-12).count();
        let above = xs.iter().filter(|&&x| x >= med - 1e-12).count();
        prop_assert!(below * 2 >= xs.len());
        prop_assert!(above * 2 >= xs.len());
    }

    #[test]
    fn ecdf_is_monotone_cdf(xs in proptest::collection::vec(finite(), 1..64)) {
        let e = Ecdf::new(&xs);
        let curve = e.curve(32);
        for w in curve.windows(2) {
            prop_assert!(w[1].1 >= w[0].1 - 1e-12);
        }
        prop_assert!(e.eval(f64::INFINITY) == 1.0);
        prop_assert!(e.eval(f64::NEG_INFINITY) == 0.0);
    }

    #[test]
    fn moving_variance_length(xs in proptest::collection::vec(finite(), 0..64), w in 1usize..16) {
        let mv = moving_variance(&xs, w);
        if xs.len() >= w {
            prop_assert_eq!(mv.len(), xs.len() - w + 1);
        } else {
            prop_assert!(mv.is_empty());
        }
        prop_assert!(mv.iter().all(|&v| v >= 0.0));
    }

    // ---- Fitting ----

    #[test]
    fn linear_fit_recovers_exact_lines(a in -50f64..50.0, b in -50f64..50.0, n in 3usize..40) {
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| a * x + b).collect();
        let fit = linear_fit(&xs, &ys).unwrap();
        prop_assert!((fit.slope - a).abs() < 1e-6 * a.abs().max(1.0));
        prop_assert!((fit.intercept - b).abs() < 1e-6 * b.abs().max(1.0));
    }

    #[test]
    fn log_fit_recovers_exact_log_curves(a in -20f64..20.0, b in -20f64..20.0) {
        let xs: Vec<f64> = (1..50).map(|i| i as f64 * 0.02).collect();
        let ys: Vec<f64> = xs.iter().map(|x| a * x.ln() + b).collect();
        let fit = log_fit(&xs, &ys).unwrap();
        prop_assert!((fit.slope - a).abs() < 1e-6 * a.abs().max(1.0));
        prop_assert!((fit.intercept - b).abs() < 1e-6 * b.abs().max(1.0));
    }
}
