//! Surface materials and their interaction coefficients.
//!
//! Each wall/obstacle carries a [`Material`] with two amplitude-domain
//! coefficients:
//!
//! - `reflection`: fraction of incident *amplitude* preserved by a bounce
//!   (the `Γ` entering the reflected-path gain).
//! - `transmission`: fraction of amplitude preserved when a ray passes
//!   *through* the obstacle (interior walls, furniture).
//!
//! The presets are representative magnitudes for 2.4 GHz indoor materials;
//! the paper's analysis (§III-B) treats them as environmental constants
//! folded into the amplitude ratio `γ`.

use serde::{Deserialize, Serialize};

/// A propagation surface material.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Material {
    /// Amplitude reflection coefficient `Γ ∈ [0, 1]`.
    reflection: f64,
    /// Amplitude transmission coefficient `∈ [0, 1]` for rays crossing it.
    transmission: f64,
    /// Short human-readable label. Cosmetic only: deserialized materials
    /// get a generic label since `&'static str` cannot be deserialized.
    #[serde(skip_deserializing, default = "deserialized_name")]
    name: &'static str,
}

// Referenced from the `#[serde(default = "...")]` attribute above, which
// the vendored serde stand-in parses but does not yet expand into code.
#[allow(dead_code)]
fn deserialized_name() -> &'static str {
    "material"
}

impl Material {
    /// Poured concrete / brick: strong reflector, nearly opaque.
    pub const CONCRETE: Material = Material {
        reflection: 0.70,
        transmission: 0.15,
        name: "concrete",
    };
    /// Drywall / plasterboard partition.
    pub const DRYWALL: Material = Material {
        reflection: 0.35,
        transmission: 0.65,
        name: "drywall",
    };
    /// Window glass.
    pub const GLASS: Material = Material {
        reflection: 0.50,
        transmission: 0.70,
        name: "glass",
    };
    /// Metal cabinet / whiteboard backing: near-perfect reflector.
    pub const METAL: Material = Material {
        reflection: 0.95,
        transmission: 0.02,
        name: "metal",
    };
    /// Wooden desks and shelves.
    pub const WOOD: Material = Material {
        reflection: 0.40,
        transmission: 0.55,
        name: "wood",
    };
    /// Human tissue: the paper's dielectric-cylinder body (§III-B, \[19\]).
    pub const HUMAN_BODY: Material = Material {
        reflection: 0.38,
        transmission: 0.25,
        name: "human-body",
    };

    /// Creates a custom material.
    ///
    /// # Panics
    /// Panics unless both coefficients are in `[0, 1]`.
    pub fn new(name: &'static str, reflection: f64, transmission: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&reflection),
            "reflection coefficient must be in [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&transmission),
            "transmission coefficient must be in [0, 1]"
        );
        Material {
            reflection,
            transmission,
            name,
        }
    }

    /// Amplitude reflection coefficient.
    pub fn reflection(&self) -> f64 {
        self.reflection
    }

    /// Amplitude transmission coefficient.
    pub fn transmission(&self) -> f64 {
        self.transmission
    }

    /// Material label.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl Default for Material {
    /// Concrete — the typical load-bearing wall of the paper's academic
    /// building testbed.
    fn default() -> Self {
        Material::CONCRETE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_physical() {
        for m in [
            Material::CONCRETE,
            Material::DRYWALL,
            Material::GLASS,
            Material::METAL,
            Material::WOOD,
            Material::HUMAN_BODY,
        ] {
            assert!((0.0..=1.0).contains(&m.reflection()), "{}", m.name());
            assert!((0.0..=1.0).contains(&m.transmission()), "{}", m.name());
            // No material both reflects and transmits perfectly.
            assert!(m.reflection() + m.transmission() < 1.5, "{}", m.name());
        }
    }

    #[test]
    fn metal_reflects_more_than_drywall() {
        assert!(Material::METAL.reflection() > Material::DRYWALL.reflection());
        assert!(Material::METAL.transmission() < Material::DRYWALL.transmission());
    }

    #[test]
    fn custom_material() {
        let m = Material::new("brick", 0.6, 0.2);
        assert_eq!(m.name(), "brick");
        assert_eq!(m.reflection(), 0.6);
        assert_eq!(m.transmission(), 0.2);
    }

    #[test]
    #[should_panic(expected = "reflection coefficient")]
    fn out_of_range_reflection_panics() {
        let _ = Material::new("bad", 1.5, 0.0);
    }

    #[test]
    #[should_panic(expected = "transmission coefficient")]
    fn out_of_range_transmission_panics() {
        let _ = Material::new("bad", 0.5, -0.1);
    }

    #[test]
    fn default_is_concrete() {
        assert_eq!(Material::default(), Material::CONCRETE);
    }
}
