//! Human-body interaction models.
//!
//! The paper models a person as a dielectric elliptic cylinder (\[19\]) that
//! affects a link in two ways (§II-A, Fig. 1):
//!
//! 1. **Shadowing** — amplitude attenuation `β < 1` on any path the body
//!    blocks, with the phase left deterministic (paper's \[20\] assumption,
//!    used to derive Eq. 6).
//! 2. **Reflection** — a new single-bounce path TX→body→RX (Eq. 7).
//!
//! Both are implemented here in plan view with a circular body footprint.

use serde::{Deserialize, Serialize};

use mpdf_geom::shapes::Circle;
use mpdf_geom::vec2::Point;

use crate::environment::Environment;
use crate::material::Material;
use crate::path::{PathKind, PropagationPath};

/// A human body at a fixed position.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HumanBody {
    position: Point,
    radius: f64,
    reflectivity: f64,
    min_shadow: f64,
}

impl HumanBody {
    /// Default body footprint radius (metres): half a typical torso width.
    pub const DEFAULT_RADIUS: f64 = 0.20;
    /// Default amplitude attenuation when the body centrally blocks a path.
    /// `0.35` amplitude ≈ −9.1 dB power — mid-range of reported
    /// human-shadowing losses at 2.4 GHz.
    pub const DEFAULT_MIN_SHADOW: f64 = 0.35;

    /// Creates a body with default radius, reflectivity and shadow depth.
    pub fn new(position: Point) -> Self {
        HumanBody {
            position,
            radius: Self::DEFAULT_RADIUS,
            reflectivity: Material::HUMAN_BODY.reflection(),
            min_shadow: Self::DEFAULT_MIN_SHADOW,
        }
    }

    /// Creates a body with explicit parameters.
    ///
    /// # Panics
    /// Panics if `radius <= 0`, or `reflectivity`/`min_shadow` are outside
    /// `[0, 1]`.
    pub fn with_params(position: Point, radius: f64, reflectivity: f64, min_shadow: f64) -> Self {
        assert!(
            radius > 0.0 && radius.is_finite(),
            "radius must be positive"
        );
        assert!(
            (0.0..=1.0).contains(&reflectivity),
            "reflectivity must be in [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&min_shadow),
            "min_shadow must be in [0, 1]"
        );
        HumanBody {
            position,
            radius,
            reflectivity,
            min_shadow,
        }
    }

    /// Current position.
    pub fn position(&self) -> Point {
        self.position
    }

    /// Returns a copy relocated to `position` (trajectory stepping).
    pub fn at(&self, position: Point) -> HumanBody {
        HumanBody { position, ..*self }
    }

    /// Body footprint radius.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Body amplitude reflectivity.
    pub fn reflectivity(&self) -> f64 {
        self.reflectivity
    }

    /// Body footprint circle.
    pub fn footprint(&self) -> Circle {
        Circle::new(self.position, self.radius)
    }

    /// Shadowing amplitude factor `β ∈ [min_shadow, 1]` for a path.
    ///
    /// Each leg the body penetrates is attenuated proportionally to the
    /// normalized penetration depth (grazing the rim ≈ no attenuation,
    /// passing through the centre ≈ `min_shadow`); legs multiply. The
    /// phase is untouched, per the paper's shadowing model.
    pub fn shadow_factor(&self, path: &PropagationPath) -> f64 {
        let disk = self.footprint();
        let mut beta = 1.0;
        // Iterate the polyline directly — identical legs to
        // `path.legs()` without materializing the segment vector (this
        // runs once per path per snapshot, the hot loop of a campaign).
        for w in path.vertices().windows(2) {
            let leg = mpdf_geom::segment::Segment::new(w[0], w[1]);
            let pen = disk.penetration(&leg);
            if pen > 0.0 {
                beta *= 1.0 - (1.0 - self.min_shadow) * pen;
            }
        }
        beta
    }

    /// The human-created single-bounce scattered path TX→body→RX
    /// (paper Eq. 7's `a'_R e^{-jφ'_R}` term), if geometrically valid.
    ///
    /// The amplitude factor combines the body reflectivity with the
    /// obstacle transmission of both legs. Returns `None` when the body
    /// sits (numerically) on top of either endpoint.
    pub fn scatter_path(&self, env: &Environment, tx: Point, rx: Point) -> Option<PropagationPath> {
        if self.position.distance(tx) < 1e-6 || self.position.distance(rx) < 1e-6 {
            return None;
        }
        let leg1 = mpdf_geom::segment::Segment::new(tx, self.position);
        let leg2 = mpdf_geom::segment::Segment::new(self.position, rx);
        let factor =
            self.reflectivity * env.leg_transmission(&leg1, &[]) * env.leg_transmission(&leg2, &[]);
        Some(PropagationPath::new(
            vec![tx, self.position, rx],
            factor,
            PathKind::HumanScatter,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdf_geom::shapes::Rect;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn env() -> Environment {
        Environment::empty_room(Rect::new(p(0.0, 0.0), p(8.0, 6.0)))
    }

    fn los(tx: Point, rx: Point) -> PropagationPath {
        PropagationPath::new(vec![tx, rx], 1.0, PathKind::LineOfSight)
    }

    #[test]
    fn central_blockage_gives_full_shadow() {
        let body = HumanBody::new(p(4.0, 3.0));
        let path = los(p(2.0, 3.0), p(6.0, 3.0));
        let beta = body.shadow_factor(&path);
        assert!((beta - HumanBody::DEFAULT_MIN_SHADOW).abs() < 1e-12);
    }

    #[test]
    fn off_path_body_casts_no_shadow() {
        let body = HumanBody::new(p(4.0, 4.0)); // 1 m off the link
        let path = los(p(2.0, 3.0), p(6.0, 3.0));
        assert_eq!(body.shadow_factor(&path), 1.0);
    }

    #[test]
    fn grazing_blockage_attenuates_mildly() {
        let body = HumanBody::new(p(4.0, 3.15)); // off-centre by 0.15 < r=0.2
        let path = los(p(2.0, 3.0), p(6.0, 3.0));
        let beta = body.shadow_factor(&path);
        assert!(beta > HumanBody::DEFAULT_MIN_SHADOW && beta < 1.0);
    }

    #[test]
    fn shadow_applies_per_leg_of_bounced_path() {
        // Body sits on the reflected leg, not the LOS.
        let body = HumanBody::new(p(3.0, 1.5));
        let bounce = PropagationPath::new(
            vec![p(2.0, 3.0), p(4.0, 0.0), p(6.0, 3.0)],
            0.7,
            PathKind::WallReflection { order: 1 },
        );
        // Leg 1 from (2,3) to (4,0) passes near (3,1.5)?  That leg's
        // midpoint IS (3, 1.5) — body blocks it centrally.
        let beta = body.shadow_factor(&bounce);
        assert!((beta - HumanBody::DEFAULT_MIN_SHADOW).abs() < 1e-9);
        // The same body does not shadow the direct path.
        assert_eq!(body.shadow_factor(&los(p(2.0, 3.0), p(6.0, 3.0))), 1.0);
    }

    #[test]
    fn scatter_path_geometry() {
        let body = HumanBody::new(p(4.0, 4.0));
        let sp = body.scatter_path(&env(), p(2.0, 3.0), p(6.0, 3.0)).unwrap();
        assert_eq!(sp.kind(), PathKind::HumanScatter);
        assert_eq!(sp.vertices().len(), 3);
        assert_eq!(sp.vertices()[1], p(4.0, 4.0));
        assert!((sp.amplitude_factor() - Material::HUMAN_BODY.reflection()).abs() < 1e-12);
        // Longer than the LOS.
        assert!(sp.length() > 4.0);
    }

    #[test]
    fn scatter_on_endpoint_is_rejected() {
        let body = HumanBody::new(p(2.0, 3.0));
        assert!(body
            .scatter_path(&env(), p(2.0, 3.0), p(6.0, 3.0))
            .is_none());
    }

    #[test]
    fn scatter_behind_furniture_is_attenuated() {
        let mut b = Environment::builder(Rect::new(p(0.0, 0.0), p(8.0, 6.0)), Material::CONCRETE);
        // Horizontal strip just below the body: both scatter legs cross it.
        b.furniture(Rect::new(p(3.0, 3.7), p(5.0, 3.9)), Material::METAL);
        let env = b.build();
        let body = HumanBody::new(p(4.0, 4.0));
        let sp = body.scatter_path(&env, p(2.0, 3.0), p(6.0, 3.0)).unwrap();
        // Both legs cross the metal strip.
        let expect = Material::HUMAN_BODY.reflection() * Material::METAL.transmission().powi(2);
        assert!((sp.amplitude_factor() - expect).abs() < 1e-12);
    }

    #[test]
    fn relocation_preserves_parameters() {
        let body = HumanBody::with_params(p(1.0, 1.0), 0.25, 0.5, 0.4);
        let moved = body.at(p(2.0, 2.0));
        assert_eq!(moved.position(), p(2.0, 2.0));
        assert_eq!(moved.radius(), 0.25);
        assert_eq!(moved.reflectivity(), 0.5);
    }

    #[test]
    #[should_panic(expected = "radius must be positive")]
    fn zero_radius_panics() {
        let _ = HumanBody::with_params(p(0.0, 0.0), 0.0, 0.5, 0.5);
    }
}
