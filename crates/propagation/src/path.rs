//! Propagation paths.
//!
//! A [`PropagationPath`] is a polyline from transmitter to receiver with a
//! frequency-independent amplitude factor (the product of reflection and
//! transmission coefficients collected along the way). Its complex gain at
//! a frequency combines that factor with the path-loss amplitude and the
//! travel phase `e^{-j2πf·d/c}` — exactly the `a_i e^{-jθ_i}` terms of the
//! paper's CIR (Eq. 1).

use serde::{Deserialize, Serialize};

use mpdf_geom::vec2::{Point, Vec2};
use mpdf_rfmath::complex::Complex64;

use crate::pathloss::{PathLossModel, SPEED_OF_LIGHT};

/// What created a path — used by experiments to split LOS/NLOS behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PathKind {
    /// The direct transmitter→receiver path.
    LineOfSight,
    /// A wall reflection of the given bounce order (1 or 2 here).
    WallReflection {
        /// Number of wall bounces.
        order: u8,
    },
    /// A single-bounce scatter off a human body (paper Fig. 1e).
    HumanScatter,
}

impl PathKind {
    /// True for any path other than the direct one.
    pub fn is_nlos(self) -> bool {
        !matches!(self, PathKind::LineOfSight)
    }
}

/// A traced propagation path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PropagationPath {
    vertices: Vec<Point>,
    amplitude_factor: f64,
    kind: PathKind,
}

impl PropagationPath {
    /// Creates a path from its polyline vertices (first = TX, last = RX)
    /// and the accumulated amplitude factor.
    ///
    /// # Panics
    /// Panics if fewer than two vertices are given, any vertex is
    /// non-finite, or the amplitude factor is negative/non-finite.
    pub fn new(vertices: Vec<Point>, amplitude_factor: f64, kind: PathKind) -> Self {
        assert!(vertices.len() >= 2, "a path needs at least two vertices");
        assert!(
            vertices.iter().all(|v| v.is_finite()),
            "path vertices must be finite"
        );
        assert!(
            amplitude_factor.is_finite() && amplitude_factor >= 0.0,
            "amplitude factor must be finite and non-negative"
        );
        PropagationPath {
            vertices,
            amplitude_factor,
            kind,
        }
    }

    /// Polyline vertices, transmitter first.
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Path classification.
    pub fn kind(&self) -> PathKind {
        self.kind
    }

    /// Frequency-independent amplitude factor (`∏Γ · ∏transmissions`,
    /// possibly scaled by human shadowing).
    pub fn amplitude_factor(&self) -> f64 {
        self.amplitude_factor
    }

    /// Returns a copy with the amplitude factor scaled by `k` (how the
    /// shadowing model applies its attenuation `β`).
    ///
    /// # Panics
    /// Panics if `k` is negative or non-finite.
    pub fn attenuated(&self, k: f64) -> PropagationPath {
        assert!(k.is_finite() && k >= 0.0, "attenuation must be >= 0");
        PropagationPath {
            vertices: self.vertices.clone(),
            amplitude_factor: self.amplitude_factor * k,
            kind: self.kind,
        }
    }

    /// Total geometric length in metres.
    pub fn length(&self) -> f64 {
        self.vertices.windows(2).map(|w| w[0].distance(w[1])).sum()
    }

    /// Propagation delay in seconds.
    pub fn delay(&self) -> f64 {
        self.length() / SPEED_OF_LIGHT
    }

    /// Excess length over a reference (usually the LOS path) in metres —
    /// the `Δd` in the paper's phase-shift relation `φ = 2πfΔd/c`.
    pub fn excess_length(&self, reference: &PropagationPath) -> f64 {
        self.length() - reference.length()
    }

    /// Unit vector of the *arrival* direction at the receiver (pointing
    /// from the last intermediate vertex toward the receiver). `None` for
    /// degenerate final legs.
    pub fn arrival_direction(&self) -> Option<Vec2> {
        let n = self.vertices.len();
        (self.vertices[n - 1] - self.vertices[n - 2]).normalized()
    }

    /// Segments of the polyline (TX→v1, v1→v2, …, →RX).
    pub fn legs(&self) -> Vec<mpdf_geom::segment::Segment> {
        self.vertices
            .windows(2)
            .map(|w| mpdf_geom::segment::Segment::new(w[0], w[1]))
            .collect()
    }

    /// Complex path gain `a·e^{-j2πf·d/c}` at frequency `f` under the
    /// given path-loss model.
    ///
    /// # Panics
    /// Panics if the path length is zero (TX and RX coincide) or `f <= 0`.
    pub fn gain(&self, f: f64, model: &PathLossModel) -> Complex64 {
        let d = self.length();
        let amplitude = self.amplitude_factor * model.amplitude_gain(d, f);
        let phase = -2.0 * std::f64::consts::PI * f * d / SPEED_OF_LIGHT;
        Complex64::from_polar(amplitude, phase)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    const F: f64 = 2.462e9;

    #[test]
    fn straight_path_length_and_delay() {
        let path = PropagationPath::new(vec![p(0.0, 0.0), p(3.0, 4.0)], 1.0, PathKind::LineOfSight);
        assert!((path.length() - 5.0).abs() < 1e-12);
        assert!((path.delay() - 5.0 / SPEED_OF_LIGHT).abs() < 1e-20);
    }

    #[test]
    fn bounced_path_length_sums_legs() {
        let path = PropagationPath::new(
            vec![p(0.0, 0.0), p(2.0, 2.0), p(4.0, 0.0)],
            0.7,
            PathKind::WallReflection { order: 1 },
        );
        assert!((path.length() - 2.0 * 8.0f64.sqrt()).abs() < 1e-12);
        assert_eq!(path.legs().len(), 2);
        assert!(path.kind().is_nlos());
    }

    #[test]
    fn excess_length_vs_los() {
        let los = PropagationPath::new(vec![p(0.0, 0.0), p(4.0, 0.0)], 1.0, PathKind::LineOfSight);
        let refl = PropagationPath::new(
            vec![p(0.0, 0.0), p(2.0, 1.5), p(4.0, 0.0)],
            0.7,
            PathKind::WallReflection { order: 1 },
        );
        assert!(refl.excess_length(&los) > 0.0);
        assert!((los.excess_length(&los)).abs() < 1e-12);
    }

    #[test]
    fn arrival_direction_is_last_leg() {
        let path = PropagationPath::new(
            vec![p(0.0, 0.0), p(2.0, 2.0), p(2.0, 0.0)],
            1.0,
            PathKind::WallReflection { order: 1 },
        );
        let dir = path.arrival_direction().unwrap();
        assert!((dir - Vec2::new(0.0, -1.0)).norm() < 1e-12);
    }

    #[test]
    fn gain_magnitude_and_phase() {
        let model = PathLossModel::FREE_SPACE;
        let path = PropagationPath::new(vec![p(0.0, 0.0), p(4.0, 0.0)], 0.5, PathKind::LineOfSight);
        let g = path.gain(F, &model);
        let expect_amp = 0.5 * model.amplitude_gain(4.0, F);
        assert!((g.norm() - expect_amp).abs() < 1e-15);
        let expect_phase = (-2.0 * std::f64::consts::PI * F * 4.0 / SPEED_OF_LIGHT)
            .rem_euclid(2.0 * std::f64::consts::PI);
        let got_phase = g.arg().rem_euclid(2.0 * std::f64::consts::PI);
        assert!((got_phase - expect_phase).abs() < 1e-6);
    }

    #[test]
    fn longer_paths_are_weaker_and_rotate_phase() {
        let model = PathLossModel::indoor_office();
        let short =
            PropagationPath::new(vec![p(0.0, 0.0), p(2.0, 0.0)], 1.0, PathKind::LineOfSight);
        let long = PropagationPath::new(vec![p(0.0, 0.0), p(6.0, 0.0)], 1.0, PathKind::LineOfSight);
        assert!(short.gain(F, &model).norm() > long.gain(F, &model).norm());
    }

    #[test]
    fn attenuated_scales_amplitude_only() {
        let path = PropagationPath::new(vec![p(0.0, 0.0), p(1.0, 0.0)], 0.8, PathKind::LineOfSight);
        let att = path.attenuated(0.5);
        assert!((att.amplitude_factor() - 0.4).abs() < 1e-15);
        assert_eq!(att.vertices(), path.vertices());
        let model = PathLossModel::FREE_SPACE;
        let g0 = path.gain(F, &model);
        let g1 = att.gain(F, &model);
        assert!((g1.norm() / g0.norm() - 0.5).abs() < 1e-12);
        assert!(
            (g1.arg() - g0.arg()).abs() < 1e-12,
            "phase must be unchanged"
        );
    }

    #[test]
    #[should_panic(expected = "at least two vertices")]
    fn single_vertex_panics() {
        let _ = PropagationPath::new(vec![p(0.0, 0.0)], 1.0, PathKind::LineOfSight);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_amplitude_panics() {
        let _ = PropagationPath::new(vec![p(0.0, 0.0), p(1.0, 0.0)], -0.1, PathKind::LineOfSight);
    }
}
