//! # mpdf-propagation — ray-bouncing indoor channel simulator
//!
//! The physical substrate replacing the paper's physical testbed: a 2-D
//! image-method ray tracer with material-aware walls and furniture, the
//! paper's dielectric-cylinder human model (shadowing + body scattering),
//! and CFR evaluation with per-antenna phase offsets.
//!
//! Pipeline: [`environment::Environment`] → [`tracer::trace`] →
//! [`channel::ChannelSnapshot`] → CFR samples consumed by `mpdf-wifi`.
//!
//! ```
//! use mpdf_geom::shapes::Rect;
//! use mpdf_geom::vec2::Vec2;
//! use mpdf_propagation::channel::ChannelModel;
//! use mpdf_propagation::environment::Environment;
//! use mpdf_propagation::human::HumanBody;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let room = Environment::empty_room(Rect::new(Vec2::ZERO, Vec2::new(8.0, 6.0)));
//! let link = ChannelModel::new(room, Vec2::new(2.0, 3.0), Vec2::new(6.0, 3.0))?;
//! let calm = link.snapshot(None)?;
//! let person = HumanBody::new(Vec2::new(4.0, 3.0));
//! let busy = link.snapshot(Some(&person))?;
//! assert!(busy.power(2.462e9) != calm.power(2.462e9));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod channel;
pub mod environment;
pub mod human;
pub mod material;
pub mod path;
pub mod pathloss;
pub mod tracer;
pub mod trajectory;

pub use channel::{ChannelModel, ChannelSnapshot};
pub use environment::Environment;
pub use human::HumanBody;
pub use material::Material;
pub use path::{PathKind, PropagationPath};
pub use pathloss::{PathLossModel, SPEED_OF_LIGHT};
