//! Free-space path loss (paper Eq. 9).
//!
//! The paper uses the Friis form with an environmental attenuation factor
//! `n`:
//!
//! `P_r = P_t·G_t·G_r·c² / ((4πd)^n · f²)`
//!
//! The multipath factor's frequency split (Eq. 10) relies on the `f⁻²`
//! dependence of this law, so the same [`PathLossModel`] instance is shared
//! by the simulator and referenced in the detector's documentation.

use serde::{Deserialize, Serialize};

/// Speed of light in vacuum (m/s).
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;

/// Free-space path-loss model with environment exponent.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathLossModel {
    /// Environmental attenuation factor `n` (2 = free space; indoor
    /// office values run 2.5–4).
    exponent: f64,
    /// Product of antenna gains `G_t·G_r` (linear).
    antenna_gains: f64,
}

impl PathLossModel {
    /// Pure free-space propagation (`n = 2`, unit antenna gains).
    pub const FREE_SPACE: PathLossModel = PathLossModel {
        exponent: 2.0,
        antenna_gains: 1.0,
    };

    /// Creates a model with the given exponent and combined antenna gain.
    ///
    /// # Panics
    /// Panics if `exponent < 1` or `antenna_gains <= 0` (unphysical).
    pub fn new(exponent: f64, antenna_gains: f64) -> Self {
        assert!(exponent >= 1.0, "attenuation exponent must be >= 1");
        assert!(antenna_gains > 0.0, "antenna gains must be positive");
        PathLossModel {
            exponent,
            antenna_gains,
        }
    }

    /// Typical furnished-office model (`n = 2.8`).
    pub fn indoor_office() -> Self {
        PathLossModel::new(2.8, 1.0)
    }

    /// Environment attenuation exponent `n`.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Received/transmitted *power* ratio at distance `d` metres and
    /// frequency `f` Hz (paper Eq. 9 with `P_t = 1`).
    ///
    /// # Panics
    /// Panics if `d <= 0` or `f <= 0`.
    pub fn power_gain(&self, d: f64, f: f64) -> f64 {
        assert!(d > 0.0, "distance must be positive");
        assert!(f > 0.0, "frequency must be positive");
        let c2 = SPEED_OF_LIGHT * SPEED_OF_LIGHT;
        self.antenna_gains * c2 / ((4.0 * std::f64::consts::PI * d).powf(self.exponent) * f * f)
    }

    /// Amplitude gain `√(P_r/P_t)` — what multiplies a path's phasor.
    pub fn amplitude_gain(&self, d: f64, f: f64) -> f64 {
        self.power_gain(d, f).sqrt()
    }

    /// Distance-dependent factor `(4πd)^n` of the Friis denominator,
    /// hoisted out of the per-frequency loop: batch CFR evaluation pays
    /// the `powf` once per path instead of once per (path, frequency)
    /// sample.
    ///
    /// # Panics
    /// Panics if `d <= 0`.
    pub fn distance_term(&self, d: f64) -> f64 {
        assert!(d > 0.0, "distance must be positive");
        (4.0 * std::f64::consts::PI * d).powf(self.exponent)
    }

    /// [`PathLossModel::amplitude_gain`] with the distance term
    /// precomputed. Bitwise equal to `amplitude_gain(d, f)` whenever
    /// `pd == distance_term(d)`: the expression tree (and hence every
    /// rounding step) is identical, only the `powf` is reused.
    ///
    /// # Panics
    /// Panics if `pd <= 0` or `f <= 0`.
    pub fn amplitude_gain_hoisted(&self, pd: f64, f: f64) -> f64 {
        assert!(pd > 0.0, "distance term must be positive");
        assert!(f > 0.0, "frequency must be positive");
        let c2 = SPEED_OF_LIGHT * SPEED_OF_LIGHT;
        (self.antenna_gains * c2 / (pd * f * f)).sqrt()
    }

    /// Wavelength at frequency `f` Hz.
    pub fn wavelength(f: f64) -> f64 {
        SPEED_OF_LIGHT / f
    }
}

impl Default for PathLossModel {
    fn default() -> Self {
        PathLossModel::indoor_office()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const F: f64 = 2.462e9; // WiFi channel 11 centre

    #[test]
    fn free_space_matches_friis() {
        // Friis: Pr/Pt = (λ / 4πd)².
        let m = PathLossModel::FREE_SPACE;
        let d = 4.0;
        let lambda = PathLossModel::wavelength(F);
        let friis = (lambda / (4.0 * std::f64::consts::PI * d)).powi(2);
        assert!((m.power_gain(d, F) - friis).abs() < 1e-12 * friis);
    }

    #[test]
    fn power_decays_with_distance() {
        let m = PathLossModel::indoor_office();
        assert!(m.power_gain(1.0, F) > m.power_gain(2.0, F));
        assert!(m.power_gain(2.0, F) > m.power_gain(5.0, F));
    }

    #[test]
    fn exponent_controls_decay_rate() {
        let fs = PathLossModel::FREE_SPACE;
        let office = PathLossModel::indoor_office();
        let ratio_fs = fs.power_gain(1.0, F) / fs.power_gain(4.0, F);
        let ratio_office = office.power_gain(1.0, F) / office.power_gain(4.0, F);
        assert!(ratio_office > ratio_fs, "higher n must decay faster");
        // n=2: doubling distance costs exactly 6.02 dB.
        let db = 10.0 * (fs.power_gain(1.0, F) / fs.power_gain(2.0, F)).log10();
        assert!((db - 6.0206).abs() < 1e-3);
    }

    #[test]
    fn inverse_square_in_frequency() {
        // The f⁻² law the multipath factor's Eq. 10 split relies on.
        let m = PathLossModel::indoor_office();
        let g1 = m.power_gain(3.0, 2.4e9);
        let g2 = m.power_gain(3.0, 4.8e9);
        assert!((g1 / g2 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn amplitude_is_sqrt_power() {
        let m = PathLossModel::indoor_office();
        let a = m.amplitude_gain(2.5, F);
        let p = m.power_gain(2.5, F);
        assert!((a * a - p).abs() < 1e-15);
    }

    #[test]
    fn hoisted_amplitude_gain_is_bitwise_identical() {
        // The batch CFR path relies on this exact equality: hoisting the
        // `(4πd)^n` term must not perturb a single bit.
        for model in [PathLossModel::FREE_SPACE, PathLossModel::indoor_office()] {
            for d in [0.3, 1.0, 2.5, 4.0, 11.7] {
                let pd = model.distance_term(d);
                for f in [2.412e9, F, 5.8e9] {
                    assert_eq!(
                        model.amplitude_gain_hoisted(pd, f).to_bits(),
                        model.amplitude_gain(d, f).to_bits()
                    );
                }
            }
        }
    }

    #[test]
    fn wavelength_at_wifi() {
        let lambda = PathLossModel::wavelength(F);
        assert!((lambda - 0.1218).abs() < 1e-3); // ≈12.2 cm
    }

    #[test]
    #[should_panic(expected = "distance must be positive")]
    fn zero_distance_panics() {
        PathLossModel::FREE_SPACE.power_gain(0.0, F);
    }

    #[test]
    #[should_panic(expected = "attenuation exponent")]
    fn silly_exponent_panics() {
        let _ = PathLossModel::new(0.5, 1.0);
    }
}
