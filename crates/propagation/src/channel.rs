//! The multipath channel: paths → channel frequency response.
//!
//! [`ChannelModel`] binds an environment to a TX–RX link; a
//! [`ChannelSnapshot`] freezes the traced path set for one instant (one
//! human position) and evaluates the CFR the paper's Eq. 1/2 describe:
//!
//! `H(f) = Σ_i a_i·e^{-jθ_i(f)}`
//!
//! Snapshots also expose *ground truth* the physical testbed could never
//! report — the true per-frequency LOS power fraction — which the test
//! suite uses to validate the paper's measurable multipath-factor proxy.

use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use serde::{Deserialize, Serialize};

use mpdf_geom::vec2::{Point, Vec2};
use mpdf_rfmath::complex::Complex64;

use crate::environment::Environment;
use crate::human::HumanBody;
use crate::path::{PathKind, PropagationPath};
use crate::pathloss::{PathLossModel, SPEED_OF_LIGHT};
use crate::tracer::{trace, TraceConfig, TraceError};

/// A TX–RX link inside an environment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelModel {
    env: Environment,
    tx: Point,
    rx: Point,
    pathloss: PathLossModel,
    #[serde(skip, default = "default_trace_config")]
    trace_cfg: TraceConfig,
    /// Environment paths, traced once — humans only modulate them.
    /// Shared via the process-wide trace cache: geometry never changes
    /// within a campaign, so every link with the same (environment, TX,
    /// RX, trace config) reuses one immutable traced path set.
    #[serde(skip)]
    static_paths: Arc<Vec<PropagationPath>>,
}

/// One entry of the static-geometry trace cache.
#[derive(Debug)]
struct TraceCacheEntry {
    env: Environment,
    tx: Point,
    rx: Point,
    cfg: TraceConfig,
    paths: Arc<Vec<PropagationPath>>,
}

/// Process-wide image-source trace cache. Campaigns trace a handful of
/// links over and over (every receiver clone / window fork rebuilds its
/// channel), so a bounded linear-scan vector keyed by exact equality
/// suffices; a cached path set is always bit-identical to a freshly
/// traced one because [`trace`] is a pure function of the key.
static TRACE_CACHE: OnceLock<Mutex<Vec<TraceCacheEntry>>> = OnceLock::new();

/// Cap on distinct cached traces; beyond this the oldest entry is
/// evicted (protects sweeps over many ad-hoc geometries from unbounded
/// growth).
const TRACE_CACHE_CAP: usize = 16;

/// Looks up (or computes and inserts) the traced static path set for a
/// link. Tracing runs outside the lock: two racing threads at worst
/// duplicate work, never diverge.
fn traced_paths_cached(
    env: &Environment,
    tx: Point,
    rx: Point,
    cfg: &TraceConfig,
) -> Result<Arc<Vec<PropagationPath>>, TraceError> {
    let cache = TRACE_CACHE.get_or_init(|| Mutex::new(Vec::new()));
    {
        // Cached path sets are immutable once inserted, so a poisoned
        // lock cannot hold corrupt data — recover instead of panicking.
        let entries = cache.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(e) = entries
            .iter()
            .find(|e| e.tx == tx && e.rx == rx && e.cfg == *cfg && e.env == *env)
        {
            mpdf_obs::counter!("physics.trace_cache.hits").inc();
            return Ok(Arc::clone(&e.paths));
        }
    }
    mpdf_obs::counter!("physics.trace_cache.misses").inc();
    let paths = Arc::new(trace(env, tx, rx, cfg)?);
    let mut entries = cache.lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(e) = entries
        .iter()
        .find(|e| e.tx == tx && e.rx == rx && e.cfg == *cfg && e.env == *env)
    {
        // A sibling thread inserted while we traced; both results are
        // bit-identical, keep the cached one.
        return Ok(Arc::clone(&e.paths));
    }
    if entries.len() >= TRACE_CACHE_CAP {
        entries.remove(0);
    }
    entries.push(TraceCacheEntry {
        env: env.clone(),
        tx,
        rx,
        cfg: *cfg,
        paths: Arc::clone(&paths),
    });
    Ok(paths)
}

// Referenced from the `#[serde(default = "...")]` attribute above, which
// the vendored serde stand-in parses but does not yet expand into code.
#[allow(dead_code)]
fn default_trace_config() -> TraceConfig {
    TraceConfig::default()
}

impl ChannelModel {
    /// Creates a channel model, validating the link geometry eagerly.
    ///
    /// # Errors
    /// Propagates [`TraceError`] for endpoints outside the room or a
    /// degenerate link.
    pub fn new(env: Environment, tx: Point, rx: Point) -> Result<Self, TraceError> {
        let trace_cfg = TraceConfig::default();
        let static_paths = traced_paths_cached(&env, tx, rx, &trace_cfg)?;
        Ok(ChannelModel {
            env,
            tx,
            rx,
            pathloss: PathLossModel::default(),
            trace_cfg,
            static_paths,
        })
    }

    /// Replaces the path-loss model (builder-style).
    pub fn with_pathloss(mut self, pathloss: PathLossModel) -> Self {
        self.pathloss = pathloss;
        self
    }

    /// Replaces the trace configuration (builder-style).
    ///
    /// # Errors
    /// Re-validates the link under the new configuration.
    pub fn with_trace_config(mut self, cfg: TraceConfig) -> Result<Self, TraceError> {
        self.static_paths = traced_paths_cached(&self.env, self.tx, self.rx, &cfg)?;
        self.trace_cfg = cfg;
        Ok(self)
    }

    /// Transmitter position.
    pub fn tx(&self) -> Point {
        self.tx
    }

    /// Receiver position.
    pub fn rx(&self) -> Point {
        self.rx
    }

    /// The environment.
    pub fn environment(&self) -> &Environment {
        &self.env
    }

    /// Path-loss model in effect.
    pub fn pathloss(&self) -> &PathLossModel {
        &self.pathloss
    }

    /// TX–RX distance in metres.
    pub fn link_length(&self) -> f64 {
        self.tx.distance(self.rx)
    }

    /// Traces the channel for an optional human presence and freezes the
    /// result.
    ///
    /// When a human is present every environment path is attenuated by the
    /// body's shadow factor and the single-bounce scatter path is appended
    /// (paper Eq. 4 and Eq. 7).
    ///
    /// # Errors
    /// Propagates [`TraceError`] (can only occur if the model was built
    /// with unchecked mutation, but kept for API honesty).
    pub fn snapshot(&self, human: Option<&HumanBody>) -> Result<ChannelSnapshot, TraceError> {
        match human {
            Some(body) => self.snapshot_multi(std::slice::from_ref(body)),
            None => self.snapshot_multi(&[]),
        }
    }

    /// Traces the channel with any number of simultaneously present
    /// humans (e.g. the monitored person plus background walkers ≥5 m
    /// away, as in the paper's measurement campaign).
    ///
    /// Every environment path is attenuated by the product of all body
    /// shadow factors; each body contributes its own scatter path, itself
    /// shadowed by the *other* bodies.
    ///
    /// # Errors
    /// Propagates [`TraceError`].
    pub fn snapshot_multi(&self, humans: &[HumanBody]) -> Result<ChannelSnapshot, TraceError> {
        let paths = if humans.is_empty() {
            self.static_paths.as_ref().clone()
        } else {
            // One exact-size allocation: attenuate the shared static
            // paths directly instead of cloning and re-collecting.
            let mut paths = Vec::with_capacity(self.static_paths.len() + humans.len());
            for p in self.static_paths.iter() {
                let beta: f64 = humans.iter().map(|b| b.shadow_factor(p)).product();
                paths.push(p.attenuated(beta));
            }
            for (i, body) in humans.iter().enumerate() {
                if let Some(sp) = body.scatter_path(&self.env, self.tx, self.rx) {
                    let beta: f64 = humans
                        .iter()
                        .enumerate()
                        .filter(|(j, _)| *j != i)
                        .map(|(_, other)| other.shadow_factor(&sp))
                        .product();
                    paths.push(sp.attenuated(beta));
                }
            }
            paths
        };
        Ok(ChannelSnapshot {
            paths,
            pathloss: self.pathloss,
            rx: self.rx,
        })
    }
}

/// A frozen path set with CFR evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelSnapshot {
    paths: Vec<PropagationPath>,
    pathloss: PathLossModel,
    rx: Point,
}

impl ChannelSnapshot {
    /// The traced paths, shortest first.
    pub fn paths(&self) -> &[PropagationPath] {
        &self.paths
    }

    /// Complex CFR sample at frequency `f` for an observation point
    /// displaced `offset` metres from the nominal receiver (far-field
    /// plane-wave approximation — how each array element sees a shifted
    /// phase per path).
    pub fn cfr_at(&self, f: f64, offset: Vec2) -> Complex64 {
        self.paths
            .iter()
            .map(|p| {
                let g = p.gain(f, &self.pathloss);
                match p.arrival_direction() {
                    Some(u) => {
                        // Extra travel to the displaced element: u·offset.
                        let extra = u.dot(offset);
                        g * Complex64::cis(-2.0 * std::f64::consts::PI * f * extra / SPEED_OF_LIGHT)
                    }
                    None => g,
                }
            })
            .sum()
    }

    /// CFR over a frequency grid at the nominal receiver.
    pub fn cfr(&self, freqs: &[f64]) -> Vec<Complex64> {
        let mut out = Vec::new();
        self.cfr_with_offset_into(freqs, Vec2::ZERO, &mut out);
        out
    }

    /// CFR over a frequency grid at a displaced observation point.
    pub fn cfr_with_offset(&self, freqs: &[f64], offset: Vec2) -> Vec<Complex64> {
        let mut out = Vec::new();
        self.cfr_with_offset_into(freqs, offset, &mut out);
        out
    }

    /// [`ChannelSnapshot::cfr`] writing into a caller-provided buffer
    /// (cleared and resized), so per-packet evaluation reuses one
    /// allocation.
    pub fn cfr_into(&self, freqs: &[f64], out: &mut Vec<Complex64>) {
        self.cfr_with_offset_into(freqs, Vec2::ZERO, out);
    }

    /// [`ChannelSnapshot::cfr_with_offset`] writing into a
    /// caller-provided buffer (cleared and resized).
    ///
    /// Batch evaluation hoists the per-path invariants — geometric
    /// length, the `(4πd)^n` Friis term and the arrival direction — out
    /// of the frequency loop while evaluating bit-identically the same
    /// expression tree as [`ChannelSnapshot::cfr_at`]: per sample the
    /// amplitude, travel phase, element phase shift and path-order
    /// summation all round exactly as the pointwise form does.
    pub fn cfr_with_offset_into(&self, freqs: &[f64], offset: Vec2, out: &mut Vec<Complex64>) {
        out.clear();
        out.resize(freqs.len(), Complex64::ZERO);
        for p in &self.paths {
            let d = p.length();
            let pd = self.pathloss.distance_term(d);
            let af = p.amplitude_factor();
            match p.arrival_direction() {
                Some(u) => {
                    // Extra travel to the displaced element: u·offset.
                    let extra = u.dot(offset);
                    for (h, &f) in out.iter_mut().zip(freqs) {
                        let amplitude = af * self.pathloss.amplitude_gain_hoisted(pd, f);
                        let phase = -2.0 * std::f64::consts::PI * f * d / SPEED_OF_LIGHT;
                        let g = Complex64::from_polar(amplitude, phase);
                        *h += g * Complex64::cis(
                            -2.0 * std::f64::consts::PI * f * extra / SPEED_OF_LIGHT,
                        );
                    }
                }
                None => {
                    for (h, &f) in out.iter_mut().zip(freqs) {
                        let amplitude = af * self.pathloss.amplitude_gain_hoisted(pd, f);
                        let phase = -2.0 * std::f64::consts::PI * f * d / SPEED_OF_LIGHT;
                        *h += Complex64::from_polar(amplitude, phase);
                    }
                }
            }
        }
    }

    /// Precomputes the offset-invariant part of the CFR over `freqs`:
    /// one complex base gain per (path, frequency). Evaluating the plan
    /// at an array-element offset then costs only one `cis` and one
    /// complex multiply per sample — the receiver amortizes the
    /// `powf`/`sqrt`/`sin`/`cos` setup across all antennas and (for a
    /// static scene) all packets of a capture.
    pub fn cfr_plan(&self, freqs: &[f64]) -> CfrPlan {
        let mut base = Vec::with_capacity(self.paths.len() * freqs.len());
        let mut dirs = Vec::with_capacity(self.paths.len());
        for p in &self.paths {
            let d = p.length();
            let pd = self.pathloss.distance_term(d);
            let af = p.amplitude_factor();
            dirs.push(p.arrival_direction());
            for &f in freqs {
                let amplitude = af * self.pathloss.amplitude_gain_hoisted(pd, f);
                let phase = -2.0 * std::f64::consts::PI * f * d / SPEED_OF_LIGHT;
                base.push(Complex64::from_polar(amplitude, phase));
            }
        }
        CfrPlan {
            freqs: freqs.to_vec(),
            base,
            dirs,
        }
    }

    /// **Ground truth** LOS power fraction at frequency `f`: the exact
    /// quantity the paper's multipath factor `μ` (Eq. 3/11) estimates.
    ///
    /// Returns `None` when the snapshot has no LOS path or zero total
    /// power.
    pub fn true_multipath_factor(&self, f: f64) -> Option<f64> {
        let los = self
            .paths
            .iter()
            .find(|p| p.kind() == PathKind::LineOfSight)?;
        let los_power = los.gain(f, &self.pathloss).norm_sqr();
        let total = self.cfr_at(f, Vec2::ZERO).norm_sqr();
        if total <= 0.0 {
            None
        } else {
            Some(los_power / total)
        }
    }

    /// Total received power at frequency `f` (`|H(f)|²`).
    pub fn power(&self, f: f64) -> f64 {
        self.cfr_at(f, Vec2::ZERO).norm_sqr()
    }

    /// Arrival angles (radians, global frame) and amplitude factors of all
    /// paths — ground truth for angle-estimation experiments (Fig. 10).
    pub fn arrival_angles(&self) -> Vec<(f64, f64)> {
        self.paths
            .iter()
            .filter_map(|p| {
                p.arrival_direction()
                    .map(|u| (u.angle(), p.amplitude_factor()))
            })
            .collect()
    }
}

/// Offset-invariant CFR evaluation plan over a fixed frequency grid —
/// see [`ChannelSnapshot::cfr_plan`].
///
/// The plan stores the complex base gain of every (path, frequency)
/// pair; [`CfrPlan::eval_into`] applies only the per-element plane-wave
/// phase shift on top, reproducing [`ChannelSnapshot::cfr_with_offset`]
/// bit for bit.
#[derive(Debug, Clone)]
pub struct CfrPlan {
    freqs: Vec<f64>,
    /// Base gain per (path, frequency), row-major `[path][freq]`.
    base: Vec<Complex64>,
    /// Arrival direction per path (`None` = degenerate final leg).
    dirs: Vec<Option<Vec2>>,
}

impl CfrPlan {
    /// The frequency grid the plan was built for.
    pub fn freqs(&self) -> &[f64] {
        &self.freqs
    }

    /// Evaluates the CFR at an observation point displaced `offset`
    /// metres from the nominal receiver, writing into a caller-provided
    /// buffer (cleared and resized to the grid length).
    pub fn eval_into(&self, offset: Vec2, out: &mut Vec<Complex64>) {
        let nf = self.freqs.len();
        out.clear();
        out.resize(nf, Complex64::ZERO);
        for (pi, dir) in self.dirs.iter().enumerate() {
            let row = &self.base[pi * nf..(pi + 1) * nf];
            match dir {
                Some(u) => {
                    // Extra travel to the displaced element: u·offset.
                    let extra = u.dot(offset);
                    for ((h, &g), &f) in out.iter_mut().zip(row).zip(self.freqs.iter()) {
                        *h += g * Complex64::cis(
                            -2.0 * std::f64::consts::PI * f * extra / SPEED_OF_LIGHT,
                        );
                    }
                }
                None => {
                    for (h, &g) in out.iter_mut().zip(row) {
                        *h += g;
                    }
                }
            }
        }
    }

    /// Evaluates the CFR at `offset` into a fresh vector.
    pub fn eval(&self, offset: Vec2) -> Vec<Complex64> {
        let mut out = Vec::new();
        self.eval_into(offset, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdf_geom::shapes::Rect;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn classroom() -> Environment {
        Environment::empty_room(Rect::new(p(0.0, 0.0), p(8.0, 6.0)))
    }

    /// Paper §III measurement setup: 4 m link in a 6 m × 8 m classroom.
    fn link() -> ChannelModel {
        ChannelModel::new(classroom(), p(2.0, 3.0), p(6.0, 3.0)).unwrap()
    }

    const F: f64 = 2.462e9;

    #[test]
    fn construction_validates_geometry() {
        assert!(ChannelModel::new(classroom(), p(-1.0, 0.0), p(6.0, 3.0)).is_err());
        assert!(ChannelModel::new(classroom(), p(2.0, 3.0), p(2.0, 3.0)).is_err());
        let m = link();
        assert!((m.link_length() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn static_snapshot_is_multipath() {
        let snap = link().snapshot(None).unwrap();
        assert!(snap.paths().len() > 1, "empty room still has wall bounces");
        assert_eq!(snap.paths()[0].kind(), PathKind::LineOfSight);
        let h = snap.cfr_at(F, Vec2::ZERO);
        assert!(h.norm() > 0.0);
    }

    #[test]
    fn true_multipath_factor_in_unit_range_for_los_dominated_link() {
        let snap = link().snapshot(None).unwrap();
        let mu = snap.true_multipath_factor(F).unwrap();
        // LOS is the strongest single path here; superposition can push the
        // ratio above 1 when paths cancel, but it must be positive & finite.
        assert!(mu > 0.0 && mu.is_finite());
    }

    #[test]
    fn multipath_factor_varies_across_frequency() {
        // The configurability claim of §III-B3: μ is a function of f.
        let snap = link().snapshot(None).unwrap();
        let mus: Vec<f64> = (0..8)
            .map(|i| {
                snap.true_multipath_factor(2.452e9 + i as f64 * 2.5e6)
                    .unwrap()
            })
            .collect();
        let spread = mus.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - mus.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread > 1e-3, "μ must vary with frequency, spread={spread}");
    }

    #[test]
    fn human_shadowing_changes_cfr() {
        let model = link();
        let calm = model.snapshot(None).unwrap();
        let body = HumanBody::new(p(4.0, 3.0)); // on the LOS
        let shadowed = model.snapshot(Some(&body)).unwrap();
        let dp = (shadowed.power(F) - calm.power(F)).abs() / calm.power(F);
        assert!(dp > 0.05, "blocking the LOS must change power, got {dp}");
        // Scatter path appended.
        assert!(shadowed
            .paths()
            .iter()
            .any(|pp| pp.kind() == PathKind::HumanScatter));
    }

    #[test]
    fn human_near_link_perturbs_via_reflection_only() {
        let model = link();
        let calm = model.snapshot(None).unwrap();
        let body = HumanBody::new(p(4.0, 3.8)); // beside the link (Fig. 1e)
        let near = model.snapshot(Some(&body)).unwrap();
        // LOS untouched...
        let los_calm = calm.paths()[0].amplitude_factor();
        let los_near = near.paths()[0].amplitude_factor();
        assert!((los_calm - los_near).abs() < 1e-12);
        // ...but the CFR still moves thanks to the scattered path.
        let delta = (near.cfr_at(F, Vec2::ZERO) - calm.cfr_at(F, Vec2::ZERO)).norm();
        assert!(delta > 0.0);
    }

    #[test]
    fn rss_change_sign_depends_on_superposition() {
        // The paper's headline §III observation: Δs can be a drop OR a rise.
        let model = link();
        let calm = model.snapshot(None).unwrap();
        let mut signs = std::collections::HashSet::new();
        for i in 0..40 {
            let x = 2.2 + 0.09 * i as f64;
            for dy in [-0.6, -0.3, 0.0, 0.3, 0.6] {
                let body = HumanBody::new(p(x, 3.0 + dy));
                let snap = model.snapshot(Some(&body)).unwrap();
                let ds = 10.0 * (snap.power(F) / calm.power(F)).log10();
                if ds > 0.05 {
                    signs.insert("rise");
                } else if ds < -0.05 {
                    signs.insert("drop");
                }
            }
        }
        assert!(
            signs.contains("rise") && signs.contains("drop"),
            "need both RSS rises and drops, got {signs:?}"
        );
    }

    #[test]
    fn displaced_observer_sees_phase_shift() {
        let snap = link().snapshot(None).unwrap();
        let lambda = PathLossModel::wavelength(F);
        let h0 = snap.cfr_at(F, Vec2::ZERO);
        let h1 = snap.cfr_at(F, Vec2::new(0.0, lambda / 2.0));
        // Same order of magnitude but different phase/value.
        assert!((h0 - h1).norm() > 1e-3 * h0.norm());
    }

    #[test]
    fn cfr_grid_matches_pointwise_calls() {
        let snap = link().snapshot(None).unwrap();
        let freqs = [2.452e9, 2.462e9, 2.472e9];
        let grid = snap.cfr(&freqs);
        for (i, &f) in freqs.iter().enumerate() {
            assert_eq!(grid[i], snap.cfr_at(f, Vec2::ZERO));
        }
    }

    #[test]
    fn batch_cfr_bitwise_matches_pointwise_at_offsets() {
        // The perf-critical contract: the hoisted batch evaluation and
        // the precomputed plan must reproduce `cfr_at` to the bit, for
        // every path kind (LOS, wall bounces, human scatter) and every
        // element offset including the nominal receiver.
        let model = link();
        let body = HumanBody::new(p(4.0, 3.4));
        let snap = model.snapshot(Some(&body)).unwrap();
        let freqs: Vec<f64> = (0..30).map(|k| 2.442e9 + k as f64 * 1.25e6).collect();
        let offsets = [Vec2::ZERO, Vec2::new(0.0, 0.0609), Vec2::new(-0.031, 0.017)];
        let plan = snap.cfr_plan(&freqs);
        let mut buf = Vec::new();
        for off in offsets {
            let batch = snap.cfr_with_offset(&freqs, off);
            plan.eval_into(off, &mut buf);
            for (k, &f) in freqs.iter().enumerate() {
                let reference = snap.cfr_at(f, off);
                assert_eq!(batch[k].re.to_bits(), reference.re.to_bits());
                assert_eq!(batch[k].im.to_bits(), reference.im.to_bits());
                assert_eq!(buf[k].re.to_bits(), reference.re.to_bits());
                assert_eq!(buf[k].im.to_bits(), reference.im.to_bits());
            }
        }
    }

    #[test]
    fn trace_cache_shares_identical_geometry_and_invalidates_on_change() {
        // Distinct models over the same (env, tx, rx, cfg) share one
        // traced path set (the receiver clones/forks that build channels
        // repeatedly hit this), while any geometry change re-traces.
        let a = ChannelModel::new(classroom(), p(2.0, 3.0), p(6.0, 3.0)).unwrap();
        let b = ChannelModel::new(classroom(), p(2.0, 3.0), p(6.0, 3.0)).unwrap();
        assert!(
            std::sync::Arc::ptr_eq(&a.static_paths, &b.static_paths),
            "identical geometry must reuse the cached trace"
        );
        // Reuse is bit-identical by construction (same allocation).
        assert_eq!(a.static_paths, b.static_paths);
        // A moved receiver is a different key → different paths.
        let moved = ChannelModel::new(classroom(), p(2.0, 3.0), p(6.0, 2.0)).unwrap();
        assert!(!std::sync::Arc::ptr_eq(
            &a.static_paths,
            &moved.static_paths
        ));
        assert_ne!(a.static_paths, moved.static_paths);
        // New furniture changes the environment → traced paths change.
        let mut builder = Environment::builder(
            mpdf_geom::shapes::Rect::new(p(0.0, 0.0), p(8.0, 6.0)),
            crate::material::Material::CONCRETE,
        );
        builder.furniture(
            mpdf_geom::shapes::Rect::new(p(3.5, 2.5), p(4.5, 3.5)),
            crate::material::Material::METAL,
        );
        let furnished = ChannelModel::new(builder.build(), p(2.0, 3.0), p(6.0, 3.0)).unwrap();
        assert!(!std::sync::Arc::ptr_eq(
            &a.static_paths,
            &furnished.static_paths
        ));
        assert_ne!(a.static_paths, furnished.static_paths);
        // Only the human moving does NOT re-trace: snapshots of both
        // models borrow the same static set, modulated per position.
        let s1 = a.snapshot(Some(&HumanBody::new(p(3.0, 3.2)))).unwrap();
        let s2 = a.snapshot(Some(&HumanBody::new(p(5.0, 2.8)))).unwrap();
        assert_ne!(s1, s2, "human position must still modulate the CFR");
    }

    #[test]
    fn arrival_angles_include_los_direction() {
        let snap = link().snapshot(None).unwrap();
        let angles = snap.arrival_angles();
        // LOS arrives travelling in +x: angle ≈ 0.
        assert!(angles.iter().any(|&(a, _)| a.abs() < 1e-9));
        assert_eq!(angles.len(), snap.paths().len());
    }
}
