//! Image-method ray tracer.
//!
//! Generates the multipath structure the paper's analysis assumes: the
//! LOS path plus first- and second-order specular wall reflections
//! (§III-B analyzes one-bounce superposition; second-order bounces supply
//! the weaker tail that makes indoor links "multipath-dense").
//!
//! The image method replaces each reflection with a straight segment to a
//! mirrored transmitter image, then validates that the segment crosses the
//! reflecting wall within its extent and that every leg survives occlusion
//! checks against the other obstacles.

use std::error::Error;
use std::fmt;

use mpdf_geom::line::Line;
use mpdf_geom::segment::{Intersection, Segment};
use mpdf_geom::vec2::Point;

use crate::environment::Environment;
use crate::path::{PathKind, PropagationPath};

/// Configuration for a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceConfig {
    /// Maximum wall-bounce order (0 = LOS only, up to 3).
    ///
    /// Third-order bounces form the reverberant tail that gives indoor
    /// channels their delay spread — and hence the per-subcarrier
    /// diversity the paper's weighting schemes exploit.
    pub max_order: u8,
    /// Paths whose accumulated amplitude factor falls below this are
    /// dropped (relative to the unit LOS factor).
    pub min_amplitude_factor: f64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            max_order: 3,
            min_amplitude_factor: 2e-2,
        }
    }
}

/// Error returned by [`trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// Transmitter lies outside the room.
    TxOutsideRoom,
    /// Receiver lies outside the room.
    RxOutsideRoom,
    /// Transmitter and receiver coincide.
    CoincidentEndpoints,
    /// The configured bounce order is not supported.
    UnsupportedOrder(u8),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::TxOutsideRoom => write!(f, "transmitter is outside the room"),
            TraceError::RxOutsideRoom => write!(f, "receiver is outside the room"),
            TraceError::CoincidentEndpoints => {
                write!(f, "transmitter and receiver coincide")
            }
            TraceError::UnsupportedOrder(o) => {
                write!(f, "bounce order {o} is not supported (max 3)")
            }
        }
    }
}

impl Error for TraceError {}

/// Traces all propagation paths from `tx` to `rx` in `env`.
///
/// Returns the LOS path (possibly attenuated by furniture) plus every
/// geometrically valid wall reflection up to `cfg.max_order`, sorted by
/// increasing length (the LOS path, being shortest, comes first).
///
/// # Errors
/// See [`TraceError`]. A link fully blocked by opaque obstacles still
/// succeeds — it just yields paths with (near-)zero amplitude, mirroring
/// a real receiver that measures only noise.
pub fn trace(
    env: &Environment,
    tx: Point,
    rx: Point,
    cfg: &TraceConfig,
) -> Result<Vec<PropagationPath>, TraceError> {
    if cfg.max_order > 3 {
        return Err(TraceError::UnsupportedOrder(cfg.max_order));
    }
    if !env.contains(tx) {
        return Err(TraceError::TxOutsideRoom);
    }
    if !env.contains(rx) {
        return Err(TraceError::RxOutsideRoom);
    }
    if tx.distance(rx) < 1e-9 {
        return Err(TraceError::CoincidentEndpoints);
    }

    let mut paths = Vec::new();

    // Line of sight.
    let los_factor = env.leg_transmission(&Segment::new(tx, rx), &[]);
    paths.push(PropagationPath::new(
        vec![tx, rx],
        los_factor,
        PathKind::LineOfSight,
    ));

    // Bounce sequences of each order, consecutive walls distinct.
    let mut sequence = Vec::new();
    for order in 1..=cfg.max_order as usize {
        sequence.clear();
        sequence.resize(order, 0usize);
        enumerate_sequences(env, tx, rx, cfg, order, 0, &mut sequence, &mut paths);
    }

    paths.retain(|p| {
        p.kind() == PathKind::LineOfSight || p.amplitude_factor() >= cfg.min_amplitude_factor
    });
    paths.sort_by(|a, b| a.length().total_cmp(&b.length()));
    Ok(paths)
}

/// Recursively enumerates wall sequences and pushes valid bounce paths.
#[allow(clippy::too_many_arguments)]
fn enumerate_sequences(
    env: &Environment,
    tx: Point,
    rx: Point,
    cfg: &TraceConfig,
    order: usize,
    depth: usize,
    sequence: &mut [usize],
    out: &mut Vec<PropagationPath>,
) {
    if depth == order {
        if let Some(p) = bounce_path(env, tx, rx, sequence) {
            if p.amplitude_factor() >= cfg.min_amplitude_factor {
                out.push(p);
            }
        }
        return;
    }
    for w in 0..env.walls().len() {
        if depth > 0 && sequence[depth - 1] == w {
            continue; // consecutive bounces off the same wall are degenerate
        }
        // Cheap upper bound: the product of reflection coefficients alone
        // already caps the amplitude; prune hopeless prefixes.
        let prefix_gamma: f64 = sequence[..depth]
            .iter()
            .map(|&i| env.walls()[i].material.reflection())
            .product::<f64>()
            * env.walls()[w].material.reflection();
        if prefix_gamma < cfg.min_amplitude_factor {
            continue;
        }
        sequence[depth] = w;
        enumerate_sequences(env, tx, rx, cfg, order, depth + 1, sequence, out);
    }
}

/// Reflection point of the segment `from_image → target` on wall `wall_idx`,
/// if it falls strictly within the wall extent.
fn reflection_point(
    env: &Environment,
    image: Point,
    target: Point,
    wall_idx: usize,
) -> Option<Point> {
    let wall = &env.walls()[wall_idx].segment;
    match Segment::new(image, target).intersect(wall) {
        Intersection::Point { at, u, .. } if u > 1e-6 && u < 1.0 - 1e-6 => Some(at),
        _ => None,
    }
}

/// Constructs the specular path bouncing off the given wall sequence via
/// the image method, or `None` when geometrically invalid.
fn bounce_path(
    env: &Environment,
    tx: Point,
    rx: Point,
    walls: &[usize],
) -> Option<PropagationPath> {
    let order = walls.len();
    debug_assert!(order >= 1);

    // Forward image chain: I_0 = tx, I_j = mirror(I_{j-1}, wall_j).
    let mut images = Vec::with_capacity(order + 1);
    images.push(tx);
    for &w in walls {
        let line = Line::through_segment(&env.walls()[w].segment)?;
        let prev = *images.last()?;
        // A source on the mirror plane has a degenerate image.
        if line.signed_distance(prev).abs() < 1e-9 {
            return None;
        }
        images.push(line.mirror(prev));
    }

    // Back-trace reflection points from the receiver.
    let mut points_rev = Vec::with_capacity(order);
    let mut target = rx;
    for j in (0..order).rev() {
        let p = reflection_point(env, images[j + 1], target, walls[j])?;
        if p.distance(target) < 1e-9 {
            return None;
        }
        points_rev.push(p);
        target = p;
    }
    points_rev.reverse();

    // Assemble vertices and validate legs.
    let mut vertices = Vec::with_capacity(order + 2);
    vertices.push(tx);
    vertices.extend(points_rev.iter().copied());
    vertices.push(rx);
    let mut factor = 1.0;
    for (j, &w) in walls.iter().enumerate() {
        factor *= env.walls()[w].material.reflection();
        // Leg into this bounce: skip the wall behind and ahead.
        let skip: Vec<usize> = if j == 0 {
            vec![w]
        } else {
            vec![walls[j - 1], w]
        };
        let leg = Segment::new(vertices[j], vertices[j + 1]);
        if leg.length() < 1e-9 || !env.contains(leg.midpoint()) {
            return None;
        }
        factor *= env.leg_transmission(&leg, &skip);
    }
    // Final leg to the receiver.
    let last = Segment::new(vertices[order], vertices[order + 1]);
    if last.length() < 1e-9 || !env.contains(last.midpoint()) {
        return None;
    }
    factor *= env.leg_transmission(&last, &[walls[order - 1]]);

    Some(PropagationPath::new(
        vertices,
        factor,
        PathKind::WallReflection {
            // Reflection order is bounded by TraceConfig::max_order (≪ 255).
            order: u8::try_from(order).unwrap_or(u8::MAX),
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::material::Material;
    use mpdf_geom::shapes::Rect;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    /// 8×6 m classroom, concrete walls — the paper's measurement room scale.
    fn room() -> Environment {
        Environment::empty_room(Rect::new(p(0.0, 0.0), p(8.0, 6.0)))
    }

    #[test]
    fn los_only_trace() {
        let cfg = TraceConfig {
            max_order: 0,
            ..TraceConfig::default()
        };
        let paths = trace(&room(), p(2.0, 3.0), p(6.0, 3.0), &cfg).unwrap();
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].kind(), PathKind::LineOfSight);
        assert!((paths[0].length() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn first_order_has_four_wall_bounces_in_empty_room() {
        let cfg = TraceConfig {
            max_order: 1,
            min_amplitude_factor: 0.0,
        };
        let paths = trace(&room(), p(2.0, 3.0), p(6.0, 3.0), &cfg).unwrap();
        // LOS + 4 boundary-wall bounces.
        assert_eq!(paths.len(), 5);
        assert_eq!(
            paths
                .iter()
                .filter(|p| p.kind() == (PathKind::WallReflection { order: 1 }))
                .count(),
            4
        );
        // LOS is shortest → first.
        assert_eq!(paths[0].kind(), PathKind::LineOfSight);
    }

    #[test]
    fn first_order_reflection_geometry_is_specular() {
        // TX (2,3), RX (6,3), bottom wall y=0: image (2,-3), reflection point
        // where segment (2,-3)→(6,3) crosses y=0: x = 2 + 4·(3/6) = 4.
        let cfg = TraceConfig {
            max_order: 1,
            min_amplitude_factor: 0.0,
        };
        let paths = trace(&room(), p(2.0, 3.0), p(6.0, 3.0), &cfg).unwrap();
        let bottom = paths
            .iter()
            .find(|pp| {
                pp.kind() == (PathKind::WallReflection { order: 1 })
                    && pp.vertices()[1].y.abs() < 1e-9
            })
            .expect("bottom bounce exists");
        assert!((bottom.vertices()[1].x - 4.0).abs() < 1e-9);
        // Specular: incident and reflected angles match ⇒ length = |image−rx|.
        let expect_len = p(2.0, -3.0).distance(p(6.0, 3.0));
        assert!((bottom.length() - expect_len).abs() < 1e-9);
    }

    #[test]
    fn second_order_paths_are_generated_and_longer() {
        let cfg = TraceConfig {
            max_order: 2,
            min_amplitude_factor: 0.0,
        };
        let paths = trace(&room(), p(2.0, 3.0), p(6.0, 3.0), &cfg).unwrap();
        let order2: Vec<_> = paths
            .iter()
            .filter(|pp| pp.kind() == (PathKind::WallReflection { order: 2 }))
            .collect();
        assert!(!order2.is_empty(), "expected some 2nd-order bounces");
        let los_len = paths[0].length();
        for pp in &order2 {
            assert!(pp.length() > los_len);
            assert_eq!(pp.vertices().len(), 4);
            // Amplitude includes two reflection coefficients.
            assert!(pp.amplitude_factor() <= Material::CONCRETE.reflection().powi(2) + 1e-12);
        }
    }

    #[test]
    fn amplitude_filter_prunes_weak_paths() {
        let all = trace(
            &room(),
            p(2.0, 3.0),
            p(6.0, 3.0),
            &TraceConfig {
                max_order: 2,
                min_amplitude_factor: 0.0,
            },
        )
        .unwrap();
        let pruned = trace(
            &room(),
            p(2.0, 3.0),
            p(6.0, 3.0),
            &TraceConfig {
                max_order: 2,
                min_amplitude_factor: 0.6,
            },
        )
        .unwrap();
        assert!(pruned.len() < all.len());
        // LOS always survives.
        assert!(pruned.iter().any(|pp| pp.kind() == PathKind::LineOfSight));
    }

    #[test]
    fn furniture_blocks_los_but_not_all_reflections() {
        let mut b = Environment::builder(Rect::new(p(0.0, 0.0), p(8.0, 6.0)), Material::CONCRETE);
        b.furniture(Rect::new(p(3.5, 2.5), p(4.5, 3.5)), Material::METAL);
        let env = b.build();
        let cfg = TraceConfig {
            max_order: 1,
            min_amplitude_factor: 0.0,
        };
        let paths = trace(&env, p(2.0, 3.0), p(6.0, 3.0), &cfg).unwrap();
        let los = paths
            .iter()
            .find(|pp| pp.kind() == PathKind::LineOfSight)
            .unwrap();
        assert!(
            los.amplitude_factor() < 0.05,
            "metal cabinet should gut the LOS"
        );
        // The bounce off the top wall clears the cabinet.
        let top_bounce = paths.iter().any(|pp| {
            pp.kind() == (PathKind::WallReflection { order: 1 })
                && pp.vertices()[1].y > 5.9
                && pp.amplitude_factor() > 0.5
        });
        assert!(top_bounce, "top-wall bounce should survive");
    }

    #[test]
    fn validation_errors() {
        let env = room();
        let cfg = TraceConfig::default();
        assert_eq!(
            trace(&env, p(-1.0, 3.0), p(6.0, 3.0), &cfg),
            Err(TraceError::TxOutsideRoom)
        );
        assert_eq!(
            trace(&env, p(2.0, 3.0), p(9.0, 3.0), &cfg),
            Err(TraceError::RxOutsideRoom)
        );
        assert_eq!(
            trace(&env, p(2.0, 3.0), p(2.0, 3.0), &cfg),
            Err(TraceError::CoincidentEndpoints)
        );
        assert_eq!(
            trace(
                &env,
                p(2.0, 3.0),
                p(6.0, 3.0),
                &TraceConfig {
                    max_order: 4,
                    min_amplitude_factor: 0.0
                }
            ),
            Err(TraceError::UnsupportedOrder(4))
        );
    }

    #[test]
    fn wall_adjacent_link_has_strong_reflection() {
        // The paper's Fig. 5 setup: a link close to a wall creates a notable
        // reflected path with a distinct angle.
        let env = room();
        let cfg = TraceConfig {
            max_order: 1,
            min_amplitude_factor: 0.0,
        };
        // Link 1 m from the bottom wall.
        let paths = trace(&env, p(2.0, 1.0), p(5.0, 1.0), &cfg).unwrap();
        let bottom = paths
            .iter()
            .find(|pp| {
                pp.kind() == (PathKind::WallReflection { order: 1 })
                    && pp.vertices()[1].y.abs() < 1e-9
            })
            .unwrap();
        // Excess length is small for a nearby wall → strong reflection.
        let excess = bottom.length() - paths[0].length();
        assert!(excess < 1.2, "excess {excess}");
    }
}
