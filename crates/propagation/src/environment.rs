//! Indoor environments: rooms, walls and furniture.
//!
//! An [`Environment`] is a rectangular room whose boundary walls reflect,
//! plus optional interior walls and furniture that both reflect and
//! attenuate rays passing through them. It answers the two queries the
//! ray tracer needs: *which surfaces can reflect?* and *how much amplitude
//! survives a straight leg between two points?*

use serde::{Deserialize, Serialize};

use mpdf_geom::polygon::ConvexPolygon;
use mpdf_geom::segment::{Intersection, Segment};
use mpdf_geom::shapes::Rect;
use mpdf_geom::vec2::Point;

use crate::material::Material;

/// A reflective wall: a segment with a surface material.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Wall {
    /// Wall geometry.
    pub segment: Segment,
    /// Surface material.
    pub material: Material,
}

/// The plan-view footprint of a furniture obstacle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Footprint {
    /// Axis-aligned rectangle.
    Rect(Rect),
    /// Convex polygon (angled desks, lecterns).
    Polygon(ConvexPolygon),
}

impl Footprint {
    /// True when a straight leg touches or crosses the footprint.
    pub fn intersects_segment(&self, seg: &Segment) -> bool {
        match self {
            Footprint::Rect(r) => r.intersects_segment(seg),
            Footprint::Polygon(p) => p.intersects_segment(seg),
        }
    }
}

/// A furniture obstacle that attenuates rays crossing it. Furniture does
/// not spawn reflected paths (its reflections are folded into the
/// environment's diffuse clutter), matching the paper's one-bounce wall
/// model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Furniture {
    /// Plan-view footprint.
    pub footprint: Footprint,
    /// Obstacle material (its transmission coefficient applies per crossing).
    pub material: Material,
}

/// An indoor environment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Environment {
    bounds: Rect,
    walls: Vec<Wall>,
    furniture: Vec<Furniture>,
}

impl Environment {
    /// Starts building an environment from a room rectangle whose four
    /// boundary walls share `material`.
    pub fn builder(room: Rect, material: Material) -> EnvironmentBuilder {
        EnvironmentBuilder::new(room, material)
    }

    /// A bare rectangular room with concrete boundary walls.
    pub fn empty_room(room: Rect) -> Environment {
        Environment::builder(room, Material::CONCRETE).build()
    }

    /// Room bounds.
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// All reflective walls (boundary first, then interior).
    pub fn walls(&self) -> &[Wall] {
        &self.walls
    }

    /// Furniture obstacles.
    pub fn furniture(&self) -> &[Furniture] {
        &self.furniture
    }

    /// True when the point is inside the room.
    pub fn contains(&self, p: Point) -> bool {
        self.bounds.contains(p)
    }

    /// Amplitude factor surviving a straight leg from `seg.a` to `seg.b`,
    /// accounting for interior walls and furniture crossed on the way.
    ///
    /// `skip` lists wall indices the leg is *supposed* to touch (the walls
    /// it reflects off at its endpoints); touches of those walls are not
    /// counted as crossings.
    ///
    /// Returns `0.0` when a crossed obstacle is fully opaque.
    pub fn leg_transmission(&self, seg: &Segment, skip: &[usize]) -> f64 {
        let mut factor = 1.0;
        for (i, wall) in self.walls.iter().enumerate() {
            if skip.contains(&i) {
                continue;
            }
            match seg.intersect(&wall.segment) {
                Intersection::None => {}
                Intersection::Collinear => {
                    // Running along a wall face: treat as a single crossing.
                    factor *= wall.material.transmission();
                }
                Intersection::Point { t, .. } => {
                    // Endpoint touches (t≈0/1) happen when a leg starts or
                    // ends on a *different* wall at a corner; count interior
                    // crossings only.
                    if t > 1e-9 && t < 1.0 - 1e-9 {
                        factor *= wall.material.transmission();
                    }
                }
            }
        }
        for f in &self.furniture {
            if f.footprint.intersects_segment(seg) {
                factor *= f.material.transmission();
            }
        }
        factor
    }

    /// Convenience: amplitude transmission between two free points.
    pub fn transmission_between(&self, a: Point, b: Point) -> f64 {
        self.leg_transmission(&Segment::new(a, b), &[])
    }
}

/// Builder for [`Environment`] (see C-BUILDER).
#[derive(Debug, Clone)]
pub struct EnvironmentBuilder {
    bounds: Rect,
    walls: Vec<Wall>,
    furniture: Vec<Furniture>,
}

impl EnvironmentBuilder {
    /// Creates a builder with the four boundary walls of `room`.
    pub fn new(room: Rect, material: Material) -> Self {
        let walls = room
            .walls()
            .into_iter()
            .map(|segment| Wall { segment, material })
            .collect();
        EnvironmentBuilder {
            bounds: room,
            walls,
            furniture: Vec::new(),
        }
    }

    /// Adds an interior wall (reflects and attenuates crossings).
    pub fn interior_wall(&mut self, segment: Segment, material: Material) -> &mut Self {
        self.walls.push(Wall { segment, material });
        self
    }

    /// Adds an axis-aligned furniture obstacle.
    pub fn furniture(&mut self, footprint: Rect, material: Material) -> &mut Self {
        self.furniture.push(Furniture {
            footprint: Footprint::Rect(footprint),
            material,
        });
        self
    }

    /// Adds an angled (convex-polygon) furniture obstacle.
    pub fn furniture_polygon(&mut self, footprint: ConvexPolygon, material: Material) -> &mut Self {
        self.furniture.push(Furniture {
            footprint: Footprint::Polygon(footprint),
            material,
        });
        self
    }

    /// Finalizes the environment.
    pub fn build(&self) -> Environment {
        Environment {
            bounds: self.bounds,
            walls: self.walls.clone(),
            furniture: self.furniture.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdf_geom::vec2::Vec2;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn room() -> Rect {
        Rect::new(p(0.0, 0.0), p(8.0, 6.0))
    }

    #[test]
    fn empty_room_has_four_walls() {
        let env = Environment::empty_room(room());
        assert_eq!(env.walls().len(), 4);
        assert!(env.furniture().is_empty());
        assert!(env.contains(p(4.0, 3.0)));
        assert!(!env.contains(p(9.0, 3.0)));
    }

    #[test]
    fn builder_adds_interior_walls_and_furniture() {
        let mut b = Environment::builder(room(), Material::CONCRETE);
        b.interior_wall(Segment::new(p(4.0, 0.0), p(4.0, 3.0)), Material::DRYWALL);
        b.furniture(Rect::new(p(1.0, 1.0), p(2.0, 2.0)), Material::WOOD);
        let env = b.build();
        assert_eq!(env.walls().len(), 5);
        assert_eq!(env.furniture().len(), 1);
    }

    #[test]
    fn free_leg_has_unit_transmission() {
        let env = Environment::empty_room(room());
        assert_eq!(env.transmission_between(p(1.0, 1.0), p(7.0, 5.0)), 1.0);
    }

    #[test]
    fn interior_wall_attenuates_crossing_leg() {
        let mut b = Environment::builder(room(), Material::CONCRETE);
        b.interior_wall(Segment::new(p(4.0, 0.0), p(4.0, 6.0)), Material::DRYWALL);
        let env = b.build();
        let t = env.transmission_between(p(1.0, 3.0), p(7.0, 3.0));
        assert!((t - Material::DRYWALL.transmission()).abs() < 1e-12);
        // Leg on one side of the wall is unaffected.
        assert_eq!(env.transmission_between(p(1.0, 1.0), p(3.0, 5.0)), 1.0);
    }

    #[test]
    fn furniture_attenuates_crossing_leg() {
        let mut b = Environment::builder(room(), Material::CONCRETE);
        b.furniture(Rect::new(p(3.0, 2.0), p(5.0, 4.0)), Material::WOOD);
        let env = b.build();
        let t = env.transmission_between(p(1.0, 3.0), p(7.0, 3.0));
        assert!((t - Material::WOOD.transmission()).abs() < 1e-12);
    }

    #[test]
    fn skip_list_ignores_bounce_walls() {
        let env = Environment::empty_room(room());
        // A leg that ends exactly on wall 0 (bottom): skipping wall 0 must
        // leave transmission at 1.
        let leg = Segment::new(p(4.0, 3.0), p(4.0, 0.0));
        assert_eq!(env.leg_transmission(&leg, &[0]), 1.0);
    }

    #[test]
    fn endpoint_touch_does_not_count_as_crossing() {
        let env = Environment::empty_room(room());
        // Leg from interior to a point exactly on the right wall; without
        // skipping, the touch at t=1 must not attenuate.
        let leg = Segment::new(p(4.0, 3.0), p(8.0, 3.0));
        assert_eq!(env.leg_transmission(&leg, &[]), 1.0);
    }

    #[test]
    fn multiple_obstacles_multiply() {
        let mut b = Environment::builder(room(), Material::CONCRETE);
        b.interior_wall(Segment::new(p(3.0, 0.0), p(3.0, 6.0)), Material::DRYWALL)
            .interior_wall(Segment::new(p(5.0, 0.0), p(5.0, 6.0)), Material::GLASS);
        let env = b.build();
        let t = env.transmission_between(p(1.0, 3.0), p(7.0, 3.0));
        let expect = Material::DRYWALL.transmission() * Material::GLASS.transmission();
        assert!((t - expect).abs() < 1e-12);
    }

    #[test]
    fn serde_round_trip_shape() {
        let env = Environment::empty_room(room());
        // Sanity: clone/eq works and bounds survive.
        let copy = env.clone();
        assert_eq!(copy, env);
        assert_eq!(copy.bounds().center(), Vec2::new(4.0, 3.0));
    }
}
