//! Human motion trajectories.
//!
//! The paper's Fig. 2b measures a person *moving across* a link; its
//! angle-error analysis (Fig. 10) notes that test subjects were "not
//! completely static". Trajectories model both: deterministic waypoint
//! walks for crossings, plus small-amplitude sway for a nominally static
//! person (implemented as a deterministic Lissajous wobble so experiments
//! stay reproducible without threading RNGs through the physics layer).

use serde::{Deserialize, Serialize};

use mpdf_geom::vec2::{Point, Vec2};

/// A position as a function of time (seconds).
pub trait Trajectory {
    /// Position at time `t`; clamped to the trajectory's ends outside its
    /// time span.
    fn position(&self, t: f64) -> Point;

    /// Duration after which the position no longer changes (`f64::INFINITY`
    /// for endless trajectories).
    fn duration(&self) -> f64;
}

/// Straight-line walk from `start` to `end` over `duration` seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearWalk {
    /// Start position.
    pub start: Point,
    /// End position.
    pub end: Point,
    /// Walk duration in seconds.
    pub duration: f64,
}

impl LinearWalk {
    /// Creates a walk.
    ///
    /// # Panics
    /// Panics if `duration <= 0`.
    pub fn new(start: Point, end: Point, duration: f64) -> Self {
        assert!(duration > 0.0, "duration must be positive");
        LinearWalk {
            start,
            end,
            duration,
        }
    }

    /// Creates a walk at the given speed (m/s).
    ///
    /// # Panics
    /// Panics if `speed <= 0` or the endpoints coincide.
    pub fn with_speed(start: Point, end: Point, speed: f64) -> Self {
        assert!(speed > 0.0, "speed must be positive");
        let d = start.distance(end);
        assert!(d > 0.0, "endpoints must differ");
        LinearWalk::new(start, end, d / speed)
    }
}

impl Trajectory for LinearWalk {
    fn position(&self, t: f64) -> Point {
        let u = (t / self.duration).clamp(0.0, 1.0);
        self.start.lerp(self.end, u)
    }

    fn duration(&self) -> f64 {
        self.duration
    }
}

/// Piecewise-linear walk through timestamped waypoints.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WaypointWalk {
    waypoints: Vec<(f64, Point)>,
}

impl WaypointWalk {
    /// Creates a walk through `(time, position)` waypoints.
    ///
    /// # Panics
    /// Panics if fewer than two waypoints are given or times are not
    /// strictly increasing.
    pub fn new(waypoints: Vec<(f64, Point)>) -> Self {
        assert!(waypoints.len() >= 2, "need at least two waypoints");
        assert!(
            waypoints.windows(2).all(|w| w[1].0 > w[0].0),
            "waypoint times must be strictly increasing"
        );
        WaypointWalk { waypoints }
    }
}

impl Trajectory for WaypointWalk {
    fn position(&self, t: f64) -> Point {
        let first = self.waypoints[0];
        let last = *self.waypoints.last().unwrap_or(&first);
        if t <= first.0 {
            return first.1;
        }
        if t >= last.0 {
            return last.1;
        }
        let idx = self
            .waypoints
            .partition_point(|&(wt, _)| wt <= t)
            .min(self.waypoints.len() - 1);
        let (t0, p0) = self.waypoints[idx - 1];
        let (t1, p1) = self.waypoints[idx];
        p0.lerp(p1, (t - t0) / (t1 - t0))
    }

    fn duration(&self) -> f64 {
        self.waypoints.last().map_or(0.0, |w| w.0)
    }
}

/// A nominally static person with small body sway around an anchor point.
///
/// Sway is a deterministic two-frequency Lissajous figure: bounded by
/// `amplitude`, non-periodic-looking over experiment windows, and fully
/// reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StaticSway {
    /// Anchor position.
    pub anchor: Point,
    /// Peak sway amplitude in metres (a standing person sways a few cm).
    pub amplitude: f64,
}

impl StaticSway {
    /// Creates a sway model.
    ///
    /// # Panics
    /// Panics if the amplitude is negative.
    pub fn new(anchor: Point, amplitude: f64) -> Self {
        assert!(amplitude >= 0.0, "amplitude must be non-negative");
        StaticSway { anchor, amplitude }
    }
}

impl Trajectory for StaticSway {
    fn position(&self, t: f64) -> Point {
        // Incommensurate frequencies ≈ 0.3 Hz and 0.47 Hz body sway.
        let dx = (2.0 * std::f64::consts::PI * 0.31 * t).sin();
        let dy = (2.0 * std::f64::consts::PI * 0.47 * t + 1.0).sin();
        self.anchor + Vec2::new(dx, dy) * (self.amplitude / std::f64::consts::SQRT_2)
    }

    fn duration(&self) -> f64 {
        f64::INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn linear_walk_endpoints_and_midpoint() {
        let w = LinearWalk::new(p(0.0, 0.0), p(4.0, 0.0), 8.0);
        assert_eq!(w.position(0.0), p(0.0, 0.0));
        assert_eq!(w.position(4.0), p(2.0, 0.0));
        assert_eq!(w.position(8.0), p(4.0, 0.0));
        // Clamped outside the span.
        assert_eq!(w.position(-1.0), p(0.0, 0.0));
        assert_eq!(w.position(100.0), p(4.0, 0.0));
    }

    #[test]
    fn walk_with_speed_sets_duration() {
        let w = LinearWalk::with_speed(p(0.0, 0.0), p(3.0, 4.0), 1.25);
        assert!((w.duration() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn waypoint_walk_interpolates() {
        let w = WaypointWalk::new(vec![
            (0.0, p(0.0, 0.0)),
            (1.0, p(2.0, 0.0)),
            (3.0, p(2.0, 4.0)),
        ]);
        assert_eq!(w.position(0.5), p(1.0, 0.0));
        assert_eq!(w.position(2.0), p(2.0, 2.0));
        assert_eq!(w.position(99.0), p(2.0, 4.0));
        assert_eq!(w.duration(), 3.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn waypoints_must_be_ordered() {
        let _ = WaypointWalk::new(vec![(1.0, p(0.0, 0.0)), (1.0, p(1.0, 0.0))]);
    }

    #[test]
    fn sway_stays_within_amplitude() {
        let s = StaticSway::new(p(3.0, 3.0), 0.05);
        for i in 0..500 {
            let t = i as f64 * 0.1;
            let d = s.position(t).distance(p(3.0, 3.0));
            assert!(d <= 0.05 + 1e-12, "sway {d} exceeded amplitude at t={t}");
        }
        // It actually moves.
        assert!(s.position(0.7).distance(s.position(1.9)) > 1e-4);
    }

    #[test]
    fn zero_amplitude_sway_is_static() {
        let s = StaticSway::new(p(1.0, 2.0), 0.0);
        assert_eq!(s.position(0.0), p(1.0, 2.0));
        assert_eq!(s.position(42.0), p(1.0, 2.0));
    }
}
