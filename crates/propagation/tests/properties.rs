//! Property-based tests for the propagation simulator.

use mpdf_geom::shapes::Rect;
use mpdf_geom::vec2::Vec2;
use mpdf_propagation::channel::ChannelModel;
use mpdf_propagation::environment::Environment;
use mpdf_propagation::human::HumanBody;
use mpdf_propagation::path::PathKind;
use mpdf_propagation::pathloss::PathLossModel;
use mpdf_propagation::tracer::{trace, TraceConfig};
use proptest::prelude::*;

fn room() -> Environment {
    Environment::empty_room(Rect::new(Vec2::ZERO, Vec2::new(8.0, 6.0)))
}

/// Points well inside the room.
fn interior() -> impl Strategy<Value = Vec2> {
    (0.5f64..7.5, 0.5f64..5.5).prop_map(|(x, y)| Vec2::new(x, y))
}

fn wifi_freq() -> impl Strategy<Value = f64> {
    2.452e9f64..2.472e9
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn los_is_always_shortest(tx in interior(), rx in interior()) {
        prop_assume!(tx.distance(rx) > 0.1);
        let paths = trace(&room(), tx, rx, &TraceConfig::default()).unwrap();
        prop_assert_eq!(paths[0].kind(), PathKind::LineOfSight);
        prop_assert!((paths[0].length() - tx.distance(rx)).abs() < 1e-9);
        for p in &paths[1..] {
            prop_assert!(p.length() >= paths[0].length() - 1e-9);
        }
    }

    #[test]
    fn reflection_lengths_respect_triangle_inequality(tx in interior(), rx in interior()) {
        prop_assume!(tx.distance(rx) > 0.1);
        let paths = trace(&room(), tx, rx, &TraceConfig { max_order: 2, min_amplitude_factor: 0.0 }).unwrap();
        for p in paths {
            // Every bounce adds length: total ≥ straight-line distance.
            prop_assert!(p.length() >= tx.distance(rx) - 1e-9);
            // Amplitude factors are physical.
            prop_assert!(p.amplitude_factor() >= 0.0 && p.amplitude_factor() <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn first_order_bounces_are_specular(tx in interior(), rx in interior()) {
        prop_assume!(tx.distance(rx) > 0.1);
        let env = room();
        let paths = trace(&env, tx, rx, &TraceConfig { max_order: 1, min_amplitude_factor: 0.0 }).unwrap();
        for p in paths.iter().filter(|p| p.kind() == (PathKind::WallReflection { order: 1 })) {
            // Image-method invariant: bounce length equals |image(tx) − rx|.
            let bounce = p.vertices()[1];
            let v_in = (bounce - tx).normalized().unwrap();
            let v_out = (rx - bounce).normalized().unwrap();
            // Find which wall the bounce point lies on and check angle equality
            // via the wall normal: incidence angle == reflection angle means
            // the normal components flip while tangentials match.
            let wall = env
                .walls()
                .iter()
                .find(|w| w.segment.distance_to_point(bounce) < 1e-6)
                .expect("bounce on a wall");
            let t = wall.segment.direction().normalized().unwrap();
            let n = t.perp();
            prop_assert!((v_in.dot(t) - v_out.dot(t)).abs() < 1e-9);
            prop_assert!((v_in.dot(n) + v_out.dot(n)).abs() < 1e-9);
        }
    }

    #[test]
    fn shadow_factor_bounded_and_monotone_with_radius(
        tx in interior(), rx in interior(), bx in interior(), f in wifi_freq()
    ) {
        prop_assume!(tx.distance(rx) > 0.5);
        prop_assume!(bx.distance(tx) > 0.3 && bx.distance(rx) > 0.3);
        let model = ChannelModel::new(room(), tx, rx).unwrap();
        let small = HumanBody::with_params(bx, 0.15, 0.38, 0.35);
        let big = HumanBody::with_params(bx, 0.45, 0.38, 0.35);
        let base = model.snapshot(None).unwrap();
        for path in base.paths() {
            let bs = small.shadow_factor(path);
            let bb = big.shadow_factor(path);
            prop_assert!((0.0..=1.0).contains(&bs));
            prop_assert!((0.0..=1.0).contains(&bb));
            // A larger body never shadows less.
            prop_assert!(bb <= bs + 1e-12);
        }
        let _ = f;
    }

    #[test]
    fn cfr_is_finite_and_snapshot_deterministic(
        tx in interior(), rx in interior(), bx in interior(), f in wifi_freq()
    ) {
        prop_assume!(tx.distance(rx) > 0.3);
        prop_assume!(bx.distance(tx) > 1e-3 && bx.distance(rx) > 1e-3);
        let model = ChannelModel::new(room(), tx, rx).unwrap();
        let body = HumanBody::new(bx);
        let s1 = model.snapshot(Some(&body)).unwrap();
        let s2 = model.snapshot(Some(&body)).unwrap();
        let h1 = s1.cfr_at(f, Vec2::ZERO);
        let h2 = s2.cfr_at(f, Vec2::ZERO);
        prop_assert!(h1.is_finite());
        prop_assert_eq!(h1, h2);
    }

    #[test]
    fn power_decreases_with_distance_on_average(f in wifi_freq()) {
        // Free-space sanity through the whole stack: average power over
        // several nearby frequencies must decay with link length.
        let env = room();
        let freqs: Vec<f64> = (0..16).map(|i| f + i as f64 * 1e6 - 8e6).collect();
        let tx = Vec2::new(1.0, 3.0);
        let mut last = f64::INFINITY;
        for d in [1.0f64, 2.5, 5.0] {
            let model = ChannelModel::new(env.clone(), tx, Vec2::new(1.0 + d, 3.0))
                .unwrap()
                .with_pathloss(PathLossModel::FREE_SPACE);
            let snap = model.snapshot(None).unwrap();
            let avg: f64 = freqs.iter().map(|&fk| snap.power(fk)).sum::<f64>() / freqs.len() as f64;
            prop_assert!(avg < last, "power must fall with distance");
            last = avg;
        }
    }

    #[test]
    fn human_scatter_increases_path_count(tx in interior(), rx in interior(), bx in interior()) {
        prop_assume!(tx.distance(rx) > 0.3);
        prop_assume!(bx.distance(tx) > 1e-2 && bx.distance(rx) > 1e-2);
        let model = ChannelModel::new(room(), tx, rx).unwrap();
        let calm = model.snapshot(None).unwrap();
        let busy = model.snapshot(Some(&HumanBody::new(bx))).unwrap();
        prop_assert_eq!(busy.paths().len(), calm.paths().len() + 1);
    }
}
