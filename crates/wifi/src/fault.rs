//! Receiver fault injection — the failure modes of a real Intel 5300
//! deployment.
//!
//! The paper's pipeline assumes a pristine 3×30 CSI stream, but long
//! measurement campaigns on commodity hardware see packet-loss bursts
//! (rate adaptation, co-channel contention), whole antenna chains going
//! quiet (connector/calibration faults), AGC saturation clipping strong
//! links, NaN-corrupted rows from decoder glitches, and duplicated or
//! out-of-order delivery through the CSI tool's netlink path. This module
//! injects all of those *after* the physical-layer impairments of
//! [`crate::impairments`], so the quarantine/degradation machinery
//! downstream is exercised against realistic garbage.
//!
//! Faults draw from a dedicated RNG stream owned by [`FaultState`],
//! separate from the receiver's impairment RNG: a zero-fault
//! [`FaultModel`] consumes no randomness at all and leaves the packet
//! stream byte-identical to a fault-free receiver — the equivalence
//! contract the eval suite pins down.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use mpdf_rfmath::complex::Complex64;

use crate::csi::CsiPacket;

/// Salt xor-ed into the receiver seed to derive the fault RNG stream, so
/// fault draws never perturb the impairment stream (and vice versa).
pub const FAULT_SEED_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// Names accepted by [`FaultModel::preset`], in presentation order.
pub const PRESET_NAMES: [&str; 6] = ["none", "loss", "dropout", "agc", "glitch", "chaos"];

/// Fault-injection configuration. All probabilities are per packet slot;
/// `FaultModel::none()` (the default) disables everything.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultModel {
    /// Probability that a packet-loss burst starts at this slot.
    pub loss_burst_prob: f64,
    /// Mean burst length in packets (geometric-ish; always ≥ 1).
    pub loss_burst_len: f64,
    /// Probability that an idle antenna chain drops out at this slot.
    pub chain_dropout_prob: f64,
    /// Mean dropout length in packets per chain.
    pub chain_dropout_len: f64,
    /// Dropped chains report NaN rows when `true`, all-zero rows when
    /// `false` (both occur in the wild, depending on where the chain
    /// dies).
    pub dropout_nan: bool,
    /// Probability that the AGC saturates on a packet, clipping
    /// amplitudes.
    pub agc_saturation_prob: f64,
    /// Clip rail amplitude in normalized CSI units (the receiver
    /// front-end normalizes CSI to O(1), so ~0.7 clips fading peaks).
    pub agc_clip_rel: f64,
    /// Probability that a decoder glitch fills one antenna row with NaN.
    pub nan_row_prob: f64,
    /// Probability that a packet is delivered twice (same sequence
    /// number, back to back).
    pub duplicate_prob: f64,
    /// Probability that a packet is held back one slot and delivered
    /// out of order.
    pub reorder_prob: f64,
}

impl FaultModel {
    /// No faults at all — the default, byte-identical to a receiver
    /// without fault injection.
    pub fn none() -> Self {
        FaultModel {
            loss_burst_prob: 0.0,
            loss_burst_len: 0.0,
            chain_dropout_prob: 0.0,
            chain_dropout_len: 0.0,
            dropout_nan: false,
            agc_saturation_prob: 0.0,
            agc_clip_rel: 0.7,
            nan_row_prob: 0.0,
            duplicate_prob: 0.0,
            reorder_prob: 0.0,
        }
    }

    /// Bursty packet loss only (contention / rate-adaptation stalls).
    pub fn packet_loss() -> Self {
        FaultModel {
            loss_burst_prob: 0.02,
            loss_burst_len: 4.0,
            ..FaultModel::none()
        }
    }

    /// Flaky antenna chains: per-chain dropouts averaging ~15 packets.
    pub fn chain_dropout() -> Self {
        FaultModel {
            chain_dropout_prob: 0.01,
            chain_dropout_len: 15.0,
            dropout_nan: false,
            ..FaultModel::none()
        }
    }

    /// AGC saturation clipping amplitude peaks on ~15 % of packets.
    pub fn agc_saturation() -> Self {
        FaultModel {
            agc_saturation_prob: 0.15,
            agc_clip_rel: 0.7,
            ..FaultModel::none()
        }
    }

    /// Decoder glitches: NaN rows, duplicated and reordered delivery.
    pub fn decoder_glitch() -> Self {
        FaultModel {
            nan_row_prob: 0.05,
            duplicate_prob: 0.03,
            reorder_prob: 0.03,
            ..FaultModel::none()
        }
    }

    /// Everything at once — the chaos-campaign workload.
    pub fn chaos() -> Self {
        FaultModel {
            loss_burst_prob: 0.015,
            loss_burst_len: 3.0,
            chain_dropout_prob: 0.008,
            chain_dropout_len: 12.0,
            dropout_nan: true,
            agc_saturation_prob: 0.08,
            agc_clip_rel: 0.7,
            nan_row_prob: 0.02,
            duplicate_prob: 0.02,
            reorder_prob: 0.02,
        }
    }

    /// Looks up a named preset (see [`PRESET_NAMES`]).
    pub fn preset(name: &str) -> Option<FaultModel> {
        match name {
            "none" => Some(FaultModel::none()),
            "loss" => Some(FaultModel::packet_loss()),
            "dropout" => Some(FaultModel::chain_dropout()),
            "agc" => Some(FaultModel::agc_saturation()),
            "glitch" => Some(FaultModel::decoder_glitch()),
            "chaos" => Some(FaultModel::chaos()),
            _ => None,
        }
    }

    /// True when every fault probability is zero — the receiver skips the
    /// fault pass entirely (and consumes no fault randomness).
    pub fn is_none(&self) -> bool {
        self.loss_burst_prob <= 0.0
            && self.chain_dropout_prob <= 0.0
            && self.agc_saturation_prob <= 0.0
            && self.nan_row_prob <= 0.0
            && self.duplicate_prob <= 0.0
            && self.reorder_prob <= 0.0
    }

    /// Scales every fault *probability* by `intensity` (clamped to
    /// `[0, 1]`), leaving burst lengths untouched — the knob the chaos
    /// campaign sweeps for its degradation curves.
    pub fn scaled(&self, intensity: f64) -> FaultModel {
        let s = intensity.clamp(0.0, 1.0);
        FaultModel {
            loss_burst_prob: self.loss_burst_prob * s,
            chain_dropout_prob: self.chain_dropout_prob * s,
            agc_saturation_prob: self.agc_saturation_prob * s,
            nan_row_prob: self.nan_row_prob * s,
            duplicate_prob: self.duplicate_prob * s,
            reorder_prob: self.reorder_prob * s,
            ..*self
        }
    }

    /// Runs one emitted packet through the fault pass, pushing zero, one
    /// or two packets onto `out` (loss swallows the packet; duplication
    /// and a released hold-back emit extras). Mutating faults are applied
    /// before sequencing faults so a duplicated packet carries its
    /// corruption on both copies, as a real netlink re-delivery would.
    pub(crate) fn apply(
        &self,
        mut packet: CsiPacket,
        state: &mut FaultState,
        out: &mut Vec<CsiPacket>,
    ) {
        let rng = &mut state.rng;

        // 1. Packet-loss bursts (Gilbert-style: a burst start swallows a
        //    geometric run of slots).
        if state.loss_remaining > 0 {
            state.loss_remaining -= 1;
            mpdf_obs::counter!("wifi.faults_lost_total").inc();
            return;
        }
        if self.loss_burst_prob > 0.0 && rng.gen_range(0.0..1.0) < self.loss_burst_prob {
            state.loss_remaining = sample_burst_len(self.loss_burst_len, rng).saturating_sub(1);
            mpdf_obs::counter!("wifi.faults_lost_total").inc();
            return;
        }

        // 2. Per-chain antenna dropout.
        for a in 0..packet.antennas().min(state.dropout_remaining.len()) {
            if state.dropout_remaining[a] > 0 {
                state.dropout_remaining[a] -= 1;
                corrupt_row(&mut packet, a, self.dropout_nan);
                mpdf_obs::counter!("wifi.faults_chain_dropout_total").inc();
            } else if self.chain_dropout_prob > 0.0
                && rng.gen_range(0.0..1.0) < self.chain_dropout_prob
            {
                state.dropout_remaining[a] =
                    sample_burst_len(self.chain_dropout_len, rng).saturating_sub(1);
                corrupt_row(&mut packet, a, self.dropout_nan);
                mpdf_obs::counter!("wifi.faults_chain_dropout_total").inc();
            }
        }

        // 3. Decoder glitch: one antenna row turns NaN.
        if self.nan_row_prob > 0.0 && rng.gen_range(0.0..1.0) < self.nan_row_prob {
            let a = rng.gen_range(0..packet.antennas());
            corrupt_row(&mut packet, a, true);
            mpdf_obs::counter!("wifi.faults_nan_rows_total").inc();
        }

        // 4. AGC saturation: clip amplitudes to the rail, preserving
        //    phase (what a saturated ADC + AGC loop actually reports).
        if self.agc_saturation_prob > 0.0
            && self.agc_clip_rel > 0.0
            && rng.gen_range(0.0..1.0) < self.agc_saturation_prob
        {
            let rail = self.agc_clip_rel;
            for a in 0..packet.antennas() {
                for k in 0..packet.subcarriers() {
                    let h = packet.get_mut(a, k);
                    let amp = h.norm();
                    if amp > rail {
                        *h *= rail / amp;
                    }
                }
            }
            mpdf_obs::counter!("wifi.faults_saturated_total").inc();
        }

        // 5/6. Sequencing faults. A held-back packet is released *after*
        // the current one, producing a decreasing seq pair; duplication
        // re-delivers the current packet back to back.
        let duplicate = self.duplicate_prob > 0.0 && rng.gen_range(0.0..1.0) < self.duplicate_prob;
        if state.held.is_none()
            && self.reorder_prob > 0.0
            && rng.gen_range(0.0..1.0) < self.reorder_prob
        {
            mpdf_obs::counter!("wifi.faults_reordered_total").inc();
            state.held = Some(packet);
            return;
        }
        let released = state.held.take();
        if duplicate {
            mpdf_obs::counter!("wifi.faults_duplicated_total").inc();
            out.push(packet.clone());
        }
        out.push(packet);
        if let Some(p) = released {
            out.push(p);
        }
    }
}

impl Default for FaultModel {
    fn default() -> Self {
        FaultModel::none()
    }
}

/// Mutable fault-injection state owned by a receiver: the dedicated RNG
/// stream, active burst counters and the reorder hold-back slot.
#[derive(Debug, Clone)]
pub(crate) struct FaultState {
    rng: SmallRng,
    /// Packets still to swallow in the current loss burst.
    loss_remaining: u64,
    /// Per-antenna packets still to corrupt in the current dropout.
    dropout_remaining: Vec<u64>,
    /// Packet held back for out-of-order delivery.
    held: Option<CsiPacket>,
}

impl FaultState {
    pub(crate) fn new(seed: u64, antennas: usize) -> Self {
        FaultState {
            rng: SmallRng::seed_from_u64(seed ^ FAULT_SEED_SALT),
            loss_remaining: 0,
            dropout_remaining: vec![0; antennas],
            held: None,
        }
    }

    /// Resets to the state of a freshly built `FaultState` with the given
    /// seed — part of the [`crate::receiver::CsiReceiver::fork`]
    /// determinism contract.
    pub(crate) fn reset(&mut self, seed: u64) {
        self.rng = SmallRng::seed_from_u64(seed ^ FAULT_SEED_SALT);
        self.loss_remaining = 0;
        for d in &mut self.dropout_remaining {
            *d = 0;
        }
        self.held = None;
    }

    /// Releases the hold-back slot (flushed at the end of a capture so no
    /// packet is silently swallowed by a trailing reorder).
    pub(crate) fn take_held(&mut self) -> Option<CsiPacket> {
        self.held.take()
    }
}

/// Geometric-ish burst length with the given mean, always ≥ 1 and capped
/// at 10× the mean (+10) so a single draw cannot swallow a whole capture.
fn sample_burst_len<R: Rng>(mean: f64, rng: &mut R) -> u64 {
    let mean = mean.max(1.0);
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let len = (-mean * u.ln()).ceil();
    // lint: allow(lossy-cast) — len clamped to [1, 10·mean+10], far below 2^53
    len.clamp(1.0, 10.0 * mean + 10.0) as u64
}

/// Overwrites one antenna row with NaN (dead decoder) or zeros (dead RF
/// chain).
fn corrupt_row(packet: &mut CsiPacket, antenna: usize, nan: bool) {
    let fill = if nan {
        Complex64::new(f64::NAN, f64::NAN)
    } else {
        Complex64::ZERO
    };
    for k in 0..packet.subcarriers() {
        *packet.get_mut(antenna, k) = fill;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_packet(seq: u64) -> CsiPacket {
        CsiPacket::new(3, 30, vec![Complex64::ONE; 90], seq, seq as f64 * 0.02)
    }

    fn run_model(model: &FaultModel, n: u64, seed: u64) -> Vec<CsiPacket> {
        let mut state = FaultState::new(seed, 3);
        let mut out = Vec::new();
        for seq in 0..n {
            model.apply(unit_packet(seq), &mut state, &mut out);
        }
        if let Some(p) = state.take_held() {
            out.push(p);
        }
        out
    }

    #[test]
    fn none_preset_is_identity() {
        let model = FaultModel::none();
        assert!(model.is_none());
        let out = run_model(&model, 10, 1);
        assert_eq!(out.len(), 10);
        for (i, p) in out.iter().enumerate() {
            assert_eq!(p, &unit_packet(i as u64));
        }
    }

    #[test]
    fn presets_resolve_by_name() {
        for name in PRESET_NAMES {
            assert!(FaultModel::preset(name).is_some(), "missing preset {name}");
        }
        assert_eq!(FaultModel::preset("bogus"), None);
        assert!(FaultModel::preset("none").is_some_and(|m| m.is_none()));
        assert!(FaultModel::preset("chaos").is_some_and(|m| !m.is_none()));
    }

    #[test]
    fn loss_creates_sequence_gaps() {
        let model = FaultModel {
            loss_burst_prob: 0.2,
            loss_burst_len: 3.0,
            ..FaultModel::none()
        };
        let out = run_model(&model, 200, 7);
        assert!(out.len() < 200, "no packets lost");
        // Survivors keep their original (gapped) sequence numbers.
        let seqs: Vec<u64> = out.iter().map(|p| p.seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert!(sorted.len() < 200 && !sorted.is_empty());
        assert_eq!(seqs, sorted, "pure loss must preserve order");
    }

    #[test]
    fn dropout_corrupts_whole_rows() {
        let zero_model = FaultModel {
            chain_dropout_prob: 0.1,
            chain_dropout_len: 5.0,
            dropout_nan: false,
            ..FaultModel::none()
        };
        let out = run_model(&zero_model, 100, 3);
        assert_eq!(out.len(), 100);
        let zero_rows = out
            .iter()
            .flat_map(|p| (0..3).map(move |a| (p, a)))
            .filter(|(p, a)| (0..30).all(|k| p.get(*a, k) == Complex64::ZERO))
            .count();
        assert!(zero_rows > 0, "dropout never fired");

        let nan_model = FaultModel {
            dropout_nan: true,
            ..zero_model
        };
        let out = run_model(&nan_model, 100, 3);
        let nan_rows = out
            .iter()
            .flat_map(|p| (0..3).map(move |a| (p, a)))
            .filter(|(p, a)| (0..30).all(|k| p.get(*a, k).re.is_nan()))
            .count();
        assert!(nan_rows > 0, "NaN dropout never fired");
    }

    #[test]
    fn saturation_clips_amplitude_but_keeps_phase() {
        let model = FaultModel {
            agc_saturation_prob: 1.0,
            agc_clip_rel: 0.5,
            ..FaultModel::none()
        };
        let mut state = FaultState::new(1, 3);
        let mut out = Vec::new();
        let big = CsiPacket::new(3, 30, vec![Complex64::from_polar(2.0, 0.4); 90], 0, 0.0);
        model.apply(big, &mut state, &mut out);
        assert_eq!(out.len(), 1);
        for a in 0..3 {
            for k in 0..30 {
                let h = out[0].get(a, k);
                assert!((h.norm() - 0.5).abs() < 1e-12, "amplitude not clipped");
                assert!((h.arg() - 0.4).abs() < 1e-12, "phase not preserved");
            }
        }
    }

    #[test]
    fn duplicates_and_reorders_perturb_sequencing() {
        let model = FaultModel {
            duplicate_prob: 0.2,
            reorder_prob: 0.2,
            ..FaultModel::none()
        };
        let out = run_model(&model, 200, 11);
        let seqs: Vec<u64> = out.iter().map(|p| p.seq).collect();
        let dups = seqs.windows(2).filter(|w| w[0] == w[1]).count();
        let inversions = seqs.windows(2).filter(|w| w[0] > w[1]).count();
        assert!(dups > 0, "no duplicates in {seqs:?}");
        assert!(inversions > 0, "no out-of-order pairs in {seqs:?}");
        // Nothing is lost by sequencing faults: every seq is delivered.
        let mut sorted = seqs;
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 200);
    }

    /// Bit-level fingerprint that, unlike `PartialEq`, treats NaN as
    /// equal to itself — chaos streams contain NaN rows by design.
    fn fingerprint(packets: &[CsiPacket]) -> Vec<(u64, Vec<(u64, u64)>)> {
        packets
            .iter()
            .map(|p| {
                let bits = (0..p.antennas())
                    .flat_map(|a| (0..p.subcarriers()).map(move |k| (a, k)))
                    .map(|(a, k)| {
                        let h = p.get(a, k);
                        (h.re.to_bits(), h.im.to_bits())
                    })
                    .collect();
                (p.seq, bits)
            })
            .collect()
    }

    #[test]
    fn fault_stream_is_deterministic_per_seed() {
        let model = FaultModel::chaos();
        assert_eq!(
            fingerprint(&run_model(&model, 150, 5)),
            fingerprint(&run_model(&model, 150, 5))
        );
        assert_ne!(
            fingerprint(&run_model(&model, 150, 5)),
            fingerprint(&run_model(&model, 150, 6))
        );
    }

    #[test]
    fn scaling_to_zero_disables_everything() {
        let model = FaultModel::chaos();
        assert!(model.scaled(0.0).is_none());
        assert_eq!(model.scaled(1.0), model);
        let half = model.scaled(0.5);
        assert!((half.loss_burst_prob - model.loss_burst_prob * 0.5).abs() < 1e-15);
        assert!((half.loss_burst_len - model.loss_burst_len).abs() < 1e-15);
        // Out-of-range intensities clamp.
        assert_eq!(model.scaled(7.0), model);
        assert!(model.scaled(-3.0).is_none());
    }

    #[test]
    fn burst_lengths_are_positive_and_capped() {
        let mut rng = SmallRng::seed_from_u64(2);
        for mean in [0.0, 1.0, 4.0, 50.0] {
            for _ in 0..200 {
                let len = sample_burst_len(mean, &mut rng);
                assert!(len >= 1);
                // lint: allow(lossy-cast) — small test constant
                assert!(len <= (10.0 * mean.max(1.0) + 10.0) as u64);
            }
        }
    }
}
