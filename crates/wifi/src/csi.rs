//! Channel State Information packets.
//!
//! A [`CsiPacket`] is what the CSI tool hands to user space per received
//! frame: one complex `H(f_k)` per (RX antenna, subcarrier) pair, plus a
//! sequence number and timestamp. Helpers convert to the amplitude/power
//! features the detection schemes consume.

use serde::{Deserialize, Serialize};

use mpdf_rfmath::complex::Complex64;
use mpdf_rfmath::db::power_to_db;

/// CSI for one received packet: `antennas × subcarriers` complex samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsiPacket {
    antennas: usize,
    subcarriers: usize,
    /// Row-major `[antenna][subcarrier]`.
    data: Vec<Complex64>,
    /// Packet sequence number.
    pub seq: u64,
    /// Capture timestamp in seconds.
    pub timestamp: f64,
}

impl CsiPacket {
    /// Creates a packet from row-major samples.
    ///
    /// # Panics
    /// Panics unless `data.len() == antennas * subcarriers` with both
    /// dimensions non-zero.
    pub fn new(
        antennas: usize,
        subcarriers: usize,
        data: Vec<Complex64>,
        seq: u64,
        timestamp: f64,
    ) -> Self {
        assert!(
            antennas > 0 && subcarriers > 0,
            "dimensions must be non-zero"
        );
        assert_eq!(
            data.len(),
            antennas * subcarriers,
            "data length must be antennas × subcarriers"
        );
        CsiPacket {
            antennas,
            subcarriers,
            data,
            seq,
            timestamp,
        }
    }

    /// Number of receive antennas.
    pub fn antennas(&self) -> usize {
        self.antennas
    }

    /// Number of subcarriers.
    pub fn subcarriers(&self) -> usize {
        self.subcarriers
    }

    /// Bitwise equality with another packet: identical shape, metadata
    /// and per-sample bit patterns. Samples compare by representation
    /// (`to_bits`), so `NaN`s equal themselves — IEEE `==` would make a
    /// memo key unsound by never matching a poisoned packet and by
    /// conflating `±0.0`.
    pub fn bits_eq(&self, other: &Self) -> bool {
        self.antennas == other.antennas
            && self.subcarriers == other.subcarriers
            && self.seq == other.seq
            && self.timestamp.to_bits() == other.timestamp.to_bits()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits())
    }

    /// Complex CSI for `(antenna, subcarrier)`.
    ///
    /// # Panics
    /// Panics on out-of-range indices.
    pub fn get(&self, antenna: usize, subcarrier: usize) -> Complex64 {
        assert!(antenna < self.antennas && subcarrier < self.subcarriers);
        self.data[antenna * self.subcarriers + subcarrier]
    }

    /// Mutable access for impairment/sanitization passes.
    pub(crate) fn get_mut(&mut self, antenna: usize, subcarrier: usize) -> &mut Complex64 {
        assert!(antenna < self.antennas && subcarrier < self.subcarriers);
        &mut self.data[antenna * self.subcarriers + subcarrier]
    }

    /// One antenna's CSI across subcarriers.
    pub fn antenna_row(&self, antenna: usize) -> &[Complex64] {
        assert!(antenna < self.antennas, "antenna index out of range");
        &self.data[antenna * self.subcarriers..(antenna + 1) * self.subcarriers]
    }

    /// Mutable row view for sanitization passes.
    pub(crate) fn antenna_row_mut(&mut self, antenna: usize) -> &mut [Complex64] {
        assert!(antenna < self.antennas, "antenna index out of range");
        &mut self.data[antenna * self.subcarriers..(antenna + 1) * self.subcarriers]
    }

    /// One subcarrier's CSI across antennas — a MUSIC snapshot.
    pub fn subcarrier_column(&self, subcarrier: usize) -> Vec<Complex64> {
        assert!(subcarrier < self.subcarriers, "subcarrier out of range");
        (0..self.antennas)
            .map(|a| self.get(a, subcarrier))
            .collect()
    }

    /// Writes the subcarrier column into a caller-provided buffer
    /// (cleared and refilled) — the allocation-free sibling of
    /// [`CsiPacket::subcarrier_column`] for per-window covariance loops.
    pub fn subcarrier_column_into(&self, subcarrier: usize, out: &mut Vec<Complex64>) {
        assert!(subcarrier < self.subcarriers, "subcarrier out of range");
        out.clear();
        out.extend((0..self.antennas).map(|a| self.data[a * self.subcarriers + subcarrier]));
    }

    /// Subcarrier power `|H|²` for one antenna.
    pub fn power(&self, antenna: usize, subcarrier: usize) -> f64 {
        self.get(antenna, subcarrier).norm_sqr()
    }

    /// Packet restricted to the given antenna rows (in the given order) —
    /// the degraded-mode reduction applied after quarantine marks chains
    /// unusable. Sequence number and timestamp are preserved.
    ///
    /// # Panics
    /// Panics when `rows` is empty or contains an out-of-range antenna.
    pub fn select_antennas(&self, rows: &[usize]) -> CsiPacket {
        assert!(!rows.is_empty(), "cannot select zero antennas");
        let mut data = Vec::with_capacity(rows.len() * self.subcarriers);
        for &a in rows {
            data.extend_from_slice(self.antenna_row(a));
        }
        CsiPacket::new(rows.len(), self.subcarriers, data, self.seq, self.timestamp)
    }

    /// Per-subcarrier power averaged over antennas.
    pub fn mean_power_per_subcarrier(&self) -> Vec<f64> {
        (0..self.subcarriers)
            .map(|k| {
                (0..self.antennas).map(|a| self.power(a, k)).sum::<f64>() / self.antennas as f64
            })
            .collect()
    }

    /// Per-subcarrier RSS in dB, averaged over antennas in the power
    /// domain first (the `s(t)` of §III).
    pub fn rss_db_per_subcarrier(&self) -> Vec<f64> {
        self.mean_power_per_subcarrier()
            .into_iter()
            .map(power_to_db)
            .collect()
    }

    /// Total received power over all antennas and subcarriers.
    pub fn total_power(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum()
    }

    /// Element-wise complex mean of a packet collection — the static
    /// profile `s(0)` stored at calibration time.
    ///
    /// # Panics
    /// Panics when `packets` is empty or shapes disagree.
    pub fn mean_of(packets: &[CsiPacket]) -> CsiPacket {
        assert!(!packets.is_empty(), "cannot average zero packets");
        let a = packets[0].antennas;
        let s = packets[0].subcarriers;
        assert!(
            packets
                .iter()
                .all(|p| p.antennas == a && p.subcarriers == s),
            "all packets must share a shape"
        );
        let n = packets.len() as f64;
        let mut data = vec![Complex64::ZERO; a * s];
        for p in packets {
            for (acc, &z) in data.iter_mut().zip(&p.data) {
                *acc += z;
            }
        }
        for z in &mut data {
            *z /= n;
        }
        CsiPacket::new(a, s, data, 0, packets[0].timestamp)
    }

    /// Median per-subcarrier *power* profile of a packet collection.
    ///
    /// Robust to bursty narrowband interference: a burst present in a
    /// minority of packets inflates the mean but leaves the median
    /// untouched, so the weighted detection schemes profile against it.
    ///
    /// # Panics
    /// Panics when `packets` is empty.
    pub fn median_power_profile(packets: &[CsiPacket]) -> Vec<f64> {
        assert!(!packets.is_empty(), "cannot average zero packets");
        let s = packets[0].subcarriers();
        (0..s)
            .map(|k| {
                let mut powers: Vec<f64> = packets
                    .iter()
                    .map(|p| {
                        (0..p.antennas).map(|a| p.power(a, k)).sum::<f64>() / p.antennas as f64
                    })
                    .collect();
                powers.sort_by(f64::total_cmp);
                let n = powers.len();
                if n % 2 == 1 {
                    powers[n / 2]
                } else {
                    0.5 * (powers[n / 2 - 1] + powers[n / 2])
                }
            })
            .collect()
    }

    /// Mean per-subcarrier *power* profile of a packet collection
    /// (amplitude-domain mean would understate noisy captures).
    ///
    /// # Panics
    /// Panics when `packets` is empty.
    pub fn mean_power_profile(packets: &[CsiPacket]) -> Vec<f64> {
        assert!(!packets.is_empty(), "cannot average zero packets");
        let s = packets[0].subcarriers;
        let mut acc = vec![0.0; s];
        for p in packets {
            for (slot, v) in acc.iter_mut().zip(p.mean_power_per_subcarrier()) {
                *slot += v;
            }
        }
        for v in &mut acc {
            *v /= packets.len() as f64;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> Complex64 {
        Complex64::new(re, im)
    }

    fn sample_packet() -> CsiPacket {
        // 2 antennas × 3 subcarriers.
        CsiPacket::new(
            2,
            3,
            vec![
                c(1.0, 0.0),
                c(0.0, 2.0),
                c(3.0, 0.0),
                c(0.0, 1.0),
                c(2.0, 0.0),
                c(0.0, 3.0),
            ],
            7,
            0.02,
        )
    }

    #[test]
    fn indexing_layout() {
        let p = sample_packet();
        assert_eq!(p.antennas(), 2);
        assert_eq!(p.subcarriers(), 3);
        assert_eq!(p.get(0, 1), c(0.0, 2.0));
        assert_eq!(p.get(1, 2), c(0.0, 3.0));
        assert_eq!(p.antenna_row(1), &[c(0.0, 1.0), c(2.0, 0.0), c(0.0, 3.0)]);
        assert_eq!(p.subcarrier_column(0), vec![c(1.0, 0.0), c(0.0, 1.0)]);
    }

    #[test]
    fn power_features() {
        let p = sample_packet();
        assert_eq!(p.power(0, 2), 9.0);
        let mp = p.mean_power_per_subcarrier();
        assert_eq!(mp, vec![1.0, 4.0, 9.0]);
        assert_eq!(p.total_power(), 1.0 + 4.0 + 9.0 + 1.0 + 4.0 + 9.0);
        let rss = p.rss_db_per_subcarrier();
        assert!((rss[0] - 0.0).abs() < 1e-12);
        assert!((rss[2] - 10.0 * 9f64.log10()).abs() < 1e-12);
    }

    #[test]
    fn mean_of_packets() {
        let p1 = sample_packet();
        let mut data2 = vec![Complex64::ZERO; 6];
        data2[0] = c(3.0, 0.0);
        let p2 = CsiPacket::new(2, 3, data2, 8, 0.04);
        let m = CsiPacket::mean_of(&[p1.clone(), p2]);
        assert_eq!(m.get(0, 0), c(2.0, 0.0));
        assert_eq!(m.get(0, 1), c(0.0, 1.0));
    }

    #[test]
    fn mean_power_profile_averages_in_power_domain() {
        let p = sample_packet();
        let prof = CsiPacket::mean_power_profile(&[p.clone(), p]);
        assert_eq!(prof, vec![1.0, 4.0, 9.0]);
    }

    #[test]
    #[should_panic(expected = "antennas × subcarriers")]
    fn shape_mismatch_panics() {
        let _ = CsiPacket::new(2, 3, vec![Complex64::ZERO; 5], 0, 0.0);
    }

    #[test]
    #[should_panic(expected = "cannot average zero packets")]
    fn empty_mean_panics() {
        let _ = CsiPacket::mean_of(&[]);
    }
}
