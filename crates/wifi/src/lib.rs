//! # mpdf-wifi — 802.11n CSI measurement substrate
//!
//! Emulates the paper's measurement stack (Tenda AP → Intel 5300 NIC →
//! CSI tool) on top of the `mpdf-propagation` channel simulator:
//!
//! - [`band`] — channel 11 band plan and the Intel 5300 30-subcarrier grid.
//! - [`csi`] — per-packet CSI matrices and power/RSS features.
//! - [`mod@array`] — the 3-element λ/2 receive ULA and its steering vectors.
//! - [`impairments`] — AWGN, CFO/SFO phase errors, AGC jitter.
//! - [`fault`] — injected receiver faults: loss bursts, chain dropouts,
//!   AGC clipping, NaN rows, duplicate/out-of-order delivery.
//! - [`quarantine`] — the validation pass classifying each packet
//!   Ok / Degraded / Reject before it reaches the detector.
//! - [`sanitize`] — linear-phase calibration (the paper's \[26\]).
//! - [`receiver`] — the 50 pkt/s campaign driver, fully seeded.
//! - [`trace`] — versioned binary capture files for record/replay.
//! - [`wire`] — the streaming wire codec: zero-copy frame decoding with
//!   typed errors and resync, for untrusted socket-shaped byte streams.
//!
//! ```
//! use mpdf_geom::shapes::Rect;
//! use mpdf_geom::vec2::Vec2;
//! use mpdf_propagation::channel::ChannelModel;
//! use mpdf_propagation::environment::Environment;
//! use mpdf_wifi::receiver::CsiReceiver;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let room = Environment::empty_room(Rect::new(Vec2::ZERO, Vec2::new(8.0, 6.0)));
//! let link = ChannelModel::new(room, Vec2::new(2.0, 3.0), Vec2::new(6.0, 3.0))?;
//! let mut rx = CsiReceiver::new(link, 42)?;
//! let packets = rx.capture_static(None, 10)?;
//! assert_eq!(packets[0].subcarriers(), 30);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod array;
pub mod band;
pub mod csi;
pub mod fault;
pub mod impairments;
pub mod quarantine;
pub mod receiver;
pub mod sanitize;
pub mod trace;
pub mod wire;

pub use array::UniformLinearArray;
pub use band::{Band, BandError, INTEL5300_SUBCARRIER_INDICES, NUM_SUBCARRIERS};
pub use csi::CsiPacket;
pub use fault::FaultModel;
pub use impairments::ImpairmentModel;
pub use quarantine::{PacketClass, Quarantine, QuarantinePolicy, RejectReason};
pub use receiver::{Actor, CsiReceiver, ReceiverConfig};
pub use wire::{FrameSplitter, WireError, WireRecord};
