//! Packet quarantine — the validation pass between the receiver and the
//! detector.
//!
//! Real CSI streams contain garbage (see [`crate::fault`]); feeding it to
//! the detection pipeline either panics (NaN poisoning the phase fit) or
//! silently corrupts the calibration profile. The quarantine classifies
//! every packet before it reaches the detector:
//!
//! - [`PacketClass::Ok`] — all antenna rows healthy, no clipping.
//! - [`PacketClass::Degraded`] — at least `min_usable_antennas` healthy
//!   rows survive; the class carries which antennas are usable and which
//!   subcarriers saw AGC clipping so downstream can renormalize.
//! - [`PacketClass::Reject`] — unusable (no healthy rows, or a duplicate
//!   sequence number in stream mode).
//!
//! A row is unhealthy when it contains any non-finite sample, is entirely
//! zero (dead RF chain), or has more than `max_saturated_frac` of its
//! samples pinned at the AGC rail.

use serde::{Deserialize, Serialize};

use crate::csi::CsiPacket;

/// Quarantine thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuarantinePolicy {
    /// AGC rail amplitude in normalized CSI units; samples at or above
    /// it count as saturated. `f64::INFINITY` (the default) disables
    /// saturation screening.
    pub saturation_amp: f64,
    /// Fraction of saturated samples above which a row is unusable.
    pub max_saturated_frac: f64,
    /// Minimum healthy rows for a packet to be usable at all; below this
    /// the packet is rejected. Clamped to ≥ 1.
    pub min_usable_antennas: usize,
}

impl Default for QuarantinePolicy {
    fn default() -> Self {
        QuarantinePolicy {
            saturation_amp: f64::INFINITY,
            max_saturated_frac: 0.5,
            min_usable_antennas: 1,
        }
    }
}

/// Why a packet was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// Fewer than `min_usable_antennas` healthy rows.
    NoUsableAntennas,
    /// Same sequence number as the previous packet in the stream.
    DuplicateSeq,
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::NoUsableAntennas => write!(f, "no usable antennas"),
            RejectReason::DuplicateSeq => write!(f, "duplicate sequence number"),
        }
    }
}

/// Verdict of the quarantine pass for one packet.
#[derive(Debug, Clone, PartialEq)]
pub enum PacketClass {
    /// Fully healthy.
    Ok,
    /// Usable with caveats.
    Degraded {
        /// Healthy antenna rows, ascending.
        usable_antennas: Vec<usize>,
        /// Per-subcarrier flag: `true` where a healthy row saw an
        /// AGC-saturated sample.
        clipped_subcarriers: Vec<bool>,
    },
    /// Unusable; drop it.
    Reject {
        /// Why.
        reason: RejectReason,
    },
}

impl PacketClass {
    /// True for [`PacketClass::Reject`].
    pub fn is_reject(&self) -> bool {
        matches!(self, PacketClass::Reject { .. })
    }
}

/// Classifies a single packet against the policy (stateless: duplicate
/// detection needs the streaming [`Quarantine`]).
///
/// Never panics, whatever garbage the packet holds — NaN/Inf samples,
/// all-zero rows and rail-pinned rows are exactly what it screens for.
pub fn classify(packet: &CsiPacket, policy: &QuarantinePolicy) -> PacketClass {
    let antennas = packet.antennas();
    let subcarriers = packet.subcarriers();
    let screen_saturation = policy.saturation_amp.is_finite() && policy.saturation_amp > 0.0;

    // Fast screen with no saturation policy: the common case is a
    // pristine packet, classified with a single allocation-free pass.
    if !screen_saturation {
        let all_rows_healthy = (0..antennas).all(|a| {
            let mut power = 0.0;
            for h in packet.antenna_row(a) {
                if !h.re.is_finite() || !h.im.is_finite() {
                    return false;
                }
                power += h.norm_sqr();
            }
            power > 0.0
        });
        if all_rows_healthy && antennas >= policy.min_usable_antennas.max(1) {
            return PacketClass::Ok;
        }
    }

    let mut usable = Vec::with_capacity(antennas);
    let mut clipped = vec![false; subcarriers];
    let mut row_clipped = vec![false; subcarriers];
    let mut any_clipped = false;

    for a in 0..antennas {
        let mut finite = true;
        let mut power = 0.0;
        let mut saturated = 0usize;
        for (flag, h) in row_clipped.iter_mut().zip(packet.antenna_row(a)) {
            *flag = false;
            if !h.re.is_finite() || !h.im.is_finite() {
                finite = false;
                break;
            }
            power += h.norm_sqr();
            if screen_saturation && h.norm() >= policy.saturation_amp * (1.0 - 1e-9) {
                saturated += 1;
                *flag = true;
            }
        }
        if !finite || power <= 0.0 {
            continue; // corrupt or dead chain
        }
        if saturated as f64 > policy.max_saturated_frac * subcarriers as f64 {
            continue; // rail-stuck chain
        }
        for (dst, &src) in clipped.iter_mut().zip(&row_clipped) {
            if src {
                *dst = true;
                any_clipped = true;
            }
        }
        usable.push(a);
    }

    if usable.len() < policy.min_usable_antennas.max(1) {
        return PacketClass::Reject {
            reason: RejectReason::NoUsableAntennas,
        };
    }
    if usable.len() == antennas && !any_clipped {
        return PacketClass::Ok;
    }
    PacketClass::Degraded {
        usable_antennas: usable,
        clipped_subcarriers: clipped,
    }
}

/// Streaming quarantine: per-packet classification plus duplicate
/// sequence-number detection, with obs counters
/// (`wifi.quarantine_rejects_total`, `wifi.quarantine_degraded_total`).
#[derive(Debug, Clone)]
pub struct Quarantine {
    policy: QuarantinePolicy,
    last_seq: Option<u64>,
}

impl Quarantine {
    /// Creates a stream quarantine with the given policy.
    pub fn new(policy: QuarantinePolicy) -> Self {
        Quarantine {
            policy,
            last_seq: None,
        }
    }

    /// The active policy.
    pub fn policy(&self) -> &QuarantinePolicy {
        &self.policy
    }

    /// Classifies the next packet in stream order. A packet repeating the
    /// previous sequence number is rejected as a duplicate delivery
    /// (out-of-order packets are *not* rejected — reordering is handled
    /// by seq-sorting downstream).
    pub fn classify(&mut self, packet: &CsiPacket) -> PacketClass {
        if self.last_seq == Some(packet.seq) {
            mpdf_obs::counter!("wifi.quarantine_rejects_total").inc();
            mpdf_obs::counter!("wifi.quarantine_duplicates_total").inc();
            return PacketClass::Reject {
                reason: RejectReason::DuplicateSeq,
            };
        }
        self.last_seq = Some(packet.seq);
        let class = classify(packet, &self.policy);
        match &class {
            PacketClass::Ok => {}
            PacketClass::Degraded { .. } => {
                mpdf_obs::counter!("wifi.quarantine_degraded_total").inc();
            }
            PacketClass::Reject { .. } => {
                mpdf_obs::counter!("wifi.quarantine_rejects_total").inc();
            }
        }
        class
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdf_rfmath::complex::Complex64;

    fn healthy() -> CsiPacket {
        CsiPacket::new(3, 30, vec![Complex64::ONE; 90], 0, 0.0)
    }

    fn with_row(mut p: CsiPacket, a: usize, v: Complex64) -> CsiPacket {
        for k in 0..p.subcarriers() {
            *p.get_mut(a, k) = v;
        }
        p
    }

    #[test]
    fn clean_packet_is_ok() {
        assert_eq!(
            classify(&healthy(), &QuarantinePolicy::default()),
            PacketClass::Ok
        );
    }

    #[test]
    fn nan_row_degrades_to_surviving_antennas() {
        let p = with_row(healthy(), 1, Complex64::new(f64::NAN, 0.0));
        match classify(&p, &QuarantinePolicy::default()) {
            PacketClass::Degraded {
                usable_antennas, ..
            } => assert_eq!(usable_antennas, vec![0, 2]),
            other => panic!("expected Degraded, got {other:?}"),
        }
    }

    #[test]
    fn zero_row_degrades() {
        let p = with_row(healthy(), 0, Complex64::ZERO);
        match classify(&p, &QuarantinePolicy::default()) {
            PacketClass::Degraded {
                usable_antennas, ..
            } => assert_eq!(usable_antennas, vec![1, 2]),
            other => panic!("expected Degraded, got {other:?}"),
        }
    }

    #[test]
    fn all_rows_corrupt_rejects() {
        let mut p = healthy();
        for a in 0..3 {
            p = with_row(p, a, Complex64::new(f64::INFINITY, 0.0));
        }
        assert_eq!(
            classify(&p, &QuarantinePolicy::default()),
            PacketClass::Reject {
                reason: RejectReason::NoUsableAntennas
            }
        );
    }

    #[test]
    fn min_usable_antennas_gates_rejection() {
        let p = with_row(healthy(), 0, Complex64::ZERO);
        let strict = QuarantinePolicy {
            min_usable_antennas: 3,
            ..QuarantinePolicy::default()
        };
        assert!(classify(&p, &strict).is_reject());
    }

    #[test]
    fn saturated_subcarriers_are_flagged() {
        let policy = QuarantinePolicy {
            saturation_amp: 0.7,
            ..QuarantinePolicy::default()
        };
        // Calm packet well below the rail.
        let calm = CsiPacket::new(3, 30, vec![Complex64::new(0.5, 0.0); 90], 0, 0.0);
        // A few clipped samples: degraded with a clip mask, rows usable.
        let mut p = calm.clone();
        for k in [3, 4] {
            *p.get_mut(0, k) = Complex64::from_polar(0.7, 0.1);
        }
        match classify(&p, &policy) {
            PacketClass::Degraded {
                usable_antennas,
                clipped_subcarriers,
            } => {
                assert_eq!(usable_antennas, vec![0, 1, 2]);
                assert!(clipped_subcarriers[3] && clipped_subcarriers[4]);
                assert_eq!(clipped_subcarriers.iter().filter(|&&c| c).count(), 2);
            }
            other => panic!("expected Degraded, got {other:?}"),
        }
        // A fully rail-pinned row is unusable.
        let pinned = with_row(calm.clone(), 2, Complex64::from_polar(0.7, 0.0));
        match classify(&pinned, &policy) {
            PacketClass::Degraded {
                usable_antennas, ..
            } => assert_eq!(usable_antennas, vec![0, 1]),
            other => panic!("expected Degraded, got {other:?}"),
        }
        // Amplitudes below the rail never count as saturated.
        assert_eq!(classify(&calm, &policy), PacketClass::Ok);
    }

    #[test]
    fn stream_rejects_adjacent_duplicates() {
        let mut q = Quarantine::new(QuarantinePolicy::default());
        let mut a = healthy();
        a.seq = 5;
        let mut b = healthy();
        b.seq = 5;
        let mut c = healthy();
        c.seq = 4; // out of order, but not a duplicate
        assert_eq!(q.classify(&a), PacketClass::Ok);
        assert_eq!(
            q.classify(&b),
            PacketClass::Reject {
                reason: RejectReason::DuplicateSeq
            }
        );
        assert_eq!(q.classify(&c), PacketClass::Ok);
    }

    #[test]
    fn reject_reasons_display() {
        assert_eq!(
            RejectReason::NoUsableAntennas.to_string(),
            "no usable antennas"
        );
        assert_eq!(
            RejectReason::DuplicateSeq.to_string(),
            "duplicate sequence number"
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use mpdf_rfmath::complex::Complex64;
    use proptest::prelude::*;

    /// Any f64 including NaN/Inf/zero — the garbage classification must
    /// survive.
    fn wild() -> impl Strategy<Value = f64> {
        (0usize..5, -1e12f64..1e12).prop_map(|(kind, v)| match kind {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            3 => 0.0,
            _ => v,
        })
    }

    proptest! {
        /// Quarantine classification never panics, whatever the packet
        /// holds, and its verdict is internally consistent.
        #[test]
        fn classify_never_panics(
            res in proptest::collection::vec(wild(), 2 * 5),
            ims in proptest::collection::vec(wild(), 2 * 5),
            sat_amp in (0usize..2, 0.1f64..10.0)
                .prop_map(|(k, v)| if k == 0 { f64::INFINITY } else { v }),
        ) {
            let data: Vec<Complex64> = res
                .iter()
                .zip(&ims)
                .map(|(&re, &im)| Complex64::new(re, im))
                .collect();
            let p = CsiPacket::new(2, 5, data, 0, 0.0);
            let policy = QuarantinePolicy {
                saturation_amp: sat_amp,
                ..QuarantinePolicy::default()
            };
            match classify(&p, &policy) {
                PacketClass::Ok => {}
                PacketClass::Degraded { usable_antennas, clipped_subcarriers } => {
                    prop_assert!(!usable_antennas.is_empty());
                    prop_assert!(usable_antennas.iter().all(|&a| a < 2));
                    prop_assert_eq!(clipped_subcarriers.len(), 5);
                }
                PacketClass::Reject { reason } => {
                    prop_assert_eq!(reason, RejectReason::NoUsableAntennas);
                }
            }
        }
    }
}
