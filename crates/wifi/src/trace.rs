//! Binary CSI capture files.
//!
//! The paper's campaign stores raw CSI tool dumps and post-processes them
//! in MATLAB. This module provides the equivalent for this stack: a
//! compact, versioned binary format for packet captures, so campaigns can
//! be recorded once and replayed through different detectors offline (see
//! the `record`/`replay` examples).
//!
//! Layout (all little-endian):
//!
//! ```text
//! magic   b"MPDF"                     4 bytes
//! version u16                         2
//! antennas u16, subcarriers u16       4
//! count   u64                         8
//! per packet:
//!   seq u64, timestamp f64            16
//!   (re f64, im f64) × antennas×subcarriers
//! ```
//!
//! All packets in one capture share a shape — mixed-shape captures are
//! rejected at write time.

use std::error::Error;
use std::fmt;
use std::io::{Read, Write};

use bytes::{Buf, BufMut, Bytes, BytesMut};

use mpdf_rfmath::complex::Complex64;

use crate::csi::CsiPacket;

/// File magic.
pub const MAGIC: &[u8; 4] = b"MPDF";
/// Current format version.
pub const VERSION: u16 = 1;

/// Error returned when decoding a capture.
#[derive(Debug)]
pub enum CaptureError {
    /// The stream does not start with the `MPDF` magic.
    BadMagic,
    /// The version field is unsupported.
    UnsupportedVersion(u16),
    /// The stream ended before the declared packet count.
    Truncated,
    /// The header declares a zero-sized shape.
    BadShape,
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for CaptureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CaptureError::BadMagic => write!(f, "not an MPDF capture (bad magic)"),
            CaptureError::UnsupportedVersion(v) => write!(f, "unsupported capture version {v}"),
            CaptureError::Truncated => write!(f, "capture ends before declared packet count"),
            CaptureError::BadShape => write!(f, "capture declares an empty packet shape"),
            CaptureError::Io(e) => write!(f, "i/o error reading capture: {e}"),
        }
    }
}

impl Error for CaptureError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CaptureError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CaptureError {
    fn from(e: std::io::Error) -> Self {
        CaptureError::Io(e)
    }
}

/// Encodes a capture into a byte buffer.
///
/// # Panics
/// Panics if `packets` is empty or shapes are inconsistent — a capture of
/// nothing is a caller bug, not an I/O condition.
pub fn encode_capture(packets: &[CsiPacket]) -> Bytes {
    assert!(!packets.is_empty(), "cannot encode an empty capture");
    let antennas = packets[0].antennas();
    let subcarriers = packets[0].subcarriers();
    assert!(
        packets
            .iter()
            .all(|p| p.antennas() == antennas && p.subcarriers() == subcarriers),
        "all packets in a capture must share a shape"
    );
    let per_packet = 16 + antennas * subcarriers * 16;
    let mut buf = BytesMut::with_capacity(18 + packets.len() * per_packet);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u16_le(antennas as u16);
    buf.put_u16_le(subcarriers as u16);
    buf.put_u64_le(packets.len() as u64);
    for p in packets {
        buf.put_u64_le(p.seq);
        buf.put_f64_le(p.timestamp);
        for a in 0..antennas {
            for k in 0..subcarriers {
                let z = p.get(a, k);
                buf.put_f64_le(z.re);
                buf.put_f64_le(z.im);
            }
        }
    }
    buf.freeze()
}

/// Writes a capture to any writer.
///
/// # Errors
/// Propagates I/O failures.
pub fn write_capture<W: Write>(mut w: W, packets: &[CsiPacket]) -> std::io::Result<()> {
    w.write_all(&encode_capture(packets))
}

/// Decodes a capture from a byte slice.
///
/// # Errors
/// See [`CaptureError`].
pub fn decode_capture(data: &[u8]) -> Result<Vec<CsiPacket>, CaptureError> {
    let mut buf = data;
    if buf.remaining() < 18 {
        return Err(CaptureError::Truncated);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(CaptureError::BadMagic);
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(CaptureError::UnsupportedVersion(version));
    }
    let antennas = buf.get_u16_le() as usize;
    let subcarriers = buf.get_u16_le() as usize;
    if antennas == 0 || subcarriers == 0 {
        return Err(CaptureError::BadShape);
    }
    let count = buf.get_u64_le() as usize;
    let per_packet = 16 + antennas * subcarriers * 16;
    let mut packets = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        if buf.remaining() < per_packet {
            return Err(CaptureError::Truncated);
        }
        let seq = buf.get_u64_le();
        let timestamp = buf.get_f64_le();
        let mut data = Vec::with_capacity(antennas * subcarriers);
        for _ in 0..antennas * subcarriers {
            let re = buf.get_f64_le();
            let im = buf.get_f64_le();
            data.push(Complex64::new(re, im));
        }
        packets.push(CsiPacket::new(antennas, subcarriers, data, seq, timestamp));
    }
    Ok(packets)
}

/// Reads a capture from any reader.
///
/// # Errors
/// See [`CaptureError`].
pub fn read_capture<R: Read>(mut r: R) -> Result<Vec<CsiPacket>, CaptureError> {
    let mut data = Vec::new();
    r.read_to_end(&mut data)?;
    decode_capture(&data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packets(n: usize) -> Vec<CsiPacket> {
        (0..n)
            .map(|i| {
                let data: Vec<Complex64> = (0..90)
                    .map(|j| Complex64::new(i as f64 + j as f64 * 0.01, -(j as f64)))
                    .collect();
                CsiPacket::new(3, 30, data, i as u64, i as f64 * 0.02)
            })
            .collect()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let original = packets(7);
        let bytes = encode_capture(&original);
        let decoded = decode_capture(&bytes).unwrap();
        assert_eq!(decoded, original);
    }

    #[test]
    fn io_round_trip() {
        let original = packets(3);
        let mut file = Vec::new();
        write_capture(&mut file, &original).unwrap();
        let decoded = read_capture(file.as_slice()).unwrap();
        assert_eq!(decoded, original);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = encode_capture(&packets(1)).to_vec();
        bytes[0] = b'X';
        assert!(matches!(
            decode_capture(&bytes),
            Err(CaptureError::BadMagic)
        ));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut bytes = encode_capture(&packets(1)).to_vec();
        bytes[4] = 9;
        assert!(matches!(
            decode_capture(&bytes),
            Err(CaptureError::UnsupportedVersion(9))
        ));
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = encode_capture(&packets(4));
        for cut in [3usize, 17, 30, bytes.len() - 1] {
            assert!(
                matches!(decode_capture(&bytes[..cut]), Err(CaptureError::Truncated)),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn header_size_is_as_documented() {
        let bytes = encode_capture(&packets(1));
        // 18-byte header + one packet of 16 + 90·16 bytes.
        assert_eq!(bytes.len(), 18 + 16 + 90 * 16);
    }

    #[test]
    #[should_panic(expected = "share a shape")]
    fn mixed_shapes_panic() {
        let mut v = packets(1);
        v.push(CsiPacket::new(2, 30, vec![Complex64::ZERO; 60], 0, 0.0));
        let _ = encode_capture(&v);
    }

    #[test]
    fn error_messages() {
        assert_eq!(
            CaptureError::BadMagic.to_string(),
            "not an MPDF capture (bad magic)"
        );
        assert!(CaptureError::UnsupportedVersion(3)
            .to_string()
            .contains("version 3"));
    }
}
