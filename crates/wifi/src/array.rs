//! Receive antenna arrays.
//!
//! The paper's receiver carries three external omnidirectional antennas in
//! a uniform linear array (ULA) at half-wavelength spacing (§IV-B1,
//! Fig. 5a). The array supplies two things:
//!
//! - physical element offsets, so the channel simulator can evaluate the
//!   CFR each element actually sees;
//! - steering vectors `a(θ)` with per-element phase `e^{-jπ m sinθ}`
//!   (paper Eq. 16's geometry), consumed by the MUSIC estimator.

use serde::{Deserialize, Serialize};

use mpdf_geom::vec2::Vec2;
use mpdf_rfmath::complex::Complex64;

/// A uniform linear antenna array.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UniformLinearArray {
    elements: usize,
    spacing_m: f64,
    axis: Vec2,
}

impl UniformLinearArray {
    /// The paper's receiver: 3 elements at λ/2 for the given wavelength,
    /// axis along +y (broadside facing +x).
    pub fn three_element(wavelength_m: f64) -> Self {
        UniformLinearArray::new(3, wavelength_m / 2.0, Vec2::new(0.0, 1.0))
    }

    /// Creates a ULA with `elements` antennas spaced `spacing_m` metres
    /// along unit direction `axis`.
    ///
    /// # Panics
    /// Panics if `elements < 2`, spacing is non-positive, or the axis is
    /// (near-)zero.
    pub fn new(elements: usize, spacing_m: f64, axis: Vec2) -> Self {
        assert!(elements >= 2, "an array needs at least two elements");
        assert!(
            spacing_m > 0.0 && spacing_m.is_finite(),
            "element spacing must be positive"
        );
        // lint: allow(no-panic) — validating constructor with a documented `# Panics` contract
        let axis = axis.normalized().expect("array axis must be non-zero");
        UniformLinearArray {
            elements,
            spacing_m,
            axis,
        }
    }

    /// Number of elements.
    pub fn elements(&self) -> usize {
        self.elements
    }

    /// Element spacing in metres.
    pub fn spacing_m(&self) -> f64 {
        self.spacing_m
    }

    /// Unit vector along the array axis.
    pub fn axis(&self) -> Vec2 {
        self.axis
    }

    /// Physical offsets of each element from the nominal receiver point,
    /// centred on the array midpoint.
    pub fn offsets(&self) -> Vec<Vec2> {
        let mid = (self.elements as f64 - 1.0) / 2.0;
        (0..self.elements)
            .map(|m| self.axis * ((m as f64 - mid) * self.spacing_m))
            .collect()
    }

    /// Incidence angle (radians, in `[-π/2, π/2]`) of a wave arriving with
    /// unit propagation direction `u`, measured from the array broadside.
    ///
    /// `sin θ = u · axis` — a wave travelling perpendicular to the axis
    /// (broadside) has θ = 0.
    pub fn incidence_angle(&self, propagation_dir: Vec2) -> f64 {
        propagation_dir.dot(self.axis).clamp(-1.0, 1.0).asin()
    }

    /// Steering vector `a(θ)` at the given wavelength: element `m` (centred
    /// like [`UniformLinearArray::offsets`]) has phase
    /// `e^{-j·2π/λ·(m−mid)·d·sinθ}` — matching the extra travel a plane
    /// wave needs to reach that element.
    ///
    /// # Panics
    /// Panics if the wavelength is non-positive.
    pub fn steering_vector(&self, theta: f64, wavelength_m: f64) -> Vec<Complex64> {
        assert!(wavelength_m > 0.0, "wavelength must be positive");
        let mid = (self.elements as f64 - 1.0) / 2.0;
        let k = 2.0 * std::f64::consts::PI / wavelength_m;
        (0..self.elements)
            .map(|m| {
                let extra = (m as f64 - mid) * self.spacing_m * theta.sin();
                Complex64::cis(-k * extra)
            })
            .collect()
    }

    /// The unambiguous angular field of view: with spacing ≤ λ/2 the
    /// full ±90°; wider spacing aliases earlier.
    pub fn unambiguous_fov(&self, wavelength_m: f64) -> f64 {
        let ratio = wavelength_m / (2.0 * self.spacing_m);
        if ratio >= 1.0 {
            std::f64::consts::FRAC_PI_2
        } else {
            ratio.asin()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};

    const LAMBDA: f64 = 0.1218;

    #[test]
    fn three_element_layout() {
        let a = UniformLinearArray::three_element(LAMBDA);
        assert_eq!(a.elements(), 3);
        assert!((a.spacing_m() - LAMBDA / 2.0).abs() < 1e-12);
        let offs = a.offsets();
        assert_eq!(offs.len(), 3);
        // Centred: middle element at the origin, ends symmetric.
        assert!(offs[1].norm() < 1e-12);
        assert!((offs[0] + offs[2]).norm() < 1e-12);
        assert!((offs[2].norm() - LAMBDA / 2.0).abs() < 1e-12);
    }

    #[test]
    fn incidence_angle_geometry() {
        let a = UniformLinearArray::three_element(LAMBDA); // axis +y
                                                           // Wave travelling +x (broadside): θ = 0.
        assert!(a.incidence_angle(Vec2::new(1.0, 0.0)).abs() < 1e-12);
        // Travelling +y (endfire): θ = +90°.
        assert!((a.incidence_angle(Vec2::new(0.0, 1.0)) - FRAC_PI_2).abs() < 1e-12);
        // Travelling −y: θ = −90°.
        assert!((a.incidence_angle(Vec2::new(0.0, -1.0)) + FRAC_PI_2).abs() < 1e-12);
        // 45°.
        let d = Vec2::new(1.0, 1.0).normalized().unwrap();
        assert!((a.incidence_angle(d) - FRAC_PI_4).abs() < 1e-12);
    }

    #[test]
    fn steering_vector_phases() {
        let a = UniformLinearArray::three_element(LAMBDA);
        // Broadside: all elements in phase.
        let sv0 = a.steering_vector(0.0, LAMBDA);
        for z in &sv0 {
            assert!((*z - Complex64::ONE).norm() < 1e-12);
        }
        // At θ: adjacent-element phase difference = π·sinθ for λ/2 spacing
        // (paper §IV-B1: Δφ = π sin θ).
        let theta = 0.5;
        let sv = a.steering_vector(theta, LAMBDA);
        let dphi = (sv[1] * sv[0].conj()).arg();
        assert!((dphi + PI * theta.sin()).abs() < 1e-9, "got {dphi}");
    }

    #[test]
    fn steering_vectors_decorrelate_with_angle() {
        let a = UniformLinearArray::three_element(LAMBDA);
        let s1 = a.steering_vector(0.0, LAMBDA);
        let s2 = a.steering_vector(0.8, LAMBDA);
        let corr: Complex64 = s1.iter().zip(&s2).map(|(&x, &y)| x.conj() * y).sum();
        assert!(corr.norm() < 3.0 - 1e-3, "distinct angles must decorrelate");
    }

    #[test]
    fn half_wavelength_spacing_has_full_fov() {
        let a = UniformLinearArray::three_element(LAMBDA);
        assert!((a.unambiguous_fov(LAMBDA) - FRAC_PI_2).abs() < 1e-12);
        let wide = UniformLinearArray::new(3, LAMBDA, Vec2::new(0.0, 1.0));
        assert!(wide.unambiguous_fov(LAMBDA) < FRAC_PI_2);
    }

    #[test]
    #[should_panic(expected = "at least two elements")]
    fn single_element_panics() {
        let _ = UniformLinearArray::new(1, 0.06, Vec2::new(0.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_axis_panics() {
        let _ = UniformLinearArray::new(3, 0.06, Vec2::ZERO);
    }
}
