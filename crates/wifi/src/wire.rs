//! Zero-copy binary CSI wire codec for streaming ingestion.
//!
//! The paper's monitoring loop is fed by the Intel 5300 CSI tool, which
//! emits a continuous record stream over a socket: per received frame,
//! a small header (sequence counter, timestamp, antenna/subcarrier
//! dimensions, AGC) followed by the raw I/Q samples. This module defines
//! the equivalent wire format for this stack and a decoder built for the
//! line-rate path:
//!
//! - **zero-copy** — [`WireRecord`] is a validating *view* borrowing the
//!   input buffer; samples are read in place via [`WireRecord::iq`] and
//!   nothing is materialized until the consumer asks for a
//!   [`CsiPacket`].
//! - **zero-alloc** — splitting and validating a frame allocates
//!   nothing (pinned by the `alloc-profile` test and the
//!   `wire/decode_frame` bench).
//! - **total** — wire bytes are untrusted; every malformed input maps to
//!   a typed [`WireError`], never a panic, and [`FrameSplitter`]
//!   resynchronizes on the next sync byte after corruption.
//!
//! Frame layout (all little-endian), modeled on the 5300 record — one
//! sync/code byte, an explicit length for stream splitting, then the
//! header fields the tool reports per frame:
//!
//! ```text
//! offset size field
//! 0      1    sync      0xBB (the CSI tool's record code)
//! 1      1    version   1
//! 2      4    len       u32: byte count of everything after this field
//! 6      8    seq       u64 packet sequence number
//! 14     8    timestamp f64 capture time in seconds
//! 22     1    antennas  u8, non-zero
//! 23     1    subcarriers u8, non-zero
//! 24     1    agc       u8 receiver gain step
//! 25     1    reserved  must be 0
//! 26     …    payload   antennas × subcarriers × (re f64, im f64),
//!                       row-major `[antenna][subcarrier]`, interleaved I/Q
//! ```
//!
//! `len` is always `20 + 16·antennas·subcarriers`; the decoder rejects
//! any frame whose declared length disagrees with its declared shape, so
//! a corrupt length field can never request an unbounded read. Unlike
//! the capture-file format ([`crate::trace`]) there is no stream-level
//! header: every frame is self-describing, so a receiver can join a
//! stream mid-flight and lock on at the next sync byte.

use std::error::Error;
use std::fmt;

use mpdf_rfmath::complex::Complex64;

use crate::csi::CsiPacket;

/// Frame sync byte (the Intel CSI tool's CSI record code).
pub const SYNC: u8 = 0xBB;
/// Current wire format version.
pub const VERSION: u8 = 1;
/// Fixed byte count before the I/Q payload.
pub const HEADER_LEN: usize = 26;
/// Portion of the frame covered by the `len` field but before the
/// payload (seq + timestamp + shape/agc/reserved).
const HEADER_TAIL: usize = HEADER_LEN - 6;

/// Typed decode failures; wire bytes are untrusted, so every malformed
/// input lands here instead of panicking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The frame does not start with the sync byte.
    BadSync(u8),
    /// The version field is not [`VERSION`].
    UnsupportedVersion(u8),
    /// The header declares a zero-sized antenna/subcarrier grid.
    BadShape {
        /// Declared antenna count.
        antennas: u8,
        /// Declared subcarrier count.
        subcarriers: u8,
    },
    /// The reserved header byte is non-zero.
    NonZeroReserved(u8),
    /// The declared length disagrees with the declared shape.
    LengthMismatch {
        /// `len` field as read from the wire.
        declared: u32,
        /// Length implied by the declared shape.
        expected: u32,
    },
    /// The buffer ends before the frame does; `needed` bytes (from the
    /// frame start) would complete it. In a stream this is not
    /// corruption but "wait for more bytes".
    Truncated {
        /// Bytes needed from the start of the frame.
        needed: usize,
        /// Bytes available.
        have: usize,
    },
    /// Encode-side: the packet shape does not fit the wire header's
    /// `u8` dimensions.
    ShapeTooLarge {
        /// Packet antenna count.
        antennas: usize,
        /// Packet subcarrier count.
        subcarriers: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadSync(b) => write!(f, "bad sync byte {b:#04x} (expected {SYNC:#04x})"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::BadShape {
                antennas,
                subcarriers,
            } => write!(f, "frame declares an empty {antennas}×{subcarriers} grid"),
            WireError::NonZeroReserved(b) => write!(f, "reserved header byte is {b:#04x}"),
            WireError::LengthMismatch { declared, expected } => write!(
                f,
                "declared frame length {declared} disagrees with shape-implied {expected}"
            ),
            WireError::Truncated { needed, have } => {
                write!(f, "frame truncated: {have} of {needed} bytes")
            }
            WireError::ShapeTooLarge {
                antennas,
                subcarriers,
            } => write!(
                f,
                "packet shape {antennas}×{subcarriers} exceeds the wire header's u8 dimensions"
            ),
        }
    }
}

impl Error for WireError {}

fn read_u32_le(buf: &[u8], off: usize) -> u32 {
    let mut v = [0u8; 4];
    v.copy_from_slice(&buf[off..off + 4]);
    u32::from_le_bytes(v)
}

fn read_u64_le(buf: &[u8], off: usize) -> u64 {
    let mut v = [0u8; 8];
    v.copy_from_slice(&buf[off..off + 8]);
    u64::from_le_bytes(v)
}

fn read_f64_le(buf: &[u8], off: usize) -> f64 {
    f64::from_bits(read_u64_le(buf, off))
}

/// A validated, zero-copy view of one wire frame.
///
/// Parsing reads only the fixed header; the I/Q payload stays in the
/// borrowed buffer and is decoded sample-by-sample on access, so a
/// consumer that drops a frame (quarantine, shape mismatch) never pays
/// for its payload.
#[derive(Debug, Clone, Copy)]
pub struct WireRecord<'a> {
    seq: u64,
    timestamp: f64,
    antennas: u8,
    subcarriers: u8,
    agc: u8,
    payload: &'a [u8],
}

impl<'a> WireRecord<'a> {
    /// Validates and parses one frame from the front of `buf`. Trailing
    /// bytes after the frame are ignored (use [`Self::frame_len`] to
    /// advance a stream cursor).
    ///
    /// # Errors
    /// Every malformed input maps to a [`WireError`];
    /// [`WireError::Truncated`] means the buffer is a proper prefix of a
    /// valid frame and more bytes may complete it.
    pub fn parse(buf: &'a [u8]) -> Result<WireRecord<'a>, WireError> {
        let have = buf.len();
        if have == 0 {
            return Err(WireError::Truncated {
                needed: HEADER_LEN,
                have,
            });
        }
        if buf[0] != SYNC {
            return Err(WireError::BadSync(buf[0]));
        }
        if have < HEADER_LEN {
            return Err(WireError::Truncated {
                needed: HEADER_LEN,
                have,
            });
        }
        if buf[1] != VERSION {
            return Err(WireError::UnsupportedVersion(buf[1]));
        }
        let declared = read_u32_le(buf, 2);
        let antennas = buf[22];
        let subcarriers = buf[23];
        if antennas == 0 || subcarriers == 0 {
            return Err(WireError::BadShape {
                antennas,
                subcarriers,
            });
        }
        if buf[25] != 0 {
            return Err(WireError::NonZeroReserved(buf[25]));
        }
        // Shape is u8×u8, so the expected length is bounded (≈1 MiB) and
        // this comparison caps what a corrupt `len` can ever demand.
        let expected = (HEADER_TAIL + antennas as usize * subcarriers as usize * 16) as u32;
        if declared != expected {
            return Err(WireError::LengthMismatch { declared, expected });
        }
        let total = 6 + declared as usize;
        if have < total {
            return Err(WireError::Truncated {
                needed: total,
                have,
            });
        }
        Ok(WireRecord {
            seq: read_u64_le(buf, 6),
            timestamp: read_f64_le(buf, 14),
            antennas,
            subcarriers,
            agc: buf[24],
            payload: &buf[HEADER_LEN..total],
        })
    }

    /// Packet sequence number.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Capture timestamp in seconds.
    pub fn timestamp(&self) -> f64 {
        self.timestamp
    }

    /// Number of receive antennas.
    pub fn antennas(&self) -> usize {
        self.antennas as usize
    }

    /// Number of subcarriers per antenna.
    pub fn subcarriers(&self) -> usize {
        self.subcarriers as usize
    }

    /// Receiver AGC gain step reported for this frame.
    pub fn agc(&self) -> u8 {
        self.agc
    }

    /// Total encoded frame size in bytes (header + payload).
    pub fn frame_len(&self) -> usize {
        HEADER_LEN + self.payload.len()
    }

    /// Complex sample for `(antenna, subcarrier)`, decoded in place from
    /// the borrowed payload.
    ///
    /// # Panics
    /// Panics on out-of-range indices (caller bug, not wire input —
    /// every index below the validated dimensions is in range).
    pub fn iq(&self, antenna: usize, subcarrier: usize) -> Complex64 {
        assert!(
            antenna < self.antennas as usize && subcarrier < self.subcarriers as usize,
            "sample index out of the frame's declared shape"
        );
        let off = (antenna * self.subcarriers as usize + subcarrier) * 16;
        Complex64::new(
            read_f64_le(self.payload, off),
            read_f64_le(self.payload, off + 8),
        )
    }

    /// Materializes the frame as an owned [`CsiPacket`] (the one
    /// allocation on the ingest path, paid only for accepted frames).
    pub fn to_packet(&self) -> CsiPacket {
        let n = self.antennas as usize * self.subcarriers as usize;
        let mut data = Vec::with_capacity(n);
        for i in 0..n {
            let off = i * 16;
            data.push(Complex64::new(
                read_f64_le(self.payload, off),
                read_f64_le(self.payload, off + 8),
            ));
        }
        CsiPacket::new(
            self.antennas as usize,
            self.subcarriers as usize,
            data,
            self.seq,
            self.timestamp,
        )
    }
}

/// Encodes one packet as a wire frame appended to `out`.
///
/// # Errors
/// [`WireError::ShapeTooLarge`] when the packet dimensions do not fit
/// the header's `u8` fields.
pub fn encode_frame(packet: &CsiPacket, agc: u8, out: &mut Vec<u8>) -> Result<(), WireError> {
    let too_large = || WireError::ShapeTooLarge {
        antennas: packet.antennas(),
        subcarriers: packet.subcarriers(),
    };
    let antennas = u8::try_from(packet.antennas()).map_err(|_| too_large())?;
    let subcarriers = u8::try_from(packet.subcarriers()).map_err(|_| too_large())?;
    let payload = packet.antennas() * packet.subcarriers() * 16;
    let declared = (HEADER_TAIL + payload) as u32;
    out.reserve(6 + HEADER_TAIL + payload);
    out.push(SYNC);
    out.push(VERSION);
    out.extend_from_slice(&declared.to_le_bytes());
    out.extend_from_slice(&packet.seq.to_le_bytes());
    out.extend_from_slice(&packet.timestamp.to_bits().to_le_bytes());
    out.push(antennas);
    out.push(subcarriers);
    out.push(agc);
    out.push(0);
    for a in 0..packet.antennas() {
        for z in packet.antenna_row(a) {
            out.extend_from_slice(&z.re.to_bits().to_le_bytes());
            out.extend_from_slice(&z.im.to_bits().to_le_bytes());
        }
    }
    Ok(())
}

/// Encodes a packet sequence as one contiguous wire stream.
///
/// # Errors
/// See [`encode_frame`].
pub fn encode_stream(packets: &[CsiPacket], agc: u8) -> Result<Vec<u8>, WireError> {
    let mut out = Vec::new();
    for p in packets {
        encode_frame(p, agc, &mut out)?;
    }
    Ok(out)
}

/// One splitter step: a validated frame, or a run of bytes rejected
/// while resynchronizing.
#[derive(Debug)]
pub enum Split<'a> {
    /// A complete, validated frame.
    Frame(WireRecord<'a>),
    /// `skipped` bytes were discarded; `error` is the rejection that
    /// started the resync.
    Garbage {
        /// Bytes discarded before the next sync candidate.
        skipped: usize,
        /// Why the bytes were rejected.
        error: WireError,
    },
}

/// Splits a byte buffer into wire frames, resynchronizing on the next
/// sync byte after corruption.
///
/// The iterator stops (`None`) when the remaining bytes are a proper
/// prefix of a valid frame; [`FrameSplitter::consumed`] then tells the
/// caller how much of the buffer was processed so the partial tail can
/// be carried into the next read.
#[derive(Debug)]
pub struct FrameSplitter<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> FrameSplitter<'a> {
    /// Starts splitting at the front of `buf`.
    pub fn new(buf: &'a [u8]) -> FrameSplitter<'a> {
        FrameSplitter { buf, pos: 0 }
    }

    /// Bytes consumed so far (frames plus discarded garbage); after the
    /// iterator returns `None`, `buf[consumed()..]` is the partial tail.
    pub fn consumed(&self) -> usize {
        self.pos
    }

    /// The unconsumed tail of the buffer.
    pub fn rest(&self) -> &'a [u8] {
        &self.buf[self.pos..]
    }
}

impl<'a> Iterator for FrameSplitter<'a> {
    type Item = Split<'a>;

    fn next(&mut self) -> Option<Split<'a>> {
        let rest = &self.buf[self.pos..];
        if rest.is_empty() {
            return None;
        }
        if rest[0] != SYNC {
            // Scan to the next sync candidate; everything before it can
            // never start a frame.
            let skipped = rest.iter().position(|&b| b == SYNC).unwrap_or(rest.len());
            self.pos += skipped;
            return Some(Split::Garbage {
                skipped,
                error: WireError::BadSync(rest[0]),
            });
        }
        match WireRecord::parse(rest) {
            Ok(rec) => {
                self.pos += rec.frame_len();
                Some(Split::Frame(rec))
            }
            // A structurally consistent prefix: wait for more bytes.
            Err(WireError::Truncated { .. }) => None,
            // A sync byte starting an invalid header: discard it and
            // resync from the next byte.
            Err(error) => {
                self.pos += 1;
                Some(Split::Garbage { skipped: 1, error })
            }
        }
    }
}

/// Counters-on statistics of one [`drain_frames`] pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DrainStats {
    /// Bytes consumed from the buffer (the tail `buf[consumed..]` is a
    /// partial frame to carry over).
    pub consumed: usize,
    /// Frames decoded into packets.
    pub frames: u64,
    /// Resync events (corrupt frames / garbage runs rejected).
    pub rejects: u64,
}

/// Drains every complete frame in `buf` into `out` as owned packets,
/// updating the `wifi.wire.*` stream counters.
///
/// This is the stream-facing wrapper around [`FrameSplitter`]: corrupt
/// input is counted and skipped (`wifi.wire.rejects_total`), never
/// fatal, matching the quarantine layer's "classify, don't crash"
/// posture at the packet level.
pub fn drain_frames(buf: &[u8], out: &mut Vec<CsiPacket>) -> DrainStats {
    let mut splitter = FrameSplitter::new(buf);
    let mut stats = DrainStats::default();
    for item in &mut splitter {
        match item {
            Split::Frame(rec) => {
                out.push(rec.to_packet());
                stats.frames += 1;
            }
            Split::Garbage { .. } => stats.rejects += 1,
        }
    }
    stats.consumed = splitter.consumed();
    mpdf_obs::counter!("wifi.wire.frames_total").add(stats.frames);
    mpdf_obs::counter!("wifi.wire.rejects_total").add(stats.rejects);
    mpdf_obs::counter!("wifi.wire.bytes_total").add(stats.consumed as u64);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packet(seq: u64, antennas: usize, subcarriers: usize) -> CsiPacket {
        let data: Vec<Complex64> = (0..antennas * subcarriers)
            .map(|j| Complex64::new(seq as f64 + j as f64 * 0.25, -(j as f64) * 0.5))
            .collect();
        CsiPacket::new(antennas, subcarriers, data, seq, seq as f64 * 0.02)
    }

    #[test]
    fn frame_layout_is_as_documented() {
        let mut buf = Vec::new();
        encode_frame(&packet(3, 3, 30), 40, &mut buf).unwrap();
        assert_eq!(buf.len(), HEADER_LEN + 3 * 30 * 16);
        assert_eq!(buf[0], SYNC);
        assert_eq!(buf[1], VERSION);
        assert_eq!(read_u32_le(&buf, 2) as usize, buf.len() - 6);
        assert_eq!(buf[22], 3);
        assert_eq!(buf[23], 30);
        assert_eq!(buf[24], 40);
        assert_eq!(buf[25], 0);
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let original = packet(7, 3, 30);
        let mut buf = Vec::new();
        encode_frame(&original, 12, &mut buf).unwrap();
        let rec = WireRecord::parse(&buf).unwrap();
        assert_eq!(rec.seq(), 7);
        assert_eq!(rec.agc(), 12);
        assert_eq!(rec.antennas(), 3);
        assert_eq!(rec.subcarriers(), 30);
        assert_eq!(rec.frame_len(), buf.len());
        assert!(rec.to_packet().bits_eq(&original));
        assert_eq!(rec.iq(1, 2), original.get(1, 2));
    }

    #[test]
    fn parse_rejects_each_corruption_with_its_typed_error() {
        let mut buf = Vec::new();
        encode_frame(&packet(1, 2, 4), 0, &mut buf).unwrap();

        let mut bad = buf.clone();
        bad[0] = 0x11;
        assert_eq!(
            WireRecord::parse(&bad).unwrap_err(),
            WireError::BadSync(0x11)
        );

        let mut bad = buf.clone();
        bad[1] = 9;
        assert_eq!(
            WireRecord::parse(&bad).unwrap_err(),
            WireError::UnsupportedVersion(9)
        );

        let mut bad = buf.clone();
        bad[23] = 0;
        assert!(matches!(
            WireRecord::parse(&bad),
            Err(WireError::BadShape { .. })
        ));

        let mut bad = buf.clone();
        bad[25] = 5;
        assert_eq!(
            WireRecord::parse(&bad).unwrap_err(),
            WireError::NonZeroReserved(5)
        );

        let mut bad = buf.clone();
        bad[2] ^= 0x40;
        assert!(matches!(
            WireRecord::parse(&bad),
            Err(WireError::LengthMismatch { .. })
        ));

        for cut in [0, 1, HEADER_LEN - 1, HEADER_LEN, buf.len() - 1] {
            assert!(
                matches!(
                    WireRecord::parse(&buf[..cut]),
                    Err(WireError::Truncated { .. })
                ),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn oversized_shapes_fail_encoding() {
        let p = CsiPacket::new(1, 300, vec![Complex64::ZERO; 300], 0, 0.0);
        let mut out = Vec::new();
        assert!(matches!(
            encode_frame(&p, 0, &mut out),
            Err(WireError::ShapeTooLarge { .. })
        ));
        assert!(out.is_empty());
    }

    #[test]
    fn splitter_walks_a_clean_stream() {
        let packets: Vec<CsiPacket> = (0..5).map(|i| packet(i, 2, 6)).collect();
        let buf = encode_stream(&packets, 7).unwrap();
        let mut splitter = FrameSplitter::new(&buf);
        let mut seqs = Vec::new();
        for item in &mut splitter {
            match item {
                Split::Frame(rec) => seqs.push(rec.seq()),
                Split::Garbage { .. } => unreachable!("clean stream"),
            }
        }
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
        assert_eq!(splitter.consumed(), buf.len());
    }

    #[test]
    fn splitter_holds_partial_tails_for_more_bytes() {
        let buf = encode_stream(&[packet(0, 2, 6), packet(1, 2, 6)], 0).unwrap();
        let frame_len = buf.len() / 2;
        for cut in [frame_len + 1, frame_len + HEADER_LEN - 1, buf.len() - 1] {
            let mut splitter = FrameSplitter::new(&buf[..cut]);
            assert_eq!(
                splitter
                    .by_ref()
                    .filter(|s| matches!(s, Split::Frame(_)))
                    .count(),
                1
            );
            assert_eq!(splitter.consumed(), frame_len, "cut at {cut}");
            assert_eq!(splitter.rest().len(), cut - frame_len);
        }
    }

    #[test]
    fn splitter_resyncs_over_garbage_and_corrupt_frames() {
        let mut buf = vec![0x00, 0x01, 0x02]; // leading garbage, no sync
        let mut frames = encode_stream(&[packet(0, 2, 6), packet(1, 2, 6)], 0).unwrap();
        buf.append(&mut frames);
        buf[3 + 1] = 99; // corrupt first frame's version byte
        let mut decoded = Vec::new();
        let stats = drain_frames(&buf, &mut decoded);
        // Frame 0 is lost to the version corruption; frame 1 survives.
        assert_eq!(decoded.len(), 1);
        assert_eq!(decoded[0].seq, 1);
        assert!(stats.rejects >= 2, "garbage run + corrupt frame: {stats:?}");
        assert_eq!(stats.consumed, buf.len());
        assert_eq!(stats.frames, 1);
    }

    #[test]
    fn drain_accumulates_across_chunk_boundaries() {
        let packets: Vec<CsiPacket> = (0..9).map(|i| packet(i, 3, 30)).collect();
        let buf = encode_stream(&packets, 0).unwrap();
        let mut tail: Vec<u8> = Vec::new();
        let mut decoded = Vec::new();
        for chunk in buf.chunks(101) {
            tail.extend_from_slice(chunk);
            let stats = drain_frames(&tail, &mut decoded);
            tail.drain(..stats.consumed);
        }
        assert!(tail.is_empty());
        assert_eq!(decoded.len(), packets.len());
        for (d, p) in decoded.iter().zip(&packets) {
            assert!(d.bits_eq(p));
        }
    }

    #[test]
    fn decoder_is_total_on_handcrafted_hostile_inputs() {
        // A sync byte followed by a length field claiming u32::MAX must
        // be rejected by the shape/length cross-check, not read past the
        // buffer or overflow an offset computation.
        let mut hostile = vec![SYNC, VERSION];
        hostile.extend_from_slice(&u32::MAX.to_le_bytes());
        hostile.extend_from_slice(&[0u8; HEADER_LEN]); // seq/ts/shape zeros
        assert!(matches!(
            WireRecord::parse(&hostile),
            Err(WireError::BadShape { .. })
        ));
        // All-sync bytes: every position resyncs by one, terminating.
        let all_sync = vec![SYNC; 64];
        let mut out = Vec::new();
        let stats = drain_frames(&all_sync, &mut out);
        assert_eq!(out.len(), 0);
        assert!(stats.consumed < all_sync.len(), "tail held as partial");
    }

    #[test]
    fn error_messages_name_the_failure() {
        assert!(WireError::BadSync(0x12).to_string().contains("0x12"));
        assert!(WireError::Truncated {
            needed: 26,
            have: 3
        }
        .to_string()
        .contains("3 of 26"));
        assert!(WireError::LengthMismatch {
            declared: 7,
            expected: 500
        }
        .to_string()
        .contains("500"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Any f64 bit pattern the channel could hand us, including the
    /// specials a lossy link corrupts samples into.
    fn wild() -> impl Strategy<Value = f64> {
        (0usize..6, -1e12f64..1e12).prop_map(|(kind, v)| match kind {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            3 => 0.0,
            4 => -0.0,
            _ => v,
        })
    }

    fn arbitrary_packet() -> impl Strategy<Value = CsiPacket> {
        (
            1usize..5,
            1usize..40,
            0u64..=u64::MAX,
            wild(),
            proptest::collection::vec(wild(), 2 * 4 * 39),
        )
            .prop_map(|(antennas, subcarriers, seq, ts, floats)| {
                let data: Vec<Complex64> = floats
                    .chunks_exact(2)
                    .take(antennas * subcarriers)
                    .map(|p| Complex64::new(p[0], p[1]))
                    .collect();
                CsiPacket::new(antennas, subcarriers, data, seq, ts)
            })
    }

    proptest! {
        /// Encode→decode is a bit-identical round trip for any valid
        /// packet, including non-finite samples and timestamps: the wire
        /// carries raw f64 bit patterns, not values.
        #[test]
        fn round_trip_any_valid_packet(p in arbitrary_packet(), agc in 0u8..=255) {
            let mut buf = Vec::new();
            encode_frame(&p, agc, &mut buf).expect("u8-sized shapes encode");
            let rec = WireRecord::parse(&buf).expect("own encoding parses");
            assert_eq!(rec.frame_len(), buf.len());
            assert_eq!(rec.agc(), agc);
            assert!(rec.to_packet().bits_eq(&p));
        }

        /// Totality: the decoder never panics on arbitrary bytes — every
        /// input is Ok or a typed WireError, and the splitter always
        /// terminates with consumed() inside the buffer.
        #[test]
        fn decode_is_total_on_arbitrary_bytes(
            bytes in proptest::collection::vec(0u8..=255, 0..300),
        ) {
            let _ = WireRecord::parse(&bytes);
            let mut splitter = FrameSplitter::new(&bytes);
            let mut steps = 0usize;
            while splitter.next().is_some() {
                steps += 1;
                assert!(steps <= bytes.len() + 1, "splitter must make progress");
            }
            assert!(splitter.consumed() <= bytes.len());
        }

        /// Totality under targeted corruption: flipping any single bit of
        /// a valid stream (or truncating it anywhere) never panics, and
        /// untouched frames after the corruption still decode.
        #[test]
        fn decode_survives_bit_flips_and_truncation(
            seq0 in 0u64..1000,
            flip_byte in 0usize..1000,
            flip_bit in 0u8..8,
            cut in 0usize..1000,
        ) {
            let packets: Vec<CsiPacket> = (0..3)
                .map(|i| {
                    let n = 2 * 6;
                    let data = (0..n)
                        .map(|j| Complex64::new(j as f64, -(j as f64)))
                        .collect();
                    CsiPacket::new(2, 6, data, seq0 + i, i as f64)
                })
                .collect();
            let mut buf = encode_stream(&packets, 1).expect("encodes");
            let idx = flip_byte % buf.len();
            buf[idx] ^= 1 << flip_bit;
            let mut out = Vec::new();
            let stats = drain_frames(&buf[..cut % (buf.len() + 1)], &mut out);
            assert!(stats.consumed <= buf.len());
            assert!(out.len() <= packets.len());
            // Payload flips change samples, never validity; header flips
            // cost at most the frames at and after the corruption.
            for p in &out {
                assert_eq!(p.antennas(), 2);
                assert_eq!(p.subcarriers(), 6);
            }
        }
    }
}
