//! The CSI receiver simulator — the measurement-campaign driver.
//!
//! Plays the role of the paper's mini-PC + Intel 5300 + CSI tool: it pings
//! the channel at a packet rate (50 pkt/s in the paper), evaluates the
//! clean CFR each array element sees, applies receiver impairments, and
//! hands back [`CsiPacket`]s. All randomness comes from one seeded RNG so
//! campaigns are exactly reproducible.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use mpdf_propagation::channel::{CfrPlan, ChannelModel};
use mpdf_propagation::human::HumanBody;
use mpdf_propagation::tracer::TraceError;
use mpdf_propagation::trajectory::Trajectory;

use crate::array::UniformLinearArray;
use crate::band::Band;
use crate::csi::CsiPacket;
use crate::fault::{FaultModel, FaultState};
use crate::impairments::ImpairmentModel;

/// Packet rate used throughout the paper's evaluation (§V-A).
pub const DEFAULT_PACKET_RATE_HZ: f64 = 50.0;

/// Receiver configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReceiverConfig {
    /// Band plan (default: channel 11 with the Intel 5300 grid).
    pub band: Band,
    /// Receive array (default: 3-element λ/2 ULA).
    pub array: UniformLinearArray,
    /// Impairment model (default: commodity NIC).
    pub impairments: ImpairmentModel,
    /// Packet rate in Hz (default 50).
    pub packet_rate_hz: f64,
    /// Amplitude of session-to-session clutter drift, relative to the RMS
    /// CSI amplitude (default 0.04). Real campaigns span days: doors,
    /// chairs and equipment move between the calibration and monitoring
    /// sessions, perturbing the static profile. Modelled as one weak
    /// extra path with random delay, arrival angle and phase, resampled
    /// by [`CsiReceiver::resample_drift`]. `0` disables drift.
    pub clutter_drift_rel: f64,
    /// Peak flat gain drift between sessions in dB (uniform in
    /// `±session_gain_drift_db`; default 1.0). Applied by
    /// [`CsiReceiver::resample_drift`] alongside the clutter path.
    pub session_gain_drift_db: f64,
    /// Injected receiver faults (default: none). Applied after the
    /// physical-layer impairments, drawing from a dedicated RNG stream so
    /// a zero-fault model leaves the packet stream byte-identical to a
    /// fault-free receiver.
    pub faults: FaultModel,
}

impl Default for ReceiverConfig {
    fn default() -> Self {
        let band = Band::wifi_2_4ghz_channel11();
        let array = UniformLinearArray::three_element(band.center_wavelength());
        ReceiverConfig {
            band,
            array,
            impairments: ImpairmentModel::commodity_nic(),
            packet_rate_hz: DEFAULT_PACKET_RATE_HZ,
            clutter_drift_rel: 0.025,
            session_gain_drift_db: 0.3,
            faults: FaultModel::none(),
        }
    }
}

/// A simulated CSI receiver bound to one TX–RX link.
#[derive(Debug, Clone)]
pub struct CsiReceiver {
    channel: ChannelModel,
    config: ReceiverConfig,
    /// Fixed front-end gain normalizing CSI amplitudes to O(1).
    gain: f64,
    /// Reference per-sample signal power used to size AWGN (measured on
    /// the static environment, like a real noise floor calibration).
    reference_power: f64,
    /// Current session's clutter-drift CSI, `[antenna][subcarrier]`
    /// row-major; zero until [`CsiReceiver::resample_drift`] is called.
    drift: Vec<mpdf_rfmath::complex::Complex64>,
    /// Current session's flat gain drift (linear amplitude; 1 = none).
    session_gain: f64,
    /// Current session's interferer centre subcarrier.
    interferer_center: usize,
    rng: SmallRng,
    /// Fault-injection state (dedicated RNG stream + burst counters);
    /// untouched while `config.faults.is_none()`.
    faults: FaultState,
    seq: u64,
    time: f64,
}

impl CsiReceiver {
    /// Creates a receiver with default configuration and the given RNG
    /// seed.
    ///
    /// # Errors
    /// Propagates [`TraceError`] if the link cannot be traced.
    pub fn new(channel: ChannelModel, seed: u64) -> Result<Self, TraceError> {
        CsiReceiver::with_config(channel, ReceiverConfig::default(), seed)
    }

    /// Creates a receiver with an explicit configuration.
    ///
    /// # Errors
    /// Propagates [`TraceError`] if the link cannot be traced.
    ///
    /// # Panics
    /// Panics if the packet rate is not positive.
    pub fn with_config(
        channel: ChannelModel,
        config: ReceiverConfig,
        seed: u64,
    ) -> Result<Self, TraceError> {
        assert!(config.packet_rate_hz > 0.0, "packet rate must be positive");
        // Normalize so a 1 m LOS link has unit amplitude.
        let fc = config.band.center_hz();
        let gain = 1.0 / channel.pathloss().amplitude_gain(1.0, fc);
        let snapshot = channel.snapshot(None)?;
        let freqs = config.band.frequencies();
        let plan = snapshot.cfr_plan(&freqs);
        let mut power = 0.0;
        let offsets = config.array.offsets();
        let mut buf = Vec::new();
        for off in &offsets {
            plan.eval_into(*off, &mut buf);
            for &h in &buf {
                power += (h * gain).norm_sqr();
            }
        }
        let reference_power = (power / (offsets.len() * freqs.len()) as f64).max(f64::MIN_POSITIVE);
        let drift = vec![mpdf_rfmath::complex::Complex64::ZERO; offsets.len() * freqs.len()];
        Ok(CsiReceiver {
            channel,
            config,
            gain,
            reference_power,
            drift,
            session_gain: 1.0,
            interferer_center: freqs.len() / 2,
            rng: SmallRng::seed_from_u64(seed),
            faults: FaultState::new(seed, offsets.len()),
            seq: 0,
            time: 0.0,
        })
    }

    /// Derives an independent receiver for a parallel work item: same
    /// link, configuration and calibrated gains, but a fresh RNG stream
    /// seeded by `seed`, with the clock, sequence counter and session
    /// drift state reset. Two forks with the same seed produce identical
    /// captures regardless of what the parent (or any sibling fork) has
    /// emitted — the foundation of the campaign's determinism contract:
    /// each monitoring window captures on its own fork, so the result is
    /// a pure function of `(parent link state, seed)` and independent of
    /// scheduling order.
    pub fn fork(&self, seed: u64) -> CsiReceiver {
        let mut rx = self.clone();
        rx.rng = SmallRng::seed_from_u64(seed);
        rx.faults.reset(seed);
        rx.seq = 0;
        rx.time = 0.0;
        rx.session_gain = 1.0;
        rx.interferer_center = self.config.band.num_subcarriers() / 2;
        for d in &mut rx.drift {
            *d = mpdf_rfmath::complex::Complex64::ZERO;
        }
        rx
    }

    /// Like [`CsiReceiver::fork`], but *preserves* the parent's session
    /// drift state (clutter path, flat gain drift, interferer centre)
    /// while still resetting the RNG stream, fault state, clock and
    /// sequence counter. A long-running session resamples drift once per
    /// session block and then captures every window of that block on a
    /// `fork_with_drift` keyed by the window index — each window stays a
    /// pure function of `(link, block drift, seed)` so kill-and-restore
    /// replays bit-identically, while all windows of a block share the
    /// same slowly-moving environment.
    pub fn fork_with_drift(&self, seed: u64) -> CsiReceiver {
        let mut rx = self.clone();
        rx.rng = SmallRng::seed_from_u64(seed);
        rx.faults.reset(seed);
        rx.seq = 0;
        rx.time = 0.0;
        rx
    }

    /// Overrides the drift magnitudes used by the *next*
    /// [`CsiReceiver::resample_drift`] call: relative clutter-path
    /// amplitude and peak flat gain drift in dB. Lets a drift experiment
    /// grow the environment's wander over session blocks without
    /// rebuilding the receiver (which would re-derive gains).
    pub fn set_drift_magnitude(&mut self, clutter_drift_rel: f64, session_gain_drift_db: f64) {
        self.config.clutter_drift_rel = clutter_drift_rel;
        self.config.session_gain_drift_db = session_gain_drift_db;
    }

    /// Resamples the session clutter drift: one weak extra path with
    /// random delay (10–80 ns), arrival angle (±75°) and phase, at the
    /// configured relative amplitude. Call between "sessions" (e.g.
    /// calibration day vs. monitoring day); a no-op when
    /// `clutter_drift_rel == 0`.
    pub fn resample_drift(&mut self) {
        use mpdf_rfmath::complex::Complex64;
        use rand::Rng as _;
        // Flat gain drift: TX power control, AGC reference and thermal
        // effects shift the whole CSI level between sessions.
        self.session_gain = if self.config.session_gain_drift_db > 0.0 {
            let gain_db = self.rng.gen_range(-1.0..1.0) * self.config.session_gain_drift_db;
            mpdf_rfmath::db::db_to_amplitude(gain_db)
        } else {
            1.0
        };
        // The session's narrowband interferer parks on a new frequency.
        self.interferer_center = self.rng.gen_range(0..self.config.band.num_subcarriers());
        let rel = self.config.clutter_drift_rel;
        if rel <= 0.0 {
            for d in &mut self.drift {
                *d = Complex64::ZERO;
            }
            return;
        }
        let amp = rel * self.reference_power.sqrt();
        let tau = self.rng.gen_range(10e-9..80e-9);
        let theta = self.rng.gen_range(-75f64.to_radians()..75f64.to_radians());
        let phi0 = self.rng.gen_range(0.0..std::f64::consts::TAU);
        let freqs = self.config.band.frequencies();
        let lambda = self.config.band.center_wavelength();
        let steer = self.config.array.steering_vector(theta, lambda);
        self.drift.clear();
        for s in &steer {
            for &f in &freqs {
                let phase = phi0 - std::f64::consts::TAU * f * tau;
                self.drift.push(*s * Complex64::from_polar(amp, phase));
            }
        }
    }

    /// The underlying channel model.
    pub fn channel(&self) -> &ChannelModel {
        &self.channel
    }

    /// Receiver configuration.
    pub fn config(&self) -> &ReceiverConfig {
        &self.config
    }

    /// Band plan shortcut.
    pub fn band(&self) -> &Band {
        &self.config.band
    }

    /// Array shortcut.
    pub fn array(&self) -> &UniformLinearArray {
        &self.config.array
    }

    /// Per-sample reference signal power of the empty room.
    pub fn reference_power(&self) -> f64 {
        self.reference_power
    }

    /// Clean (impairment-free) packet for a frozen channel snapshot,
    /// including the current session's clutter drift. The CFR plan hoists
    /// the per-path setup out of the per-element loop (and, for a static
    /// scene, out of the per-packet loop entirely); `buf` is the reused
    /// per-element CFR scratch.
    fn clean_packet(
        &self,
        plan: &CfrPlan,
        offsets: &[mpdf_geom::vec2::Vec2],
        buf: &mut Vec<mpdf_rfmath::complex::Complex64>,
    ) -> CsiPacket {
        let nf = plan.freqs().len();
        let mut data = Vec::with_capacity(offsets.len() * nf);
        for (i, off) in offsets.iter().enumerate() {
            plan.eval_into(*off, buf);
            for (k, &h) in buf.iter().enumerate() {
                data.push((h * self.gain + self.drift[i * nf + k]) * self.session_gain);
            }
        }
        CsiPacket::new(offsets.len(), nf, data, self.seq, self.time)
    }

    /// Emits one packet slot into `out`. With faults disabled this pushes
    /// exactly one packet and never touches the fault RNG stream; with
    /// faults enabled the slot may contribute zero (loss, hold-back), one
    /// or two (duplicate, released hold-back) packets. The sequence
    /// number and clock advance once per slot either way, so lost packets
    /// leave visible sequence gaps.
    fn emit_into(
        &mut self,
        plan: &CfrPlan,
        offsets: &[mpdf_geom::vec2::Vec2],
        buf: &mut Vec<mpdf_rfmath::complex::Complex64>,
        out: &mut Vec<CsiPacket>,
    ) {
        let mut packet = self.clean_packet(plan, offsets, buf);
        self.config.impairments.apply_with_interferer(
            &mut packet,
            self.config.band.indices(),
            self.reference_power,
            Some(self.interferer_center),
            &mut self.rng,
        );
        self.seq += 1;
        self.time += 1.0 / self.config.packet_rate_hz;
        if self.config.faults.is_none() {
            out.push(packet);
        } else {
            let faults = self.config.faults;
            faults.apply(packet, &mut self.faults, out);
        }
    }

    /// Releases a trailing reorder hold-back so a capture never silently
    /// swallows its last packet.
    fn flush_faults(&mut self, out: &mut Vec<CsiPacket>) {
        if let Some(p) = self.faults.take_held() {
            out.push(p);
        }
    }

    /// Captures `n` packet slots with a static scene (optional stationary
    /// human). With faults enabled the returned packet count can differ
    /// from `n` (loss swallows slots, duplication re-delivers).
    ///
    /// # Errors
    /// Propagates [`TraceError`] from the snapshot.
    pub fn capture_static(
        &mut self,
        human: Option<&HumanBody>,
        n: usize,
    ) -> Result<Vec<CsiPacket>, TraceError> {
        let snapshot = self.channel.snapshot(human)?;
        // One plan for the whole capture: the scene is frozen, so every
        // packet shares the per-path/per-frequency CFR setup.
        let plan = snapshot.cfr_plan(&self.config.band.frequencies());
        let offsets = self.config.array.offsets();
        let mut buf = Vec::new();
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            self.emit_into(&plan, &offsets, &mut buf, &mut out);
        }
        self.flush_faults(&mut out);
        Ok(out)
    }

    /// Captures `n` packets while the human follows `trajectory`
    /// (re-tracing the channel per packet). Time starts at the current
    /// receiver clock and the trajectory is evaluated on the *elapsed*
    /// time since this call began.
    ///
    /// # Errors
    /// Propagates [`TraceError`] from per-packet snapshots.
    pub fn capture_moving<T: Trajectory + ?Sized>(
        &mut self,
        body: &HumanBody,
        trajectory: &T,
        n: usize,
    ) -> Result<Vec<CsiPacket>, TraceError> {
        let t0 = self.time;
        let freqs = self.config.band.frequencies();
        let offsets = self.config.array.offsets();
        let mut buf = Vec::new();
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let pos = trajectory.position(self.time - t0);
            let snapshot = self.channel.snapshot(Some(&body.at(pos)))?;
            let plan = snapshot.cfr_plan(&freqs);
            self.emit_into(&plan, &offsets, &mut buf, &mut out);
        }
        self.flush_faults(&mut out);
        Ok(out)
    }

    /// Current receiver clock in seconds.
    pub fn clock(&self) -> f64 {
        self.time
    }

    /// Captures a multi-session static recording: `sessions` blocks of
    /// `per_session` packets each, resampling clutter/gain drift between
    /// blocks. Real calibration data spans hours or days (the paper's
    /// captures repeat across day/night and after two weeks), so a
    /// threshold derived from a single frozen session underestimates the
    /// environment's variability.
    ///
    /// # Errors
    /// Propagates [`TraceError`] from the snapshot.
    pub fn capture_sessions(
        &mut self,
        human: Option<&HumanBody>,
        per_session: usize,
        sessions: usize,
    ) -> Result<Vec<CsiPacket>, TraceError> {
        let mut out = Vec::with_capacity(per_session * sessions);
        for _ in 0..sessions {
            self.resample_drift();
            out.extend(self.capture_static(human, per_session)?);
        }
        Ok(out)
    }

    /// Captures `n` packets of a scene with any number of actors, each a
    /// body following its own trajectory (evaluated on the elapsed time
    /// since this call began). This models the paper's measurement
    /// campaign: a monitored person plus background walkers.
    ///
    /// # Errors
    /// Propagates [`TraceError`] from per-packet snapshots.
    pub fn capture_actors(
        &mut self,
        actors: &[Actor<'_>],
        n: usize,
    ) -> Result<Vec<CsiPacket>, TraceError> {
        if actors.is_empty() {
            return self.capture_static(None, n);
        }
        let t0 = self.time;
        let freqs = self.config.band.frequencies();
        let offsets = self.config.array.offsets();
        let mut buf = Vec::new();
        let mut bodies = Vec::with_capacity(actors.len());
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let elapsed = self.time - t0;
            bodies.clear();
            bodies.extend(
                actors
                    .iter()
                    .map(|a| a.body.at(a.trajectory.position(elapsed))),
            );
            let snapshot = self.channel.snapshot_multi(&bodies)?;
            let plan = snapshot.cfr_plan(&freqs);
            self.emit_into(&plan, &offsets, &mut buf, &mut out);
        }
        self.flush_faults(&mut out);
        Ok(out)
    }
}

/// One person in a captured scene: a body following a trajectory.
#[derive(Clone, Copy)]
pub struct Actor<'a> {
    /// Body parameters (radius, reflectivity, shadow depth).
    pub body: HumanBody,
    /// Motion; use [`mpdf_propagation::trajectory::StaticSway`] for a
    /// nominally stationary person.
    pub trajectory: &'a dyn Trajectory,
}

impl std::fmt::Debug for Actor<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Actor").field("body", &self.body).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdf_geom::shapes::Rect;
    use mpdf_geom::vec2::Vec2;
    use mpdf_propagation::environment::Environment;
    use mpdf_propagation::trajectory::LinearWalk;

    fn link() -> ChannelModel {
        let env = Environment::empty_room(Rect::new(Vec2::ZERO, Vec2::new(8.0, 6.0)));
        ChannelModel::new(env, Vec2::new(2.0, 3.0), Vec2::new(6.0, 3.0)).unwrap()
    }

    fn ideal_config() -> ReceiverConfig {
        ReceiverConfig {
            impairments: ImpairmentModel::ideal(),
            ..ReceiverConfig::default()
        }
    }

    #[test]
    fn packets_have_paper_shape() {
        let mut rx = CsiReceiver::new(link(), 1).unwrap();
        let packets = rx.capture_static(None, 5).unwrap();
        assert_eq!(packets.len(), 5);
        for (i, p) in packets.iter().enumerate() {
            assert_eq!(p.antennas(), 3);
            assert_eq!(p.subcarriers(), 30);
            assert_eq!(p.seq, i as u64);
        }
        // 50 Hz spacing.
        assert!((packets[1].timestamp - packets[0].timestamp - 0.02).abs() < 1e-12);
    }

    #[test]
    fn ideal_receiver_is_deterministic_and_noiseless() {
        let mut rx = CsiReceiver::with_config(link(), ideal_config(), 1).unwrap();
        let p = rx.capture_static(None, 2).unwrap();
        for a in 0..3 {
            for k in 0..30 {
                assert_eq!(p[0].get(a, k), p[1].get(a, k));
            }
        }
    }

    #[test]
    fn seeded_capture_is_reproducible() {
        let run = |seed| {
            let mut rx = CsiReceiver::new(link(), seed).unwrap();
            rx.capture_static(None, 3).unwrap()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn csi_amplitudes_are_order_one() {
        let mut rx = CsiReceiver::with_config(link(), ideal_config(), 1).unwrap();
        let p = &rx.capture_static(None, 1).unwrap()[0];
        let amp = p.get(0, 15).norm();
        assert!(amp > 1e-3 && amp < 10.0, "normalized amplitude {amp}");
    }

    #[test]
    fn human_presence_changes_packets() {
        let mut rx = CsiReceiver::with_config(link(), ideal_config(), 1).unwrap();
        let calm = rx.capture_static(None, 1).unwrap();
        let body = HumanBody::new(Vec2::new(4.0, 3.0));
        let busy = rx.capture_static(Some(&body), 1).unwrap();
        let mut delta = 0.0;
        for a in 0..3 {
            for k in 0..30 {
                delta += (calm[0].get(a, k) - busy[0].get(a, k)).norm_sqr();
            }
        }
        assert!(delta > 1e-6, "human must perturb CSI, delta={delta}");
    }

    #[test]
    fn moving_capture_changes_over_time() {
        let mut rx = CsiReceiver::with_config(link(), ideal_config(), 1).unwrap();
        let body = HumanBody::new(Vec2::new(2.0, 1.0));
        let walk = LinearWalk::new(Vec2::new(2.0, 1.0), Vec2::new(6.0, 5.0), 2.0);
        let packets = rx.capture_moving(&body, &walk, 20).unwrap();
        // CSI at the start and end of the walk must differ.
        let first = &packets[0];
        let last = &packets[19];
        let mut delta = 0.0;
        for a in 0..3 {
            for k in 0..30 {
                delta += (first.get(a, k) - last.get(a, k)).norm_sqr();
            }
        }
        assert!(delta > 1e-6);
    }

    #[test]
    fn antenna_elements_see_different_phases() {
        let mut rx = CsiReceiver::with_config(link(), ideal_config(), 1).unwrap();
        // Add an off-axis scatterer so arrival isn't purely broadside.
        let body = HumanBody::new(Vec2::new(4.0, 4.5));
        let p = &rx.capture_static(Some(&body), 1).unwrap()[0];
        let d01 = (p.get(1, 15) * p.get(0, 15).conj()).arg();
        let d12 = (p.get(2, 15) * p.get(1, 15).conj()).arg();
        // Multipath superposition: element phases exist and are not all
        // exactly equal.
        assert!(d01.abs() + d12.abs() > 1e-6);
    }

    #[test]
    fn forks_with_equal_seeds_are_identical() {
        let mut rx = CsiReceiver::new(link(), 7).unwrap();
        // Perturb the parent's RNG/clock/drift state.
        rx.resample_drift();
        let _ = rx.capture_static(None, 4).unwrap();
        let a = rx.fork(42).capture_static(None, 3).unwrap();
        // Perturb the parent again: forks must not care.
        rx.resample_drift();
        let _ = rx.capture_static(None, 2).unwrap();
        let b = rx.fork(42).capture_static(None, 3).unwrap();
        assert_eq!(a, b);
        let c = rx.fork(43).capture_static(None, 3).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn fork_with_drift_preserves_session_state() {
        let mut rx = CsiReceiver::with_config(link(), ideal_config(), 7).unwrap();
        rx.resample_drift();
        // Plain fork zeroes the drift; the drift-preserving fork keeps it,
        // so the two see different channels.
        let plain = rx.fork(5).capture_static(None, 1).unwrap();
        let drifted = rx.fork_with_drift(5).capture_static(None, 1).unwrap();
        assert_ne!(plain, drifted, "drift state must survive the fork");
        // Determinism: same seed, same parent drift → identical capture.
        let again = rx.fork_with_drift(5).capture_static(None, 1).unwrap();
        assert_eq!(drifted, again);
        // Clock and sequence still reset.
        let f = rx.fork_with_drift(5);
        assert_eq!(f.clock(), 0.0);
    }

    #[test]
    fn drift_magnitude_override_takes_effect() {
        let rx = CsiReceiver::with_config(link(), ideal_config(), 7).unwrap();
        let clean = rx.fork(3).capture_static(None, 1).unwrap();
        let mut big = rx.fork(3);
        big.set_drift_magnitude(0.5, 0.0);
        big.resample_drift();
        let drifted = big.capture_static(None, 1).unwrap();
        let mut delta = 0.0;
        for a in 0..3 {
            for k in 0..30 {
                delta += (clean[0].get(a, k) - drifted[0].get(a, k)).norm_sqr();
            }
        }
        assert!(delta > 1e-4, "scaled drift must perturb CSI, delta={delta}");
        // Zero magnitude resamples to a zero drift path.
        let mut none = rx.fork(3);
        none.set_drift_magnitude(0.0, 0.0);
        none.resample_drift();
        assert_eq!(none.capture_static(None, 1).unwrap(), clean);
    }

    #[test]
    fn fork_resets_clock_sequence_and_drift() {
        let mut rx = CsiReceiver::new(link(), 7).unwrap();
        rx.resample_drift();
        let _ = rx.capture_static(None, 10).unwrap();
        let mut f = rx.fork(1);
        assert_eq!(f.clock(), 0.0);
        let p = f.capture_static(None, 1).unwrap();
        assert_eq!(p[0].seq, 0);
    }

    #[test]
    fn zero_fault_model_is_byte_identical_to_default() {
        // The explicit zero-fault config must be indistinguishable from a
        // receiver that never heard of fault injection — same impairment
        // RNG stream, same packets, bit for bit.
        let explicit = ReceiverConfig {
            faults: crate::fault::FaultModel::none(),
            ..ReceiverConfig::default()
        };
        let mut a = CsiReceiver::with_config(link(), ReceiverConfig::default(), 21).unwrap();
        let mut b = CsiReceiver::with_config(link(), explicit, 21).unwrap();
        a.resample_drift();
        b.resample_drift();
        assert_eq!(
            a.capture_sessions(None, 20, 2).unwrap(),
            b.capture_sessions(None, 20, 2).unwrap()
        );
    }

    #[test]
    fn faulted_captures_are_deterministic_across_forks() {
        // Bit-level fingerprint: chaos streams contain NaN rows, which
        // `PartialEq` would declare unequal to themselves.
        let fp = |packets: &[CsiPacket]| -> Vec<(u64, Vec<u64>)> {
            packets
                .iter()
                .map(|p| {
                    let bits = (0..p.antennas())
                        .flat_map(|a| (0..p.subcarriers()).map(move |k| (a, k)))
                        .flat_map(|(a, k)| {
                            let h = p.get(a, k);
                            [h.re.to_bits(), h.im.to_bits()]
                        })
                        .collect();
                    (p.seq, bits)
                })
                .collect()
        };
        let cfg = ReceiverConfig {
            faults: crate::fault::FaultModel::chaos(),
            ..ReceiverConfig::default()
        };
        let mut rx = CsiReceiver::with_config(link(), cfg, 3).unwrap();
        let a = rx.fork(9).capture_static(None, 80).unwrap();
        // Perturb the parent: forks must not care.
        let _ = rx.capture_static(None, 13).unwrap();
        let b = rx.fork(9).capture_static(None, 80).unwrap();
        assert_eq!(fp(&a), fp(&b));
        assert_ne!(fp(&a), fp(&rx.fork(10).capture_static(None, 80).unwrap()));
    }

    #[test]
    fn loss_faults_shorten_captures_but_keep_slot_clock() {
        let cfg = ReceiverConfig {
            faults: crate::fault::FaultModel {
                loss_burst_prob: 0.1,
                loss_burst_len: 4.0,
                ..crate::fault::FaultModel::none()
            },
            ..ReceiverConfig::default()
        };
        let mut rx = CsiReceiver::with_config(link(), cfg, 5).unwrap();
        let packets = rx.capture_static(None, 100).unwrap();
        assert!(packets.len() < 100, "lossy capture returned all packets");
        // The clock still advanced one tick per *slot*, not per packet.
        assert!((rx.clock() - 2.0).abs() < 1e-9);
        // Sequence numbers expose the gaps.
        assert!(packets.last().map(|p| p.seq).unwrap_or(0) >= packets.len() as u64);
    }

    #[test]
    fn clock_advances_with_captures() {
        let mut rx = CsiReceiver::new(link(), 2).unwrap();
        assert_eq!(rx.clock(), 0.0);
        let _ = rx.capture_static(None, 50).unwrap();
        assert!((rx.clock() - 1.0).abs() < 1e-9);
    }
}
