//! Receiver impairments.
//!
//! Raw Intel 5300 CSI is corrupted by effects the paper has to work
//! around: additive noise, a random common phase per packet (CFO /
//! packet-detection delay), a linear-in-frequency phase slope (SFO), and
//! AGC gain jitter. This module injects all four — so the sanitization of
//! \[26\] and the stability analysis of the multipath factor (Fig. 4) are
//! exercised against realistic inputs.
//!
//! Phase impairments are *common across antennas* (the 5300's chains share
//! one oscillator), which is why relative inter-antenna phase survives and
//! MUSIC remains possible.

use rand::Rng;
use serde::{Deserialize, Serialize};

use mpdf_rfmath::complex::Complex64;
use mpdf_rfmath::db::db_to_amplitude;

use crate::csi::CsiPacket;

/// Impairment configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImpairmentModel {
    /// Per-subcarrier SNR in dB (signal power / noise power).
    pub snr_db: f64,
    /// Standard deviation of the per-packet linear phase slope across
    /// subcarrier indices (radians per index unit).
    pub sfo_slope_std: f64,
    /// AGC gain jitter standard deviation in dB.
    pub agc_jitter_db: f64,
    /// Whether to apply a uniformly random common phase per packet.
    pub random_common_phase: bool,
    /// Probability that a packet is hit by bursty narrowband
    /// interference (Bluetooth/microwave-style co-channel bursts that
    /// plague 2.4 GHz).
    pub interference_prob: f64,
    /// Interference power relative to the signal, in dB.
    pub interference_power_db: f64,
    /// Number of adjacent subcarriers one burst covers.
    pub interference_width: usize,
}

impl ImpairmentModel {
    /// Representative commodity-NIC impairments: 25 dB SNR, noticeable
    /// SFO slope, 0.5 dB AGC jitter, random common phase, and occasional
    /// narrowband interference bursts.
    pub fn commodity_nic() -> Self {
        ImpairmentModel {
            snr_db: 25.0,
            sfo_slope_std: 0.02,
            agc_jitter_db: 0.5,
            random_common_phase: true,
            interference_prob: 0.35,
            interference_power_db: -4.0,
            interference_width: 5,
        }
    }

    /// No impairments at all (ideal receiver) — useful in unit tests.
    pub fn ideal() -> Self {
        ImpairmentModel {
            snr_db: f64::INFINITY,
            sfo_slope_std: 0.0,
            agc_jitter_db: 0.0,
            random_common_phase: false,
            interference_prob: 0.0,
            interference_power_db: 0.0,
            interference_width: 0,
        }
    }

    /// Returns a copy with a different SNR.
    pub fn with_snr_db(mut self, snr_db: f64) -> Self {
        self.snr_db = snr_db;
        self
    }

    /// Applies this model to a clean packet in place.
    ///
    /// `subcarrier_indices` are the OFDM indices (e.g. the Intel 5300
    /// grid) used to scale the SFO slope; `reference_power` is the mean
    /// per-sample signal power used to size the AWGN.
    ///
    /// # Panics
    /// Panics if the index list length differs from the packet's
    /// subcarrier count, or `reference_power` is not positive/finite.
    pub fn apply<R: Rng>(
        &self,
        packet: &mut CsiPacket,
        subcarrier_indices: &[i32],
        reference_power: f64,
        rng: &mut R,
    ) {
        self.apply_with_interferer(packet, subcarrier_indices, reference_power, None, rng);
    }

    /// Like [`ImpairmentModel::apply`], but with an optional fixed
    /// interferer centre subcarrier. Real 2.4 GHz interferers (ZigBee
    /// nodes, analogue video senders, a neighbour's AP) park on a fixed
    /// frequency for a whole session while bursting on and off per
    /// packet; pass the session's centre to model that. `None` draws a
    /// fresh centre per burst.
    pub fn apply_with_interferer<R: Rng>(
        &self,
        packet: &mut CsiPacket,
        subcarrier_indices: &[i32],
        reference_power: f64,
        interferer_center: Option<usize>,
        rng: &mut R,
    ) {
        assert_eq!(
            subcarrier_indices.len(),
            packet.subcarriers(),
            "index list must match packet subcarriers"
        );
        assert!(
            reference_power > 0.0 && reference_power.is_finite(),
            "reference power must be positive"
        );

        let common_phase = if self.random_common_phase {
            rng.gen_range(0.0..std::f64::consts::TAU)
        } else {
            0.0
        };
        let slope = if self.sfo_slope_std > 0.0 {
            gaussian(rng) * self.sfo_slope_std
        } else {
            0.0
        };
        let gain = if self.agc_jitter_db > 0.0 {
            db_to_amplitude(gaussian(rng) * self.agc_jitter_db)
        } else {
            1.0
        };
        let noise_sigma = if self.snr_db.is_finite() {
            (reference_power / mpdf_rfmath::db::db_to_power(self.snr_db)).sqrt()
        } else {
            0.0
        };

        // Narrowband interference burst covering a run of subcarriers.
        let burst: Option<(usize, usize, f64)> = if self.interference_prob > 0.0
            && self.interference_width > 0
            && rng.gen_range(0.0..1.0) < self.interference_prob
        {
            let k = packet.subcarriers();
            let width = self.interference_width.min(k);
            let start = match interferer_center {
                Some(c) => burst_start_covering(c, width, k),
                None => rng.gen_range(0..=(k - width)),
            };
            let sigma =
                (reference_power * mpdf_rfmath::db::db_to_power(self.interference_power_db)).sqrt();
            Some((start, start + width, sigma))
        } else {
            None
        };

        for a in 0..packet.antennas() {
            for (k, &idx) in subcarrier_indices.iter().enumerate() {
                let rot = Complex64::cis(common_phase + slope * idx as f64);
                let mut noise = if noise_sigma > 0.0 {
                    // Complex AWGN: σ²/2 per quadrature.
                    Complex64::new(gaussian(rng), gaussian(rng)) * (noise_sigma / 2f64.sqrt())
                } else {
                    Complex64::ZERO
                };
                if let Some((lo, hi, sigma)) = burst {
                    if k >= lo && k < hi {
                        noise +=
                            Complex64::new(gaussian(rng), gaussian(rng)) * (sigma / 2f64.sqrt());
                    }
                }
                let h = packet.get_mut(a, k);
                *h = *h * rot * gain + noise;
            }
        }
    }
}

impl Default for ImpairmentModel {
    fn default() -> Self {
        ImpairmentModel::commodity_nic()
    }
}

/// Start of a `width`-long burst window that always covers subcarrier
/// `center`, clamped into the band `[0, k)`.
///
/// The window is centred on `center` and then shifted — never shrunk —
/// when it would overhang a band edge, so a fixed interferer parked on an
/// edge subcarrier still hits that subcarrier (an earlier formulation
/// could slide the window off the requested centre).
///
/// Requires `1 ≤ width ≤ k`; an out-of-band `center` is clamped to the
/// nearest edge subcarrier first.
fn burst_start_covering(center: usize, width: usize, k: usize) -> usize {
    debug_assert!(width >= 1 && width <= k);
    let c = center.min(k - 1);
    // Centre, clamp right edge, clamp left edge (saturating).
    let start = c.saturating_sub(width / 2).min(k - width);
    debug_assert!(start <= c && c < start + width, "burst misses its centre");
    start
}

/// Standard normal sample via Box–Muller (keeps us independent of
/// `rand_distr`, which is not in the allowed dependency set).
fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        if z.is_finite() {
            return z;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::band::INTEL5300_SUBCARRIER_INDICES;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn clean_packet() -> CsiPacket {
        let data = vec![Complex64::ONE; 3 * 30];
        CsiPacket::new(3, 30, data, 0, 0.0)
    }

    #[test]
    fn ideal_model_is_identity() {
        let mut p = clean_packet();
        let mut rng = SmallRng::seed_from_u64(1);
        ImpairmentModel::ideal().apply(&mut p, &INTEL5300_SUBCARRIER_INDICES, 1.0, &mut rng);
        assert_eq!(p, clean_packet());
    }

    #[test]
    fn snr_controls_noise_power() {
        let mut rng = SmallRng::seed_from_u64(7);
        let model = ImpairmentModel {
            snr_db: 20.0,
            sfo_slope_std: 0.0,
            agc_jitter_db: 0.0,
            random_common_phase: false,
            interference_prob: 0.0,
            interference_power_db: 0.0,
            interference_width: 0,
        };
        // Measure noise empirically over many packets.
        let mut err_power = 0.0;
        let trials = 200;
        for _ in 0..trials {
            let mut p = clean_packet();
            model.apply(&mut p, &INTEL5300_SUBCARRIER_INDICES, 1.0, &mut rng);
            for a in 0..3 {
                for k in 0..30 {
                    err_power += (p.get(a, k) - Complex64::ONE).norm_sqr();
                }
            }
        }
        let measured = err_power / (trials * 90) as f64;
        // Expect 10^(−20/10) = 0.01 noise power.
        assert!(
            (measured - 0.01).abs() < 0.002,
            "measured noise power {measured}"
        );
    }

    #[test]
    fn common_phase_preserves_inter_antenna_relations() {
        let mut rng = SmallRng::seed_from_u64(3);
        let model = ImpairmentModel {
            snr_db: f64::INFINITY,
            sfo_slope_std: 0.05,
            agc_jitter_db: 0.0,
            random_common_phase: true,
            interference_prob: 0.0,
            interference_power_db: 0.0,
            interference_width: 0,
        };
        // Give antennas distinct phases to start with.
        let mut p = clean_packet();
        *p.get_mut(1, 0) = Complex64::cis(0.7);
        let before = (p.get(1, 0) * p.get(0, 0).conj()).arg();
        model.apply(&mut p, &INTEL5300_SUBCARRIER_INDICES, 1.0, &mut rng);
        let after = (p.get(1, 0) * p.get(0, 0).conj()).arg();
        assert!(
            (before - after).abs() < 1e-9,
            "relative antenna phase must survive common impairments"
        );
    }

    #[test]
    fn sfo_slope_is_linear_in_index() {
        let mut rng = SmallRng::seed_from_u64(11);
        let model = ImpairmentModel {
            snr_db: f64::INFINITY,
            sfo_slope_std: 0.05,
            agc_jitter_db: 0.0,
            random_common_phase: false,
            interference_prob: 0.0,
            interference_power_db: 0.0,
            interference_width: 0,
        };
        let mut p = clean_packet();
        model.apply(&mut p, &INTEL5300_SUBCARRIER_INDICES, 1.0, &mut rng);
        // φ_k = slope·idx_k ⇒ the phase of two subcarriers determines all.
        let i0 = INTEL5300_SUBCARRIER_INDICES[0] as f64;
        let i1 = INTEL5300_SUBCARRIER_INDICES[1] as f64;
        let phi0 = p.get(0, 0).arg();
        let phi1 = p.get(0, 1).arg();
        let slope = (phi1 - phi0) / (i1 - i0);
        for (k, &idx) in INTEL5300_SUBCARRIER_INDICES.iter().enumerate() {
            let expect = slope * (idx as f64 - i0) + phi0;
            let got = p.get(0, k).arg();
            let diff = (got - expect).rem_euclid(std::f64::consts::TAU);
            let diff = diff.min(std::f64::consts::TAU - diff);
            assert!(diff < 1e-9, "subcarrier {k} off by {diff}");
        }
    }

    #[test]
    fn agc_jitter_scales_amplitude_uniformly() {
        let mut rng = SmallRng::seed_from_u64(5);
        let model = ImpairmentModel {
            snr_db: f64::INFINITY,
            sfo_slope_std: 0.0,
            agc_jitter_db: 2.0,
            random_common_phase: false,
            interference_prob: 0.0,
            interference_power_db: 0.0,
            interference_width: 0,
        };
        let mut p = clean_packet();
        model.apply(&mut p, &INTEL5300_SUBCARRIER_INDICES, 1.0, &mut rng);
        let g = p.get(0, 0).norm();
        assert!(g != 1.0, "gain jitter should change amplitude");
        for a in 0..3 {
            for k in 0..30 {
                assert!((p.get(a, k).norm() - g).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn burst_window_always_covers_center() {
        // Exhaustive: every centre (including out-of-band), every width.
        for k in [1usize, 2, 5, 30] {
            for width in 1..=k {
                for center in 0..k + 3 {
                    let start = burst_start_covering(center, width, k);
                    let c = center.min(k - 1);
                    assert!(
                        start + width <= k,
                        "window [{start}, {}) overhangs band of {k}",
                        start + width
                    );
                    assert!(
                        start <= c && c < start + width,
                        "centre {c} outside burst [{start}, {}) (k={k}, width={width})",
                        start + width
                    );
                }
            }
        }
    }

    #[test]
    fn edge_center_burst_hits_the_requested_subcarrier() {
        // A fixed interferer parked on an edge subcarrier must corrupt
        // that subcarrier whenever it bursts.
        let model = ImpairmentModel {
            snr_db: f64::INFINITY,
            sfo_slope_std: 0.0,
            agc_jitter_db: 0.0,
            random_common_phase: false,
            interference_prob: 1.0,
            interference_power_db: 10.0,
            interference_width: 5,
        };
        for center in [0usize, 1, 29, 100] {
            let mut rng = SmallRng::seed_from_u64(17);
            let mut p = clean_packet();
            model.apply_with_interferer(
                &mut p,
                &INTEL5300_SUBCARRIER_INDICES,
                1.0,
                Some(center),
                &mut rng,
            );
            let hit = center.min(29);
            let delta = (p.get(0, hit) - Complex64::ONE).norm();
            assert!(
                delta > 1e-6,
                "centre subcarrier {hit} untouched by burst (centre {center})"
            );
        }
    }

    #[test]
    fn seeded_rng_makes_impairments_reproducible() {
        let model = ImpairmentModel::commodity_nic();
        let run = |seed: u64| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut p = clean_packet();
            model.apply(&mut p, &INTEL5300_SUBCARRIER_INDICES, 1.0, &mut rng);
            p
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = SmallRng::seed_from_u64(9);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
