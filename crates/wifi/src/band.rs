//! 802.11n band plan and the Intel 5300 subcarrier layout.
//!
//! The paper's receiver is an Intel 5300 NIC on 2.4 GHz channel 11. The
//! CSI tool (\[16\]) reports 30 of the 56 occupied OFDM subcarriers, at the
//! non-uniform index set listed in the paper's footnote 1. Everything
//! downstream (multipath factor, weights, MUSIC snapshots) is computed on
//! this grid.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Number of subcarriers the Intel 5300 CSI tool reports per antenna pair.
pub const NUM_SUBCARRIERS: usize = 30;

/// The Intel 5300 subcarrier indices (paper footnote 1).
pub const INTEL5300_SUBCARRIER_INDICES: [i32; NUM_SUBCARRIERS] = [
    -28, -26, -24, -22, -20, -18, -16, -14, -12, -10, -8, -6, -4, -2, -1, 1, 3, 5, 7, 9, 11, 13,
    15, 17, 19, 21, 23, 25, 27, 28,
];

/// OFDM subcarrier spacing for 20 MHz 802.11n (Hz).
pub const SUBCARRIER_SPACING_HZ: f64 = 312_500.0;

/// Centre frequency of a 2.4 GHz channel number (1–14).
///
/// # Panics
/// Panics for channel numbers outside 1–14.
pub fn channel_center_hz(channel: u8) -> f64 {
    assert!((1..=14).contains(&channel), "2.4 GHz channels are 1-14");
    if channel == 14 {
        2.484e9
    } else {
        2.407e9 + channel as f64 * 5e6
    }
}

/// Typed rejection for band parameters arriving from untrusted input
/// (wire headers, config files) — the panicking [`Band::new`] stays for
/// trusted in-process callers.
#[derive(Debug, Clone, PartialEq)]
pub enum BandError {
    /// Centre frequency is NaN, infinite, or not strictly positive.
    BadCenter(f64),
    /// No subcarrier indices were given.
    EmptyIndices,
    /// Indices are not strictly increasing (duplicate or out of order
    /// at slot `at`).
    UnsortedIndices {
        /// Slot where monotonicity breaks (`indices[at] >= indices[at+1]`).
        at: usize,
    },
}

impl fmt::Display for BandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BandError::BadCenter(hz) => {
                write!(f, "centre frequency {hz} Hz is not finite and positive")
            }
            BandError::EmptyIndices => write!(f, "at least one subcarrier index is required"),
            BandError::UnsortedIndices { at } => {
                write!(
                    f,
                    "subcarrier indices must be strictly increasing (slot {at})"
                )
            }
        }
    }
}

impl Error for BandError {}

/// A WiFi band configuration: centre frequency plus the reported
/// subcarrier grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Band {
    center_hz: f64,
    indices: Vec<i32>,
}

impl Band {
    /// The paper's configuration: 2.4 GHz channel 11 (2.462 GHz) with the
    /// Intel 5300 30-subcarrier grid.
    pub fn wifi_2_4ghz_channel11() -> Self {
        Band {
            center_hz: channel_center_hz(11),
            indices: INTEL5300_SUBCARRIER_INDICES.to_vec(),
        }
    }

    /// Creates a band on an arbitrary centre frequency with a custom
    /// subcarrier index set.
    ///
    /// # Panics
    /// Panics if the centre frequency is non-positive or no indices are
    /// given.
    pub fn new(center_hz: f64, indices: Vec<i32>) -> Self {
        assert!(center_hz > 0.0, "centre frequency must be positive");
        assert!(!indices.is_empty(), "at least one subcarrier required");
        Band { center_hz, indices }
    }

    /// Validating constructor for untrusted inputs: the centre frequency
    /// must be finite and positive and the index set non-empty and
    /// strictly increasing (slot order is a layout invariant everything
    /// downstream — μ_k, weights, MUSIC snapshots — relies on).
    ///
    /// # Errors
    /// Returns the first [`BandError`] violated; never panics.
    pub fn try_with_indices(center_hz: f64, indices: Vec<i32>) -> Result<Self, BandError> {
        if !center_hz.is_finite() || center_hz <= 0.0 {
            return Err(BandError::BadCenter(center_hz));
        }
        if indices.is_empty() {
            return Err(BandError::EmptyIndices);
        }
        if let Some(at) = indices.windows(2).position(|w| w[1] <= w[0]) {
            return Err(BandError::UnsortedIndices { at });
        }
        Ok(Band { center_hz, indices })
    }

    /// Centre frequency in Hz.
    pub fn center_hz(&self) -> f64 {
        self.center_hz
    }

    /// Subcarrier indices (relative to the centre).
    pub fn indices(&self) -> &[i32] {
        &self.indices
    }

    /// Number of subcarriers.
    pub fn num_subcarriers(&self) -> usize {
        self.indices.len()
    }

    /// Absolute frequency (Hz) of subcarrier slot `k` (an index into
    /// [`Band::indices`], not the OFDM index itself).
    ///
    /// # Panics
    /// Panics if `k` is out of range.
    pub fn subcarrier_hz(&self, k: usize) -> f64 {
        self.center_hz + self.indices[k] as f64 * SUBCARRIER_SPACING_HZ
    }

    /// Checked sibling of [`Band::subcarrier_hz`] for slot indices that
    /// came from untrusted input: `None` instead of a panic when `k` is
    /// out of range.
    pub fn get_subcarrier_hz(&self, k: usize) -> Option<f64> {
        self.indices
            .get(k)
            .map(|&idx| self.center_hz + idx as f64 * SUBCARRIER_SPACING_HZ)
    }

    /// All subcarrier frequencies in slot order.
    pub fn frequencies(&self) -> Vec<f64> {
        (0..self.indices.len())
            .map(|k| self.subcarrier_hz(k))
            .collect()
    }

    /// Wavelength at the centre frequency (m).
    pub fn center_wavelength(&self) -> f64 {
        mpdf_propagation::pathloss::PathLossModel::wavelength(self.center_hz)
    }

    /// Occupied bandwidth of the reported grid (Hz): the lowest-to-
    /// highest subcarrier span for two or more indices, one subcarrier
    /// spacing for a singleton (a lone subcarrier still occupies its
    /// 312.5 kHz slot, not zero bandwidth), and `0.0` only for a
    /// genuinely empty index set.
    pub fn span_hz(&self) -> f64 {
        match (self.indices.iter().min(), self.indices.iter().max()) {
            (Some(&lo), Some(&hi)) if hi > lo => (hi - lo) as f64 * SUBCARRIER_SPACING_HZ,
            (Some(_), Some(_)) => SUBCARRIER_SPACING_HZ,
            _ => 0.0,
        }
    }
}

impl Default for Band {
    fn default() -> Self {
        Band::wifi_2_4ghz_channel11()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_11_is_2462_mhz() {
        assert_eq!(channel_center_hz(11), 2.462e9);
        assert_eq!(channel_center_hz(1), 2.412e9);
        assert_eq!(channel_center_hz(14), 2.484e9);
    }

    #[test]
    #[should_panic(expected = "channels are 1-14")]
    fn channel_zero_panics() {
        channel_center_hz(0);
    }

    #[test]
    fn intel_grid_matches_paper_footnote() {
        let band = Band::wifi_2_4ghz_channel11();
        assert_eq!(band.num_subcarriers(), 30);
        assert_eq!(band.indices()[0], -28);
        assert_eq!(band.indices()[14], -1);
        assert_eq!(band.indices()[15], 1);
        assert_eq!(band.indices()[29], 28);
        // Strictly increasing and non-uniform.
        assert!(band.indices().windows(2).all(|w| w[1] > w[0]));
        let gaps: Vec<i32> = band.indices().windows(2).map(|w| w[1] - w[0]).collect();
        assert!(gaps.contains(&1) && gaps.contains(&2), "gaps {gaps:?}");
    }

    #[test]
    fn subcarrier_frequencies() {
        let band = Band::wifi_2_4ghz_channel11();
        assert_eq!(band.subcarrier_hz(0), 2.462e9 - 28.0 * 312_500.0);
        assert_eq!(band.subcarrier_hz(29), 2.462e9 + 28.0 * 312_500.0);
        let freqs = band.frequencies();
        assert_eq!(freqs.len(), 30);
        assert!(freqs.windows(2).all(|w| w[1] > w[0]));
        // 56 slots × 312.5 kHz = 17.5 MHz reported span.
        assert!((band.span_hz() - 17.5e6).abs() < 1.0);
    }

    #[test]
    fn wavelength_is_about_12cm() {
        let band = Band::wifi_2_4ghz_channel11();
        assert!((band.center_wavelength() - 0.1218).abs() < 1e-3);
    }

    #[test]
    fn custom_band() {
        let band = Band::new(5.18e9, vec![-2, -1, 1, 2]);
        assert_eq!(band.num_subcarriers(), 4);
        assert!((band.subcarrier_hz(0) - (5.18e9 - 625e3)).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one subcarrier")]
    fn empty_band_panics() {
        let _ = Band::new(2.4e9, vec![]);
    }

    #[test]
    fn try_with_indices_validates_untrusted_input() {
        assert!(Band::try_with_indices(2.462e9, vec![-1, 1, 3]).is_ok());
        assert!(matches!(
            Band::try_with_indices(f64::NAN, vec![1]),
            Err(BandError::BadCenter(hz)) if hz.is_nan()
        ));
        assert!(matches!(
            Band::try_with_indices(-2.4e9, vec![1]),
            Err(BandError::BadCenter(_))
        ));
        assert_eq!(
            Band::try_with_indices(2.4e9, vec![]),
            Err(BandError::EmptyIndices)
        );
        assert_eq!(
            Band::try_with_indices(2.4e9, vec![-2, 3, 3, 5]),
            Err(BandError::UnsortedIndices { at: 1 })
        );
        assert_eq!(
            Band::try_with_indices(2.4e9, vec![5, -2]),
            Err(BandError::UnsortedIndices { at: 0 })
        );
    }

    #[test]
    fn get_subcarrier_hz_is_total() {
        let band = Band::wifi_2_4ghz_channel11();
        assert_eq!(band.get_subcarrier_hz(0), Some(band.subcarrier_hz(0)));
        assert_eq!(band.get_subcarrier_hz(29), Some(band.subcarrier_hz(29)));
        assert_eq!(band.get_subcarrier_hz(30), None);
        assert_eq!(band.get_subcarrier_hz(usize::MAX), None);
    }

    #[test]
    fn span_hz_handles_degenerate_grids() {
        // Singleton: one subcarrier still occupies its slot.
        let single = Band::new(2.4e9, vec![7]);
        assert_eq!(single.span_hz(), SUBCARRIER_SPACING_HZ);
        // n ≥ 2 is unchanged by the fix.
        let pair = Band::new(2.4e9, vec![-3, 5]);
        assert_eq!(pair.span_hz(), 8.0 * SUBCARRIER_SPACING_HZ);
        assert!((Band::wifi_2_4ghz_channel11().span_hz() - 17.5e6).abs() < 1.0);
    }
}
