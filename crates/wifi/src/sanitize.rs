//! CSI phase sanitization.
//!
//! Raw CSI phase is useless directly: each packet carries a random common
//! offset (CFO / detection delay) and a linear-in-frequency slope (SFO).
//! The paper calibrates raw CSI "as in \[26\]" (§IV-C) — fit and remove the
//! linear phase trend across subcarriers.
//!
//! Crucially, the fit is computed **once per packet** (on the
//! antenna-averaged phase) and the *same* correction is applied to every
//! antenna: the impairments are common-oscillator artefacts, so a shared
//! correction preserves the inter-antenna phase differences MUSIC needs.

use mpdf_rfmath::complex::Complex64;

use crate::csi::CsiPacket;

/// Unwraps a phase sequence so consecutive samples never jump more than π.
pub fn unwrap_phases(phases: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(phases.len());
    let mut offset = 0.0;
    for (i, &p) in phases.iter().enumerate() {
        if i == 0 {
            out.push(p);
            continue;
        }
        let prev = out[i - 1];
        let mut candidate = p + offset;
        while candidate - prev > std::f64::consts::PI {
            candidate -= std::f64::consts::TAU;
            offset -= std::f64::consts::TAU;
        }
        while candidate - prev < -std::f64::consts::PI {
            candidate += std::f64::consts::TAU;
            offset += std::f64::consts::TAU;
        }
        out.push(candidate);
    }
    out
}

/// The linear phase correction estimated from one packet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseCorrection {
    /// Phase slope per subcarrier-index unit.
    pub slope: f64,
    /// Phase intercept at index 0.
    pub intercept: f64,
}

/// Estimates the linear phase trend of a packet across subcarriers.
///
/// The per-subcarrier phase is taken from the *sum over antennas* of the
/// CSI (equivalent to an SNR-weighted average), unwrapped, then fit by
/// least squares against the OFDM indices.
///
/// # Panics
/// Panics if the index list length differs from the packet's subcarrier
/// count.
pub fn estimate_linear_phase(packet: &CsiPacket, indices: &[i32]) -> PhaseCorrection {
    assert_eq!(
        indices.len(),
        packet.subcarriers(),
        "index list must match packet subcarriers"
    );
    let phases: Vec<f64> = (0..packet.subcarriers())
        .map(|k| {
            let sum: Complex64 = (0..packet.antennas()).map(|a| packet.get(a, k)).sum();
            sum.arg()
        })
        .collect();
    let unwrapped = unwrap_phases(&phases);
    let xs: Vec<f64> = indices.iter().map(|&i| i as f64).collect();
    match mpdf_rfmath::fit::linear_fit(&xs, &unwrapped) {
        Ok(fit) => PhaseCorrection {
            slope: fit.slope,
            intercept: fit.intercept,
        },
        Err(_) => PhaseCorrection {
            slope: 0.0,
            intercept: 0.0,
        },
    }
}

/// Removes the estimated linear phase from every antenna of a packet,
/// in place, and returns the applied correction.
///
/// # Panics
/// Panics if the index list length differs from the packet's subcarrier
/// count.
pub fn sanitize_packet(packet: &mut CsiPacket, indices: &[i32]) -> PhaseCorrection {
    let corr = estimate_linear_phase(packet, indices);
    for a in 0..packet.antennas() {
        for (k, &idx) in indices.iter().enumerate() {
            let rot = Complex64::cis(-(corr.slope * idx as f64 + corr.intercept));
            let h = packet.get_mut(a, k);
            *h *= rot;
        }
    }
    corr
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::band::INTEL5300_SUBCARRIER_INDICES;

    fn packet_with_linear_phase(slope: f64, intercept: f64) -> CsiPacket {
        let data: Vec<Complex64> = (0..3)
            .flat_map(|a| {
                INTEL5300_SUBCARRIER_INDICES.iter().map(move |&idx| {
                    // Distinct inter-antenna phase (0.3·a) rides on top.
                    Complex64::from_polar(2.0, slope * idx as f64 + intercept + 0.3 * a as f64)
                })
            })
            .collect();
        CsiPacket::new(3, 30, data, 0, 0.0)
    }

    #[test]
    fn unwrap_handles_jumps() {
        let phases = vec![3.0, -3.0, 2.9, -3.1];
        let un = unwrap_phases(&phases);
        for w in un.windows(2) {
            assert!((w[1] - w[0]).abs() <= std::f64::consts::PI + 1e-9);
        }
        // First sample untouched.
        assert_eq!(un[0], 3.0);
    }

    #[test]
    fn unwrap_of_smooth_sequence_is_identity() {
        let phases: Vec<f64> = (0..20).map(|i| i as f64 * 0.1).collect();
        assert_eq!(unwrap_phases(&phases), phases);
    }

    #[test]
    fn estimates_injected_slope_and_intercept() {
        let p = packet_with_linear_phase(0.04, 0.9);
        let corr = estimate_linear_phase(&p, &INTEL5300_SUBCARRIER_INDICES);
        assert!((corr.slope - 0.04).abs() < 1e-9, "slope {}", corr.slope);
        // Intercept absorbs the mean inter-antenna term (0.3 avg).
        assert!((corr.intercept - (0.9 + 0.3)).abs() < 0.05);
    }

    #[test]
    fn sanitize_flattens_phase_but_keeps_antenna_differences() {
        let mut p = packet_with_linear_phase(-0.07, 2.0);
        sanitize_packet(&mut p, &INTEL5300_SUBCARRIER_INDICES);
        // Residual phase across subcarriers of one antenna is flat.
        let phases: Vec<f64> = (0..30).map(|k| p.get(0, k).arg()).collect();
        let spread = phases.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - phases.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread < 1e-6, "phase spread {spread}");
        // Inter-antenna differences preserved exactly.
        for k in 0..30 {
            let d01 = (p.get(1, k) * p.get(0, k).conj()).arg();
            assert!((d01 - 0.3).abs() < 1e-9);
        }
        // Amplitudes untouched.
        for k in 0..30 {
            assert!((p.get(2, k).norm() - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn sanitize_is_idempotent() {
        let mut p = packet_with_linear_phase(0.03, -1.0);
        sanitize_packet(&mut p, &INTEL5300_SUBCARRIER_INDICES);
        let first = p.clone();
        let corr2 = sanitize_packet(&mut p, &INTEL5300_SUBCARRIER_INDICES);
        assert!(corr2.slope.abs() < 1e-9);
        for a in 0..3 {
            for k in 0..30 {
                assert!((p.get(a, k) - first.get(a, k)).norm() < 1e-9);
            }
        }
    }

    #[test]
    fn flat_phase_needs_no_correction() {
        let mut p = packet_with_linear_phase(0.0, 0.0);
        let corr = sanitize_packet(&mut p, &INTEL5300_SUBCARRIER_INDICES);
        assert!(corr.slope.abs() < 1e-9);
    }
}
