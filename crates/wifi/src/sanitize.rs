//! CSI phase sanitization.
//!
//! Raw CSI phase is useless directly: each packet carries a random common
//! offset (CFO / detection delay) and a linear-in-frequency slope (SFO).
//! The paper calibrates raw CSI "as in \[26\]" (§IV-C) — fit and remove the
//! linear phase trend across subcarriers.
//!
//! Crucially, the fit is computed **once per packet** (on the
//! antenna-averaged phase) and the *same* correction is applied to every
//! antenna: the impairments are common-oscillator artefacts, so a shared
//! correction preserves the inter-antenna phase differences MUSIC needs.

use mpdf_rfmath::complex::Complex64;

use crate::csi::CsiPacket;

/// Unwraps a phase sequence so consecutive samples never jump more than
/// π, writing into `out` (cleared and refilled).
pub fn unwrap_phases_into(phases: &[f64], out: &mut Vec<f64>) {
    out.clear();
    let mut offset = 0.0;
    for (i, &p) in phases.iter().enumerate() {
        if i == 0 {
            out.push(p);
            continue;
        }
        let prev = out[i - 1];
        let mut candidate = p + offset;
        while candidate - prev > std::f64::consts::PI {
            candidate -= std::f64::consts::TAU;
            offset -= std::f64::consts::TAU;
        }
        while candidate - prev < -std::f64::consts::PI {
            candidate += std::f64::consts::TAU;
            offset += std::f64::consts::TAU;
        }
        out.push(candidate);
    }
}

/// Unwraps a phase sequence so consecutive samples never jump more than π.
pub fn unwrap_phases(phases: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(phases.len());
    unwrap_phases_into(phases, &mut out);
    out
}

/// The linear phase correction estimated from one packet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseCorrection {
    /// Phase slope per subcarrier-index unit.
    pub slope: f64,
    /// Phase intercept at index 0.
    pub intercept: f64,
}

/// Reusable buffers for the per-packet sanitization pass.
///
/// Sanitizing a monitoring window runs the same fixed-size intermediate
/// computations once per packet; a scratch carried across packets (and
/// windows) removes every per-call allocation, and caches the OFDM
/// indices converted to `f64` — constant across a window, previously
/// rebuilt per packet. All arithmetic is untouched: corrections and
/// sanitized CSI are bit-identical to the allocating formulation.
#[derive(Debug, Clone, Default)]
pub struct SanitizeScratch {
    sums: Vec<Complex64>,
    phases: Vec<f64>,
    unwrapped: Vec<f64>,
    xs: Vec<f64>,
    rots: Vec<Complex64>,
}

impl SanitizeScratch {
    /// A fresh scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Refills the cached `f64` index grid when `indices` changed since
    /// the last call (cheap length+value check, usually a no-op).
    fn prepare_xs(&mut self, indices: &[i32]) {
        let up_to_date = self.xs.len() == indices.len()
            && self
                .xs
                .iter()
                .zip(indices)
                .all(|(&x, &i)| x.to_bits() == (i as f64).to_bits());
        if !up_to_date {
            self.xs.clear();
            self.xs.extend(indices.iter().map(|&i| i as f64));
        }
    }
}

/// Estimates the linear phase trend of a packet across subcarriers,
/// reusing the caller's scratch buffers (the allocation-free core of
/// [`estimate_linear_phase`]).
///
/// # Panics
/// Panics if the index list length differs from the packet's subcarrier
/// count.
pub fn estimate_linear_phase_with(
    scratch: &mut SanitizeScratch,
    packet: &CsiPacket,
    indices: &[i32],
) -> PhaseCorrection {
    assert_eq!(
        indices.len(),
        packet.subcarriers(),
        "index list must match packet subcarriers"
    );
    scratch.prepare_xs(indices);
    let SanitizeScratch {
        sums,
        phases,
        unwrapped,
        xs,
        ..
    } = scratch;
    // Antenna sums accumulated row-major (cache order); per subcarrier
    // the additions happen in the same antenna order as the previous
    // column-major formulation, so the sums are bit-identical.
    sums.clear();
    sums.resize(packet.subcarriers(), Complex64::ZERO);
    for a in 0..packet.antennas() {
        for (s, &h) in sums.iter_mut().zip(packet.antenna_row(a)) {
            *s += h;
        }
    }
    phases.clear();
    phases.extend(sums.iter().map(|s| s.arg()));
    unwrap_phases_into(phases, unwrapped);
    match mpdf_rfmath::fit::linear_fit(xs, unwrapped) {
        Ok(fit) => PhaseCorrection {
            slope: fit.slope,
            intercept: fit.intercept,
        },
        Err(_) => PhaseCorrection {
            slope: 0.0,
            intercept: 0.0,
        },
    }
}

/// Estimates the linear phase trend of a packet across subcarriers.
///
/// The per-subcarrier phase is taken from the *sum over antennas* of the
/// CSI (equivalent to an SNR-weighted average), unwrapped, then fit by
/// least squares against the OFDM indices.
///
/// # Panics
/// Panics if the index list length differs from the packet's subcarrier
/// count.
pub fn estimate_linear_phase(packet: &CsiPacket, indices: &[i32]) -> PhaseCorrection {
    estimate_linear_phase_with(&mut SanitizeScratch::new(), packet, indices)
}

/// Removes the estimated linear phase from every antenna of a packet in
/// place, reusing the caller's scratch buffers (the allocation-free core
/// of [`sanitize_packet`] — window loops carry one scratch across all
/// packets).
///
/// # Panics
/// Panics if the index list length differs from the packet's subcarrier
/// count.
pub fn sanitize_packet_with(
    scratch: &mut SanitizeScratch,
    packet: &mut CsiPacket,
    indices: &[i32],
) -> PhaseCorrection {
    let corr = estimate_linear_phase_with(scratch, packet, indices);
    // The rotor depends only on the subcarrier index: compute the grid
    // once instead of once per (antenna, subcarrier) — each element
    // still sees the bit-identical `cis` value and product.
    scratch.rots.clear();
    scratch.rots.extend(
        indices
            .iter()
            .map(|&idx| Complex64::cis(-(corr.slope * idx as f64 + corr.intercept))),
    );
    for a in 0..packet.antennas() {
        for (h, rot) in packet.antenna_row_mut(a).iter_mut().zip(&scratch.rots) {
            *h *= *rot;
        }
    }
    corr
}

/// Removes the estimated linear phase from every antenna of a packet,
/// in place, and returns the applied correction.
///
/// # Panics
/// Panics if the index list length differs from the packet's subcarrier
/// count.
pub fn sanitize_packet(packet: &mut CsiPacket, indices: &[i32]) -> PhaseCorrection {
    sanitize_packet_with(&mut SanitizeScratch::new(), packet, indices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::band::INTEL5300_SUBCARRIER_INDICES;

    fn packet_with_linear_phase(slope: f64, intercept: f64) -> CsiPacket {
        let data: Vec<Complex64> = (0..3)
            .flat_map(|a| {
                INTEL5300_SUBCARRIER_INDICES.iter().map(move |&idx| {
                    // Distinct inter-antenna phase (0.3·a) rides on top.
                    Complex64::from_polar(2.0, slope * idx as f64 + intercept + 0.3 * a as f64)
                })
            })
            .collect();
        CsiPacket::new(3, 30, data, 0, 0.0)
    }

    #[test]
    fn unwrap_handles_jumps() {
        let phases = vec![3.0, -3.0, 2.9, -3.1];
        let un = unwrap_phases(&phases);
        for w in un.windows(2) {
            assert!((w[1] - w[0]).abs() <= std::f64::consts::PI + 1e-9);
        }
        // First sample untouched.
        assert_eq!(un[0], 3.0);
    }

    #[test]
    fn unwrap_of_smooth_sequence_is_identity() {
        let phases: Vec<f64> = (0..20).map(|i| i as f64 * 0.1).collect();
        assert_eq!(unwrap_phases(&phases), phases);
    }

    #[test]
    fn estimates_injected_slope_and_intercept() {
        let p = packet_with_linear_phase(0.04, 0.9);
        let corr = estimate_linear_phase(&p, &INTEL5300_SUBCARRIER_INDICES);
        assert!((corr.slope - 0.04).abs() < 1e-9, "slope {}", corr.slope);
        // Intercept absorbs the mean inter-antenna term (0.3 avg).
        assert!((corr.intercept - (0.9 + 0.3)).abs() < 0.05);
    }

    #[test]
    fn sanitize_flattens_phase_but_keeps_antenna_differences() {
        let mut p = packet_with_linear_phase(-0.07, 2.0);
        sanitize_packet(&mut p, &INTEL5300_SUBCARRIER_INDICES);
        // Residual phase across subcarriers of one antenna is flat.
        let phases: Vec<f64> = (0..30).map(|k| p.get(0, k).arg()).collect();
        let spread = phases.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - phases.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread < 1e-6, "phase spread {spread}");
        // Inter-antenna differences preserved exactly.
        for k in 0..30 {
            let d01 = (p.get(1, k) * p.get(0, k).conj()).arg();
            assert!((d01 - 0.3).abs() < 1e-9);
        }
        // Amplitudes untouched.
        for k in 0..30 {
            assert!((p.get(2, k).norm() - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn sanitize_is_idempotent() {
        let mut p = packet_with_linear_phase(0.03, -1.0);
        sanitize_packet(&mut p, &INTEL5300_SUBCARRIER_INDICES);
        let first = p.clone();
        let corr2 = sanitize_packet(&mut p, &INTEL5300_SUBCARRIER_INDICES);
        assert!(corr2.slope.abs() < 1e-9);
        for a in 0..3 {
            for k in 0..30 {
                assert!((p.get(a, k) - first.get(a, k)).norm() < 1e-9);
            }
        }
    }

    #[test]
    fn flat_phase_needs_no_correction() {
        let mut p = packet_with_linear_phase(0.0, 0.0);
        let corr = sanitize_packet(&mut p, &INTEL5300_SUBCARRIER_INDICES);
        assert!(corr.slope.abs() < 1e-9);
    }
}
