//! Property-based tests for the CSI measurement substrate.

use mpdf_rfmath::complex::Complex64;
use mpdf_wifi::band::{Band, INTEL5300_SUBCARRIER_INDICES};
use mpdf_wifi::csi::CsiPacket;
use mpdf_wifi::impairments::ImpairmentModel;
use mpdf_wifi::sanitize::{estimate_linear_phase, sanitize_packet, unwrap_phases};
use mpdf_wifi::UniformLinearArray;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn amplitude() -> impl Strategy<Value = f64> {
    0.05f64..4.0
}

fn phase() -> impl Strategy<Value = f64> {
    -3.1f64..3.1
}

/// A packet whose rows carry an arbitrary smooth channel.
fn packet_strategy() -> impl Strategy<Value = CsiPacket> {
    (amplitude(), phase(), -0.08f64..0.08, phase()).prop_map(|(a, p0, slope, ant)| {
        let data: Vec<Complex64> = (0..3)
            .flat_map(|m| {
                INTEL5300_SUBCARRIER_INDICES.iter().map(move |&idx| {
                    Complex64::from_polar(a, p0 + slope * idx as f64 + ant * m as f64)
                })
            })
            .collect();
        CsiPacket::new(3, 30, data, 0, 0.0)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn unwrap_never_jumps_more_than_pi(phases in proptest::collection::vec(-3.1f64..3.1, 1..64)) {
        let un = unwrap_phases(&phases);
        prop_assert_eq!(un.len(), phases.len());
        for w in un.windows(2) {
            prop_assert!((w[1] - w[0]).abs() <= std::f64::consts::PI + 1e-9);
        }
        // Unwrapping only adds multiples of 2π.
        for (u, p) in un.iter().zip(&phases) {
            let k = (u - p) / std::f64::consts::TAU;
            prop_assert!((k - k.round()).abs() < 1e-9);
        }
    }

    #[test]
    fn sanitize_removes_any_injected_linear_phase(pkt in packet_strategy(), slope in -0.1f64..0.1, offset in phase()) {
        // Inject an extra linear phase, sanitize, and verify the result is
        // independent of the injection.
        let mut clean = pkt.clone();
        sanitize_packet(&mut clean, &INTEL5300_SUBCARRIER_INDICES);
        // Rebuild a corrupted packet with the injected linear phase.
        let mut data = Vec::with_capacity(90);
        for a in 0..3 {
            for (k, &idx) in INTEL5300_SUBCARRIER_INDICES.iter().enumerate() {
                data.push(pkt.get(a, k) * Complex64::cis(offset + slope * idx as f64));
            }
        }
        let mut corrupted = CsiPacket::new(3, 30, data, 0, 0.0);
        sanitize_packet(&mut corrupted, &INTEL5300_SUBCARRIER_INDICES);
        for a in 0..3 {
            for k in 0..30 {
                prop_assert!(
                    (clean.get(a, k) - corrupted.get(a, k)).norm() < 1e-6,
                    "antenna {a} subcarrier {k}"
                );
            }
        }
    }

    #[test]
    fn sanitize_preserves_amplitudes(pkt in packet_strategy()) {
        let mut q = pkt.clone();
        sanitize_packet(&mut q, &INTEL5300_SUBCARRIER_INDICES);
        for a in 0..3 {
            for k in 0..30 {
                prop_assert!((q.get(a, k).norm() - pkt.get(a, k).norm()).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn estimated_slope_matches_injection(a in amplitude(), slope in -0.08f64..0.08, offset in phase()) {
        let data: Vec<Complex64> = (0..3)
            .flat_map(|_| {
                INTEL5300_SUBCARRIER_INDICES
                    .iter()
                    .map(|&idx| Complex64::from_polar(a, offset + slope * idx as f64))
                    .collect::<Vec<_>>()
            })
            .collect();
        let pkt = CsiPacket::new(3, 30, data, 0, 0.0);
        let corr = estimate_linear_phase(&pkt, &INTEL5300_SUBCARRIER_INDICES);
        prop_assert!((corr.slope - slope).abs() < 1e-6, "slope {} vs {}", corr.slope, slope);
    }

    #[test]
    fn impairments_preserve_shape_and_are_seeded(pkt in packet_strategy(), seed in 0u64..1000) {
        let model = ImpairmentModel::commodity_nic();
        let mut a = pkt.clone();
        let mut b = pkt.clone();
        let mut r1 = SmallRng::seed_from_u64(seed);
        let mut r2 = SmallRng::seed_from_u64(seed);
        model.apply(&mut a, &INTEL5300_SUBCARRIER_INDICES, 1.0, &mut r1);
        model.apply(&mut b, &INTEL5300_SUBCARRIER_INDICES, 1.0, &mut r2);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.antennas(), 3);
        prop_assert_eq!(a.subcarriers(), 30);
        prop_assert!((0..3).all(|m| (0..30).all(|k| a.get(m, k).is_finite())));
    }

    #[test]
    fn band_frequencies_are_strictly_increasing(ch in 1u8..=13) {
        let band = Band::new(
            mpdf_wifi::band::channel_center_hz(ch),
            INTEL5300_SUBCARRIER_INDICES.to_vec(),
        );
        let f = band.frequencies();
        prop_assert!(f.windows(2).all(|w| w[1] > w[0]));
        prop_assert!(f.iter().all(|&x| x > 2.3e9 && x < 2.6e9));
    }

    #[test]
    fn steering_vectors_have_unit_elements(elements in 2usize..8, theta in -1.5f64..1.5) {
        let array = UniformLinearArray::new(elements, 0.0609, mpdf_geom::vec2::Vec2::new(0.0, 1.0));
        let sv = array.steering_vector(theta, 0.1218);
        prop_assert_eq!(sv.len(), elements);
        for z in sv {
            prop_assert!((z.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn incidence_angle_is_bounded(elements in 2usize..6, dx in -1.0f64..1.0, dy in -1.0f64..1.0) {
        prop_assume!(dx.abs() + dy.abs() > 1e-3);
        let array = UniformLinearArray::new(elements, 0.0609, mpdf_geom::vec2::Vec2::new(0.0, 1.0));
        let dir = mpdf_geom::vec2::Vec2::new(dx, dy).normalized().unwrap();
        let theta = array.incidence_angle(dir);
        prop_assert!(theta.abs() <= std::f64::consts::FRAC_PI_2 + 1e-12);
    }
}
