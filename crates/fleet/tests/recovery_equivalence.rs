//! Tier-1 crash-recovery equivalence: a fleet whose shards are killed
//! at seeded points and whose log IO injects seeded torn/transient
//! faults must produce **bit-identical** per-tick records and fused
//! room verdicts to an uninterrupted in-memory run — at thread counts
//! 1 and 4.
//!
//! The driver follows the event-ledger replay protocol: every delivered
//! window is remembered as `(tick, record)`; after a recovery restores
//! a link at `events = e`, ledger entries `e..` are replayed (at their
//! original ticks) and each replay must reproduce the original record
//! exactly.

use std::collections::BTreeMap;
use std::path::PathBuf;

use mpdf_core::profile::DetectorConfig;
use mpdf_core::scheme::SubcarrierWeighting;
use mpdf_fleet::chaos::{ChaosPlan, FaultIo, FaultPlan};
use mpdf_fleet::{
    Fleet, FleetPolicy, LinkOutcome, LinkRecord, LinkWindow, LogIo, Shard, ShardLog, StdIo,
    TickReport,
};
use mpdf_geom::shapes::Rect;
use mpdf_geom::vec2::Vec2;
use mpdf_propagation::channel::ChannelModel;
use mpdf_propagation::environment::Environment;
use mpdf_propagation::human::HumanBody;
use mpdf_rfmath::complex::Complex64;
use mpdf_session::runtime::{SessionConfig, SessionRuntime};
use mpdf_wifi::csi::CsiPacket;
use mpdf_wifi::receiver::CsiReceiver;

const LINKS: u64 = 6;
const SHARDS: usize = 2;
const TICKS: u64 = 8;
const WINDOW: usize = 25;
const SEED: u64 = 0xF1EE7;

fn mix(seed: u64, a: u64, b: u64) -> u64 {
    let mut z = seed
        .wrapping_add(a.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(b.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn receiver(seed: u64) -> CsiReceiver {
    let env = Environment::empty_room(Rect::new(Vec2::ZERO, Vec2::new(8.0, 6.0)));
    let link = ChannelModel::new(env, Vec2::new(2.0, 3.0), Vec2::new(6.0, 3.0)).unwrap();
    CsiReceiver::new(link, seed).unwrap()
}

fn calibrated(seed: u64) -> SessionRuntime<SubcarrierWeighting> {
    let mut rx = receiver(seed);
    let calibration = rx.capture_static(None, 150).unwrap();
    SessionRuntime::calibrate(
        &calibration,
        SubcarrierWeighting,
        DetectorConfig::default(),
        SessionConfig::default(),
    )
    .unwrap()
}

/// The window `link` receives at `tick` — pure in `(SEED, link, tick)`.
/// Roughly one in 11 windows is poisoned with a mis-shaped packet.
fn window_for(link: u64, tick: u64) -> Vec<CsiPacket> {
    if mix(SEED, link, tick.wrapping_mul(13) ^ 0xFA) % 11 == 0 {
        let sc = DetectorConfig::default().band.num_subcarriers();
        return vec![CsiPacket::new(
            2,
            sc,
            vec![Complex64::new(1.0, 0.0); 2 * sc],
            0,
            0.0,
        )];
    }
    let occupied = mix(SEED, link % 2, tick ^ 0x0CC) % 3 == 0;
    let body = HumanBody::new(Vec2::new(4.0, 3.6));
    let mut rx = receiver(mix(SEED, link ^ 0x417, tick));
    rx.capture_static(occupied.then_some(&body), WINDOW)
        .unwrap()
}

fn policy() -> FleetPolicy {
    FleetPolicy {
        // 3 links per shard, budget 2: every full tick sheds once per
        // shard, so shedding is part of what must stay equivalent.
        max_windows_per_tick: 2,
        max_strikes: 3,
        quarantine_base: 1,
        quarantine_cap: 4,
        watchdog_ticks: 6,
    }
}

fn register_all<IO: LogIo>(fleet: &mut Fleet<SubcarrierWeighting, IO>) {
    for link in 0..LINKS {
        // Two rooms; one calibration per room, cloned per link.
        let room = (link % 2) as u32 + 1;
        fleet
            .register(link, room, calibrated(SEED ^ (0xCA11 + u64::from(room))))
            .unwrap();
    }
}

type Ledger = BTreeMap<u64, Vec<(u64, LinkRecord)>>;

fn drive<IO: LogIo + Send>(
    fleet: &mut Fleet<SubcarrierWeighting, IO>,
    plan: Option<&ChaosPlan>,
) -> Vec<TickReport> {
    let mut ledger: Ledger = BTreeMap::new();
    let mut reports = Vec::new();
    for tick in 0..TICKS {
        if let Some(plan) = plan {
            for shard in plan.kills_at(tick) {
                recover_and_replay(fleet, &ledger, shard);
            }
        }
        let windows: Vec<LinkWindow> = (0..LINKS)
            .map(|link| LinkWindow {
                link,
                packets: window_for(link, tick),
            })
            .collect();
        let report = fleet.step_tick(&windows).unwrap();
        for rec in &report.records {
            if matches!(
                rec.outcome,
                LinkOutcome::Decision { .. } | LinkOutcome::Fault { .. }
            ) {
                ledger
                    .entry(rec.link)
                    .or_default()
                    .push((tick, rec.clone()));
            }
        }
        let mut crashed = report.crashed_shards.clone();
        let mut rounds = 0;
        while !crashed.is_empty() {
            rounds += 1;
            assert!(rounds <= 16, "shards {crashed:?} never stopped crashing");
            for shard in std::mem::take(&mut crashed) {
                recover_and_replay(fleet, &ledger, shard);
                if fleet.shard_crashed(shard) {
                    crashed.push(shard);
                }
            }
        }
        reports.push(report);
    }
    reports
}

fn recover_and_replay<IO: LogIo>(
    fleet: &mut Fleet<SubcarrierWeighting, IO>,
    ledger: &Ledger,
    shard: u32,
) {
    let report = fleet.recover_shard(shard).unwrap();
    for (&link, &restored) in &report.events {
        let empty = Vec::new();
        let entries = ledger.get(&link).unwrap_or(&empty);
        assert!(
            entries.len() as u64 >= restored,
            "link {link}: durable events {restored} ahead of the ledger ({})",
            entries.len()
        );
        for (tick, original) in &entries[restored as usize..] {
            let record = fleet.replay(link, *tick, &window_for(link, *tick)).unwrap();
            assert_eq!(
                &record, original,
                "replay of link {link} tick {tick} diverged from the original delivery"
            );
        }
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mpdf_fleet_equiv_{}_{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn chaos_fleet(
    dir: &std::path::Path,
    threads: usize,
) -> Fleet<SubcarrierWeighting, FaultIo<StdIo>> {
    let mut shards = Vec::new();
    for i in 0..SHARDS as u32 {
        let io = FaultIo::new(
            StdIo,
            FaultPlan {
                seed: SEED ^ (0xFA_0170 + u64::from(i)),
                transient_period: 4,
                torn_period: 7,
                grace_appends: LINKS.div_ceil(SHARDS as u64),
            },
        );
        let (log, _) = ShardLog::open(io, dir.join(format!("shard{i}.mpsl")), i, 16).unwrap();
        shards.push(Shard::new(i, Some(log)));
    }
    let mut fleet = Fleet::new(shards, policy(), threads).unwrap();
    register_all(&mut fleet);
    fleet
}

/// The observable slice of a tick report (crash markers excluded — a
/// crash that recovery fully absorbs is not an observable difference).
fn observable(r: &TickReport) -> (u64, &Vec<LinkRecord>, u32, u32) {
    (r.tick, &r.records, r.delivered, r.shed)
}

fn assert_equivalent_at(threads: usize) {
    let mut reference = Fleet::in_memory(SHARDS, policy(), threads).unwrap();
    register_all(&mut reference);
    let ref_reports = drive(&mut reference, None);

    let dir = temp_dir(&format!("t{threads}"));
    let mut fleet = chaos_fleet(&dir, threads);
    let plan = ChaosPlan::seeded(SEED ^ 0xC405, SHARDS as u32, TICKS, 2);
    assert!(!plan.kills.is_empty(), "the seeded plan must actually kill");
    let chaos_reports = drive(&mut fleet, Some(&plan));
    std::fs::remove_dir_all(&dir).ok();

    let crashes: usize = chaos_reports.iter().map(|r| r.crashed_shards.len()).sum();
    assert!(crashes > 0, "the fault plan must actually crash a shard");
    for (a, b) in ref_reports.iter().zip(&chaos_reports) {
        assert_eq!(
            observable(a),
            observable(b),
            "tick {} diverged between reference and chaos runs",
            a.tick
        );
        assert_eq!(a.rooms, b.rooms, "tick {} room verdicts diverged", a.tick);
    }
}

#[test]
fn killed_and_recovered_fleet_matches_uninterrupted_run_serial() {
    assert_equivalent_at(1);
}

#[test]
fn killed_and_recovered_fleet_matches_uninterrupted_run_threaded() {
    assert_equivalent_at(4);
}

#[test]
fn thread_count_does_not_change_chaos_reports() {
    let dir1 = temp_dir("x1");
    let mut f1 = chaos_fleet(&dir1, 1);
    let plan = ChaosPlan::seeded(SEED ^ 0xC405, SHARDS as u32, TICKS, 2);
    let r1 = drive(&mut f1, Some(&plan));
    std::fs::remove_dir_all(&dir1).ok();

    let dir4 = temp_dir("x4");
    let mut f4 = chaos_fleet(&dir4, 4);
    let r4 = drive(&mut f4, Some(&plan));
    std::fs::remove_dir_all(&dir4).ok();

    assert_eq!(r1, r4, "chaos runs must be identical at any thread count");
}
