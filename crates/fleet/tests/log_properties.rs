//! Property tests for the shard checkpoint log: a torn tail at *any*
//! byte offset of the final record is truncated cleanly (never a panic,
//! never a half-record), header-level damage falls back to the `.bak`
//! rotation, and empty or zero-length files are typed errors.

use std::path::PathBuf;

use proptest::prelude::*;

use mpdf_fleet::{LogError, ShardLog, StdIo};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mpdf_fleet_prop_{}_{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Writes a three-record log (two links, one overwrite) and returns its
/// path plus the byte length of the intact file.
fn seeded_log(dir: &std::path::Path, payload_len: usize) -> (PathBuf, usize) {
    let path = dir.join("shard0.mpsl");
    std::fs::remove_file(&path).ok();
    let (mut log, _) = ShardLog::open(StdIo, &path, 0, 0).unwrap();
    log.append(1, vec![0xA1; payload_len]).unwrap();
    log.append(2, vec![0xB2; payload_len.max(1)]).unwrap();
    log.append(1, vec![0xC3; payload_len]).unwrap();
    let len = std::fs::metadata(&path).unwrap().len() as usize;
    (path, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Truncating the file anywhere inside the FINAL record loses only
    /// that record: links 1 and 2 recover to their previous images.
    #[test]
    fn torn_tail_at_every_offset_of_the_final_record(
        payload_len in 0usize..48,
        cut_back in 1usize..1000,
    ) {
        let dir = temp_dir("torn");
        let (path, full) = seeded_log(&dir, payload_len);
        // The last record is 30 + payload_len bytes; cut anywhere
        // strictly inside it.
        let record_len = 30 + payload_len;
        let cut = full - 1 - (cut_back % record_len.max(1)).min(record_len - 1);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..cut.max(full - record_len)]).unwrap();

        let (log, rec) = ShardLog::open(StdIo, &path, 0, 0).unwrap();
        prop_assert!(rec.torn_bytes > 0 || cut.max(full - record_len) == full - record_len);
        prop_assert!(!rec.used_bak);
        // The first two records always survive; never a half-record.
        prop_assert_eq!(log.live_links(), 2);
        let live: Vec<(u64, Vec<u8>)> =
            log.live().map(|(l, p)| (l, p.to_vec())).collect();
        prop_assert_eq!(live[0].clone(), (1, vec![0xA1; payload_len]), "link 1 reverts");
        prop_assert_eq!(live[1].clone(), (2, vec![0xB2; payload_len.max(1)]));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Flipping any single byte of the final record's frame cannot
    /// produce a half-record: either the record survives byte-identical
    /// (flip landed in the already-truncated tail region is impossible
    /// here) or the whole record is dropped by the sync/CRC checks.
    #[test]
    fn corrupt_final_record_is_all_or_nothing(
        payload_len in 0usize..48,
        pos_back in 1usize..1000,
        xor in 1u8..=255,
    ) {
        let dir = temp_dir("flip");
        let (path, full) = seeded_log(&dir, payload_len);
        let record_len = 30 + payload_len;
        let pos = full - 1 - (pos_back % record_len);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[pos] ^= xor;
        std::fs::write(&path, &bytes).unwrap();

        let (log, rec) = ShardLog::open(StdIo, &path, 0, 0).unwrap();
        prop_assert!(rec.torn_bytes > 0, "a flipped frame is a torn tail");
        prop_assert_eq!(log.live_links(), 2);
        let link1: Vec<u8> = log.live().next().unwrap().1.to_vec();
        prop_assert_eq!(link1, vec![0xA1; payload_len], "link 1 reverts to its prior image");
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn corrupt_primary_header_falls_back_to_valid_bak() {
    let dir = temp_dir("bak");
    let path = dir.join("shard3.mpsl");
    // compact_every=2 guarantees a .bak rotation exists.
    let (mut log, _) = ShardLog::open(StdIo, &path, 3, 2).unwrap();
    log.append(7, b"seven-v1".to_vec()).unwrap();
    log.append(8, b"eight-v1".to_vec()).unwrap();
    // Smash the primary's magic.
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[0] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();

    let (log2, rec) = ShardLog::open(StdIo, &path, 3, 0).unwrap();
    assert!(rec.used_bak, "recovery must use the .bak rotation");
    assert_eq!(log2.live_links(), 2);
    // Recovery rewrote the primary; a further reopen is clean.
    let (log3, rec3) = ShardLog::open(StdIo, &path, 3, 0).unwrap();
    assert!(!rec3.used_bak);
    assert_eq!(log3.live_links(), 2);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn empty_and_truncated_header_files_are_typed_errors() {
    let dir = temp_dir("empty");
    for (name, contents) in [
        ("zero.mpsl", &[][..]),
        ("tiny.mpsl", &b"MPSL"[..]),
        ("garbage.mpsl", &b"not a log at all"[..]),
    ] {
        let path = dir.join(name);
        std::fs::write(&path, contents).unwrap();
        let err = ShardLog::open(StdIo, &path, 0, 0).unwrap_err();
        assert!(
            matches!(err, LogError::BadHeader(_)),
            "{name}: expected BadHeader, got {err}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn appends_after_torn_recovery_extend_a_clean_file() {
    let dir = temp_dir("extend");
    let (path, full) = seeded_log(&dir, 16);
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..full - 10]).unwrap();

    let (mut log, rec) = ShardLog::open(StdIo, &path, 0, 0).unwrap();
    assert!(rec.torn_bytes > 0);
    log.append(9, b"nine".to_vec()).unwrap();
    let (log2, rec2) = ShardLog::open(StdIo, &path, 0, 0).unwrap();
    assert_eq!(rec2.torn_bytes, 0, "recovery rewrote the file cleanly");
    assert_eq!(log2.live_links(), 3);
    std::fs::remove_dir_all(&dir).ok();
}
