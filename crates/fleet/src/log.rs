//! Append-only, CRC-framed, generation-numbered shard checkpoint logs.
//!
//! One log per shard multiplexes the snapshots of every session the
//! shard runs — at fleet scale this replaces file-per-session
//! checkpointing (thousands of tiny files and fsyncs) with one
//! sequentially-appended file per failure domain.
//!
//! ## On-disk layout (all little-endian)
//!
//! ```text
//! header   magic    b"MPSL"        4 bytes
//!          version  u16            2
//!          shard    u32            4
//! record   sync     b"RC"          2
//!          gen      u64            8   (log-wide generation number)
//!          link     u64            8
//!          len      u32            4   (payload byte count)
//!          payload  [len bytes]        (LinkMeta ‖ session snapshot)
//!          crc      u64            8   CRC-64/ECMA over gen..payload
//! ```
//!
//! Recovery scans records in file order, keeping the **latest image per
//! link**; the first frame that fails its sync marker, length bound or
//! CRC ends the scan and everything from there on is truncated as a
//! torn tail (a crash mid-append can only damage the suffix). If the
//! header itself is damaged the previous-good `.bak` rotation — written
//! by compaction — is recovered instead. Generation numbers strictly
//! increase across appends, so the newest surviving record per link is
//! unambiguous even after compaction rewrites.
//!
//! All IO flows through the [`LogIo`] trait: production uses [`StdIo`]
//! (real files, full fsync discipline), the chaos harness swaps in
//! [`crate::chaos::FaultIo`] to inject seeded torn writes and transient
//! errors without touching this module's logic.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

/// Shard-log file magic.
pub const LOG_MAGIC: &[u8; 4] = b"MPSL";
/// Current shard-log format version.
pub const LOG_VERSION: u16 = 1;
/// Byte length of the file header.
pub const HEADER_LEN: usize = 10;
/// Per-record framing overhead (sync + gen + link + len + crc).
pub const RECORD_OVERHEAD: usize = 2 + 8 + 8 + 4 + 8;
/// Largest admissible record payload; larger lengths in a frame are
/// treated as corruption, not allocation requests.
pub const MAX_RECORD_PAYLOAD: usize = 1 << 28;

const RECORD_SYNC: &[u8; 2] = b"RC";
const IO_ATTEMPTS: u32 = 4;

/// Errors produced by shard-log operations.
#[derive(Debug)]
pub enum LogError {
    /// Underlying IO failure (after the transient-retry budget).
    Io(std::io::Error),
    /// The file header is missing or malformed.
    BadHeader(String),
    /// The header's version field is unsupported.
    UnsupportedVersion(u16),
    /// The log belongs to a different shard.
    ShardMismatch {
        /// Shard id this log was opened for.
        expected: u32,
        /// Shard id stored in the file header.
        found: u32,
    },
    /// Append-side: a payload exceeds [`MAX_RECORD_PAYLOAD`].
    TooLarge {
        /// Offending payload length.
        len: usize,
    },
}

impl fmt::Display for LogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogError::Io(e) => write!(f, "shard log i/o error: {e}"),
            LogError::BadHeader(what) => write!(f, "bad shard log header: {what}"),
            LogError::UnsupportedVersion(v) => write!(f, "unsupported shard log version {v}"),
            LogError::ShardMismatch { expected, found } => {
                write!(f, "shard log is for shard {found}, expected {expected}")
            }
            LogError::TooLarge { len } => write!(
                f,
                "record payload of {len} bytes exceeds the {MAX_RECORD_PAYLOAD} byte cap"
            ),
        }
    }
}

impl Error for LogError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LogError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for LogError {
    fn from(e: std::io::Error) -> Self {
        LogError::Io(e)
    }
}

/// CRC-64 over the ECMA-182 polynomial (`0x42F0E1EBA9EA3693`),
/// MSB-first, with all-ones init and xorout (the CRC-64/WE profile) so
/// leading-zero damage and the empty input are distinguishable.
pub fn crc64(data: &[u8]) -> u64 {
    static TABLE: OnceLock<[u64; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u64; 256];
        let mut i = 0usize;
        while i < 256 {
            let mut crc = (i as u64) << 56;
            let mut b = 0;
            while b < 8 {
                crc = if crc & (1 << 63) != 0 {
                    (crc << 1) ^ 0x42F0_E1EB_A9EA_3693
                } else {
                    crc << 1
                };
                b += 1;
            }
            t[i] = crc;
            i += 1;
        }
        t
    });
    let mut crc = !0u64;
    for &byte in data {
        let idx = ((crc >> 56) ^ u64::from(byte)) as usize & 0xFF;
        crc = (crc << 8) ^ table[idx];
    }
    !crc
}

/// The filesystem surface a shard log needs. Production uses [`StdIo`];
/// the chaos harness wraps any `LogIo` in a fault-injecting shim.
pub trait LogIo {
    /// Reads the whole file.
    fn read(&mut self, path: &Path) -> std::io::Result<Vec<u8>>;
    /// Durably appends `bytes` (write + fsync).
    fn append(&mut self, path: &Path, bytes: &[u8]) -> std::io::Result<()>;
    /// Durably replaces the file's contents atomically (staged write,
    /// fsync, rename, directory fsync).
    fn replace(&mut self, path: &Path, bytes: &[u8]) -> std::io::Result<()>;
    /// Renames a file, fsyncing the parent directory.
    fn rename(&mut self, from: &Path, to: &Path) -> std::io::Result<()>;
    /// Whether the file exists.
    fn exists(&mut self, path: &Path) -> bool;
}

fn sync_parent_dir(path: &Path) -> std::io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    std::fs::File::open(parent)?.sync_all()
}

/// Real-filesystem [`LogIo`] with full durability discipline.
#[derive(Debug, Default, Clone)]
pub struct StdIo;

impl LogIo for StdIo {
    fn read(&mut self, path: &Path) -> std::io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn append(&mut self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        f.write_all(bytes)?;
        f.sync_all()
    }

    fn replace(&mut self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        let mut staged = path.as_os_str().to_os_string();
        staged.push(".staged");
        let staged = PathBuf::from(staged);
        let mut f = std::fs::File::create(&staged)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&staged, path)?;
        sync_parent_dir(path)
    }

    fn rename(&mut self, from: &Path, to: &Path) -> std::io::Result<()> {
        std::fs::rename(from, to)?;
        sync_parent_dir(to)
    }

    fn exists(&mut self, path: &Path) -> bool {
        path.exists()
    }
}

fn transient(kind: std::io::ErrorKind) -> bool {
    matches!(
        kind,
        std::io::ErrorKind::Interrupted | std::io::ErrorKind::WouldBlock
    )
}

/// Bounded deterministic retry on transient IO errors, mirroring the
/// session checkpoint store. Counted on `fleet.log.io_retries_total`.
fn retry_io<T, F: FnMut() -> std::io::Result<T>>(mut op: F) -> std::io::Result<T> {
    let mut attempt = 1;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if transient(e.kind()) && attempt < IO_ATTEMPTS => {
                mpdf_obs::counter!("fleet.log.io_retries_total").inc();
                for _ in 0..attempt {
                    std::thread::yield_now();
                }
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// What a [`ShardLog::open`]/[`ShardLog::recover`] pass found on disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecovery {
    /// Valid records scanned (pre-dedup, file order).
    pub records: usize,
    /// Bytes truncated off a torn tail (0 for a clean log).
    pub torn_bytes: usize,
    /// Whether the primary was unusable and the `.bak` rotation was
    /// recovered instead.
    pub used_bak: bool,
}

struct Scan {
    live: BTreeMap<u64, (u64, Vec<u8>)>,
    next_gen: u64,
    records: usize,
    torn_bytes: usize,
}

fn header_bytes(shard: u32) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(HEADER_LEN);
    bytes.extend_from_slice(LOG_MAGIC);
    bytes.extend_from_slice(&LOG_VERSION.to_le_bytes());
    bytes.extend_from_slice(&shard.to_le_bytes());
    bytes
}

fn frame_record(out: &mut Vec<u8>, gen: u64, link: u64, payload: &[u8]) {
    let start = out.len();
    out.extend_from_slice(RECORD_SYNC);
    out.extend_from_slice(&gen.to_le_bytes());
    out.extend_from_slice(&link.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    let crc = crc64(&out[start + 2..]);
    out.extend_from_slice(&crc.to_le_bytes());
}

fn read_u64(data: &[u8]) -> u64 {
    let mut bytes = [0u8; 8];
    bytes.copy_from_slice(&data[..8]);
    u64::from_le_bytes(bytes)
}

fn scan(data: &[u8], shard: u32) -> Result<Scan, LogError> {
    if data.len() < HEADER_LEN {
        return Err(LogError::BadHeader(format!(
            "{} bytes is shorter than the {HEADER_LEN} byte header",
            data.len()
        )));
    }
    if &data[..4] != LOG_MAGIC {
        return Err(LogError::BadHeader("wrong magic".to_string()));
    }
    let version = u16::from_le_bytes([data[4], data[5]]);
    if version != LOG_VERSION {
        return Err(LogError::UnsupportedVersion(version));
    }
    let found = u32::from_le_bytes([data[6], data[7], data[8], data[9]]);
    if found != shard {
        return Err(LogError::ShardMismatch {
            expected: shard,
            found,
        });
    }
    let mut live = BTreeMap::new();
    let mut next_gen = 1u64;
    let mut records = 0usize;
    let mut off = HEADER_LEN;
    loop {
        if off == data.len() {
            break;
        }
        let rest = &data[off..];
        if rest.len() < RECORD_OVERHEAD || &rest[..2] != RECORD_SYNC {
            break;
        }
        let gen = read_u64(&rest[2..]);
        let link = read_u64(&rest[10..]);
        let len = u32::from_le_bytes([rest[18], rest[19], rest[20], rest[21]]) as usize;
        if len > MAX_RECORD_PAYLOAD || rest.len() < RECORD_OVERHEAD + len {
            break;
        }
        let payload_end = 22 + len;
        let stored = read_u64(&rest[payload_end..]);
        let computed = crc64(&rest[2..payload_end]);
        if stored != computed {
            break;
        }
        live.insert(link, (gen, rest[22..payload_end].to_vec()));
        next_gen = next_gen.max(gen.saturating_add(1));
        records += 1;
        off += RECORD_OVERHEAD + len;
    }
    Ok(Scan {
        live,
        next_gen,
        records,
        torn_bytes: data.len() - off,
    })
}

/// A crash-recoverable per-shard checkpoint log.
#[derive(Debug)]
pub struct ShardLog<IO: LogIo> {
    io: IO,
    path: PathBuf,
    bak: PathBuf,
    shard: u32,
    next_gen: u64,
    live: BTreeMap<u64, (u64, Vec<u8>)>,
    compact_every: usize,
    appends_since_compact: usize,
}

fn sibling(path: &Path, suffix: &str) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(suffix);
    PathBuf::from(name)
}

impl<IO: LogIo> ShardLog<IO> {
    /// Opens (or creates) the shard log at `path`, recovering whatever
    /// state survives on disk. `compact_every` bounds log growth: after
    /// that many appends the log is rewritten to one latest record per
    /// link (`0` disables compaction).
    ///
    /// # Errors
    /// IO failures, or typed corruption errors when neither the primary
    /// nor the `.bak` rotation has a readable header.
    pub fn open(
        io: IO,
        path: impl Into<PathBuf>,
        shard: u32,
        compact_every: usize,
    ) -> Result<(Self, LogRecovery), LogError> {
        let path = path.into();
        let bak = sibling(&path, ".bak");
        let mut log = ShardLog {
            io,
            path,
            bak,
            shard,
            next_gen: 1,
            live: BTreeMap::new(),
            compact_every,
            appends_since_compact: 0,
        };
        let recovery = log.recover()?;
        Ok((log, recovery))
    }

    /// The primary log path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Latest surviving payload per link, in link order.
    pub fn live(&self) -> impl Iterator<Item = (u64, &[u8])> {
        self.live.iter().map(|(&link, (_, p))| (link, p.as_slice()))
    }

    /// Number of links with a live record.
    pub fn live_links(&self) -> usize {
        self.live.len()
    }

    /// Re-reads the on-disk state, discarding the in-memory image — the
    /// moral equivalent of a process restart. Torn tails are truncated
    /// (counted on `fleet.log.torn_tails_total`); an unreadable primary
    /// falls back to the `.bak` rotation (`fleet.log.bak_fallbacks_total`).
    ///
    /// # Errors
    /// IO failures, or the *primary's* typed corruption error when the
    /// `.bak` fallback is also unusable.
    pub fn recover(&mut self) -> Result<LogRecovery, LogError> {
        self.live.clear();
        self.next_gen = 1;
        self.appends_since_compact = 0;

        let primary_scan = if self.io.exists(&self.path) {
            let data = retry_io(|| self.io.read(&self.path))?;
            Some(scan(&data, self.shard))
        } else {
            None
        };

        let (chosen, used_bak) = match primary_scan {
            Some(Ok(s)) => (Some(s), false),
            // Primary unreadable at the header level (or missing): try
            // the previous-good rotation before giving up.
            Some(Err(primary_err)) => match self.recover_bak()? {
                Some(s) => (Some(s), true),
                None => return Err(primary_err),
            },
            None => match self.recover_bak()? {
                Some(s) => (Some(s), true),
                None => {
                    // Fresh log: durably write the header so appends have
                    // a valid file to extend.
                    retry_io(|| self.io.replace(&self.path, &header_bytes(self.shard)))?;
                    return Ok(LogRecovery {
                        records: 0,
                        torn_bytes: 0,
                        used_bak: false,
                    });
                }
            },
        };

        // `chosen` is always Some here; destructure without panicking.
        let Some(s) = chosen else {
            return Err(LogError::BadHeader("empty recovery state".to_string()));
        };
        self.live = s.live;
        self.next_gen = s.next_gen;
        if s.torn_bytes > 0 {
            mpdf_obs::counter!("fleet.log.torn_tails_total").inc();
        }
        if used_bak {
            mpdf_obs::counter!("fleet.log.bak_fallbacks_total").inc();
        }
        if s.torn_bytes > 0 || used_bak {
            // Rebuild the primary from the surviving records so appends
            // extend a clean file. The .bak rotation is left untouched:
            // it still holds the last known-good full image.
            self.rewrite_primary()?;
        }
        Ok(LogRecovery {
            records: s.records,
            torn_bytes: s.torn_bytes,
            used_bak,
        })
    }

    fn recover_bak(&mut self) -> Result<Option<Scan>, LogError> {
        if !self.io.exists(&self.bak) {
            return Ok(None);
        }
        let data = retry_io(|| self.io.read(&self.bak))?;
        match scan(&data, self.shard) {
            Ok(s) => Ok(Some(s)),
            Err(_) => Ok(None),
        }
    }

    fn serialize_live(&self) -> Vec<u8> {
        let mut bytes = header_bytes(self.shard);
        for (&link, (gen, payload)) in &self.live {
            frame_record(&mut bytes, *gen, link, payload);
        }
        bytes
    }

    fn rewrite_primary(&mut self) -> Result<(), LogError> {
        let bytes = self.serialize_live();
        retry_io(|| self.io.replace(&self.path, &bytes))?;
        Ok(())
    }

    /// Appends a record for `link`, durably. The payload becomes the
    /// link's live image; generation numbers increase monotonically.
    ///
    /// # Errors
    /// [`LogError::TooLarge`] for oversized payloads; IO errors after
    /// the transient-retry budget. On an IO error the in-memory image is
    /// *not* updated — the caller treats the shard as crashed and
    /// recovers from disk.
    pub fn append(&mut self, link: u64, payload: Vec<u8>) -> Result<(), LogError> {
        if payload.len() > MAX_RECORD_PAYLOAD {
            return Err(LogError::TooLarge { len: payload.len() });
        }
        let gen = self.next_gen;
        let mut rec = Vec::with_capacity(RECORD_OVERHEAD + payload.len());
        frame_record(&mut rec, gen, link, &payload);
        retry_io(|| self.io.append(&self.path, &rec))?;
        self.next_gen += 1;
        mpdf_obs::counter!("fleet.log.appends_total").inc();
        mpdf_obs::counter!("fleet.log.bytes_total").add(rec.len() as u64);
        self.live.insert(link, (gen, payload));
        self.appends_since_compact += 1;
        if self.compact_every > 0 && self.appends_since_compact >= self.compact_every {
            self.compact()?;
        }
        Ok(())
    }

    /// Rewrites the log to one latest record per link, rotating the
    /// previous file to `.bak` (the last-good-generation fallback).
    ///
    /// # Errors
    /// IO failures; a crash between the rotation and the rewrite leaves
    /// the `.bak` recoverable.
    pub fn compact(&mut self) -> Result<(), LogError> {
        let bytes = self.serialize_live();
        if self.io.exists(&self.path) {
            retry_io(|| self.io.rename(&self.path, &self.bak))?;
        }
        retry_io(|| self.io.replace(&self.path, &bytes))?;
        self.appends_since_compact = 0;
        mpdf_obs::counter!("fleet.log.compactions_total").inc();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mpdf_fleet_log_{}_{}", std::process::id(), tag));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn crc64_is_stable_and_sensitive() {
        let a = crc64(b"123456789");
        assert_eq!(a, crc64(b"123456789"), "deterministic");
        assert_ne!(a, crc64(b"123456780"), "sensitive to content");
        assert_ne!(crc64(b""), crc64(b"\0"), "length-extension guarded");
    }

    #[test]
    fn fresh_open_append_recover_roundtrip() {
        let dir = temp_dir("roundtrip");
        let path = dir.join("shard0.mpsl");
        let (mut log, rec) = ShardLog::open(StdIo, &path, 0, 0).unwrap();
        assert_eq!(
            rec,
            LogRecovery {
                records: 0,
                torn_bytes: 0,
                used_bak: false
            }
        );
        log.append(5, b"five-v1".to_vec()).unwrap();
        log.append(2, b"two-v1".to_vec()).unwrap();
        log.append(5, b"five-v2".to_vec()).unwrap();
        // Reopen: latest image per link, link order.
        let (log2, rec2) = ShardLog::open(StdIo, &path, 0, 0).unwrap();
        assert_eq!(
            rec2,
            LogRecovery {
                records: 3,
                torn_bytes: 0,
                used_bak: false
            }
        );
        let live: Vec<(u64, &[u8])> = log2.live().collect();
        assert_eq!(
            live,
            vec![(2, b"two-v1".as_slice()), (5, b"five-v2".as_slice())]
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_preserves_live_set_and_rotates_bak() {
        let dir = temp_dir("compact");
        let path = dir.join("shard1.mpsl");
        let (mut log, _) = ShardLog::open(StdIo, &path, 1, 4).unwrap();
        for round in 0u64..3 {
            for link in 0u64..4 {
                log.append(link, format!("l{link}r{round}").into_bytes())
                    .unwrap();
            }
        }
        // 12 appends with compact_every=4: several compactions ran.
        assert!(sibling(&path, ".bak").exists(), "compaction rotated a .bak");
        let (log2, rec) = ShardLog::open(StdIo, &path, 1, 0).unwrap();
        assert_eq!(log2.live_links(), 4);
        assert_eq!(rec.torn_bytes, 0);
        for (link, payload) in log2.live() {
            assert_eq!(
                payload,
                format!("l{link}r2").as_bytes(),
                "latest image wins"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_shard_and_version_are_typed_errors() {
        let dir = temp_dir("typed");
        let path = dir.join("shard7.mpsl");
        let (mut log, _) = ShardLog::open(StdIo, &path, 7, 0).unwrap();
        log.append(1, b"x".to_vec()).unwrap();
        assert!(matches!(
            ShardLog::open(StdIo, &path, 8, 0),
            Err(LogError::ShardMismatch {
                expected: 8,
                found: 7
            })
        ));
        let mut data = std::fs::read(&path).unwrap();
        data[4] = 0xFF;
        std::fs::write(&path, &data).unwrap();
        assert!(matches!(
            ShardLog::open(StdIo, &path, 7, 0),
            Err(LogError::UnsupportedVersion(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_payloads_roundtrip_and_errors_display() {
        let dir = temp_dir("edge");
        let path = dir.join("shard2.mpsl");
        let (mut log, _) = ShardLog::open(StdIo, &path, 2, 0).unwrap();
        log.append(9, Vec::new()).unwrap();
        let (log2, rec) = ShardLog::open(StdIo, &path, 2, 0).unwrap();
        assert_eq!(rec.records, 1);
        assert_eq!(log2.live().collect::<Vec<_>>(), vec![(9, &[][..])]);
        let err = LogError::TooLarge {
            len: MAX_RECORD_PAYLOAD + 1,
        };
        assert!(err.to_string().contains("cap"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
