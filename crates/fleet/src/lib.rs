//! # mpdf-fleet — sharded multi-link fleet supervisor
//!
//! The paper characterizes and adapts a single TX–RX link; a deployment
//! is a *network* of links whose receivers fail, drift and recover
//! independently (Patwari & Wilson). This crate runs many
//! [`SessionRuntime`](mpdf_session::SessionRuntime)s under one
//! supervisor, robustness-first:
//!
//! - **Sharding** — links are partitioned across [`shard::Shard`]s
//!   (slab-pooled per-link state, stepped in parallel through the
//!   `mpdf-par` pool). A shard is the failure and recovery domain.
//! - **Per-link fault containment** — a link whose step hard-errors,
//!   whose windows arrive mis-shaped, or that trips the fleet watchdog
//!   is quarantined with a typed [`link::LinkFault`] and deterministic
//!   exponential backoff; it never takes down its shard.
//! - **Crash-recoverable shard logs** — one append-only, CRC-framed,
//!   generation-numbered [`log::ShardLog`] per shard multiplexes all of
//!   its sessions (replacing file-per-session at fleet scale), with
//!   torn-tail truncation and `.bak` last-good-generation fallback.
//! - **Overload shedding** — bounded per-shard ingest with typed
//!   backpressure ([`shard::LinkOutcome::Shed`]); shedding is
//!   vacancy-biased so presence-positive links are shed last.
//! - **Deterministic chaos** — [`chaos`] provides seeded kill schedules
//!   and a fault-injecting [`log::LogIo`] shim; a killed-and-recovered
//!   fleet must produce bit-identical room-level fused verdicts to an
//!   uninterrupted run at any thread count (pinned by
//!   `tests/recovery_equivalence.rs` and `repro fleet --chaos`).
//!
//! Determinism is the load-bearing property throughout: every retry,
//! backoff, shed choice and recovery decision is a pure function of the
//! inputs and the seeds — no clocks, no unordered maps, no unseeded
//! randomness.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chaos;
pub mod fleet;
pub mod link;
pub mod log;
pub mod shard;
pub mod slab;

use std::error::Error;
use std::fmt;

pub use crate::fleet::{Fleet, LinkWindow, RecoveryReport, RoomVerdict, TickReport};
pub use crate::link::{LinkFault, LinkHealth, LinkMeta};
pub use crate::log::{LogError, LogIo, LogRecovery, ShardLog, StdIo};
pub use crate::shard::{LinkOutcome, LinkRecord, Shard, ShardTick};

use mpdf_session::CheckpointError;

/// Tunable supervision policy, shared by every shard of a fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetPolicy {
    /// Per-shard ingest budget: at most this many windows are delivered
    /// per tick, the rest are shed (vacancy-biased). `0` = unlimited.
    pub max_windows_per_tick: usize,
    /// Quarantine strikes after which a link is declared dead.
    pub max_strikes: u32,
    /// Quarantine backoff base, in ticks (doubled per strike).
    pub quarantine_base: u64,
    /// Quarantine backoff cap, in ticks.
    pub quarantine_cap: u64,
    /// Consecutive abstained windows before the fleet watchdog
    /// quarantines a link. `0` disables the fleet watchdog (the
    /// session-level watchdog still freezes the runtime).
    pub watchdog_ticks: u32,
}

impl Default for FleetPolicy {
    fn default() -> Self {
        FleetPolicy {
            max_windows_per_tick: 0,
            max_strikes: 3,
            quarantine_base: 2,
            quarantine_cap: 16,
            watchdog_ticks: 6,
        }
    }
}

impl FleetPolicy {
    /// Quarantine duration for the given strike count (1-based):
    /// exponential in the strike number, capped.
    pub fn backoff_ticks(&self, strikes: u32) -> u64 {
        let exp = strikes.saturating_sub(1).min(62);
        self.quarantine_base
            .saturating_mul(1u64 << exp)
            .min(self.quarantine_cap.max(self.quarantine_base))
    }
}

/// Errors surfaced by the fleet supervisor.
#[derive(Debug)]
pub enum FleetError {
    /// A fleet was configured with zero shards.
    NoShards,
    /// The policy is internally inconsistent (e.g. zero backoff base).
    InvalidPolicy(String),
    /// A window or replay referenced a link the fleet has never seen.
    UnknownLink(u64),
    /// A link id was registered twice.
    DuplicateLink(u64),
    /// A shard index outside the fleet was referenced.
    UnknownShard(u32),
    /// A recovery was requested on a shard that runs without a log.
    NoLog(u32),
    /// Shard-log failure (IO, framing, header).
    Log(LogError),
    /// A session snapshot in a recovered record failed to decode or
    /// validate.
    Checkpoint(CheckpointError),
    /// A recovered log is missing the snapshot for a registered link
    /// (the birth record guarantees one per registered link, so this is
    /// log/registry disagreement, not a normal state).
    MissingSnapshot(u64),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::NoShards => write!(f, "fleet needs at least one shard"),
            FleetError::InvalidPolicy(what) => write!(f, "invalid fleet policy: {what}"),
            FleetError::UnknownLink(link) => write!(f, "unknown link {link}"),
            FleetError::DuplicateLink(link) => write!(f, "link {link} registered twice"),
            FleetError::UnknownShard(shard) => write!(f, "unknown shard {shard}"),
            FleetError::NoLog(shard) => {
                write!(f, "shard {shard} has no log to recover from")
            }
            FleetError::Log(e) => write!(f, "shard log failure: {e}"),
            FleetError::Checkpoint(e) => write!(f, "recovered snapshot invalid: {e}"),
            FleetError::MissingSnapshot(link) => {
                write!(f, "recovered log has no snapshot for link {link}")
            }
        }
    }
}

impl Error for FleetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FleetError::Log(e) => Some(e),
            FleetError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LogError> for FleetError {
    fn from(e: LogError) -> Self {
        FleetError::Log(e)
    }
}

impl From<CheckpointError> for FleetError {
    fn from(e: CheckpointError) -> Self {
        FleetError::Checkpoint(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_exponential_and_capped() {
        let policy = FleetPolicy::default();
        assert_eq!(policy.backoff_ticks(1), 2);
        assert_eq!(policy.backoff_ticks(2), 4);
        assert_eq!(policy.backoff_ticks(3), 8);
        assert_eq!(policy.backoff_ticks(4), 16);
        assert_eq!(policy.backoff_ticks(5), 16, "capped");
        assert_eq!(policy.backoff_ticks(63), 16, "shift saturates safely");
        // A cap below the base still yields at least the base.
        let tight = FleetPolicy {
            quarantine_base: 4,
            quarantine_cap: 1,
            ..FleetPolicy::default()
        };
        assert_eq!(tight.backoff_ticks(1), 4);
    }

    #[test]
    fn errors_display_their_context() {
        let e = FleetError::UnknownLink(17);
        assert!(e.to_string().contains("17"));
        let e = FleetError::DuplicateLink(3);
        assert!(e.to_string().contains("3"));
        assert!(FleetError::NoShards.to_string().contains("shard"));
    }
}
