//! The fleet supervisor: routing, parallel stepping, room fusion and
//! shard recovery.
//!
//! The fleet owns the shards, a link→shard directory and the per-link
//! calibration constants needed to rebuild a session runtime from a
//! recovered snapshot (a snapshot stores the *mutable* state; scheme,
//! detector config and session config are fleet-side constants, exactly
//! as in the single-session checkpoint store).
//!
//! `step_tick` is deterministic at any thread count: windows are routed
//! by link id, shards are stepped independently (in parallel through
//! `mpdf_par::map_indexed_mut` when `threads > 1`), and the merged
//! records are sorted by link before fusion — so thread interleaving
//! can never reorder anything observable.

use std::collections::BTreeMap;
use std::path::Path;

use mpdf_core::profile::DetectorConfig;
use mpdf_core::scheme::DetectionScheme;
use mpdf_session::checkpoint::decode_snapshot;
use mpdf_session::{SessionConfig, SessionRuntime};
use mpdf_wifi::csi::CsiPacket;

use crate::log::{LogIo, ShardLog, StdIo};
use crate::shard::{LinkOutcome, LinkRecord, Shard};
use crate::{FleetError, FleetPolicy, LinkMeta};

/// One link's windowed CSI for one tick.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkWindow {
    /// Link id.
    pub link: u64,
    /// The window's packets.
    pub packets: Vec<CsiPacket>,
}

/// The immutable per-link constants a recovery needs to rebuild the
/// session runtime around a restored snapshot.
#[derive(Debug, Clone)]
struct LinkConstants<S: DetectionScheme + Clone> {
    scheme: S,
    detector: DetectorConfig,
    session: SessionConfig,
}

/// Fused room-level verdict for one tick: simple majority over the
/// links that produced a decision this tick.
#[derive(Debug, Clone, PartialEq)]
pub struct RoomVerdict {
    /// Room id.
    pub room: u32,
    /// Links that contributed any record this tick.
    pub links: u32,
    /// Links that produced a decision (not abstained/skipped/shed).
    pub scored: u32,
    /// Links whose decision was "presence detected".
    pub votes: u32,
    /// Majority fusion: more than half of the scored links detected.
    pub present: bool,
    /// Mean detection score over the scored links, `None` when nothing
    /// scored.
    pub mean_score: Option<f64>,
}

/// Everything one tick produced.
#[derive(Debug, Clone, PartialEq)]
pub struct TickReport {
    /// The tick that was stepped (pre-increment).
    pub tick: u64,
    /// Every link record, sorted by link id.
    pub records: Vec<LinkRecord>,
    /// Fused per-room verdicts, sorted by room id.
    pub rooms: Vec<RoomVerdict>,
    /// Shards whose log failed during this tick — recover them before
    /// the next tick.
    pub crashed_shards: Vec<u32>,
    /// Windows delivered fleet-wide.
    pub delivered: u32,
    /// Windows shed fleet-wide.
    pub shed: u32,
}

/// What recovering one shard restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The recovered shard.
    pub shard: u32,
    /// Links restored.
    pub links: usize,
    /// Valid log records scanned.
    pub records: usize,
    /// Torn-tail bytes truncated from the log.
    pub torn_bytes: usize,
    /// Whether recovery fell back to the `.bak` rotation.
    pub used_bak: bool,
    /// Restored per-link event counts — deliveries past these were lost
    /// and must be replayed from the driver's ledger.
    pub events: BTreeMap<u64, u64>,
}

/// A sharded fleet of supervised session runtimes.
#[derive(Debug)]
pub struct Fleet<S: DetectionScheme + Clone, IO: LogIo> {
    shards: Vec<Shard<S, IO>>,
    directory: BTreeMap<u64, u32>,
    constants: BTreeMap<u64, LinkConstants<S>>,
    policy: FleetPolicy,
    threads: usize,
    tick: u64,
}

impl<S: DetectionScheme + Clone> Fleet<S, StdIo> {
    /// Builds a fleet of `shards` in-memory shards (no logs — benchmarks
    /// and reference runs; recovery is unavailable).
    ///
    /// # Errors
    /// [`FleetError::NoShards`], [`FleetError::InvalidPolicy`].
    pub fn in_memory(
        shards: usize,
        policy: FleetPolicy,
        threads: usize,
    ) -> Result<Self, FleetError> {
        let shards = (0..shards as u32).map(|i| Shard::new(i, None)).collect();
        Fleet::new(shards, policy, threads)
    }

    /// Builds a fleet of `shards` logged shards, one
    /// `shard<i>.mpsl` log per shard under `dir`.
    ///
    /// # Errors
    /// [`FleetError::NoShards`], [`FleetError::InvalidPolicy`], log
    /// open failures.
    pub fn with_logs(
        dir: &Path,
        shards: usize,
        compact_every: usize,
        policy: FleetPolicy,
        threads: usize,
    ) -> Result<Self, FleetError> {
        let mut built = Vec::with_capacity(shards);
        for i in 0..shards as u32 {
            let path = dir.join(format!("shard{i}.mpsl"));
            let (log, _) = ShardLog::open(StdIo, path, i, compact_every)?;
            built.push(Shard::new(i, Some(log)));
        }
        Fleet::new(built, policy, threads)
    }
}

impl<S: DetectionScheme + Clone, IO: LogIo> Fleet<S, IO> {
    /// Builds a fleet from pre-constructed shards (the chaos harness
    /// uses this to wrap logs in a fault-injecting IO shim).
    ///
    /// # Errors
    /// [`FleetError::NoShards`], [`FleetError::InvalidPolicy`].
    pub fn new(
        shards: Vec<Shard<S, IO>>,
        policy: FleetPolicy,
        threads: usize,
    ) -> Result<Self, FleetError> {
        if shards.is_empty() {
            return Err(FleetError::NoShards);
        }
        if policy.max_strikes == 0 {
            return Err(FleetError::InvalidPolicy(
                "max_strikes must be at least 1".into(),
            ));
        }
        Ok(Fleet {
            shards,
            directory: BTreeMap::new(),
            constants: BTreeMap::new(),
            policy,
            threads: threads.max(1),
            tick: 0,
        })
    }

    /// The next tick to be stepped.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of registered links.
    pub fn links(&self) -> usize {
        self.directory.len()
    }

    /// The home shard of a link, by static hash routing.
    pub fn shard_of(&self, link: u64) -> u32 {
        (link % self.shards.len() as u64) as u32
    }

    /// The fleet-level metadata of a registered link.
    pub fn link_meta(&self, link: u64) -> Option<&LinkMeta> {
        let &shard = self.directory.get(&link)?;
        self.shards[shard as usize].link_meta(link)
    }

    /// Registers a calibrated runtime as link `link` reporting into
    /// `room`. The runtime's scheme and configs are captured as the
    /// link's recovery constants; a birth record is appended to the home
    /// shard's log.
    ///
    /// # Errors
    /// [`FleetError::DuplicateLink`]; log failures on the birth record.
    pub fn register(
        &mut self,
        link: u64,
        room: u32,
        runtime: SessionRuntime<S>,
    ) -> Result<(), FleetError> {
        if self.directory.contains_key(&link) {
            return Err(FleetError::DuplicateLink(link));
        }
        let shard = self.shard_of(link);
        self.constants.insert(
            link,
            LinkConstants {
                scheme: runtime.scheme().clone(),
                detector: runtime.detector().config().clone(),
                session: runtime.session_config().clone(),
            },
        );
        self.shards[shard as usize].register(link, room, runtime)?;
        self.directory.insert(link, shard);
        Ok(())
    }

    /// Steps the whole fleet one tick: routes `windows` to their home
    /// shards, steps every shard (in parallel when `threads > 1`),
    /// merges the records and fuses room verdicts.
    ///
    /// # Errors
    /// [`FleetError::UnknownLink`] if any window references an
    /// unregistered link (nothing is stepped in that case).
    pub fn step_tick(&mut self, windows: &[LinkWindow]) -> Result<TickReport, FleetError>
    where
        S: Send + Sync,
        IO: Send,
    {
        let _stage = mpdf_obs::stage!("fleet.tick");
        let mut routed: Vec<Vec<&LinkWindow>> = vec![Vec::new(); self.shards.len()];
        for w in windows {
            let Some(&shard) = self.directory.get(&w.link) else {
                return Err(FleetError::UnknownLink(w.link));
            };
            routed[shard as usize].push(w);
        }

        let tick = self.tick;
        let policy = &self.policy;
        let ticks = if self.threads <= 1 {
            self.shards
                .iter_mut()
                .enumerate()
                .map(|(i, s)| s.step_tick(tick, &routed[i], policy))
                .collect()
        } else {
            mpdf_par::map_indexed_mut(self.threads, &mut self.shards, |i, s| {
                s.step_tick(tick, &routed[i], policy)
            })
        };
        self.tick += 1;

        let mut records = Vec::with_capacity(windows.len());
        let mut crashed_shards = Vec::new();
        let mut delivered = 0u32;
        let mut shed = 0u32;
        for st in ticks {
            if st.crashed {
                crashed_shards.push(st.index);
            }
            delivered += st.delivered;
            shed += st.shed;
            records.extend(st.records);
        }
        records.sort_by_key(|r| r.link);
        let rooms = fuse_rooms(&records);

        let mut active = 0i64;
        let mut quarantined = 0i64;
        for shard in &self.shards {
            for (_, meta) in shard.link_metas() {
                match meta.health {
                    crate::LinkHealth::Healthy => active += 1,
                    crate::LinkHealth::Quarantined { .. } => quarantined += 1,
                    crate::LinkHealth::Dead { .. } => {}
                }
            }
        }
        mpdf_obs::gauge!("fleet.links_active").set(active);
        mpdf_obs::gauge!("fleet.links_quarantined").set(quarantined);

        Ok(TickReport {
            tick,
            records,
            rooms,
            crashed_shards,
            delivered,
            shed,
        })
    }

    /// Recovers one shard from its log: every link homed there is
    /// rebuilt from its latest durable record using the constants
    /// captured at registration. After recovery the driver replays the
    /// deliveries its ledger holds past each link's restored event
    /// count.
    ///
    /// # Errors
    /// [`FleetError::UnknownShard`], [`FleetError::NoLog`], log and
    /// snapshot failures, [`FleetError::MissingSnapshot`] if the log
    /// lacks a registered link's image.
    pub fn recover_shard(&mut self, shard: u32) -> Result<RecoveryReport, FleetError> {
        if shard as usize >= self.shards.len() {
            return Err(FleetError::UnknownShard(shard));
        }
        let constants = &self.constants;
        let rec = self.shards[shard as usize].recover(|link, snap| {
            let Some(c) = constants.get(&link) else {
                // A link in the log that was never registered this run:
                // restore it with nothing to go on is impossible.
                return Err(FleetError::MissingSnapshot(link));
            };
            let snapshot = decode_snapshot(snap, &c.detector)?;
            SessionRuntime::from_snapshot(
                snapshot,
                c.scheme.clone(),
                c.detector.clone(),
                c.session.clone(),
            )
            .map_err(|e| FleetError::Checkpoint(e.into()))
        })?;
        for (&link, &home) in &self.directory {
            if home == shard && !rec.events.contains_key(&link) {
                return Err(FleetError::MissingSnapshot(link));
            }
        }
        mpdf_obs::counter!("fleet.recoveries_total").inc();
        Ok(RecoveryReport {
            shard,
            links: rec.events.len(),
            records: rec.records,
            torn_bytes: rec.torn_bytes,
            used_bak: rec.used_bak,
            events: rec.events,
        })
    }

    /// Replays one delivery lost to a crash: delivers `packets` to
    /// `link` as if at `tick` (the original tick — health gates must see
    /// the same clock they saw the first time), bypassing shedding.
    ///
    /// # Errors
    /// [`FleetError::UnknownLink`].
    pub fn replay(
        &mut self,
        link: u64,
        tick: u64,
        packets: &[CsiPacket],
    ) -> Result<LinkRecord, FleetError> {
        let Some(&shard) = self.directory.get(&link) else {
            return Err(FleetError::UnknownLink(link));
        };
        let policy = self.policy.clone();
        let record = self.shards[shard as usize].deliver_one(tick, link, packets, &policy)?;
        mpdf_obs::counter!("fleet.replays_total").inc();
        Ok(record)
    }

    /// Whether a shard is marked crashed (log failure pending recovery).
    pub fn shard_crashed(&self, shard: u32) -> bool {
        self.shards
            .get(shard as usize)
            .is_some_and(Shard::is_crashed)
    }

    /// Evicts dead links from every shard, returning the count.
    pub fn evict_dead(&mut self) -> usize {
        self.shards.iter_mut().map(Shard::evict_dead).sum()
    }
}

/// Majority fusion of link records into room verdicts, room order.
fn fuse_rooms(records: &[LinkRecord]) -> Vec<RoomVerdict> {
    let mut acc: BTreeMap<u32, (u32, u32, u32, f64)> = BTreeMap::new();
    for r in records {
        let e = acc.entry(r.room).or_insert((0, 0, 0, 0.0));
        e.0 += 1;
        if let LinkOutcome::Decision {
            decision: Some(d), ..
        } = &r.outcome
        {
            e.1 += 1;
            e.3 += d.score;
            if d.detected {
                e.2 += 1;
            }
        }
    }
    acc.into_iter()
        .map(|(room, (links, scored, votes, score_sum))| RoomVerdict {
            room,
            links,
            scored,
            votes,
            present: scored > 0 && votes * 2 > scored,
            mean_score: (scored > 0).then(|| score_sum / f64::from(scored)),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::LinkOutcome;
    use mpdf_core::detector::Decision;

    fn decision(room: u32, link: u64, detected: bool, score: f64) -> LinkRecord {
        LinkRecord {
            link,
            room,
            events: 1,
            outcome: LinkOutcome::Decision {
                decision: Some(Decision {
                    score,
                    threshold: 1.0,
                    detected,
                    degraded: false,
                }),
                posterior: 0.5,
            },
        }
    }

    #[test]
    fn room_fusion_is_a_strict_majority_over_scored_links() {
        let records = vec![
            decision(1, 0, true, 3.0),
            decision(1, 1, true, 5.0),
            decision(1, 2, false, 0.5),
            LinkRecord {
                link: 3,
                room: 1,
                events: 0,
                outcome: LinkOutcome::DeadSkip,
            },
            decision(2, 4, false, 0.1),
            decision(2, 5, true, 2.0),
        ];
        let rooms = fuse_rooms(&records);
        assert_eq!(rooms.len(), 2);
        assert_eq!(rooms[0].room, 1);
        assert_eq!(rooms[0].links, 4, "skips still count as contributing links");
        assert_eq!(rooms[0].scored, 3);
        assert_eq!(rooms[0].votes, 2);
        assert!(rooms[0].present, "2 of 3 is a majority");
        let mean = rooms[0].mean_score.expect("scored");
        assert!((mean - (3.0 + 5.0 + 0.5) / 3.0).abs() < 1e-12);
        assert!(!rooms[1].present, "1 of 2 is a tie, not a majority");
    }

    #[test]
    fn empty_room_has_no_verdict_score() {
        let records = vec![LinkRecord {
            link: 9,
            room: 4,
            events: 2,
            outcome: LinkOutcome::QuarantineSkip { until_tick: 7 },
        }];
        let rooms = fuse_rooms(&records);
        assert_eq!(rooms.len(), 1);
        assert!(!rooms[0].present);
        assert_eq!(rooms[0].mean_score, None);
    }
}
