//! Slab-pooled storage for per-link state.
//!
//! A shard holds one slot per link. Links come and go (dead links are
//! evicted, recovered shards are rebuilt), so slots are pooled: freed
//! indices are reused LIFO instead of growing the backing vector
//! forever. Iteration is in slot-index order, which — together with the
//! deterministic insert/remove sequence every caller follows — keeps
//! slab traversal reproducible at any thread count.

/// A fixed-index pool of `T` with LIFO slot reuse.
#[derive(Debug, Clone)]
pub struct Slab<T> {
    entries: Vec<Option<T>>,
    free: Vec<usize>,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Slab::new()
    }
}

impl<T> Slab<T> {
    /// Creates an empty slab.
    pub fn new() -> Self {
        Slab {
            entries: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no slot is occupied.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a value, returning its slot index. Freed slots are reused
    /// most-recently-freed first; otherwise the slab grows by one.
    pub fn insert(&mut self, value: T) -> usize {
        self.len += 1;
        if let Some(slot) = self.free.pop() {
            self.entries[slot] = Some(value);
            slot
        } else {
            self.entries.push(Some(value));
            self.entries.len() - 1
        }
    }

    /// Removes and returns the value at `slot`, freeing the slot for
    /// reuse. Returns `None` when the slot is vacant or out of range.
    pub fn remove(&mut self, slot: usize) -> Option<T> {
        let value = self.entries.get_mut(slot)?.take()?;
        self.free.push(slot);
        self.len -= 1;
        Some(value)
    }

    /// Shared access to the value at `slot`.
    pub fn get(&self, slot: usize) -> Option<&T> {
        self.entries.get(slot)?.as_ref()
    }

    /// Exclusive access to the value at `slot`.
    pub fn get_mut(&mut self, slot: usize) -> Option<&mut T> {
        self.entries.get_mut(slot)?.as_mut()
    }

    /// Iterates occupied slots in index order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &T)> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.as_ref().map(|v| (i, v)))
    }

    /// Iterates occupied slots mutably, in index order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (usize, &mut T)> {
        self.entries
            .iter_mut()
            .enumerate()
            .filter_map(|(i, e)| e.as_mut().map(|v| (i, v)))
    }

    /// Drops every entry and forgets the free list.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.free.clear();
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        let c = slab.insert("c");
        assert_eq!((a, b, c), (0, 1, 2));
        assert_eq!(slab.len(), 3);
        assert_eq!(slab.get(b), Some(&"b"));
        assert_eq!(slab.remove(b), Some("b"));
        assert_eq!(slab.get(b), None);
        assert_eq!(slab.remove(b), None, "double remove is a no-op");
        assert_eq!(slab.len(), 2);
    }

    #[test]
    fn freed_slots_are_reused_lifo() {
        let mut slab = Slab::new();
        for i in 0..4 {
            slab.insert(i);
        }
        slab.remove(1);
        slab.remove(3);
        // Most recently freed first: 3, then 1, then growth.
        assert_eq!(slab.insert(30), 3);
        assert_eq!(slab.insert(10), 1);
        assert_eq!(slab.insert(40), 4);
    }

    #[test]
    fn iteration_is_in_index_order_and_skips_vacant() {
        let mut slab = Slab::new();
        for i in 0..5 {
            slab.insert(i * 10);
        }
        slab.remove(2);
        let seen: Vec<(usize, i32)> = slab.iter().map(|(i, &v)| (i, v)).collect();
        assert_eq!(seen, vec![(0, 0), (1, 10), (3, 30), (4, 40)]);
        for (i, v) in slab.iter_mut() {
            *v += i as i32;
        }
        assert_eq!(slab.get(4), Some(&44));
        assert!(!slab.is_empty());
        slab.clear();
        assert!(slab.is_empty());
        assert_eq!(slab.iter().count(), 0);
    }

    #[test]
    fn out_of_range_access_is_none() {
        let mut slab: Slab<u8> = Slab::new();
        assert_eq!(slab.get(99), None);
        assert_eq!(slab.get_mut(99), None);
        assert_eq!(slab.remove(99), None);
    }
}
