//! A shard: the fleet's unit of parallelism, failure and recovery.
//!
//! Each shard owns a slab of link slots (session runtime + fleet-level
//! [`LinkMeta`]) and, optionally, one [`ShardLog`] multiplexing every
//! session's checkpoints. Ticks are processed link-by-link in input
//! order; all cross-link interaction (shedding) is a deterministic
//! function of the shard's state at the start of the tick, so a shard
//! stepped serially and one stepped on a pool thread produce identical
//! records.
//!
//! ## Crash semantics
//!
//! A log-append failure marks the shard *crashed* for the rest of the
//! tick: the in-memory stepping completes (the tick's records were
//! already computed and handed downstream — exactly what a process
//! crash during the final flush looks like from the outside), further
//! appends are skipped, and the caller recovers the shard from its log
//! before the next tick. Recovery rebuilds every link from the latest
//! durable record; the events counter in each record tells the driver
//! which deliveries were lost and must be replayed.

use std::collections::BTreeMap;

use mpdf_core::detector::Decision;
use mpdf_core::scheme::DetectionScheme;
use mpdf_session::checkpoint::encode_snapshot;
use mpdf_session::SessionRuntime;
use mpdf_wifi::csi::CsiPacket;

use crate::link::{LinkFault, LinkHealth, LinkMeta};
use crate::log::{LogIo, ShardLog};
use crate::slab::Slab;
use crate::{FleetError, FleetPolicy};

/// One link's pooled state.
#[derive(Debug)]
pub struct LinkSlot<S: DetectionScheme + Clone> {
    /// Link id.
    pub link: u64,
    /// Fleet-level metadata (health, streaks, event count).
    pub meta: LinkMeta,
    /// The supervised session runtime.
    pub runtime: SessionRuntime<S>,
}

/// The outcome of one window (or skip) for one link in one tick.
#[derive(Debug, Clone, PartialEq)]
pub enum LinkOutcome {
    /// The window was delivered and stepped; `decision` is `None` when
    /// the session abstained.
    Decision {
        /// The session's decision for this window.
        decision: Option<Decision>,
        /// HMM posterior after the window.
        posterior: f64,
    },
    /// The delivery faulted; the link moved through the health machine.
    Fault {
        /// Typed triage.
        fault: LinkFault,
        /// Health after applying the fault.
        health: LinkHealth,
    },
    /// Overload shedding dropped the window (typed backpressure — the
    /// link's state is untouched).
    Shed {
        /// The link's posterior at shed time (what the vacancy bias
        /// sorted on).
        posterior: f64,
    },
    /// The link is quarantined; the window was skipped without touching
    /// its state.
    QuarantineSkip {
        /// First tick at which a probe will be delivered.
        until_tick: u64,
    },
    /// The link is dead; the window was skipped.
    DeadSkip,
}

/// One link's record within a tick report.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkRecord {
    /// Link id.
    pub link: u64,
    /// Room the link reports into.
    pub room: u32,
    /// The link's event count *after* this tick (unchanged for skips
    /// and sheds — only deliveries are events).
    pub events: u64,
    /// What happened.
    pub outcome: LinkOutcome,
}

/// A shard's slice of one tick.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardTick {
    /// Shard index.
    pub index: u32,
    /// Per-link records, in input order.
    pub records: Vec<LinkRecord>,
    /// The shard's log failed mid-tick: in-memory results are complete
    /// and correct, durable state is stale — recover before the next
    /// tick.
    pub crashed: bool,
    /// Windows delivered (stepped or faulted).
    pub delivered: u32,
    /// Windows shed.
    pub shed: u32,
}

/// What a shard recovery restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRecovery {
    /// Valid records scanned from the log.
    pub records: usize,
    /// Torn-tail bytes truncated.
    pub torn_bytes: usize,
    /// Whether the `.bak` rotation was used.
    pub used_bak: bool,
    /// Restored per-link event counts — the driver replays deliveries
    /// past these.
    pub events: BTreeMap<u64, u64>,
}

/// A shard of the fleet.
#[derive(Debug)]
pub struct Shard<S: DetectionScheme + Clone, IO: LogIo> {
    index: u32,
    slab: Slab<LinkSlot<S>>,
    by_link: BTreeMap<u64, usize>,
    log: Option<ShardLog<IO>>,
    crashed: bool,
}

fn log_payload<S: DetectionScheme + Clone>(slot: &LinkSlot<S>) -> Option<Vec<u8>> {
    let snap = encode_snapshot(&slot.runtime.snapshot()).ok()?;
    let mut payload = Vec::with_capacity(LinkMeta::ENCODED_LEN + snap.len());
    slot.meta.encode(&mut payload);
    payload.extend_from_slice(&snap);
    Some(payload)
}

impl<S: DetectionScheme + Clone, IO: LogIo> Shard<S, IO> {
    /// Creates a shard. `log` is `None` for purely in-memory fleets
    /// (benchmarks, tests); such shards cannot be recovered.
    pub fn new(index: u32, log: Option<ShardLog<IO>>) -> Self {
        Shard {
            index,
            slab: Slab::new(),
            by_link: BTreeMap::new(),
            log,
            crashed: false,
        }
    }

    /// Shard index.
    pub fn index(&self) -> u32 {
        self.index
    }

    /// Number of links homed on this shard.
    pub fn links(&self) -> usize {
        self.slab.len()
    }

    /// Whether the shard's log failed and a recovery is pending.
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// The metadata of a link homed here.
    pub fn link_meta(&self, link: u64) -> Option<&LinkMeta> {
        let &slot = self.by_link.get(&link)?;
        self.slab.get(slot).map(|s| &s.meta)
    }

    /// Iterates `(link, meta)` in link order.
    pub fn link_metas(&self) -> impl Iterator<Item = (u64, &LinkMeta)> {
        self.by_link
            .iter()
            .filter_map(|(&link, &slot)| self.slab.get(slot).map(|s| (link, &s.meta)))
    }

    /// Registers a link on this shard. Writes the *birth record* — the
    /// link's initial snapshot — so a recovery always finds an image for
    /// every registered link, even one that never stepped.
    ///
    /// # Errors
    /// [`FleetError::DuplicateLink`]; log failures on the birth append.
    pub fn register(
        &mut self,
        link: u64,
        room: u32,
        runtime: SessionRuntime<S>,
    ) -> Result<(), FleetError> {
        if self.by_link.contains_key(&link) {
            return Err(FleetError::DuplicateLink(link));
        }
        let slot = self.slab.insert(LinkSlot {
            link,
            meta: LinkMeta::new(room),
            runtime,
        });
        self.by_link.insert(link, slot);
        if self.log.is_some() {
            // The borrow of the slot ends before the log append.
            let payload = self.slab.get(slot).and_then(log_payload);
            let Some(payload) = payload else {
                return Err(FleetError::MissingSnapshot(link));
            };
            if let Some(log) = self.log.as_mut() {
                log.append(link, payload)?;
            }
        }
        Ok(())
    }

    /// Evicts every dead link, freeing its slab slot (and memory).
    /// Evicted links stay in the log; a recovery restores them still
    /// dead. Returns the number evicted.
    pub fn evict_dead(&mut self) -> usize {
        let dead: Vec<u64> = self
            .by_link
            .iter()
            .filter(|(_, &slot)| {
                matches!(
                    self.slab.get(slot).map(|s| s.meta.health),
                    Some(LinkHealth::Dead { .. })
                )
            })
            .map(|(&link, _)| link)
            .collect();
        for link in &dead {
            if let Some(slot) = self.by_link.remove(link) {
                self.slab.remove(slot);
            }
        }
        dead.len()
    }

    /// Processes one tick: vacancy-biased shedding against the ingest
    /// budget, then per-link delivery in input order, appending a
    /// durable record per delivery. Windows for links not homed on this
    /// shard are ignored (the fleet validates routing before calling).
    pub fn step_tick(
        &mut self,
        tick: u64,
        windows: &[&crate::fleet::LinkWindow],
        policy: &FleetPolicy,
    ) -> ShardTick {
        let mut shed_records: Vec<Option<LinkRecord>> = vec![None; windows.len()];
        if policy.max_windows_per_tick > 0 {
            // Admission control over the windows that would actually be
            // delivered (skips don't consume budget). Sort key: vacant
            // links first, lowest posterior first, link id as the tie
            // break — presence-positive links are shed last.
            let mut candidates: Vec<(bool, f64, u64, usize, u32)> = Vec::new();
            for (idx, w) in windows.iter().enumerate() {
                let Some(&slot) = self.by_link.get(&w.link) else {
                    continue;
                };
                let Some(s) = self.slab.get(slot) else {
                    continue;
                };
                let deliverable = match s.meta.health {
                    LinkHealth::Healthy => true,
                    LinkHealth::Quarantined { until_tick, .. } => tick >= until_tick,
                    LinkHealth::Dead { .. } => false,
                };
                if deliverable {
                    let posterior = s.runtime.posterior();
                    let presence = posterior >= s.runtime.session_config().vacancy_eps;
                    candidates.push((presence, posterior, w.link, idx, s.meta.room));
                }
            }
            if candidates.len() > policy.max_windows_per_tick {
                let over = candidates.len() - policy.max_windows_per_tick;
                candidates
                    .sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)).then(a.2.cmp(&b.2)));
                for &(presence, posterior, link, idx, room) in candidates.iter().take(over) {
                    let events = self.link_meta(link).map_or(0, |m| m.events);
                    shed_records[idx] = Some(LinkRecord {
                        link,
                        room,
                        events,
                        outcome: LinkOutcome::Shed { posterior },
                    });
                    mpdf_obs::counter!("fleet.sheds_total").inc();
                    if presence {
                        mpdf_obs::counter!("fleet.sheds_presence_total").inc();
                    }
                }
            }
        }

        let mut records = Vec::with_capacity(windows.len());
        let mut delivered = 0u32;
        let mut shed = 0u32;
        for (idx, w) in windows.iter().enumerate() {
            if let Some(rec) = shed_records[idx].take() {
                shed += 1;
                records.push(rec);
                continue;
            }
            if let Some(rec) = self.deliver_inner(tick, w.link, &w.packets, policy) {
                if matches!(
                    rec.outcome,
                    LinkOutcome::Decision { .. } | LinkOutcome::Fault { .. }
                ) {
                    delivered += 1;
                }
                records.push(rec);
            }
        }
        ShardTick {
            index: self.index,
            records,
            crashed: self.crashed,
            delivered,
            shed,
        }
    }

    /// Delivers one window to one link, bypassing shedding — the replay
    /// entry point. `tick` must be the tick the window originally
    /// belonged to so the health gate reproduces the original decision.
    ///
    /// # Errors
    /// [`FleetError::UnknownLink`] for links not homed here.
    pub fn deliver_one(
        &mut self,
        tick: u64,
        link: u64,
        packets: &[CsiPacket],
        policy: &FleetPolicy,
    ) -> Result<LinkRecord, FleetError> {
        self.deliver_inner(tick, link, packets, policy)
            .ok_or(FleetError::UnknownLink(link))
    }

    fn deliver_inner(
        &mut self,
        tick: u64,
        link: u64,
        packets: &[CsiPacket],
        policy: &FleetPolicy,
    ) -> Option<LinkRecord> {
        let &slot_idx = self.by_link.get(&link)?;
        let slot = self.slab.get_mut(slot_idx)?;
        let room = slot.meta.room;

        // Health gate: skips touch nothing (and are not events).
        match slot.meta.health {
            LinkHealth::Dead { .. } => {
                return Some(LinkRecord {
                    link,
                    room,
                    events: slot.meta.events,
                    outcome: LinkOutcome::DeadSkip,
                });
            }
            LinkHealth::Quarantined { until_tick, .. } if tick < until_tick => {
                return Some(LinkRecord {
                    link,
                    room,
                    events: slot.meta.events,
                    outcome: LinkOutcome::QuarantineSkip { until_tick },
                });
            }
            _ => {}
        }
        let probing = matches!(slot.meta.health, LinkHealth::Quarantined { .. });

        // From here on the window is delivered: exactly one event.
        slot.meta.events += 1;

        // Shape gate: mis-shaped packets are a fault, rejected before
        // they can reach (and poison) the runtime.
        let profile = slot.runtime.detector().profile();
        let want = (profile.antennas(), profile.subcarriers());
        let bad_shape = packets
            .iter()
            .find(|p| (p.antennas(), p.subcarriers()) != want)
            .map(|p| (p.antennas(), p.subcarriers()));
        let outcome = if let Some(got) = bad_shape {
            let fault = LinkFault::Shape { got, want };
            let health = apply_fault(&mut slot.meta, tick, policy);
            LinkOutcome::Fault { fault, health }
        } else {
            let step = {
                let _stage = mpdf_obs::stage!("fleet.step");
                slot.runtime.step(packets)
            };
            mpdf_obs::counter!("fleet.steps_total").inc();
            match step {
                Ok(sd) => {
                    if sd.decision.is_some() {
                        slot.meta.abstain_streak = 0;
                    } else {
                        slot.meta.abstain_streak += 1;
                    }
                    if probing {
                        slot.meta.health = LinkHealth::Healthy;
                        mpdf_obs::counter!("fleet.quarantine_releases_total").inc();
                    }
                    if policy.watchdog_ticks > 0
                        && slot.meta.abstain_streak >= policy.watchdog_ticks
                    {
                        let fault = LinkFault::Watchdog {
                            streak: slot.meta.abstain_streak,
                        };
                        let health = apply_fault(&mut slot.meta, tick, policy);
                        LinkOutcome::Fault { fault, health }
                    } else {
                        LinkOutcome::Decision {
                            decision: sd.decision,
                            posterior: sd.posterior,
                        }
                    }
                }
                Err(e) => {
                    let fault = LinkFault::Step(e.to_string());
                    let health = apply_fault(&mut slot.meta, tick, policy);
                    LinkOutcome::Fault { fault, health }
                }
            }
        };

        let record = LinkRecord {
            link,
            room,
            events: slot.meta.events,
            outcome,
        };
        self.append_slot(slot_idx, link);
        Some(record)
    }

    /// Appends the slot's current image to the log; a failure marks the
    /// shard crashed (in-memory state stays authoritative for the tick,
    /// durable state goes stale until recovery).
    fn append_slot(&mut self, slot_idx: usize, link: u64) {
        if self.crashed || self.log.is_none() {
            return;
        }
        let payload = self.slab.get(slot_idx).and_then(log_payload);
        let Some(log) = self.log.as_mut() else {
            return;
        };
        match payload {
            Some(payload) => {
                if log.append(link, payload).is_err() {
                    self.crashed = true;
                    mpdf_obs::counter!("fleet.shard_crashes_total").inc();
                }
            }
            None => {
                self.crashed = true;
                mpdf_obs::counter!("fleet.shard_crashes_total").inc();
            }
        }
    }

    /// Rebuilds the shard from its log — the in-memory slab is discarded
    /// and every link restored from its latest durable record. `restore`
    /// turns a snapshot image back into a runtime (the fleet supplies
    /// the per-link calibration constants).
    ///
    /// # Errors
    /// [`FleetError::NoLog`] for in-memory shards; log and snapshot
    /// decode failures.
    pub fn recover<F>(&mut self, mut restore: F) -> Result<ShardRecovery, FleetError>
    where
        F: FnMut(u64, &[u8]) -> Result<SessionRuntime<S>, FleetError>,
    {
        let Some(log) = self.log.as_mut() else {
            return Err(FleetError::NoLog(self.index));
        };
        let rec = log.recover()?;
        let mut entries: Vec<(u64, LinkMeta, SessionRuntime<S>)> = Vec::new();
        let mut events = BTreeMap::new();
        for (link, payload) in log.live() {
            let Some((meta, snap)) = LinkMeta::decode(payload) else {
                return Err(FleetError::Checkpoint(
                    mpdf_session::CheckpointError::Corrupt(format!(
                        "link {link} meta prefix truncated"
                    )),
                ));
            };
            let runtime = restore(link, snap)?;
            events.insert(link, meta.events);
            entries.push((link, meta, runtime));
        }
        self.slab.clear();
        self.by_link.clear();
        for (link, meta, runtime) in entries {
            let slot = self.slab.insert(LinkSlot {
                link,
                meta,
                runtime,
            });
            self.by_link.insert(link, slot);
        }
        self.crashed = false;
        Ok(ShardRecovery {
            records: rec.records,
            torn_bytes: rec.torn_bytes,
            used_bak: rec.used_bak,
            events,
        })
    }
}

/// Moves a link through the health machine on a fault: strike, then
/// quarantine with exponential backoff, then death past the budget.
fn apply_fault(meta: &mut LinkMeta, tick: u64, policy: &FleetPolicy) -> LinkHealth {
    let strikes = match meta.health {
        LinkHealth::Healthy => 1,
        LinkHealth::Quarantined { strikes, .. } | LinkHealth::Dead { strikes } => {
            strikes.saturating_add(1)
        }
    };
    meta.abstain_streak = 0;
    meta.health = if strikes > policy.max_strikes {
        mpdf_obs::counter!("fleet.links_dead_total").inc();
        LinkHealth::Dead { strikes }
    } else {
        mpdf_obs::counter!("fleet.quarantines_total").inc();
        LinkHealth::Quarantined {
            until_tick: tick + 1 + policy.backoff_ticks(strikes),
            strikes,
        }
    };
    meta.health
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_escalation_walks_quarantine_into_death() {
        let policy = FleetPolicy {
            max_strikes: 2,
            quarantine_base: 2,
            quarantine_cap: 8,
            ..FleetPolicy::default()
        };
        let mut meta = LinkMeta::new(1);
        let h1 = apply_fault(&mut meta, 10, &policy);
        assert_eq!(
            h1,
            LinkHealth::Quarantined {
                until_tick: 13,
                strikes: 1
            }
        );
        let h2 = apply_fault(&mut meta, 13, &policy);
        assert_eq!(
            h2,
            LinkHealth::Quarantined {
                until_tick: 18,
                strikes: 2
            }
        );
        let h3 = apply_fault(&mut meta, 18, &policy);
        assert_eq!(h3, LinkHealth::Dead { strikes: 3 });
        // Death is terminal even under further faults.
        assert_eq!(
            apply_fault(&mut meta, 30, &policy),
            LinkHealth::Dead { strikes: 4 }
        );
    }

    #[test]
    fn fault_resets_the_abstain_streak() {
        let mut meta = LinkMeta::new(0);
        meta.abstain_streak = 5;
        apply_fault(&mut meta, 0, &FleetPolicy::default());
        assert_eq!(meta.abstain_streak, 0);
    }
}
