//! Per-link fault taxonomy, health state machine and log metadata.
//!
//! Fault containment is per link: a fault moves exactly one link through
//! the health machine and never touches its shard. The machine is
//!
//! ```text
//! Healthy --fault--> Quarantined{until, strikes}
//! Quarantined (tick < until)  : deliveries are skipped (no event)
//! Quarantined (tick >= until) : next delivery is a probe
//!     probe Ok    --> Healthy            (release)
//!     probe fault --> Quarantined        (strikes+1, longer backoff)
//!     strikes > max_strikes --> Dead     (terminal; slot evictable)
//! ```
//!
//! Backoff is exponential in the strike count and deterministic in tick
//! units — no wall clock anywhere, so a replayed fleet walks the exact
//! same transitions.

use std::fmt;

/// Typed triage for a link fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkFault {
    /// The session step returned a hard pipeline error.
    Step(String),
    /// A delivered window's packets do not match the link's calibrated
    /// `(antennas, subcarriers)` shape — rejected before they can reach
    /// (and poison) the runtime.
    Shape {
        /// Shape of the offending packet.
        got: (usize, usize),
        /// Shape the link was calibrated with.
        want: (usize, usize),
    },
    /// The fleet watchdog tripped: too many consecutive abstained
    /// windows.
    Watchdog {
        /// Length of the abstain streak that tripped the watchdog.
        streak: u32,
    },
}

impl fmt::Display for LinkFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkFault::Step(e) => write!(f, "step error: {e}"),
            LinkFault::Shape { got, want } => write!(
                f,
                "window shape {}x{} does not match calibration {}x{}",
                got.0, got.1, want.0, want.1
            ),
            LinkFault::Watchdog { streak } => {
                write!(f, "watchdog: {streak} consecutive abstains")
            }
        }
    }
}

/// A link's position in the fault-containment state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkHealth {
    /// Deliveries flow normally.
    Healthy,
    /// Deliveries are skipped until `until_tick`; the first delivery at
    /// or after it is a probe.
    Quarantined {
        /// First tick at which a probe delivery is allowed.
        until_tick: u64,
        /// Faults accumulated without an intervening release.
        strikes: u32,
    },
    /// Terminal: the link exceeded its strike budget.
    Dead {
        /// Strike count at death.
        strikes: u32,
    },
}

impl LinkHealth {
    fn tag(self) -> u8 {
        match self {
            LinkHealth::Healthy => 0,
            LinkHealth::Quarantined { .. } => 1,
            LinkHealth::Dead { .. } => 2,
        }
    }

    fn strikes(self) -> u32 {
        match self {
            LinkHealth::Healthy => 0,
            LinkHealth::Quarantined { strikes, .. } | LinkHealth::Dead { strikes } => strikes,
        }
    }

    fn until(self) -> u64 {
        match self {
            LinkHealth::Quarantined { until_tick, .. } => until_tick,
            LinkHealth::Healthy | LinkHealth::Dead { .. } => 0,
        }
    }
}

/// Fleet-level per-link state, checkpointed alongside the session
/// snapshot in every shard-log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkMeta {
    /// Room this link contributes its verdicts to.
    pub room: u32,
    /// Health-machine position.
    pub health: LinkHealth,
    /// Consecutive abstained windows (fleet watchdog input).
    pub abstain_streak: u32,
    /// Count of state-mutating events (delivered windows) this link has
    /// processed. The recovery ledger replays deliveries past this
    /// count, which is exactly what makes a crashed fleet converge to
    /// the uninterrupted run.
    pub events: u64,
}

impl LinkMeta {
    /// Fresh metadata for a just-registered link.
    pub fn new(room: u32) -> Self {
        LinkMeta {
            room,
            health: LinkHealth::Healthy,
            abstain_streak: 0,
            events: 0,
        }
    }

    /// Encoded size in bytes (fixed).
    pub const ENCODED_LEN: usize = 4 + 1 + 4 + 8 + 4 + 8;

    /// Appends the little-endian encoding to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.room.to_le_bytes());
        out.push(self.health.tag());
        out.extend_from_slice(&self.health.strikes().to_le_bytes());
        out.extend_from_slice(&self.health.until().to_le_bytes());
        out.extend_from_slice(&self.abstain_streak.to_le_bytes());
        out.extend_from_slice(&self.events.to_le_bytes());
    }

    /// Decodes a meta prefix, returning it and the remaining bytes (the
    /// session snapshot image). `None` on truncation or an unknown
    /// health tag.
    pub fn decode(data: &[u8]) -> Option<(LinkMeta, &[u8])> {
        if data.len() < Self::ENCODED_LEN {
            return None;
        }
        let room = u32::from_le_bytes(data[0..4].try_into().ok()?);
        let tag = data[4];
        let strikes = u32::from_le_bytes(data[5..9].try_into().ok()?);
        let until_tick = u64::from_le_bytes(data[9..17].try_into().ok()?);
        let abstain_streak = u32::from_le_bytes(data[17..21].try_into().ok()?);
        let events = u64::from_le_bytes(data[21..29].try_into().ok()?);
        let health = match tag {
            0 => LinkHealth::Healthy,
            1 => LinkHealth::Quarantined {
                until_tick,
                strikes,
            },
            2 => LinkHealth::Dead { strikes },
            _ => return None,
        };
        Some((
            LinkMeta {
                room,
                health,
                abstain_streak,
                events,
            },
            &data[Self::ENCODED_LEN..],
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_roundtrips_through_every_health_state() {
        for health in [
            LinkHealth::Healthy,
            LinkHealth::Quarantined {
                until_tick: 99,
                strikes: 2,
            },
            LinkHealth::Dead { strikes: 4 },
        ] {
            let meta = LinkMeta {
                room: 7,
                health,
                abstain_streak: 3,
                events: 1234,
            };
            let mut buf = Vec::new();
            meta.encode(&mut buf);
            assert_eq!(buf.len(), LinkMeta::ENCODED_LEN);
            // Trailing bytes (the snapshot image) are handed back.
            buf.extend_from_slice(b"snapshot");
            let (decoded, rest) = LinkMeta::decode(&buf).expect("decodes");
            assert_eq!(decoded, meta);
            assert_eq!(rest, b"snapshot");
        }
    }

    #[test]
    fn truncated_or_unknown_tag_is_rejected() {
        let meta = LinkMeta::new(1);
        let mut buf = Vec::new();
        meta.encode(&mut buf);
        for cut in 0..buf.len() {
            assert!(LinkMeta::decode(&buf[..cut]).is_none(), "cut {cut}");
        }
        buf[4] = 9;
        assert!(LinkMeta::decode(&buf).is_none(), "unknown health tag");
    }

    #[test]
    fn faults_display_their_triage() {
        assert!(LinkFault::Step("boom".into()).to_string().contains("boom"));
        let shape = LinkFault::Shape {
            got: (2, 30),
            want: (3, 30),
        };
        assert!(shape.to_string().contains("2x30"));
        assert!(LinkFault::Watchdog { streak: 6 }.to_string().contains('6'));
    }
}
