//! Deterministic chaos: seeded kill schedules and a fault-injecting
//! [`LogIo`] shim.
//!
//! Everything here is a pure function of the seed and the operation
//! count — no clocks, no global RNG — so a chaos run replays
//! identically at any thread count, which is what lets the recovery
//! equivalence tests demand *bit-identical* fused verdicts between a
//! chaos'd fleet and an uninterrupted one.

use crate::log::LogIo;
use std::path::Path;

/// SplitMix64-style mixer: a deterministic pseudo-random word from a
/// seed and two lane values.
fn mix(seed: u64, a: u64, b: u64) -> u64 {
    let mut z = seed
        .wrapping_add(a.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(b.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded schedule of shard kills: at the start of each listed tick,
/// the driver drops the shard's in-memory state and recovers it from
/// its log before stepping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosPlan {
    /// `(tick, shard)` kill points, sorted by tick.
    pub kills: Vec<(u64, u32)>,
}

impl ChaosPlan {
    /// Derives `kills` kill points over `ticks` ticks and `shards`
    /// shards from the seed. Tick 0 is never chosen (there is nothing
    /// to recover yet) and at most one kill lands per tick.
    pub fn seeded(seed: u64, shards: u32, ticks: u64, kills: usize) -> Self {
        let mut chosen: Vec<(u64, u32)> = Vec::new();
        let mut n = 0u64;
        while chosen.len() < kills && n < kills as u64 * 64 {
            n += 1;
            if ticks <= 1 || shards == 0 {
                break;
            }
            let tick = 1 + mix(seed, n, 0x17) % (ticks - 1);
            if chosen.iter().any(|&(t, _)| t == tick) {
                continue;
            }
            let shard = (mix(seed, n, 0x29) % u64::from(shards)) as u32;
            chosen.push((tick, shard));
        }
        chosen.sort_unstable();
        ChaosPlan { kills: chosen }
    }

    /// The shards scheduled to be killed at the start of `tick`.
    pub fn kills_at(&self, tick: u64) -> impl Iterator<Item = u32> + '_ {
        self.kills
            .iter()
            .filter(move |&&(t, _)| t == tick)
            .map(|&(_, s)| s)
    }
}

/// What IO faults to inject, derived from a seed and per-operation
/// counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Mixing seed.
    pub seed: u64,
    /// Roughly one in this many appends fails with a *transient*
    /// `Interrupted` (exercising the bounded retry). `0` = never.
    pub transient_period: u64,
    /// Roughly one in this many appends is *torn*: a strict prefix of
    /// the frame reaches the file and the append reports failure
    /// (exercising torn-tail truncation and crash recovery). `0` =
    /// never.
    pub torn_period: u64,
    /// The first this-many appends always succeed — a grace window so a
    /// driver can write its birth records before the chaos starts.
    pub grace_appends: u64,
}

impl FaultPlan {
    /// A plan that never faults (pass-through shim).
    pub fn quiet(seed: u64) -> Self {
        FaultPlan {
            seed,
            transient_period: 0,
            torn_period: 0,
            grace_appends: 0,
        }
    }
}

/// A [`LogIo`] decorator that injects seeded faults into appends.
/// Reads, replaces and renames pass through untouched: the interesting
/// crash surface is the hot append path; rewrites already go through
/// the checkpoint-style staged rename.
#[derive(Debug)]
pub struct FaultIo<IO: LogIo> {
    inner: IO,
    plan: FaultPlan,
    appends: u64,
}

impl<IO: LogIo> FaultIo<IO> {
    /// Wraps `inner` with the given fault plan.
    pub fn new(inner: IO, plan: FaultPlan) -> Self {
        FaultIo {
            inner,
            plan,
            appends: 0,
        }
    }

    /// Appends attempted so far (including faulted ones).
    pub fn appends(&self) -> u64 {
        self.appends
    }
}

impl<IO: LogIo> LogIo for FaultIo<IO> {
    fn read(&mut self, path: &Path) -> std::io::Result<Vec<u8>> {
        self.inner.read(path)
    }

    fn append(&mut self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        self.appends += 1;
        let n = self.appends;
        let plan = self.plan;
        if n <= plan.grace_appends {
            return self.inner.append(path, bytes);
        }
        if plan.torn_period > 0
            && mix(plan.seed, n, 0xB).is_multiple_of(plan.torn_period)
            && bytes.len() > 1
        {
            // Torn write: a strict, non-empty prefix lands on disk and
            // the operation still reports failure — the classic
            // power-cut-mid-flush shape the log's scanner must absorb.
            let cut = 1 + (mix(plan.seed, n, 0xC) as usize % (bytes.len() - 1));
            self.inner.append(path, &bytes[..cut])?;
            return Err(std::io::Error::other("injected torn append"));
        }
        if plan.transient_period > 0 && mix(plan.seed, n, 0xA).is_multiple_of(plan.transient_period)
        {
            return Err(std::io::Error::from(std::io::ErrorKind::Interrupted));
        }
        self.inner.append(path, bytes)
    }

    fn replace(&mut self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        self.inner.replace(path, bytes)
    }

    fn rename(&mut self, from: &Path, to: &Path) -> std::io::Result<()> {
        self.inner.rename(from, to)
    }

    fn exists(&mut self, path: &Path) -> bool {
        self.inner.exists(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    /// Minimal in-memory LogIo for shim tests.
    #[derive(Debug, Default)]
    struct MemIo {
        files: BTreeMap<std::path::PathBuf, Vec<u8>>,
    }

    impl LogIo for MemIo {
        fn read(&mut self, path: &Path) -> std::io::Result<Vec<u8>> {
            self.files
                .get(path)
                .cloned()
                .ok_or_else(|| std::io::Error::from(std::io::ErrorKind::NotFound))
        }
        fn append(&mut self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
            self.files
                .entry(path.to_path_buf())
                .or_default()
                .extend_from_slice(bytes);
            Ok(())
        }
        fn replace(&mut self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
            self.files.insert(path.to_path_buf(), bytes.to_vec());
            Ok(())
        }
        fn rename(&mut self, from: &Path, to: &Path) -> std::io::Result<()> {
            let data = self
                .files
                .remove(from)
                .ok_or_else(|| std::io::Error::from(std::io::ErrorKind::NotFound))?;
            self.files.insert(to.to_path_buf(), data);
            Ok(())
        }
        fn exists(&mut self, path: &Path) -> bool {
            self.files.contains_key(path)
        }
    }

    #[test]
    fn seeded_plans_are_reproducible_and_respect_bounds() {
        let a = ChaosPlan::seeded(42, 4, 10, 3);
        let b = ChaosPlan::seeded(42, 4, 10, 3);
        assert_eq!(a, b, "same seed, same plan");
        assert_eq!(a.kills.len(), 3);
        for &(tick, shard) in &a.kills {
            assert!((1..10).contains(&tick));
            assert!(shard < 4);
        }
        let ticks: Vec<u64> = a.kills.iter().map(|&(t, _)| t).collect();
        let mut unique = ticks.clone();
        unique.dedup();
        assert_eq!(ticks, unique, "at most one kill per tick");
        let c = ChaosPlan::seeded(43, 4, 10, 3);
        assert_ne!(a, c, "different seed, different plan");
        assert!(ChaosPlan::seeded(7, 4, 1, 3).kills.is_empty());
    }

    #[test]
    fn torn_appends_leave_a_strict_prefix_and_report_failure() {
        let mut io = FaultIo::new(
            MemIo::default(),
            FaultPlan {
                seed: 9,
                transient_period: 0,
                torn_period: 1,
                grace_appends: 0,
            },
        );
        let path = Path::new("log");
        let err = io.append(path, b"0123456789").expect_err("always torn");
        assert!(err.to_string().contains("torn"));
        let on_disk = io.read(path).expect("prefix landed");
        assert!(!on_disk.is_empty() && on_disk.len() < 10);
        assert_eq!(&on_disk[..], &b"0123456789"[..on_disk.len()]);
    }

    #[test]
    fn transient_faults_are_deterministic_per_operation_index() {
        let run = |seed| {
            let mut io = FaultIo::new(
                MemIo::default(),
                FaultPlan {
                    seed,
                    transient_period: 3,
                    torn_period: 0,
                    grace_appends: 0,
                },
            );
            (0..30)
                .map(|_| io.append(Path::new("l"), b"x").is_err())
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(5), run(5), "same seed, same fault pattern");
        assert!(run(5).iter().any(|&e| e), "some appends fault");
        assert!(run(5).iter().any(|&e| !e), "some appends succeed");
    }

    #[test]
    fn quiet_plan_passes_everything_through() {
        let mut io = FaultIo::new(MemIo::default(), FaultPlan::quiet(1));
        let path = Path::new("log");
        for _ in 0..100 {
            io.append(path, b"ab").expect("no faults");
        }
        assert_eq!(io.appends(), 100);
        assert_eq!(io.read(path).expect("read").len(), 200);
        io.replace(path, b"z").expect("replace");
        io.rename(path, Path::new("log2")).expect("rename");
        assert!(io.exists(Path::new("log2")));
    }
}
