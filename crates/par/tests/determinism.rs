//! Regression tests for the determinism contract the `det-thread-id`
//! lint annotation in `src/lib.rs` relies on: the pool's output is a
//! pure, input-order function of `(items, f)` — bit-identical no matter
//! how many worker threads execute, including the
//! `available_parallelism`-derived default (`threads = 0`).
//!
//! If a future change makes job results depend on pop order, thread
//! identity or ambient parallelism, these tests trip before any
//! campaign-level bit-identity test has to.

use mpdf_par::{map_indexed, resolve_threads, try_map_indexed};

/// Uneven, float-heavy per-item work: enough accumulation that any
/// reduction-order change would show up in the low mantissa bits.
fn simulate(i: usize, x: &f64) -> f64 {
    let rounds = 64 + (i % 7) * 96;
    let mut acc = *x;
    for k in 0..rounds {
        acc = (acc * 1.000_000_11 + (k as f64) * 1e-9)
            .sin()
            .mul_add(0.5, acc);
    }
    acc
}

fn inputs() -> Vec<f64> {
    (0..257).map(|i| (i as f64) * 0.125 - 16.0).collect()
}

#[test]
fn results_are_bit_identical_across_thread_counts() {
    let items = inputs();
    let serial = map_indexed(1, &items, simulate);
    for threads in [0, 2, 3, 4, 8] {
        let parallel = map_indexed(threads, &items, simulate);
        assert_eq!(serial.len(), parallel.len());
        for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
            assert_eq!(
                s.to_bits(),
                p.to_bits(),
                "item {i} diverged at threads={threads}"
            );
        }
    }
}

#[test]
fn repeated_runs_are_bit_identical() {
    let items = inputs();
    let a = map_indexed(4, &items, simulate);
    let b = map_indexed(4, &items, simulate);
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&a), bits(&b));
}

#[test]
fn fallible_map_reports_the_input_order_error_regardless_of_threads() {
    let items: Vec<u32> = (0..200).collect();
    let f = |_: usize, x: &u32| {
        if *x % 31 == 5 {
            Err(*x)
        } else {
            Ok(*x * 2)
        }
    };
    // Lowest failing item is 5 in input order; later failures (36, 67,
    // …) may also evaluate but must never win the race.
    for threads in [1, 2, 4, 8] {
        assert_eq!(try_map_indexed(threads, &items, f), Err(5));
    }
}

#[test]
fn resolve_threads_only_defaults_when_asked() {
    assert!(resolve_threads(0) >= 1);
    assert_eq!(resolve_threads(3), 3);
}
