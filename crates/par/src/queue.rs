//! A bounded multi-producer multi-consumer work queue.
//!
//! The pool's distribution primitive: producers block when the queue is
//! full (backpressure instead of unbounded buffering), consumers block
//! when it is empty, and [`Bounded::close`] drains the queue gracefully —
//! consumers keep popping until the buffer is empty, then observe `None`
//! and exit. Built on `Mutex` + `Condvar` only; lock poisoning is
//! recovered (the protected state is a plain buffer that cannot be left
//! half-mutated by any of the panic-free critical sections below).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

#[derive(Debug)]
struct State<T> {
    buf: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC queue of work items.
#[derive(Debug)]
pub struct Bounded<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> Bounded<T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be non-zero");
        Bounded {
            state: Mutex::new(State {
                buf: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            capacity,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    // Named so the one real `.lock()` acquisition site below is the
    // only thing the lock-order analyzer has to track for this queue.
    fn lock_state(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Pushes an item, blocking while the queue is full. Returns the item
    /// back to the caller if the queue was closed in the meantime.
    ///
    /// # Errors
    /// Returns `Err(item)` when the queue is closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut state = self.lock_state();
        while state.buf.len() >= self.capacity && !state.closed {
            state = self
                .not_full
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
        if state.closed {
            return Err(item);
        }
        state.buf.push_back(item);
        let depth = state.buf.len() as i64;
        drop(state);
        // Process-wide pool telemetry (campaigns run one pool at a time).
        mpdf_obs::gauge!("par.queue_depth").set(depth);
        mpdf_obs::gauge!("par.queue_depth_max").set_max(depth);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Pops an item, blocking while the queue is empty and open. Returns
    /// `None` once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.lock_state();
        let mut waited = false;
        loop {
            if let Some(item) = state.buf.pop_front() {
                let depth = state.buf.len() as i64;
                drop(state);
                mpdf_obs::gauge!("par.queue_depth").set(depth);
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            if !waited {
                waited = true;
                // Counted once per empty-queue stall, not per spurious
                // wakeup: a proxy for worker idle time.
                mpdf_obs::counter!("par.pop_waits_total").inc();
            }
            mpdf_obs::gauge!("par.workers_idle").add(1);
            state = self
                .not_empty
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
            mpdf_obs::gauge!("par.workers_idle").sub(1);
        }
    }

    /// Closes the queue: pending items remain poppable, further pushes
    /// fail, and blocked consumers wake up.
    pub fn close(&self) {
        let mut state = self.lock_state();
        state.closed = true;
        drop(state);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Poisons the queue: discards every buffered item, closes it, and
    /// wakes all blocked producers and consumers. Unlike [`close`], the
    /// pending backlog is *not* drained by consumers — it is dropped on
    /// the floor, so peers of a panicking worker finish at most the item
    /// already in their hands instead of chewing through a work list
    /// whose results can no longer be used. Returns the number of items
    /// discarded.
    ///
    /// [`close`]: Bounded::close
    pub fn poison(&self) -> usize {
        let mut state = self.lock_state();
        let discarded = state.buf.len();
        state.buf.clear();
        state.closed = true;
        drop(state);
        mpdf_obs::gauge!("par.queue_depth").set(0);
        self.not_empty.notify_all();
        self.not_full.notify_all();
        discarded
    }

    /// Number of items currently buffered.
    pub fn len(&self) -> usize {
        self.lock_state().buf.len()
    }

    /// True when no items are buffered.
    pub fn is_empty(&self) -> bool {
        self.lock_state().buf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn fifo_order_single_thread() {
        let q = Bounded::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.push(3).unwrap();
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert!(q.is_empty());
    }

    #[test]
    fn close_drains_then_returns_none() {
        let q = Bounded::new(2);
        q.push(10).unwrap();
        q.close();
        assert_eq!(q.push(11), Err(11));
        assert_eq!(q.pop(), Some(10));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn bounded_capacity_applies_backpressure() {
        let q = Bounded::new(2);
        let produced = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for i in 0..100 {
                    q.push(i).unwrap();
                    produced.fetch_add(1, Ordering::SeqCst);
                }
                q.close();
            });
            scope.spawn(|| {
                let mut expect = 0;
                while let Some(i) = q.pop() {
                    assert_eq!(i, expect);
                    expect += 1;
                    // The producer can never be more than capacity ahead
                    // of what has been consumed.
                    assert!(produced.load(Ordering::SeqCst) <= expect + 2 + 1);
                }
                assert_eq!(expect, 100);
            });
        });
    }

    #[test]
    fn many_consumers_cover_all_items() {
        let q: Bounded<usize> = Bounded::new(8);
        let seen: Vec<AtomicUsize> = (0..500).map(|_| AtomicUsize::new(0)).collect();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    while let Some(i) = q.pop() {
                        seen[i].fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
            for i in 0..500usize {
                q.push(i).unwrap();
            }
            q.close();
        });
        for (i, s) in seen.iter().enumerate() {
            assert_eq!(s.load(Ordering::SeqCst), 1, "item {i}");
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = Bounded::<u32>::new(0);
    }

    #[test]
    fn poison_discards_backlog_and_unblocks() {
        let q = Bounded::new(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        assert_eq!(q.poison(), 5);
        // Nothing left to pop, pushes rejected, repeat poison is a no-op.
        assert_eq!(q.pop(), None);
        assert_eq!(q.push(99), Err(99));
        assert_eq!(q.poison(), 0);
    }

    #[test]
    fn poison_wakes_blocked_producer() {
        let q = Bounded::new(1);
        q.push(0).unwrap();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                // Blocks on the full queue until poison closes it.
                assert_eq!(q.push(1), Err(1));
            });
            std::thread::sleep(std::time::Duration::from_millis(5));
            q.poison();
        });
    }
}
