//! # mpdf-par — deterministic parallel execution layer
//!
//! A std-only work pool for the evaluation harness: scoped worker
//! threads pulling indices from a bounded queue, with results collected
//! **in input order** so a parallel run is indistinguishable from a
//! serial one. No external dependencies (the build container is
//! offline), no unsafe code, no work stealing — just enough machinery to
//! saturate the cores on embarrassingly parallel campaign work.
//!
//! ## Determinism contract
//!
//! [`map_indexed`] guarantees `out[i] == f(i, &items[i])` with results
//! ordered by `i`, independent of thread count or scheduling. Callers
//! keep that guarantee end-to-end by making `f` a pure function of its
//! inputs (the campaign derives a dedicated RNG stream per work item
//! instead of threading one generator through the loop).
//!
//! ```
//! let squares = mpdf_par::map_indexed(4, &[1u64, 2, 3, 4], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod queue;

use std::any::Any;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Mutex;

/// Errors surfaced by the fallible pool entry points.
#[derive(Debug)]
pub enum PoolError {
    /// The worker executing item `index` panicked; `message` is the
    /// panic payload when it was a string, or a placeholder otherwise.
    ///
    /// When several workers panic in one run, the lowest-indexed panic is
    /// reported (matching the input-order error contract of
    /// [`try_map_indexed`]).
    WorkerPanic {
        /// Index of the input item whose closure panicked.
        index: usize,
        /// Stringified panic payload.
        message: String,
    },
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::WorkerPanic { index, message } => {
                write!(f, "worker panicked on item {index}: {message}")
            }
        }
    }
}

impl std::error::Error for PoolError {}

/// Per-item outcome inside the pool: unprocessed (a sibling panicked and
/// the queue closed early), completed, or panicked with the payload.
enum Slot<R> {
    Empty,
    Done(R),
    Panicked(Box<dyn Any + Send>),
}

fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Number of worker threads the machine supports; falls back to 1 when
/// the parallelism degree cannot be queried.
pub fn available_threads() -> usize {
    // Sizing default only: pool results are thread-count-invariant
    // (pinned by tests/determinism.rs), so the queried degree can never
    // influence what the pool computes.
    // lint: allow(det-thread-id) — sizing default; output is thread-count-invariant
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Resolves a user-facing thread knob: `0` means "use all available
/// cores", anything else is taken literally.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        available_threads()
    } else {
        requested
    }
}

/// Maps `f` over `items` on `threads` scoped worker threads, returning
/// results in input order.
///
/// `threads` is resolved via [`resolve_threads`] (`0` = all cores); with
/// one thread (or ≤ 1 item) the map degenerates to a plain serial loop
/// with no thread or lock overhead. Work indices flow through a bounded
/// [`queue::Bounded`] (capacity 2× the worker count), so uneven item
/// costs balance automatically and the producer is back-pressured rather
/// than buffering the whole work list.
///
/// # Panics
/// If `f` panics on a worker thread the panic payload is re-raised on
/// the calling thread (the lowest-indexed panic when several workers
/// trip at once). Use [`catch_map_indexed`] to receive it as a
/// [`PoolError`] instead.
pub fn map_indexed<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let mut out = Vec::with_capacity(items.len());
    for slot in run_map(threads, items, f) {
        match slot {
            Slot::Done(r) => out.push(r),
            Slot::Panicked(payload) => resume_unwind(payload),
            // Unprocessed slots only exist when a lower-indexed item
            // panicked, and that panic re-raised above.
            Slot::Empty => {
                // lint: allow(no-panic) — run_map fills every slot unless a sibling panicked, and the lowest-indexed panic has already been re-raised by the arm above
                unreachable!("pool left a slot unfilled without a recorded panic")
            }
        }
    }
    out
}

/// Like [`map_indexed`], but a worker panic is returned as
/// [`PoolError::WorkerPanic`] (and counted in the `par.worker_panics_total`
/// metric) instead of unwinding through the caller — a truncated result
/// set can never be mistaken for a complete one.
///
/// # Errors
/// Returns the lowest-indexed worker panic as a named error.
pub fn catch_map_indexed<T, R, F>(threads: usize, items: &[T], f: F) -> Result<Vec<R>, PoolError>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let mut out = Vec::with_capacity(items.len());
    for (index, slot) in run_map(threads, items, f).into_iter().enumerate() {
        match slot {
            Slot::Done(r) => out.push(r),
            Slot::Panicked(payload) => {
                return Err(PoolError::WorkerPanic {
                    index,
                    message: panic_message(payload.as_ref()),
                });
            }
            // Indices are fed to the queue in order, so unprocessed
            // slots sit strictly after the panicked one — which the
            // match above has already returned.
            Slot::Empty => {
                // lint: allow(no-panic) — see map_indexed: an Empty slot without a preceding Panicked slot cannot be constructed by run_map
                unreachable!("pool left a slot unfilled without a recorded panic")
            }
        }
    }
    Ok(out)
}

/// Shared pool core: maps `f` over `items` and records each item's
/// outcome (done / panicked / never ran) without unwinding.
fn run_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<Slot<R>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = resolve_threads(threads).min(n);
    let run_one = |i: usize| -> Slot<R> {
        match catch_unwind(AssertUnwindSafe(|| f(i, &items[i]))) {
            Ok(r) => Slot::Done(r),
            Err(payload) => {
                mpdf_obs::counter!("par.worker_panics_total").inc();
                Slot::Panicked(payload)
            }
        }
    };
    if workers <= 1 {
        let mut out: Vec<Slot<R>> = (0..n).map(|_| Slot::Empty).collect();
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = run_one(i);
            mpdf_obs::counter!("par.jobs_total").inc();
            if matches!(slot, Slot::Panicked(_)) {
                break;
            }
        }
        return out;
    }
    let work = queue::Bounded::new(workers * 2);
    let slots: Vec<Mutex<Slot<R>>> = (0..n).map(|_| Mutex::new(Slot::Empty)).collect();
    mpdf_obs::counter!("par.workers_spawned_total").add(workers as u64);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let active = mpdf_obs::gauge!("par.workers_active");
                active.add(1);
                while let Some(i) = work.pop() {
                    let result = run_one(i);
                    mpdf_obs::counter!("par.jobs_total").inc();
                    let panicked = matches!(result, Slot::Panicked(_));
                    // Each slot is written exactly once by the worker
                    // that popped index `i`; poisoning is impossible
                    // because the lock is only held for the store below.
                    let mut slot = slots[i]
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    *slot = result;
                    drop(slot);
                    if panicked {
                        // Abort the run: poison the queue so the backlog
                        // is discarded instead of drained. Siblings finish
                        // at most the item already in their hands, the
                        // producer's blocked push wakes with Err, and the
                        // collection phase surfaces the panic promptly
                        // rather than after the whole work list ran.
                        let discarded = work.poison();
                        mpdf_obs::counter!("par.jobs_discarded_total").add(discarded as u64);
                        break;
                    }
                }
                active.sub(1);
            });
        }
        for i in 0..n {
            // Backpressure: the queue is bounded to 2× the worker count
            // and push blocks until a worker frees a slot. Disconnect: a
            // panicking worker poisons the queue, push returns Err, and
            // we stop feeding so the collection phase can surface it.
            if work.push(i).is_err() {
                break;
            }
        }
        work.close();
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        })
        .collect()
}

/// Maps `f` over mutable `items` on the pool, returning results in input
/// order — the in-place counterpart of [`map_indexed`].
///
/// Each item is visited exactly once with exclusive access, so `f` may
/// mutate it freely; the determinism contract is unchanged (results and
/// final item states are independent of thread count as long as `f` is a
/// pure function of its inputs). Used by the fleet supervisor to step a
/// slice of shards in place through the shared pool.
///
/// # Panics
/// As [`map_indexed`]: a worker panic is re-raised on the calling thread.
pub fn map_indexed_mut<T, R, F>(threads: usize, items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let cells: Vec<Mutex<&mut T>> = items.iter_mut().map(Mutex::new).collect();
    map_indexed(threads, &cells, |i, cell| {
        // Each cell is locked exactly once, by the worker that popped
        // index `i`. The mutex only moves the `&mut` across the `Sync`
        // bound of `map_indexed`; it is never contended and never held
        // together with another pool lock.
        let mut item = cell
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        f(i, &mut item)
    })
}

/// Maps a fallible `f` over `items` in parallel, short-circuiting on the
/// first error **in input order** (matching what a serial `?` loop would
/// have reported; later items may still have been evaluated).
///
/// # Errors
/// Returns the error of the lowest-indexed failing item.
pub fn try_map_indexed<T, R, E, F>(threads: usize, items: &[T], f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    let mut out = Vec::with_capacity(items.len());
    for r in map_indexed(threads, items, f) {
        out.push(r?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_preserves_order_across_thread_counts() {
        let items: Vec<usize> = (0..257).collect();
        let serial = map_indexed(1, &items, |i, &x| i * 31 + x);
        for threads in [2, 3, 4, 8] {
            let parallel = map_indexed(threads, &items, |i, &x| i * 31 + x);
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    #[test]
    fn map_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(map_indexed(4, &empty, |_, &x| x).is_empty());
        assert_eq!(map_indexed(4, &[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn every_item_is_visited_exactly_once() {
        let counters: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        let items: Vec<usize> = (0..100).collect();
        map_indexed(4, &items, |_, &i| {
            counters[i].fetch_add(1, Ordering::SeqCst);
        });
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(c.load(Ordering::SeqCst), 1, "item {i}");
        }
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Items with wildly different costs still all complete.
        let items: Vec<u64> = (0..40).collect();
        let out = map_indexed(4, &items, |_, &x| {
            if x % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            x * 2
        });
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn try_map_reports_lowest_index_error() {
        let items: Vec<u32> = (0..64).collect();
        let r = try_map_indexed(4, &items, |_, &x| if x >= 10 { Err(x) } else { Ok(x) });
        assert_eq!(r, Err(10));
        let ok = try_map_indexed(4, &items, |_, &x| Ok::<_, ()>(x));
        assert_eq!(ok.unwrap().len(), 64);
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..16).collect();
        let caught = std::panic::catch_unwind(|| {
            map_indexed(4, &items, |_, &x| {
                assert!(x != 5, "boom");
                x
            })
        });
        assert!(caught.is_err());
    }

    #[test]
    fn catch_map_surfaces_worker_panic_as_error() {
        let items: Vec<u32> = (0..64).collect();
        let panics_before = mpdf_obs::metrics::counter("par.worker_panics_total").get();
        let err = catch_map_indexed(4, &items, |_, &x| {
            assert!(x != 9, "item exploded");
            x * 2
        })
        .expect_err("panic must surface as PoolError");
        let PoolError::WorkerPanic { index, message } = err;
        assert_eq!(index, 9);
        assert!(message.contains("item exploded"), "{message}");
        assert!(
            mpdf_obs::metrics::counter("par.worker_panics_total").get() > panics_before,
            "panic must be counted"
        );
        // Display is usable in error chains.
        let shown = PoolError::WorkerPanic {
            index: 3,
            message: "boom".to_owned(),
        }
        .to_string();
        assert!(
            shown.contains("item 3") && shown.contains("boom"),
            "{shown}"
        );
    }

    #[test]
    fn catch_map_ok_matches_map_indexed() {
        let items: Vec<u64> = (0..100).collect();
        let plain = map_indexed(4, &items, |i, &x| x + i as u64);
        let caught = catch_map_indexed(4, &items, |i, &x| x + i as u64).expect("no panic");
        assert_eq!(plain, caught);
        // Serial path too.
        let serial = catch_map_indexed(1, &items, |i, &x| x + i as u64).expect("no panic");
        assert_eq!(serial, plain);
    }

    #[test]
    fn catch_map_serial_reports_panic_index() {
        let items: Vec<u32> = (0..8).collect();
        let err = catch_map_indexed(1, &items, |_, &x| {
            assert!(x != 2, "serial boom");
            x
        })
        .expect_err("panic must surface");
        let PoolError::WorkerPanic { index, .. } = err;
        assert_eq!(index, 2);
    }

    #[test]
    fn pool_records_job_and_depth_metrics() {
        let jobs_before = mpdf_obs::metrics::counter("par.jobs_total").get();
        let items: Vec<u64> = (0..50).collect();
        let out = map_indexed(4, &items, |_, &x| x + 1);
        assert_eq!(out.len(), 50);
        assert!(mpdf_obs::metrics::counter("par.jobs_total").get() >= jobs_before + 50);
        assert!(mpdf_obs::metrics::gauge("par.queue_depth_max").get() >= 1);
    }

    #[test]
    fn map_indexed_mut_mutates_in_place_and_orders_results() {
        let mut items: Vec<u64> = (0..100).collect();
        let expect_items: Vec<u64> = items.iter().map(|x| x * 3).collect();
        let expect_out: Vec<u64> = items.clone();
        for threads in [1, 2, 4, 8] {
            let mut mine = items.clone();
            let out = map_indexed_mut(threads, &mut mine, |_, x| {
                let before = *x;
                *x *= 3;
                before
            });
            assert_eq!(mine, expect_items, "threads={threads}");
            assert_eq!(out, expect_out, "threads={threads}");
        }
        let out = map_indexed_mut(4, &mut items, |i, x| {
            *x += i as u64;
            *x
        });
        assert_eq!(out, items);
    }

    #[test]
    fn panicking_worker_poisons_queue_and_returns_promptly() {
        // Item 0 panics almost immediately; every other item is slow.
        // With the backlog poisoned on panic, peers finish at most the
        // item already in their hands — they never chew through the
        // queued tail — so catch_map_indexed returns promptly at every
        // thread count instead of after all ~64 slow items.
        for threads in [1usize, 2, 4, 8] {
            let items: Vec<u64> = (0..64).collect();
            let executed = AtomicUsize::new(0);
            let discarded_before = mpdf_obs::metrics::counter("par.jobs_discarded_total").get();
            let err = catch_map_indexed(threads, &items, |i, _| {
                if i == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    assert!(i != 0, "chaos item");
                }
                executed.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(20));
                i
            })
            .expect_err("panic must surface");
            let PoolError::WorkerPanic { index, message } = err;
            assert_eq!(index, 0, "threads={threads}");
            assert!(message.contains("chaos item"), "{message}");
            // Prompt teardown: each peer completes at most the in-flight
            // item plus one popped before the poison landed.
            let ran = executed.load(Ordering::SeqCst);
            assert!(
                ran <= 2 * threads,
                "threads={threads}: {ran} items ran after the panic"
            );
            if threads > 1 {
                assert!(
                    mpdf_obs::metrics::counter("par.jobs_discarded_total").get() > discarded_before,
                    "poison must count the discarded backlog"
                );
            }
        }
    }

    #[test]
    fn resolve_threads_zero_is_auto() {
        assert_eq!(resolve_threads(3), 3);
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(0), available_threads());
    }
}
