//! # mpdf-par — deterministic parallel execution layer
//!
//! A std-only work pool for the evaluation harness: scoped worker
//! threads pulling indices from a bounded queue, with results collected
//! **in input order** so a parallel run is indistinguishable from a
//! serial one. No external dependencies (the build container is
//! offline), no unsafe code, no work stealing — just enough machinery to
//! saturate the cores on embarrassingly parallel campaign work.
//!
//! ## Determinism contract
//!
//! [`map_indexed`] guarantees `out[i] == f(i, &items[i])` with results
//! ordered by `i`, independent of thread count or scheduling. Callers
//! keep that guarantee end-to-end by making `f` a pure function of its
//! inputs (the campaign derives a dedicated RNG stream per work item
//! instead of threading one generator through the loop).
//!
//! ```
//! let squares = mpdf_par::map_indexed(4, &[1u64, 2, 3, 4], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod queue;

use std::num::NonZeroUsize;
use std::sync::Mutex;

/// Number of worker threads the machine supports; falls back to 1 when
/// the parallelism degree cannot be queried.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Resolves a user-facing thread knob: `0` means "use all available
/// cores", anything else is taken literally.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        available_threads()
    } else {
        requested
    }
}

/// Maps `f` over `items` on `threads` scoped worker threads, returning
/// results in input order.
///
/// `threads` is resolved via [`resolve_threads`] (`0` = all cores); with
/// one thread (or ≤ 1 item) the map degenerates to a plain serial loop
/// with no thread or lock overhead. Work indices flow through a bounded
/// [`queue::Bounded`] (capacity 2× the worker count), so uneven item
/// costs balance automatically and the producer is back-pressured rather
/// than buffering the whole work list.
///
/// # Panics
/// If `f` panics on a worker thread the panic is propagated to the
/// caller when the thread scope joins.
pub fn map_indexed<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = resolve_threads(threads).min(n);
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    /// Closes the work queue when a worker unwinds, so the producer's
    /// blocking `push` wakes up and the panic can propagate through the
    /// scope join instead of deadlocking.
    struct CloseOnPanic<'a, T>(&'a queue::Bounded<T>);
    impl<T> Drop for CloseOnPanic<'_, T> {
        fn drop(&mut self) {
            if std::thread::panicking() {
                self.0.close();
            }
        }
    }
    let work = queue::Bounded::new(workers * 2);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let _guard = CloseOnPanic(&work);
                while let Some(i) = work.pop() {
                    let result = f(i, &items[i]);
                    // Each slot is written exactly once by the worker
                    // that popped index `i`; poisoning is impossible
                    // because the lock is only held for the store below.
                    let mut slot = slots[i]
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    *slot = Some(result);
                }
            });
        }
        for i in 0..n {
            if work.push(i).is_err() {
                // A worker panicked and closed the queue; stop feeding
                // and let the scope join surface the panic.
                break;
            }
        }
        work.close();
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        })
        .map(|r| {
            // lint: allow(no-panic) — the scope above joins every worker, so each claimed slot was filled; an empty slot means a worker panicked, and that panic has already propagated
            r.expect("worker completed without storing a result")
        })
        .collect()
}

/// Maps a fallible `f` over `items` in parallel, short-circuiting on the
/// first error **in input order** (matching what a serial `?` loop would
/// have reported; later items may still have been evaluated).
///
/// # Errors
/// Returns the error of the lowest-indexed failing item.
pub fn try_map_indexed<T, R, E, F>(threads: usize, items: &[T], f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    let mut out = Vec::with_capacity(items.len());
    for r in map_indexed(threads, items, f) {
        out.push(r?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_preserves_order_across_thread_counts() {
        let items: Vec<usize> = (0..257).collect();
        let serial = map_indexed(1, &items, |i, &x| i * 31 + x);
        for threads in [2, 3, 4, 8] {
            let parallel = map_indexed(threads, &items, |i, &x| i * 31 + x);
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    #[test]
    fn map_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(map_indexed(4, &empty, |_, &x| x).is_empty());
        assert_eq!(map_indexed(4, &[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn every_item_is_visited_exactly_once() {
        let counters: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        let items: Vec<usize> = (0..100).collect();
        map_indexed(4, &items, |_, &i| {
            counters[i].fetch_add(1, Ordering::SeqCst);
        });
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(c.load(Ordering::SeqCst), 1, "item {i}");
        }
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Items with wildly different costs still all complete.
        let items: Vec<u64> = (0..40).collect();
        let out = map_indexed(4, &items, |_, &x| {
            if x % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            x * 2
        });
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn try_map_reports_lowest_index_error() {
        let items: Vec<u32> = (0..64).collect();
        let r = try_map_indexed(4, &items, |_, &x| if x >= 10 { Err(x) } else { Ok(x) });
        assert_eq!(r, Err(10));
        let ok = try_map_indexed(4, &items, |_, &x| Ok::<_, ()>(x));
        assert_eq!(ok.unwrap().len(), 64);
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..16).collect();
        let caught = std::panic::catch_unwind(|| {
            map_indexed(4, &items, |_, &x| {
                assert!(x != 5, "boom");
                x
            })
        });
        assert!(caught.is_err());
    }

    #[test]
    fn resolve_threads_zero_is_auto() {
        assert_eq!(resolve_threads(3), 3);
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(0), available_threads());
    }
}
