//! Closed shapes: rectangles and circles.
//!
//! Rectangles model rooms and furniture footprints; circles model the
//! human-body cross-section (the paper's dielectric cylinder seen in plan
//! view).

use serde::{Deserialize, Serialize};

use crate::segment::Segment;
use crate::vec2::{Point, Vec2};

/// An axis-aligned rectangle given by opposite corners.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    min: Point,
    max: Point,
}

impl Rect {
    /// Creates a rectangle from any two opposite corners.
    pub fn new(a: Point, b: Point) -> Self {
        Rect {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// Creates a rectangle from a center point and full extents.
    pub fn centered(center: Point, width: f64, height: f64) -> Self {
        let half = Vec2::new(width.abs() / 2.0, height.abs() / 2.0);
        Rect::new(center - half, center + half)
    }

    /// Lower-left corner.
    pub fn min(&self) -> Point {
        self.min
    }

    /// Upper-right corner.
    pub fn max(&self) -> Point {
        self.max
    }

    /// Center point.
    pub fn center(&self) -> Point {
        self.min.lerp(self.max, 0.5)
    }

    /// Width along x.
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height along y.
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// True when `p` lies inside or on the boundary.
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// The four boundary walls, counter-clockwise starting at the bottom.
    pub fn walls(&self) -> [Segment; 4] {
        let bl = self.min;
        let br = Point::new(self.max.x, self.min.y);
        let tr = self.max;
        let tl = Point::new(self.min.x, self.max.y);
        [
            Segment::new(bl, br),
            Segment::new(br, tr),
            Segment::new(tr, tl),
            Segment::new(tl, bl),
        ]
    }

    /// True when the segment crosses or touches the rectangle boundary or
    /// either endpoint is inside.
    pub fn intersects_segment(&self, seg: &Segment) -> bool {
        if self.contains(seg.a) || self.contains(seg.b) {
            return true;
        }
        self.walls().iter().any(|w| w.intersects(seg))
    }

    /// Shrinks the rectangle by `margin` on every side.
    ///
    /// # Panics
    /// Panics if the margin would invert the rectangle.
    pub fn shrunk(&self, margin: f64) -> Rect {
        assert!(
            2.0 * margin < self.width() && 2.0 * margin < self.height(),
            "margin larger than rectangle"
        );
        Rect::new(
            self.min + Vec2::new(margin, margin),
            self.max - Vec2::new(margin, margin),
        )
    }
}

/// A circle: the human-body footprint in plan view.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Circle {
    /// Center.
    pub center: Point,
    /// Radius (metres).
    pub radius: f64,
}

impl Circle {
    /// Creates a circle.
    ///
    /// # Panics
    /// Panics if the radius is negative or non-finite.
    pub fn new(center: Point, radius: f64) -> Self {
        assert!(
            radius.is_finite() && radius >= 0.0,
            "radius must be finite and non-negative"
        );
        Circle { center, radius }
    }

    /// True when `p` is inside or on the circle.
    pub fn contains(&self, p: Point) -> bool {
        self.center.distance(p) <= self.radius
    }

    /// Shortest distance between the circle *boundary-enclosed disk* and a
    /// segment: zero when the segment passes through the disk.
    pub fn distance_to_segment(&self, seg: &Segment) -> f64 {
        (seg.distance_to_point(self.center) - self.radius).max(0.0)
    }

    /// True when a segment passes through (or touches) the disk.
    pub fn blocks_segment(&self, seg: &Segment) -> bool {
        seg.distance_to_point(self.center) <= self.radius
    }

    /// Normalized penetration depth of a segment through the disk:
    /// `1` when the segment passes through the center, `0` when it only
    /// grazes the rim or misses. Used by the shadowing model to scale the
    /// attenuation `β` with how centrally a body blocks a path.
    pub fn penetration(&self, seg: &Segment) -> f64 {
        if self.radius <= 0.0 {
            return 0.0;
        }
        let d = seg.distance_to_point(self.center);
        ((self.radius - d) / self.radius).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn rect_from_any_corners() {
        let r = Rect::new(p(3.0, 1.0), p(0.0, 4.0));
        assert_eq!(r.min(), p(0.0, 1.0));
        assert_eq!(r.max(), p(3.0, 4.0));
        assert_eq!(r.width(), 3.0);
        assert_eq!(r.height(), 3.0);
        assert_eq!(r.center(), p(1.5, 2.5));
    }

    #[test]
    fn rect_centered() {
        let r = Rect::centered(p(1.0, 1.0), 2.0, 4.0);
        assert_eq!(r.min(), p(0.0, -1.0));
        assert_eq!(r.max(), p(2.0, 3.0));
    }

    #[test]
    fn rect_contains() {
        let r = Rect::new(p(0.0, 0.0), p(2.0, 2.0));
        assert!(r.contains(p(1.0, 1.0)));
        assert!(r.contains(p(0.0, 2.0))); // boundary
        assert!(!r.contains(p(2.1, 1.0)));
    }

    #[test]
    fn rect_walls_are_closed_loop() {
        let r = Rect::new(p(0.0, 0.0), p(1.0, 1.0));
        let w = r.walls();
        for i in 0..4 {
            assert_eq!(w[i].b, w[(i + 1) % 4].a);
        }
        let perimeter: f64 = w.iter().map(Segment::length).sum();
        assert!((perimeter - 4.0).abs() < 1e-12);
    }

    #[test]
    fn segment_rect_intersection() {
        let r = Rect::new(p(0.0, 0.0), p(2.0, 2.0));
        // crossing
        assert!(r.intersects_segment(&Segment::new(p(-1.0, 1.0), p(3.0, 1.0))));
        // fully inside
        assert!(r.intersects_segment(&Segment::new(p(0.5, 0.5), p(1.5, 1.5))));
        // fully outside
        assert!(!r.intersects_segment(&Segment::new(p(3.0, 3.0), p(4.0, 4.0))));
        // touching a corner
        assert!(r.intersects_segment(&Segment::new(p(2.0, 2.0), p(3.0, 3.0))));
    }

    #[test]
    fn rect_shrink() {
        let r = Rect::new(p(0.0, 0.0), p(4.0, 4.0)).shrunk(1.0);
        assert_eq!(r.min(), p(1.0, 1.0));
        assert_eq!(r.max(), p(3.0, 3.0));
    }

    #[test]
    #[should_panic(expected = "margin larger")]
    fn rect_overshrink_panics() {
        let _ = Rect::new(p(0.0, 0.0), p(1.0, 1.0)).shrunk(0.6);
    }

    #[test]
    fn circle_blocking_and_penetration() {
        let c = Circle::new(p(1.0, 0.0), 0.5);
        let through_center = Segment::new(p(-2.0, 0.0), p(4.0, 0.0));
        let grazing = Segment::new(p(-2.0, 0.5), p(4.0, 0.5));
        let missing = Segment::new(p(-2.0, 1.0), p(4.0, 1.0));
        assert!(c.blocks_segment(&through_center));
        assert!(c.blocks_segment(&grazing));
        assert!(!c.blocks_segment(&missing));
        assert!((c.penetration(&through_center) - 1.0).abs() < 1e-12);
        assert!(c.penetration(&grazing).abs() < 1e-12);
        assert_eq!(c.penetration(&missing), 0.0);
        assert!((c.distance_to_segment(&missing) - 0.5).abs() < 1e-12);
        assert_eq!(c.distance_to_segment(&through_center), 0.0);
    }

    #[test]
    fn circle_contains() {
        let c = Circle::new(p(0.0, 0.0), 1.0);
        assert!(c.contains(p(0.5, 0.5)));
        assert!(c.contains(p(1.0, 0.0)));
        assert!(!c.contains(p(1.01, 0.0)));
    }

    #[test]
    #[should_panic(expected = "radius must be finite")]
    fn circle_negative_radius_panics() {
        let _ = Circle::new(p(0.0, 0.0), -1.0);
    }

    #[test]
    fn zero_radius_circle_never_blocks() {
        let c = Circle::new(p(0.0, 0.0), 0.0);
        let s = Segment::new(p(-1.0, 0.1), p(1.0, 0.1));
        assert!(!c.blocks_segment(&s));
        assert_eq!(c.penetration(&s), 0.0);
    }
}
