//! 2-D points and vectors.
//!
//! The propagation simulator works in a 2-D floor plan (the paper's rooms
//! are analyzed in plan view; antenna heights only shift path lengths by a
//! constant the one-bounce model absorbs into the path-loss constant).

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

use serde::{Deserialize, Serialize};

/// A 2-D point/vector with `f64` coordinates, in metres.
///
/// One type serves both roles (point and displacement), as is common in
/// small geometry kernels; the alias [`Point`] marks intent at API
/// boundaries.
///
/// ```
/// use mpdf_geom::vec2::Vec2;
/// let v = Vec2::new(3.0, 4.0);
/// assert_eq!(v.norm(), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec2 {
    /// x-coordinate (metres).
    pub x: f64,
    /// y-coordinate (metres).
    pub y: f64,
}

/// Alias used where a location (not a displacement) is meant.
pub type Point = Vec2;

impl Vec2 {
    /// The origin / zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a vector from components.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Unit vector at `angle` radians from the +x axis.
    #[inline]
    pub fn from_angle(angle: f64) -> Self {
        Vec2::new(angle.cos(), angle.sin())
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (z-component of the 3-D cross product).
    #[inline]
    pub fn cross(self, other: Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Squared norm.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Distance to another point.
    #[inline]
    pub fn distance(self, other: Vec2) -> f64 {
        (self - other).norm()
    }

    /// Unit vector in the same direction.
    ///
    /// Returns `None` for (near-)zero vectors instead of producing NaNs.
    #[inline]
    pub fn normalized(self) -> Option<Vec2> {
        let n = self.norm();
        if n < 1e-12 {
            None
        } else {
            Some(self / n)
        }
    }

    /// Counter-clockwise perpendicular (`rotate 90°`).
    #[inline]
    pub fn perp(self) -> Vec2 {
        Vec2::new(-self.y, self.x)
    }

    /// Rotates by `angle` radians counter-clockwise.
    #[inline]
    pub fn rotated(self, angle: f64) -> Vec2 {
        let (s, c) = angle.sin_cos();
        Vec2::new(self.x * c - self.y * s, self.x * s + self.y * c)
    }

    /// Angle from the +x axis, in `(-π, π]`.
    #[inline]
    pub fn angle(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// Linear interpolation: `self + t·(other − self)`.
    #[inline]
    pub fn lerp(self, other: Vec2, t: f64) -> Vec2 {
        self + (other - self) * t
    }

    /// True when both coordinates are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    #[inline]
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    #[inline]
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, k: f64) -> Vec2 {
        Vec2::new(self.x * k, self.y * k)
    }
}

impl Mul<Vec2> for f64 {
    type Output = Vec2;
    #[inline]
    fn mul(self, v: Vec2) -> Vec2 {
        v * self
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn div(self, k: f64) -> Vec2 {
        Vec2::new(self.x / k, self.y / k)
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Vec2 {
    fn from((x, y): (f64, f64)) -> Self {
        Vec2::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn arithmetic() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, -1.0);
        assert_eq!(a + b, Vec2::new(4.0, 1.0));
        assert_eq!(a - b, Vec2::new(-2.0, 3.0));
        assert_eq!(-a, Vec2::new(-1.0, -2.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Vec2::new(0.5, 1.0));
    }

    #[test]
    fn dot_and_cross() {
        let a = Vec2::new(1.0, 0.0);
        let b = Vec2::new(0.0, 1.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), 1.0);
        assert_eq!(b.cross(a), -1.0);
        assert_eq!(a.dot(a), 1.0);
    }

    #[test]
    fn norms_and_distance() {
        let v = Vec2::new(3.0, 4.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.norm_sqr(), 25.0);
        assert_eq!(Vec2::ZERO.distance(v), 5.0);
    }

    #[test]
    fn normalization() {
        let v = Vec2::new(0.0, -7.0);
        assert_eq!(v.normalized(), Some(Vec2::new(0.0, -1.0)));
        assert_eq!(Vec2::ZERO.normalized(), None);
        assert_eq!(Vec2::new(1e-15, 0.0).normalized(), None);
    }

    #[test]
    fn rotation_and_angles() {
        let v = Vec2::new(1.0, 0.0);
        let r = v.rotated(FRAC_PI_2);
        assert!((r - Vec2::new(0.0, 1.0)).norm() < 1e-12);
        assert!((Vec2::from_angle(PI).x + 1.0).abs() < 1e-12);
        assert!((Vec2::new(-1.0, 0.0).angle() - PI).abs() < 1e-12);
        assert_eq!(v.perp(), Vec2::new(0.0, 1.0));
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(2.0, 4.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec2::new(1.0, 2.0));
    }

    #[test]
    fn finite_check() {
        assert!(Vec2::new(1.0, 2.0).is_finite());
        assert!(!Vec2::new(f64::NAN, 0.0).is_finite());
        assert!(!Vec2::new(0.0, f64::INFINITY).is_finite());
    }
}
