//! Convex polygons.
//!
//! Furniture is rarely axis-aligned; a [`ConvexPolygon`] models angled
//! desks, lecterns and cabinets. Only convexity is supported — it keeps
//! containment and occlusion queries O(edges) and matches what the
//! propagation layer needs.

use serde::{Deserialize, Serialize};

use crate::segment::Segment;
use crate::vec2::{Point, Vec2};

/// A convex polygon with counter-clockwise vertices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConvexPolygon {
    vertices: Vec<Point>,
}

/// Error returned by [`ConvexPolygon::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolygonError {
    /// Fewer than three vertices.
    TooFewVertices,
    /// The vertex loop is not convex / counter-clockwise.
    NotConvexCcw,
    /// Repeated or collinear-degenerate vertices.
    Degenerate,
}

impl std::fmt::Display for PolygonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolygonError::TooFewVertices => write!(f, "polygon needs at least three vertices"),
            PolygonError::NotConvexCcw => {
                write!(f, "vertices must wind counter-clockwise and be convex")
            }
            PolygonError::Degenerate => write!(f, "polygon has degenerate edges"),
        }
    }
}

impl std::error::Error for PolygonError {}

impl ConvexPolygon {
    /// Creates a convex polygon from counter-clockwise vertices.
    ///
    /// # Errors
    /// See [`PolygonError`].
    pub fn new(vertices: Vec<Point>) -> Result<Self, PolygonError> {
        if vertices.len() < 3 {
            return Err(PolygonError::TooFewVertices);
        }
        let n = vertices.len();
        for i in 0..n {
            let a = vertices[i];
            let b = vertices[(i + 1) % n];
            let c = vertices[(i + 2) % n];
            if a.distance(b) < 1e-12 {
                return Err(PolygonError::Degenerate);
            }
            let cross = (b - a).cross(c - b);
            if cross <= 0.0 {
                return Err(PolygonError::NotConvexCcw);
            }
        }
        Ok(ConvexPolygon { vertices })
    }

    /// An axis-aligned rectangle as a polygon.
    pub fn rectangle(min: Point, max: Point) -> Self {
        ConvexPolygon::new(vec![
            min,
            Point::new(max.x, min.y),
            max,
            Point::new(min.x, max.y),
        ])
        // lint: allow(no-panic) — four axis-aligned corners in CCW order are always convex
        .expect("rectangle corners are convex CCW")
    }

    /// A rectangle rotated by `angle` radians around its centre — the
    /// angled-desk constructor.
    ///
    /// # Panics
    /// Panics if the extents are not positive.
    pub fn rotated_rectangle(center: Point, width: f64, height: f64, angle: f64) -> Self {
        assert!(width > 0.0 && height > 0.0, "extents must be positive");
        let hx = Vec2::new(width / 2.0, 0.0).rotated(angle);
        let hy = Vec2::new(0.0, height / 2.0).rotated(angle);
        ConvexPolygon::new(vec![
            center - hx - hy,
            center + hx - hy,
            center + hx + hy,
            center - hx + hy,
        ])
        // lint: allow(no-panic) — rotation preserves convexity; extents asserted positive
        .expect("rotated rectangle is convex CCW")
    }

    /// The vertex loop (counter-clockwise).
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// The edge segments.
    pub fn edges(&self) -> Vec<Segment> {
        let n = self.vertices.len();
        (0..n)
            .map(|i| Segment::new(self.vertices[i], self.vertices[(i + 1) % n]))
            .collect()
    }

    /// Polygon area (shoelace formula; positive for CCW).
    pub fn area(&self) -> f64 {
        let n = self.vertices.len();
        let mut acc = 0.0;
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            acc += a.cross(b);
        }
        acc / 2.0
    }

    /// Centroid of the polygon.
    pub fn centroid(&self) -> Point {
        let n = self.vertices.len();
        let mut cx = 0.0;
        let mut cy = 0.0;
        let mut a = 0.0;
        for i in 0..n {
            let p = self.vertices[i];
            let q = self.vertices[(i + 1) % n];
            let w = p.cross(q);
            cx += (p.x + q.x) * w;
            cy += (p.y + q.y) * w;
            a += w;
        }
        Point::new(cx / (3.0 * a), cy / (3.0 * a))
    }

    /// True when `p` is inside or on the boundary (convexity: `p` is on
    /// the left of every CCW edge).
    pub fn contains(&self, p: Point) -> bool {
        let n = self.vertices.len();
        (0..n).all(|i| {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            (b - a).cross(p - a) >= -1e-12
        })
    }

    /// True when the segment touches, crosses or lies inside the polygon.
    pub fn intersects_segment(&self, seg: &Segment) -> bool {
        if self.contains(seg.a) || self.contains(seg.b) {
            return true;
        }
        self.edges().iter().any(|e| e.intersects(seg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn triangle() -> ConvexPolygon {
        ConvexPolygon::new(vec![p(0.0, 0.0), p(4.0, 0.0), p(0.0, 3.0)]).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert_eq!(
            ConvexPolygon::new(vec![p(0.0, 0.0), p(1.0, 0.0)]),
            Err(PolygonError::TooFewVertices)
        );
        // Clockwise winding rejected.
        assert_eq!(
            ConvexPolygon::new(vec![p(0.0, 0.0), p(0.0, 3.0), p(4.0, 0.0)]),
            Err(PolygonError::NotConvexCcw)
        );
        // Non-convex (dart) rejected.
        assert_eq!(
            ConvexPolygon::new(vec![p(0.0, 0.0), p(4.0, 0.0), p(1.0, 1.0), p(0.0, 4.0)]),
            Err(PolygonError::NotConvexCcw)
        );
        // Repeated vertex rejected.
        assert_eq!(
            ConvexPolygon::new(vec![p(0.0, 0.0), p(0.0, 0.0), p(4.0, 0.0), p(0.0, 3.0)]),
            Err(PolygonError::Degenerate)
        );
    }

    #[test]
    fn area_and_centroid() {
        let t = triangle();
        assert!((t.area() - 6.0).abs() < 1e-12);
        let c = t.centroid();
        assert!((c - p(4.0 / 3.0, 1.0)).norm() < 1e-12);
        let r = ConvexPolygon::rectangle(p(1.0, 1.0), p(3.0, 2.0));
        assert!((r.area() - 2.0).abs() < 1e-12);
        assert!((r.centroid() - p(2.0, 1.5)).norm() < 1e-12);
    }

    #[test]
    fn containment() {
        let t = triangle();
        assert!(t.contains(p(1.0, 1.0)));
        assert!(t.contains(p(0.0, 0.0))); // vertex
        assert!(t.contains(p(2.0, 0.0))); // edge
        assert!(!t.contains(p(3.0, 3.0)));
        assert!(!t.contains(p(-0.1, 0.0)));
    }

    #[test]
    fn segment_intersection() {
        let t = triangle();
        // Crossing.
        assert!(t.intersects_segment(&Segment::new(p(-1.0, 1.0), p(5.0, 1.0))));
        // Fully inside.
        assert!(t.intersects_segment(&Segment::new(p(0.5, 0.5), p(1.0, 1.0))));
        // Fully outside.
        assert!(!t.intersects_segment(&Segment::new(p(5.0, 5.0), p(6.0, 6.0))));
        // Grazing a vertex.
        assert!(t.intersects_segment(&Segment::new(p(4.0, 0.0), p(5.0, 0.0))));
    }

    #[test]
    fn rotated_rectangle_geometry() {
        let r =
            ConvexPolygon::rotated_rectangle(p(2.0, 2.0), 2.0, 1.0, std::f64::consts::FRAC_PI_4);
        assert!((r.area() - 2.0).abs() < 1e-9);
        assert!((r.centroid() - p(2.0, 2.0)).norm() < 1e-9);
        assert!(r.contains(p(2.0, 2.0)));
        // The unrotated corner (3.0, 2.5) is outside after rotation.
        assert!(!r.contains(p(3.0, 2.5)));
        // A point along the rotated long axis is inside.
        let along = Vec2::new(0.8, 0.0).rotated(std::f64::consts::FRAC_PI_4);
        assert!(r.contains(p(2.0, 2.0) + along));
    }

    #[test]
    fn edges_form_closed_ccw_loop() {
        let t = triangle();
        let e = t.edges();
        assert_eq!(e.len(), 3);
        for i in 0..3 {
            assert_eq!(e[i].b, e[(i + 1) % 3].a);
        }
    }
}
